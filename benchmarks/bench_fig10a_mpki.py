"""Figure 10a: L2 TLB MPKI reduction, instruction and data separately."""

from bench_common import (BENCH_CORES, BENCH_JOBS, BENCH_SCALE,
                          paper_vs_measured, report)
from repro.experiments.ascii_chart import grouped_hbar_chart
from repro.experiments.common import format_table
from repro.experiments.fig10 import run_fig10, summarize
from repro.experiments.paper_values import FIG10A


def bench_fig10a_mpki(benchmark):
    rows = benchmark.pedantic(
        run_fig10, kwargs={"cores": BENCH_CORES, "scale": BENCH_SCALE,
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    table = format_table(
        rows,
        ["app", "mpki_d_base", "mpki_d_babelfish", "mpki_d_reduction_pct",
         "mpki_i_base", "mpki_i_babelfish", "mpki_i_reduction_pct"],
        title="Figure 10a: L2 TLB MPKI, Baseline vs BabelFish")
    summary = summarize(rows)
    comparison = paper_vs_measured([
        ("serving data MPKI reduction %", FIG10A["serving_data_mpki_reduction_pct"],
         round(summary["serving_data_mpki_reduction_pct"], 1)),
        ("serving instr MPKI reduction %", FIG10A["serving_instr_mpki_reduction_pct"],
         round(summary["serving_instr_mpki_reduction_pct"], 1)),
    ])
    chart = grouped_hbar_chart(
        rows, ["mpki_d_base", "mpki_d_babelfish"],
        title="Data L2 TLB MPKI (baseline vs BabelFish)",
        legend=["baseline", "babelfish"], value_format="%.2f")
    report("fig10a_mpki", table + "\n\n" + chart + "\n\n" + comparison)
    # Shape: BabelFish reduces MPKI across the board; instruction side
    # reduces more than data side for serving workloads.
    for row in rows:
        assert row["mpki_d_reduction_pct"] > -5
    assert (summary["serving_instr_mpki_reduction_pct"]
            > summary["serving_data_mpki_reduction_pct"])
