"""Tracer overhead: the cost of the :mod:`repro.obs` hooks.

Two measurements back DESIGN.md's overhead guarantees:

1. **Hot path, tracing disabled** — translate the same warm VPN in a
   tight loop with ``tracer = None`` (the default). The hook is a single
   ``is not None`` test: ns/op must be within noise of the same loop
   (the loop is its own baseline: two disabled passes are compared), and
   the net allocated-block delta must be zero up to measurement noise —
   the disabled tracer allocates nothing, while an enabled pass
   allocates at least one event tuple per op.
2. **End-to-end** — a small measured app run with ``trace=None`` vs
   ``trace=True``, reporting the wall-time ratio (tracing is expected to
   cost real time; the guarantee is only about the disabled path).
3. **Batch punt attribution** — the batch tier's per-cause punt
   counters ride inside the claim loop; with attribution compiled in
   (the default) vs ``REPRO_BATCH_ATTRIBUTION=0``, the architectural
   results must be identical and the best-of-N wall times within noise
   of each other (the counters are touched only at punts and claim
   flushes, never per record).
"""

import os
import sys
import time

from bench_common import report
from repro.experiments.common import (clear_run_cache, config_by_name,
                                      build_environment, deploy_app,
                                      run_app)
from repro.experiments import perf
from repro.hw.types import AccessKind
from repro.kernel.vma import SegmentKind
from repro.obs.tracer import Tracer
from repro.sim import batch
from repro.workloads.profiles import APP_PROFILES

HOT_OPS = 20_000
RUN = dict(cores=1, scale=0.08)
BATCH_RECORDS = 30_000
BATCH_REPEATS = 5


def _hot_setup():
    """A warm MMU + process: the first translate faults the page in and
    fills the TLBs, everything after is the pure L1-hit path."""
    env = build_environment(config_by_name("BabelFish"), cores=1)
    deployment = deploy_app(env, APP_PROFILES["mongodb"], None)
    proc = deployment.containers[0].proc
    mmu = env.sim.mmus[0]
    mmu.translate(proc, SegmentKind.HEAP, 0, AccessKind.LOAD)
    return mmu, proc


def _hot_loop(mmu, proc, ops):
    """(ns/op, net allocated-block delta) over ``ops`` warm translates."""
    translate = mmu.translate
    clock = time.perf_counter
    blocks_before = sys.getallocatedblocks()
    started = clock()
    for _ in range(ops):
        translate(proc, SegmentKind.HEAP, 0, AccessKind.LOAD)
    elapsed = clock() - started
    blocks_delta = sys.getallocatedblocks() - blocks_before
    return elapsed / ops * 1e9, blocks_delta


def _batch_leg():
    """(arch-identical, ns/access on, ns/access off, punt total).

    Best-of-N minima under attribution on vs off; the environment knob
    is restored afterwards so later benchmarks see the default.
    """
    config = config_by_name("BabelFish", batch=True)
    saved = os.environ.get(batch.BATCH_ATTR_ENV)
    try:
        os.environ.pop(batch.BATCH_ATTR_ENV, None)
        best_on, dict_on = None, None
        for _ in range(BATCH_REPEATS):
            d, accesses, seconds = perf.run_hot(config, 1, BATCH_RECORDS)
            best_on = seconds if best_on is None else min(best_on, seconds)
            dict_on = d
        os.environ[batch.BATCH_ATTR_ENV] = "0"
        best_off, dict_off = None, None
        for _ in range(BATCH_REPEATS):
            d, accesses, seconds = perf.run_hot(config, 1, BATCH_RECORDS)
            best_off = seconds if best_off is None else min(best_off, seconds)
            dict_off = d
    finally:
        if saved is None:
            os.environ.pop(batch.BATCH_ATTR_ENV, None)
        else:
            os.environ[batch.BATCH_ATTR_ENV] = saved
    assert "batch" in dict_on and "batch" not in dict_off
    identical = perf.arch_dict(dict_on) == perf.arch_dict(dict_off)
    punts = dict_on["batch"]["punts"]
    return (identical, best_on / accesses * 1e9, best_off / accesses * 1e9,
            punts, accesses)


def bench_obs_overhead():
    mmu, proc = _hot_setup()

    # Disabled tracer: two passes; the first is the baseline for the
    # second, so the assertion is about loop-to-loop noise, not absolute
    # machine speed.
    assert mmu.tracer is None
    _hot_loop(mmu, proc, HOT_OPS)  # warm the loop itself
    ns_off_a, _ = _hot_loop(mmu, proc, HOT_OPS)
    ns_off_b, blocks_off = _hot_loop(mmu, proc, HOT_OPS)

    tracer = Tracer()
    mmu.tracer = tracer
    mmu.walker.tracer = tracer
    _hot_loop(mmu, proc, HOT_OPS)
    ns_on, blocks_on = _hot_loop(mmu, proc, HOT_OPS)
    mmu.tracer = None
    mmu.walker.tracer = None

    clear_run_cache()
    clock = time.perf_counter
    started = clock()
    run_app("mongodb", config_by_name("BabelFish"), use_cache=False, **RUN)
    wall_off = clock() - started
    started = clock()
    run_app("mongodb", config_by_name("BabelFish", trace=True),
            use_cache=False, **RUN)
    wall_on = clock() - started

    identical, ns_attr_on, ns_attr_off, punts, accesses = _batch_leg()
    attr_ratio = ns_attr_on / ns_attr_off

    lines = [
        "hot path (warm L1-hit translate, %d ops/pass)" % HOT_OPS,
        "  tracer disabled   %7.1f ns/op  (repeat %7.1f ns/op)"
        % (ns_off_b, ns_off_a),
        "  tracer enabled    %7.1f ns/op  (+%.0f%%)"
        % (ns_on, 100.0 * (ns_on - ns_off_b) / ns_off_b),
        "  net allocated blocks/pass: disabled %+d, enabled %+d"
        % (blocks_off, blocks_on),
        "",
        "end-to-end (mongodb, cores=%(cores)d scale=%(scale).2f)" % RUN,
        "  trace=None  %6.2fs" % wall_off,
        "  trace=True  %6.2fs  (x%.2f)" % (wall_on, wall_on / wall_off),
        "",
        "batch punt attribution (hot path, %d accesses, best of %d)"
        % (accesses, BATCH_REPEATS),
        "  attribution on    %7.1f ns/access  (%d punts attributed)"
        % (ns_attr_on, punts),
        "  attribution off   %7.1f ns/access  (x%.3f)"
        % (ns_attr_off, attr_ratio),
        "  architectural results identical: %s" % identical,
    ]
    report("obs_overhead", "\n".join(lines))

    # The guarantees: a disabled pass allocates nothing beyond noise
    # (live counters crossing an int-digit boundary can pin a few
    # blocks), an enabled pass visibly allocates (one event tuple per
    # op), and disabled passes cost the same as each other (generous
    # 25% noise bound — CI machines jitter).
    assert abs(blocks_off) <= 16, blocks_off
    assert blocks_on > HOT_OPS, blocks_on
    assert ns_off_b < ns_off_a * 1.25
    # Attribution may never change the simulated architecture, and its
    # wall cost must stay in the noise of the engine (same generous CI
    # bound as the loop-to-loop jitter above; on a quiet machine the
    # best-of-N minima land within ~2%).
    assert identical
    assert attr_ratio < 1.25, attr_ratio


if __name__ == "__main__":
    bench_obs_overhead()
