"""Figure 11: latency / execution-time reduction attained by BabelFish."""

from bench_common import (BENCH_CORES, BENCH_JOBS, BENCH_SCALE,
                          paper_vs_measured, report)
from repro.experiments.ascii_chart import hbar_chart
from repro.experiments.common import format_table
from repro.experiments.fig11 import run_fig11, summarize
from repro.experiments.paper_values import FIG11


def bench_fig11_latency(benchmark):
    results = benchmark.pedantic(
        run_fig11, kwargs={"cores": BENCH_CORES, "scale": BENCH_SCALE,
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    serving = format_table(
        results["serving"], ["app", "mean_reduction_pct", "tail_reduction_pct"],
        title="Figure 11 (serving): request latency reduction %")
    compute = format_table(
        results["compute"], ["app", "exec_reduction_pct"],
        title="Figure 11 (compute): execution time reduction %")
    functions = format_table(
        results["functions"], ["app", "exec_reduction_pct"],
        title="Figure 11 (functions): execution time reduction %")
    summary = summarize(results)
    comparison = paper_vs_measured([
        (key, FIG11[key], round(summary[key], 1)) for key in FIG11
    ])
    chart_rows = (
        [{"app": r["app"], "pct": r["mean_reduction_pct"]}
         for r in results["serving"]]
        + [{"app": r["app"], "pct": r["exec_reduction_pct"]}
           for r in results["compute"] + results["functions"]])
    chart = hbar_chart(chart_rows, "pct",
                       title="Latency / execution-time reduction (%)")
    report("fig11_latency",
           "\n\n".join([serving, compute, functions, chart, comparison]))
    # Shape assertions: everything improves; sparse functions improve far
    # more than dense; database apps more than HTTPd.
    assert summary["serving_mean_pct"] > 0
    assert summary["compute_exec_pct"] > 0
    assert summary["functions_sparse_pct"] > 2 * summary["functions_dense_pct"]
    by_app = {r["app"]: r["mean_reduction_pct"] for r in results["serving"]}
    assert by_app["mongodb"] > by_app["httpd"]
    assert by_app["arangodb"] > by_app["httpd"]
