"""Section VII-C: BabelFish vs a larger conventional L2 TLB.

Spending BabelFish's extra bits on a 2x conventional L2 TLB recovers only
a small fraction of the gains (paper: 2.1% / 0.6% / 1.1% / 0.3%).
"""

from bench_common import (BENCH_CORES, BENCH_JOBS, BENCH_SCALE,
                          paper_vs_measured, report)
from repro.experiments.common import format_table
from repro.experiments.larger_tlb import run_comparison
from repro.experiments.paper_values import LARGER_TLB


def bench_larger_tlb(benchmark):
    rows = benchmark.pedantic(
        run_comparison, kwargs={"cores": BENCH_CORES, "scale": BENCH_SCALE,
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    table = format_table(
        rows, ["metric", "bigtlb_reduction_pct", "babelfish_reduction_pct"],
        title="BabelFish vs larger conventional L2 TLB (reduction vs "
              "Baseline, %)")
    comparison = paper_vs_measured([
        (row["metric"], LARGER_TLB.get(row["metric"]),
         row["bigtlb_reduction_pct"]) for row in rows
    ])
    report("larger_tlb", table + "\n\n"
           + "Paper's BigTLB reductions vs ours:\n" + comparison)
    # Shape: the larger TLB never matches BabelFish.
    for row in rows:
        assert row["bigtlb_reduction_pct"] < row["babelfish_reduction_pct"]
