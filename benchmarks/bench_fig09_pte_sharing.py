"""Figure 9: page-table entry sharing characterization.

Regenerates the three bars (Total / Active / Active-with-BabelFish) per
application, broken into shareable / unshareable / THP pte_ts, and checks
the paper's text claims (53% shareable on average, 93% for functions,
30% / 57% active reductions, ~8% THP, ~6% unshareable for functions).
"""

from bench_common import BENCH_JOBS, BENCH_SCALE, paper_vs_measured, report
from repro.experiments.ascii_chart import stacked_fraction_chart
from repro.experiments.common import format_table
from repro.experiments.fig9 import run_fig9, summarize
from repro.experiments.paper_values import FIG9


def bench_fig9_pte_sharing(benchmark):
    rows = benchmark.pedantic(run_fig9, kwargs={"scale": BENCH_SCALE, "jobs": BENCH_JOBS},
                              rounds=1, iterations=1)
    table = format_table(
        [r.as_dict() for r in rows],
        ["app", "total", "total_shareable", "total_unshareable",
         "total_thp", "active", "active_babelfish", "shareable_frac",
         "active_reduction"],
        title="Figure 9: pte_t shareability (counts in 4KB pte_t equivalents)")
    summary = summarize(rows)
    comparison = paper_vs_measured([
        (key, FIG9.get(key), round(value, 3))
        for key, value in summary.items()
    ])
    chart = stacked_fraction_chart(
        [r.as_dict() for r in rows],
        ["total_shareable", "total_unshareable", "total_thp"], "total",
        title="Total pte_ts composition per app",
        legend=["shareable", "unshareable", "THP"])
    report("fig09_pte_sharing",
           table + "\n\n" + chart + "\n\n" + comparison)
    assert summary["functions_shareable_fraction"] > 0.8
    assert summary["avg_shareable_fraction"] > 0.4
