"""Figure 10b: shared hits as a fraction of all L2 TLB hits."""

from bench_common import (BENCH_CORES, BENCH_JOBS, BENCH_SCALE,
                          paper_vs_measured, report)
from repro.experiments.common import format_table
from repro.experiments.fig10 import run_fig10, summarize
from repro.experiments.paper_values import FIG10B


def bench_fig10b_shared_hits(benchmark):
    rows = benchmark.pedantic(
        run_fig10, kwargs={"cores": BENCH_CORES, "scale": BENCH_SCALE,
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    table = format_table(
        rows, ["app", "shared_hits_d", "shared_hits_i"],
        title="Figure 10b: hits on L2 TLB entries inserted by other "
              "processes (fraction of all hits)")
    summary = summarize(rows)
    comparison = paper_vs_measured([
        ("graphchi instr shared hits", FIG10B["graphchi_instr_shared_hits"],
         summary.get("graphchi_instr_shared_hits")),
        ("graphchi data shared hits", FIG10B["graphchi_data_shared_hits"],
         summary.get("graphchi_data_shared_hits")),
    ])
    report("fig10b_shared_hits", table + "\n\n" + comparison)
    for row in rows:
        assert 0.0 < row["shared_hits_i"] <= 1.0
    # GraphChi's regular code vs random data accesses: instruction sharing
    # exceeds data sharing (the paper's 48% vs 12%).
    graphchi = next(r for r in rows if r["app"] == "graphchi")
    assert graphchi["shared_hits_i"] > graphchi["shared_hits_d"]
