"""Design-choice ablations called out in DESIGN.md (beyond the paper's
explicit studies): ASLR mode, the ORPC filter, PC-bitmask width,
huge-page PMD merging, and scheduler-quantum sensitivity."""

from bench_common import BENCH_CORES, BENCH_JOBS, report
from repro.experiments.ablations import (
    run_aslr_ablation,
    run_bitmask_width_ablation,
    run_orpc_ablation,
    run_quantum_ablation,
    run_share_huge_ablation,
)
from repro.experiments.common import format_table

CORES = min(BENCH_CORES, 4)


def bench_aslr_modes(benchmark):
    rows = benchmark.pedantic(run_aslr_ablation,
                              kwargs={"cores": CORES, "jobs": BENCH_JOBS},
                              rounds=1, iterations=1)
    report("ablation_aslr", format_table(
        rows, ["mode", "mean_reduction_pct", "aslr_transforms", "l1_shared"],
        title="Ablation: ASLR-SW vs ASLR-HW (Section IV-D)"))
    sw = next(r for r in rows if r["mode"] == "aslr-sw")
    hw = next(r for r in rows if r["mode"] == "aslr-hw")
    # SW avoids the 2-cycle transform and shares at L1, so it is at least
    # as good as the (conservative) HW configuration the paper evaluates.
    assert sw["mean_reduction_pct"] >= hw["mean_reduction_pct"] - 1.0


def bench_orpc_filter(benchmark):
    rows = benchmark.pedantic(run_orpc_ablation,
                              kwargs={"cores": CORES, "jobs": BENCH_JOBS},
                              rounds=1, iterations=1)
    report("ablation_orpc", format_table(
        rows, ["orpc_enabled", "mean_reduction_pct", "l2_long_accesses"],
        title="Ablation: ORPC filter (Figure 5b)"))
    on = next(r for r in rows if r["orpc_enabled"])
    off = next(r for r in rows if not r["orpc_enabled"])
    assert off["l2_long_accesses"] > on["l2_long_accesses"]


def bench_bitmask_width(benchmark):
    rows = benchmark.pedantic(run_bitmask_width_ablation,
                              rounds=1, iterations=1)
    report("ablation_bitmask_width", format_table(
        rows,
        ["pc_bits", "indirection", "reverts", "pte_pages_copied",
         "cow_cycles"],
        title="Ablation: PC bitmask width (Appendix overflow behaviour)"))
    plain = {r["pc_bits"]: r for r in rows if not r["indirection"]}
    assert plain[4]["reverts"] > plain[32]["reverts"] == 0


def bench_share_huge(benchmark):
    rows = benchmark.pedantic(run_share_huge_ablation,
                              rounds=1, iterations=1)
    report("ablation_share_huge", format_table(
        rows, ["share_huge", "table_pages", "fork_cycles"],
        title="Ablation: PMD-table merging for 2MB pages (Section IV-C)"))
    on = next(r for r in rows if r["share_huge"])
    off = next(r for r in rows if not r["share_huge"])
    assert on["table_pages"] < off["table_pages"]


def bench_quantum_sensitivity(benchmark):
    rows = benchmark.pedantic(run_quantum_ablation,
                              kwargs={"cores": CORES, "jobs": BENCH_JOBS},
                              rounds=1, iterations=1)
    report("ablation_quantum", format_table(
        rows, ["quantum_instructions", "mean_reduction_pct"],
        title="Ablation: scheduler quantum sensitivity"))
    assert len(rows) == 3
