"""Table II: fraction of each improvement due to L2 TLB effects.

Measured by ablation (BabelFish-PT vs full BabelFish); see
repro.experiments.table2 for the attribution discussion.
"""

from bench_common import (BENCH_CORES, BENCH_JOBS, BENCH_SCALE,
                          paper_vs_measured, report)
from repro.experiments.common import format_table
from repro.experiments.paper_values import TABLE2
from repro.experiments.table2 import run_table2, summarize


def bench_table2_tlb_fraction(benchmark):
    rows = benchmark.pedantic(
        run_table2, kwargs={"cores": BENCH_CORES, "scale": BENCH_SCALE,
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    table = format_table(rows, ["app", "tlb_fraction"],
                         title="Table II: fraction of gains from L2 TLB "
                               "entry sharing")
    summary = summarize(rows)
    comparison = paper_vs_measured([
        (key, TABLE2.get(key), round(value, 2) if value is not None else None)
        for key, value in summary.items()
    ])
    report("table2_tlb_fraction", table + "\n\n" + comparison)
    # Shape: database/web serving attribute more to TLB sharing than the
    # compute and sparse-function workloads do.
    assert summary["mongodb"] > summary["graphchi"]
    assert summary["httpd"] > summary["fio"]
    assert summary["sparse_average"] < 0.25
