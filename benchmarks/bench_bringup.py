"""Section VII-C: serverless function bring-up time (docker start)."""

from bench_common import (BENCH_CORES, BENCH_JOBS, BENCH_SCALE,
                          paper_vs_measured, report)
from repro.experiments.bringup import run_bringup
from repro.experiments.paper_values import HEADLINE


def bench_bringup(benchmark):
    result = benchmark.pedantic(
        run_bringup, kwargs={"cores": BENCH_CORES, "scale": BENCH_SCALE,
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    comparison = paper_vs_measured([
        ("bring-up reduction %",
         HEADLINE["function_bringup_reduction_pct"],
         result["reduction_pct"]),
        ("baseline bring-up cycles", None, int(result["baseline_cycles"])),
        ("babelfish bring-up cycles", None, int(result["babelfish_cycles"])),
        ("baseline minor faults", None, result["baseline_minor_faults"]),
        ("babelfish minor faults", None, result["babelfish_minor_faults"]),
    ])
    report("bringup", comparison)
    assert 0 < result["reduction_pct"] < 40
    assert (result["babelfish_minor_faults"]
            < result["baseline_minor_faults"])
