"""Section VII-D: BabelFish resource analysis (area and memory space)."""

import pytest

from bench_common import paper_vs_measured, report
from repro.experiments.paper_values import RESOURCES
from repro.experiments.resources import run_resources


def bench_resources(benchmark):
    result = benchmark.pedantic(run_resources, rounds=1, iterations=1)
    comparison = paper_vs_measured([
        ("core area overhead %", RESOURCES["core_area_overhead_pct"],
         result["core_area_overhead_pct"]),
        ("core area overhead (no PC bitmask) %",
         RESOURCES["core_area_overhead_no_pc_pct"],
         result["core_area_overhead_no_pc_pct"]),
        ("MaskPage space overhead %",
         RESOURCES["maskpage_space_overhead_pct"],
         result["maskpage_space_overhead_pct"]),
        ("counter space overhead %",
         RESOURCES["counter_space_overhead_pct"],
         result["counter_space_overhead_pct"]),
        ("total space overhead %",
         RESOURCES["total_space_overhead_pct"],
         result["total_space_overhead_pct"]),
        ("measured page-table pages", None,
         result["measured"]["page_table_pages"]),
        ("measured MaskPage overhead %", None,
         result["measured"]["maskpage_space_overhead_pct"]),
    ])
    report("resources", comparison)
    assert result["core_area_overhead_pct"] == pytest.approx(0.4, abs=0.05)
    assert result["total_space_overhead_pct"] == pytest.approx(0.244,
                                                               abs=0.02)
