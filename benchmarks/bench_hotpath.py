"""Hot-path perf trajectory: fast path vs reference, bit-identity enforced.

Unlike the figure/table benchmarks, this one measures the *simulator*,
not the paper: :mod:`repro.experiments.perf` runs a steady-state
hot-locality workload under ``fastpath=True`` and ``fastpath=False``,
raises if the two ``RunResult.as_dict()`` ever diverge, and writes the
fast/reference accesses-per-second ratio per tier to
``BENCH_hotpath.json`` at the repo root (ratios are the tracked,
machine-normalized trajectory; the raw rates ride along for context).

    python benchmarks/bench_hotpath.py           # smoke + medium + batch
    python benchmarks/bench_hotpath.py --smoke   # smoke + batch tiers (CI)

Tiers not run (``medium`` under ``--smoke``) are preserved from the
existing trajectory file rather than erased. Equivalent to
``python -m repro.experiments perf``.
"""

import argparse
import json
import sys

from bench_common import report
from repro.experiments.perf import run_harness


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smoke tier only (tiny config; CI)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_hotpath.json "
                             "at the repo root)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per tier")
    args = parser.parse_args(argv)
    payload = run_harness(smoke=args.smoke, out=args.out,
                          repeats=args.repeats)
    report("hotpath", json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
