"""Shared benchmark configuration and reporting.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured report (also written under ``benchmarks/out/``). Run
with ``pytest benchmarks/ --benchmark-only -s`` to see the tables inline.

Scale: ``REPRO_BENCH_SCALE`` (default 1.0) multiplies the measured
request/iteration counts; ``REPRO_BENCH_CORES`` (default 8) sets the core
count. The defaults reproduce the paper's 8-core co-location.

Runs are memoized on disk under ``benchmarks/out/runcache/`` (keyed by
the full config and a source fingerprint), so re-running a figure after
an unrelated edit — or running several figures that share runs — skips
finished simulations.  ``REPRO_BENCH_DISK_CACHE=0`` opts out;
``REPRO_BENCH_JOBS`` (default 1) fans independent runs out across worker
processes for the harnesses that take ``jobs=``.
"""

import os
import pathlib

from repro.experiments import DiskRunCache, set_disk_cache

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_CORES = int(os.environ.get("REPRO_BENCH_CORES", "8"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

if os.environ.get("REPRO_BENCH_DISK_CACHE", "1") != "0":
    set_disk_cache(DiskRunCache())

OUT_DIR = pathlib.Path(__file__).parent / "out"


def report(name, text):
    """Print a result table and persist it under benchmarks/out/."""
    banner = "\n" + "=" * 72 + "\n%s\n" % name + "=" * 72
    print(banner)
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / ("%s.txt" % name)).write_text(text + "\n")


def paper_vs_measured(pairs):
    """Render [(label, paper, measured), ...] rows."""
    width = max(len(label) for label, _p, _m in pairs)
    lines = ["%s  %10s  %10s" % ("metric".ljust(width), "paper", "measured"),
             "-" * (width + 26)]
    for label, paper, measured in pairs:
        lines.append("%s  %10s  %10s" % (
            label.ljust(width), _fmt(paper), _fmt(measured)))
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)
