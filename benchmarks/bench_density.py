"""Extension: container-density (oversubscription) sweep.

The paper evaluates at a conservative 2-3 containers per core and notes
the gains would grow with consolidation; this sweep verifies that: the
latency/MPKI advantage and the shared-hit fraction all rise with density.
"""

from bench_common import BENCH_JOBS, BENCH_SCALE, report
from repro.experiments.ascii_chart import hbar_chart
from repro.experiments.common import format_table
from repro.experiments.density import run_density_sweep


def bench_density_sweep(benchmark):
    rows = benchmark.pedantic(
        run_density_sweep,
        kwargs={"cores": 2, "scale": min(0.5, BENCH_SCALE),
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    table = format_table(
        rows,
        ["containers_per_core", "mean_reduction_pct",
         "mpki_d_reduction_pct", "shared_hits", "baseline_table_pages",
         "babelfish_table_pages"],
        title="Extension: BabelFish's advantage vs containers per core")
    chart = hbar_chart(rows, "mean_reduction_pct",
                       label_key="containers_per_core",
                       title="Mean latency reduction (%) by density")
    report("density_sweep", table + "\n\n" + chart)
    reductions = [r["mean_reduction_pct"] for r in rows]
    assert reductions == sorted(reductions), \
        "BabelFish's advantage should grow with container density"
    shares = [r["shared_hits"] for r in rows]
    assert shares == sorted(shares)
