"""Extension: mixed-application co-location (see
repro/experiments/mixed.py). Shows that BabelFish's per-core TLB-sharing
benefit needs same-CCID neighbours, while page-table sharing still works
across cores."""

from bench_common import BENCH_CORES, BENCH_JOBS, BENCH_SCALE, report
from repro.experiments.common import format_table
from repro.experiments.mixed import run_mixed_colocation

CORES = min(BENCH_CORES, 4)


def bench_mixed_colocation(benchmark):
    rows = benchmark.pedantic(
        run_mixed_colocation,
        kwargs={"cores": CORES, "scale": min(1.0, BENCH_SCALE),
                "jobs": BENCH_JOBS},
        rounds=1, iterations=1)
    report("mixed_colocation", format_table(
        rows, ["scenario", "mean_reduction_pct", "shared_hits",
               "ccid_groups"],
        title="Extension: same-app vs mixed-app co-location"))
    by_scenario = {r["scenario"]: r for r in rows}
    assert (by_scenario["same-app"]["shared_hits"]
            > by_scenario["mixed"]["shared_hits"])
    assert (by_scenario["same-app"]["mean_reduction_pct"]
            >= by_scenario["mixed"]["mean_reduction_pct"])
