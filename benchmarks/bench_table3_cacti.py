"""Table III: L2 TLB area / access time / energy / leakage at 22nm."""

import pytest

from bench_common import report
from repro.experiments.common import format_table
from repro.experiments.table3 import bitmask_width_sweep, run_table3


def bench_table3_cacti(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    table = format_table(
        rows,
        ["config", "bits_per_entry", "area_mm2", "paper_area_mm2",
         "access_time_ps", "paper_access_time_ps", "dyn_energy_pj",
         "paper_dyn_energy_pj", "leakage_mw", "paper_leakage_mw"],
        title="Table III: L2 TLB parameters at 22nm (CACTI-style model)")
    sweep = format_table(
        bitmask_width_sweep(),
        ["pc_bits", "area_mm2", "access_time_ps", "dyn_energy_pj",
         "leakage_mw"],
        title="Extension: Table III vs PC-bitmask width")
    report("table3_cacti", table + "\n\n" + sweep)
    for row in rows:
        assert row["area_mm2"] == pytest.approx(row["paper_area_mm2"],
                                                rel=0.05)
        assert row["access_time_ps"] == pytest.approx(
            row["paper_access_time_ps"], rel=0.05)
