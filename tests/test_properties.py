"""Property-based tests (hypothesis) on core data structures and
invariants."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.mask_page import MaskPage, MaskPageFull, pmd_index_of, region_of
from repro.core.opc import MAX_PRIVATE_COPIES, OPCField
from repro.hw.cache import SetAssociativeCache
from repro.hw.params import CacheParams, TLBParams
from repro.hw.tlb import SetAssocTLB, TLBEntry
from repro.hw.types import PageSize
from repro.kernel.aslr_layout import randomized_layout
from repro.kernel.frames import FrameAllocator
from repro.kernel.lru import ActiveInactiveLRU
from repro.kernel.page_table import AddressSpaceTables, PTE, table_index
from repro.kernel.vma import SegmentKind
from repro.sim.stats import percentile
from repro.workloads.zipf import ZipfGenerator

VPN48 = st.integers(min_value=0, max_value=(1 << 36) - 1)


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.booleans()),
                    max_size=200))
    @settings(max_examples=50)
    def test_occupancy_never_exceeds_capacity(self, ops):
        cache = SetAssociativeCache(CacheParams("p", 512, 2, 64, 1))
        capacity = cache.num_sets * cache.ways
        for addr, is_write in ops:
            cache.insert(addr, is_write)
            assert cache.occupancy <= capacity

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_insert_then_lookup_hits(self, addrs):
        cache = SetAssociativeCache(CacheParams("p", 64 * 1024, 8, 64, 1))
        for addr in addrs:
            cache.insert(addr)
            assert cache.lookup(addr)

    @given(st.lists(st.integers(0, 1 << 16), max_size=100))
    @settings(max_examples=30)
    def test_hits_plus_misses_equals_lookups(self, addrs):
        cache = SetAssociativeCache(CacheParams("p", 1024, 2, 64, 1))
        for addr in addrs:
            if cache.lookup(addr):
                pass
            else:
                cache.insert(addr)
        assert cache.hits + cache.misses == len(addrs)


class TestTLBProperties:
    @given(st.lists(st.tuples(VPN48, st.integers(1, 7)), max_size=150))
    @settings(max_examples=50)
    def test_occupancy_bounded(self, inserts):
        tlb = SetAssocTLB(TLBParams("t", 16, 4, PageSize.SIZE_4K, 1))
        for vpn, pcid in inserts:
            tlb.insert(TLBEntry(vpn, 1, pcid=pcid))
            assert tlb.occupancy <= 16

    @given(st.lists(st.tuples(VPN48, st.integers(1, 3)), max_size=80))
    @settings(max_examples=50)
    def test_most_recent_insert_always_hits(self, inserts):
        tlb = SetAssocTLB(TLBParams("t", 16, 4, PageSize.SIZE_4K, 1))
        for vpn, pcid in inserts:
            tlb.insert(TLBEntry(vpn, 1, pcid=pcid),
                       replace=lambda old, p=pcid: old.pcid == p)
            assert tlb.lookup(vpn, lambda e, p=pcid: e.pcid == p) is not None

    @given(st.lists(VPN48, max_size=60), VPN48)
    @settings(max_examples=50)
    def test_invalidate_removes_all_copies(self, vpns, victim):
        tlb = SetAssocTLB(TLBParams("t", 32, 4, PageSize.SIZE_4K, 1))
        for i, vpn in enumerate(vpns):
            tlb.insert(TLBEntry(vpn, 1, pcid=i % 5))
        tlb.invalidate(victim)
        assert tlb.lookup(victim, lambda e: True) is None


class TestOPCProperties:
    @given(st.integers(0, (1 << 32) - 1), st.booleans())
    def test_pack_unpack_roundtrip(self, mask, o_bit):
        field = OPCField(o_bit, mask)
        assert OPCField.unpack(field.packed()) == field

    @given(st.sets(st.integers(0, 31), max_size=32))
    def test_orpc_equals_any_bit(self, bits):
        field = OPCField()
        for bit in bits:
            field.set_bit(bit)
        assert field.orpc == bool(bits)
        for bit in bits:
            assert field.test_bit(bit)


class TestMaskPageProperties:
    @given(st.lists(st.integers(1, 2000), min_size=1, max_size=100))
    def test_bits_unique_and_stable(self, pids):
        page = MaskPage(1, 0)
        assigned = {}
        for pid in pids:
            try:
                bit = page.assign_bit(pid)
            except MaskPageFull:
                assert len(set(pids[:pids.index(pid)])) >= MAX_PRIVATE_COPIES
                break
            if pid in assigned:
                assert assigned[pid] == bit
            assigned[pid] = bit
        bits = list(assigned.values())
        assert len(bits) == len(set(bits))

    @given(VPN48)
    def test_region_pmd_decomposition(self, vpn):
        assert region_of(vpn) == vpn >> 18
        assert 0 <= pmd_index_of(vpn) < 512
        # Same PTE table -> same region and pmd index.
        assert pmd_index_of(vpn) == pmd_index_of((vpn & ~511) | 17)


class TestFrameProperties:
    @given(st.lists(st.sampled_from(["alloc", "free"]), max_size=200))
    @settings(max_examples=50)
    def test_no_double_allocation(self, ops):
        alloc = FrameAllocator()
        live = []
        for op in ops:
            if op == "alloc" or not live:
                live.append(alloc.alloc())
                assert len(set(live)) == len(live)
            else:
                alloc.decref(live.pop())
        assert alloc.allocated == len(live)


class TestPageTableProperties:
    @given(st.lists(VPN48, min_size=1, max_size=60, unique=True))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_leaves_roundtrip(self, vpns):
        tables = AddressSpaceTables(FrameAllocator())
        for i, vpn in enumerate(vpns):
            tables.set_leaf(vpn, PTE(i + 1))
        found = {vpn: pte.ppn
                 for vpn, _l, _t, _i, pte in tables.iter_leaves()}
        assert found == {vpn: i + 1 for i, vpn in enumerate(vpns)}
        for vpn in vpns:
            assert tables.lookup_pte(vpn) is not None

    @given(VPN48)
    def test_table_index_reconstructs_vpn(self, vpn):
        from repro.kernel.page_table import PGD, PMD, PTE_LEVEL, PUD
        rebuilt = ((table_index(vpn, PGD) << 27)
                   | (table_index(vpn, PUD) << 18)
                   | (table_index(vpn, PMD) << 9)
                   | table_index(vpn, PTE_LEVEL))
        assert rebuilt == vpn & ((1 << 36) - 1)


class TestLayoutProperties:
    @given(st.integers(0, 1 << 30), st.integers(0, 1 << 30))
    @settings(max_examples=40)
    def test_layouts_never_collide_across_segments(self, seed_a, seed_b):
        a = randomized_layout(seed_a)
        b = randomized_layout(seed_b)
        # Segment windows are far enough apart that no two segments from
        # any two layouts can overlap within a plausible mapping size
        # (up to 2GB per segment).
        span = 1 << 19
        ranges = []
        for layout in (a, b):
            for segment in SegmentKind:
                base = layout.base(segment)
                ranges.append((segment, base, base + span))
        ranges.sort(key=lambda r: r[1])
        for (seg1, _s1, e1), (seg2, s2, _e2) in zip(ranges, ranges[1:]):
            if seg1 is not seg2:
                assert e1 <= s2

    @given(st.integers(0, 1 << 30))
    def test_diff_is_inverse(self, seed):
        a = randomized_layout(seed)
        b = randomized_layout(seed + 1)
        diff = a.diff(b)
        for segment in SegmentKind:
            assert a.base(segment) + diff[segment] == b.base(segment)


class TestZipfProperties:
    @given(st.integers(1, 5000), st.floats(0.0, 0.99),
           st.integers(0, 1 << 16))
    @settings(max_examples=40)
    def test_output_in_range(self, n, theta, seed):
        gen = ZipfGenerator(n, theta, seed=seed)
        for _ in range(50):
            assert 0 <= gen.next() < n


class TestLRUProperties:
    @given(st.lists(st.integers(1, 20), max_size=200))
    @settings(max_examples=40)
    def test_active_requires_two_touches(self, touches):
        lru = ActiveInactiveLRU()
        seen = set()
        for ppn in touches:
            lru.touch(ppn)
            if ppn not in seen:
                seen.add(ppn)
                if touches.count(ppn) == 1:
                    assert not lru.is_active(ppn)

    @given(st.lists(st.integers(1, 50), max_size=200), st.integers(1, 5))
    @settings(max_examples=40)
    def test_capacity_respected(self, touches, capacity):
        lru = ActiveInactiveLRU(active_capacity=capacity)
        for ppn in touches:
            lru.touch(ppn)
            assert lru.active_count <= capacity


class TestPercentileProperties:
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
           st.integers(1, 100))
    def test_percentile_is_member_and_bounded(self, values, pct):
        result = percentile(values, pct)
        assert result in [float(v) for v in values]
        assert min(values) <= result <= max(values)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_monotone_in_pct(self, values):
        results = [percentile(values, p) for p in (25, 50, 75, 95, 100)]
        assert results == sorted(results)
