"""The observability stack: metrics registry, tracer, profiler, exports,
CLIs — and the cross-validation guarantee that trace-derived aggregates
exactly match the simulator's own ``MMUStats`` counters."""

import json

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.common import (
    clear_run_cache,
    config_by_name,
    run_app,
    run_functions,
    set_disk_cache,
)
from repro.experiments.runner import RunRequest, execute
from repro.kernel.costs import KernelCosts
from repro.obs import events as ev_mod
from repro.obs.__main__ import main as obs_main
from repro.obs.events import event_to_dict
from repro.obs.metrics import (
    MetricsRegistry,
    bucket_of,
    map_label,
    merge_snapshots,
)
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.summary import diff, flatten, format_summary, summarize
from repro.obs.tracer import TraceOptions, Tracer, resolve_trace_options

SMALL = dict(cores=1, scale=0.08)


@pytest.fixture(autouse=True)
def _isolated_caches():
    previous = set_disk_cache(None)
    clear_run_cache()
    yield
    set_disk_cache(previous)
    clear_run_cache()


# -- metrics registry --------------------------------------------------------


class TestMetrics:
    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("faults", kind="minor").inc(2)
        registry.counter("faults", kind="cow").inc()
        registry.counter("faults", kind="minor").inc()
        snap = registry.snapshot()
        values = {tuple(sorted(e["labels"].items())): e["value"]
                  for e in snap["counters"]}
        assert values == {(("kind", "cow"),): 1, (("kind", "minor"),): 3}

    def test_log2_buckets(self):
        assert bucket_of(0) == 0
        assert bucket_of(1) == 1
        assert bucket_of(2) == 2
        assert bucket_of(3) == 2
        assert bucket_of(4) == 3
        hist = MetricsRegistry().histogram("h")
        for value in (0, 1, 3, 3, 100):
            hist.observe(value)
        assert hist.buckets == {0: 1, 1: 1, 2: 2, 7: 1}
        assert hist.count == 5
        assert hist.sum == 107
        assert (hist.min, hist.max) == (0, 100)
        assert hist.mean == 107 / 5

    def test_histogram_percentile_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.percentile(50) == 0.0
        for value in (1, 1, 1, 64):
            hist.observe(value)
        assert hist.percentile(50) == 1.0
        assert hist.percentile(100) == 127.0  # bucket upper bound

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        registry.gauge("depth").set(2)
        assert registry.snapshot()["gauges"][0]["value"] == 2

    def test_merge_snapshots_is_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", pid=1).inc(2)
        b.counter("c", pid=1).inc(3)
        b.counter("c", pid=2).inc(1)
        a.gauge("g").set(5)
        b.gauge("g").set(7)
        a.histogram("h").observe(3)
        b.histogram("h").observe(40)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged == merge_snapshots([b.snapshot(), a.snapshot()])
        counters = {tuple(sorted(e["labels"].items())): e["value"]
                    for e in merged["counters"]}
        assert counters == {(("pid", 1),): 5, (("pid", 2),): 1}
        assert merged["gauges"][0]["value"] == 7
        hist = merged["histograms"][0]
        assert (hist["count"], hist["sum"]) == (2, 43)
        assert (hist["min"], hist["max"]) == (3, 40)

    def test_map_label_remaps_and_defaults(self):
        registry = MetricsRegistry()
        registry.counter("faults", pid=203).inc()
        registry.counter("faults", pid=999).inc()
        registry.counter("walk", core=0).inc()
        snap = map_label(registry.snapshot(), "pid", {203: 0})
        labels = sorted(json.dumps(e["labels"], sort_keys=True)
                        for e in snap["counters"])
        assert labels == ['{"core": 0}', '{"pid": -1}', '{"pid": 0}']


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_resolve_trace_options(self):
        assert resolve_trace_options(None) is None
        assert resolve_trace_options(False) is None
        assert resolve_trace_options(True) == TraceOptions()
        options = TraceOptions(buffer_size=8)
        assert resolve_trace_options(options) is options
        assert resolve_trace_options({"buffer_size": 8}) == options
        with pytest.raises(TypeError):
            resolve_trace_options("yes")

    def test_ring_bound_keeps_aggregates_exact(self):
        tracer = Tracer(TraceOptions(buffer_size=4))
        for i in range(10):
            tracer.tlb_hit(0, 1, "L1D", 100 + i, shared=False)
        assert len(tracer.events) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        snap = tracer.snapshot()
        assert snap["events_kept"] == 4
        assert snap["events_dropped"] == 6
        # The registry saw every event even though the ring wrapped.
        total = sum(e["value"] for e in snap["metrics"]["counters"]
                    if e["name"] == "tlb_hits")
        assert total == 10

    def test_muted_families_emit_nothing(self):
        tracer = Tracer(TraceOptions(tlb=False, walks=False, faults=False,
                                     sched=False, invalidations=False))
        tracer.tlb_hit(0, 1, "L2", 5, shared=True)
        tracer.tlb_miss(0, 1, "L1I", 5, instr=True)
        tracer.page_walk(0, 1, 5, 40, False, "pm")
        tracer.fault(0, 1, 5, "minor", 2400, False, 0)
        tracer.sched_switch(0, 1, 2)
        tracer.invalidation(0, 1, 5, "shared")
        tracer.quantum(0, 1, 0, 100, 50)
        assert tracer.emitted == 0
        assert tracer.snapshot()["metrics"] == MetricsRegistry().snapshot()

    def test_clock_stamps_events(self):
        tracer = Tracer()
        tracer.tick(0, 1234)
        tracer.tlb_hit(0, 7, "L2", 42, shared=True)
        event = tracer.events[0]
        assert event[:4] == (ev_mod.TLB_HIT, 0, 1234, 7)
        assert event_to_dict(event) == {
            "event": "TLB_HIT", "core": 0, "cycle": 1234, "pid": 7,
            "level": "L2", "vpn": 42, "provenance": "shared"}

    def test_reset_forgets_everything(self):
        tracer = Tracer()
        tracer.tick(0, 50)
        tracer.page_walk(0, 1, 5, 40, False, "ppm")
        tracer.reset()
        assert tracer.emitted == 0
        assert not tracer.events
        assert tracer.clock(0) == 0
        assert tracer.snapshot()["metrics"] == MetricsRegistry().snapshot()

    def test_walk_level_outcomes_split(self):
        tracer = Tracer()
        tracer.page_walk(0, 1, 5, 40, False, "ppm")
        tracer.page_walk(0, 1, 6, 60, False, "mmm")
        counters = {e["labels"]["outcome"]: e["value"]
                    for e in tracer.snapshot()["metrics"]["counters"]
                    if e["name"] == "walk_level_reads"}
        assert counters == {"pwc": 2, "memory": 4}


# -- phase profiler ----------------------------------------------------------


class TestPhaseProfiler:
    def test_span_and_counters(self):
        ticks = iter([0.0, 1.5, 2.0, 2.25])
        profiler = PhaseProfiler(clock=lambda: next(ticks))
        with profiler.span("simulate") as span:
            pass
        assert span.seconds == 1.5
        with profiler.span("simulate"):
            pass
        profiler.count("cache_hit")
        profiler.count("cache_hit", 2)
        data = profiler.as_dict()
        assert data["phases"]["simulate"] == {
            "count": 2, "seconds": 1.75, "min": 0.25, "max": 1.5}
        assert data["counters"] == {"cache_hit": 3}
        line = profiler.summary_line()
        assert "simulate" in line and "cache_hit=3" in line

    def test_span_records_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError):
            with profiler.span("boom"):
                raise ValueError()
        assert profiler.phases["boom"][0] == 1

    def test_format_summary(self):
        profiler = PhaseProfiler()
        profiler.add("simulate", 2.0)
        profiler.count("requests", 4)
        text = profiler.format_summary("runner profile")
        assert text.startswith("runner profile")
        assert "simulate" in text and "requests=4" in text


# -- exporters ---------------------------------------------------------------


def _synthetic_events():
    tracer = Tracer()
    tracer.tick(0, 10)
    tracer.tlb_hit(0, 1, "L2", 42, shared=True)
    tracer.fault(0, 1, 42, "cow", 4400, True, 1)
    tracer.invalidation(1, 2, 42, "shared")
    tracer.quantum(0, 1, 0, 20_000, 10_000)
    return list(tracer.events)


def _validate_chrome(doc):
    assert set(doc) >= {"traceEvents", "displayTimeUnit"}
    for event in doc["traceEvents"]:
        assert event["ph"] in {"M", "X", "i"}
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "M":
            assert event["name"] == "thread_name"
            continue
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        assert event["name"]
        assert isinstance(event["args"], dict)
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        events = _synthetic_events()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(events, path) == len(events)
        loaded = read_jsonl(path)
        assert loaded == [event_to_dict(event) for event in events]
        assert loaded[1]["kind"] == "cow"
        assert loaded[1]["pte_page_copied"] is True

    def test_chrome_trace_schema(self, tmp_path):
        doc = chrome_trace(_synthetic_events(), metadata={"config": "t"})
        _validate_chrome(doc)
        assert doc["otherData"] == {"config": "t"}
        kinds = {e["ph"] for e in doc["traceEvents"]}
        assert kinds == {"M", "X", "i"}
        quantum = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert quantum["dur"] == 20_000
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(_synthetic_events(), path)
        _validate_chrome(json.loads(path.read_text()))


# -- the tracer wired into real runs -----------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    clear_run_cache()
    run = run_app("mongodb", config_by_name("BabelFish", trace=True),
                  use_cache=False, **SMALL)
    yield run
    clear_run_cache()


class TestTracedRun:
    def test_default_config_has_no_tracer(self):
        run = run_app("mongodb", config_by_name("Baseline"),
                      use_cache=False, **SMALL)
        sim = run.env.sim
        assert sim.tracer is None
        assert run.result.obs is None
        for mmu in sim.mmus:
            assert mmu.tracer is None
            assert mmu.walker.tracer is None
        assert sim.scheduler.tracer is None

    def test_trace_counters_match_mmustats(self, traced_run):
        """The acceptance cross-check: summarize must agree exactly with
        the independently counted MMUStats."""
        stats = traced_run.result.stats
        summary = summarize(traced_run.result.obs)
        expected = {"minor": stats.minor_faults, "major": stats.major_faults,
                    "cow": stats.cow_faults, "spurious": stats.spurious_faults}
        expected = {k: v for k, v in expected.items() if v}
        assert summary["fault_totals"] == expected

        matrix = summary["tlb_hit_matrix"]
        assert matrix["L2"]["shared"] == (stats.l2_shared_hits_i
                                          + stats.l2_shared_hits_d)
        assert matrix["L2"]["shared"] + matrix["L2"]["private"] == stats.l2_hits
        assert matrix["L1I"]["shared"] + matrix["L1I"]["private"] == \
            stats.l1_hits_i
        assert matrix["L1D"]["shared"] + matrix["L1D"]["private"] == \
            stats.l1_hits_d
        assert summary["shared_hit_fractions"]["L2"] == \
            stats.shared_hit_fraction()

        misses = sum(value for labels, value
                     in _counter_items(traced_run.result.obs, "tlb_misses")
                     if labels["level"] == "L2")
        assert misses == stats.l2_misses
        assert summary["walks"]["count"] == stats.walks

    def test_snapshot_round_trips_through_json(self, traced_run):
        snapshot = traced_run.result.obs
        assert json.loads(json.dumps(snapshot)) == snapshot
        text = format_summary(summarize(snapshot))
        assert "events:" in text and "TLB hits" in text

    def test_warmup_events_do_not_leak(self, traced_run):
        # The warm-up phase faults far more than the measured phase; if
        # reset_measurement did not reset the tracer, fault totals could
        # not match the (measurement-only) MMUStats — but also the event
        # ring would start before cycle 0 of the measured phase.
        tracer = traced_run.env.sim.tracer
        assert tracer.emitted == len(tracer.events) + tracer.dropped

    def test_four_core_chrome_trace(self):
        run = run_app("mongodb", config_by_name("BabelFish", trace=True),
                      cores=4, scale=0.05, use_cache=False)
        doc = chrome_trace(list(run.env.sim.tracer.events))
        _validate_chrome(doc)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert tids == {0, 1, 2, 3}


def _counter_items(snapshot, name):
    return [(e["labels"], e["value"])
            for e in snapshot["metrics"]["counters"] if e["name"] == name]


class TestDiffLocalizesChanges:
    def test_cost_change_only_moves_affected_metrics(self):
        """Doubling the minor-fault cost must shift fault/quantum cycle
        metrics and nothing else (same request stream, same TLB walk).

        Diffed over the dense-pid ``as_dict`` snapshots — raw pids come
        from a process-global counter, so two sequential runs would
        otherwise differ in every pid label."""
        base = run_functions(config_by_name("Baseline", trace=True),
                             **SMALL, use_cache=False)
        slow = run_functions(
            config_by_name("Baseline", trace=True,
                           costs=KernelCosts(minor_fault=4800)),
            **SMALL, use_cache=False)
        rows = diff(base.result.as_dict()["obs"],
                    slow.result.as_dict()["obs"])
        changed = [key for key, _a, _b, delta in rows if delta]
        assert changed, "cost change produced no metric deltas"
        allowed = {"fault_cycles", "quantum_cycles"}
        assert {key.split("{")[0].split(".")[0] for key in changed} <= allowed
        # And the unaffected families really are bit-identical.
        flat = flatten(base.result.obs)
        assert any(key.startswith("faults{") for key in flat)
        for key, a, b, _delta in rows:
            if key.split("{")[0] in ("faults", "tlb_hits", "tlb_misses",
                                     "walks", "vpn_accesses"):
                assert a == b, key


# -- runner integration ------------------------------------------------------


class TestRunnerProfiler:
    def test_execute_routes_timing_through_profiler(self):
        request = RunRequest(kind="app", app="mongodb",
                             config_name="Baseline", **SMALL)
        profiler = PhaseProfiler()
        lines = []
        execute([request], progress=lines.append, profiler=profiler)
        assert profiler.counters == {"cache_miss": 1}
        assert profiler.phases["simulate"][0] == 1
        assert lines[-1].startswith("phases:")
        assert any("cache_miss=1" in line for line in lines)

        # Second execute over the same request: pure cache hit.
        profiler2 = PhaseProfiler()
        execute([request], profiler=profiler2)
        assert profiler2.counters == {"cache_hit": 1, "cache_miss": 0}
        assert "simulate" not in profiler2.phases


# -- the CLIs ----------------------------------------------------------------


@pytest.fixture(scope="module")
def capture_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("captures")
    argv = ["trace", "--cores", "1", "--scale", "0.08", "--app", "mongodb"]
    assert experiments_main(argv + ["--config", "BabelFish",
                                    "--out", str(root / "bf")]) == 0
    assert experiments_main(argv + ["--config", "Baseline",
                                    "--out", str(root / "base")]) == 0
    return root / "bf", root / "base"


class TestCaptureAndCLIs:
    def test_capture_artifacts_parse(self, capture_dirs):
        bf, _base = capture_dirs
        events = read_jsonl(bf / "trace.jsonl")
        assert events
        assert {"event", "core", "cycle", "pid"} <= set(events[0])
        _validate_chrome(json.loads((bf / "trace.chrome.json").read_text()))
        capture = json.loads((bf / "summary.json").read_text())
        assert capture["app"] == "mongodb"
        assert capture["config"] == "BabelFish"
        assert capture["obs"]["events_emitted"] == len(events) + \
            capture["obs"]["events_dropped"]
        assert capture["result"]["stats"]["instructions"] > 0

    def test_obs_summarize_cli(self, capture_dirs, capsys):
        bf, _base = capture_dirs
        assert obs_main(["summarize", str(bf)]) == 0
        out = capsys.readouterr().out
        assert "TLB hits, shared vs private provenance" in out
        assert obs_main(["summarize", str(bf), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["tlb_hit_matrix"]["L2"]["shared"] >= 0

    def test_obs_diff_cli(self, capture_dirs, capsys):
        bf, base = capture_dirs
        assert obs_main(["diff", str(base), str(bf)]) == 0
        out = capsys.readouterr().out
        # BabelFish vs Baseline: shared-provenance L2 hits appear.
        assert "provenance=shared" in out

    def test_obs_cli_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            obs_main(["summarize", str(path)])
