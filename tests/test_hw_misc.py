"""Tests for DRAM, PWC, CACTI model, types, and Table I parameters."""

import pytest

from repro.hw.cacti import (
    PAPER_TABLE3,
    SRAMModel,
    babelfish_l2_geometry,
    baseline_l2_geometry,
    core_area_overhead_pct,
    l2_tlb_report,
)
from repro.hw.dram import DRAMModel
from repro.hw.params import baseline_machine
from repro.hw.pwc import PageWalkCache, PWC_LEVELS
from repro.hw.params import PWCParams
from repro.hw.types import AccessKind, PageSize, line_addr, vpn_for


class TestTypes:
    def test_page_size_bytes(self):
        assert PageSize.SIZE_4K.bytes == 4096
        assert PageSize.SIZE_2M.bytes == 2 * 1024 * 1024
        assert PageSize.SIZE_1G.bytes == 1 << 30

    def test_base_pages(self):
        assert PageSize.SIZE_4K.base_pages == 1
        assert PageSize.SIZE_2M.base_pages == 512
        assert PageSize.SIZE_1G.base_pages == 512 * 512

    def test_vpn_for(self):
        assert vpn_for(0x1234) == 1
        assert vpn_for(0x200000, PageSize.SIZE_2M) == 1

    def test_line_addr(self):
        assert line_addr(0x1039) == 0x1000
        assert line_addr(0x1040) == 0x1040

    def test_access_kind_flags(self):
        assert AccessKind.IFETCH.is_instruction
        assert AccessKind.STORE.is_write
        assert not AccessKind.LOAD.is_write


class TestDRAM:
    def test_row_miss_then_hit(self):
        dram = DRAMModel()
        first = dram.access(0x1000)
        second = dram.access(0x1008)
        assert first == dram.params.row_miss_cycles
        assert second == dram.params.row_hit_cycles

    def test_bank_conflict(self):
        dram = DRAMModel()
        row_bytes = dram.params.row_size_bytes
        stride = dram.num_banks * row_bytes  # same bank, different row
        dram.access(0)
        assert dram.access(stride) == dram.params.row_miss_cycles

    def test_different_banks_independent(self):
        dram = DRAMModel()
        dram.access(0)
        dram.access(dram.params.row_size_bytes)  # next bank
        assert dram.access(8) == dram.params.row_hit_cycles

    def test_stats(self):
        dram = DRAMModel()
        dram.access(0)
        dram.access(4)
        assert dram.accesses == 2
        assert dram.row_hits == 1
        dram.reset_stats()
        assert dram.accesses == 0


class TestPWC:
    def make(self):
        return PageWalkCache(PWCParams(entries_per_level=4, ways=4))

    def test_levels(self):
        assert PWC_LEVELS == (4, 3, 2)

    def test_miss_then_hit(self):
        pwc = self.make()
        assert not pwc.lookup(4, 0x1000)
        pwc.insert(4, 0x1000)
        assert pwc.lookup(4, 0x1000)

    def test_leaf_level_not_cached(self):
        pwc = self.make()
        pwc.insert(1, 0x1000)
        assert not pwc.lookup(1, 0x1000)

    def test_levels_independent(self):
        pwc = self.make()
        pwc.insert(4, 0x1000)
        assert not pwc.lookup(3, 0x1000)

    def test_capacity_eviction(self):
        pwc = self.make()
        for i in range(5):
            pwc.insert(2, i * 8)
        assert pwc.occupancy(2) == 4
        assert not pwc.lookup(2, 0)  # LRU victim

    def test_invalidate_entry(self):
        pwc = self.make()
        pwc.insert(3, 0x2000)
        pwc.invalidate_entry(3, 0x2000)
        assert not pwc.lookup(3, 0x2000)

    def test_flush(self):
        pwc = self.make()
        pwc.insert(4, 0x10)
        pwc.flush()
        assert pwc.occupancy(4) == 0


class TestCACTI:
    def test_calibration_matches_paper(self):
        report = l2_tlb_report()
        for name in ("Baseline", "BabelFish"):
            paper = PAPER_TABLE3[name]
            measured = report[name]
            assert measured.area_mm2 == pytest.approx(paper.area_mm2, rel=0.02)
            assert measured.access_time_ps == pytest.approx(
                paper.access_time_ps, rel=0.02)
            assert measured.dyn_energy_pj == pytest.approx(
                paper.dyn_energy_pj, rel=0.02)
            assert measured.leakage_mw == pytest.approx(
                paper.leakage_mw, rel=0.02)

    def test_geometry_bits(self):
        base = baseline_l2_geometry()
        bf = babelfish_l2_geometry()
        assert bf.bits_per_entry - base.bits_per_entry == 12 + 2 + 32

    def test_monotone_in_bitmask_width(self):
        model = SRAMModel()
        areas = [model.area_mm2(babelfish_l2_geometry(w))
                 for w in (0, 8, 16, 32)]
        assert areas == sorted(areas)

    def test_core_area_overhead(self):
        with_pc = core_area_overhead_pct(True)
        without = core_area_overhead_pct(False)
        assert with_pc == pytest.approx(0.4, abs=0.05)
        assert 0.0 < without < with_pc


class TestParams:
    def test_table1_geometry(self):
        machine = baseline_machine()
        assert machine.cores == 8
        assert machine.l1d.size_bytes == 32 * 1024
        assert machine.l2.size_bytes == 256 * 1024
        assert machine.l3.size_bytes == 8 * 1024 * 1024
        assert machine.mmu.l2_4k.entries == 1536
        assert machine.mmu.l2_4k.ways == 12
        assert machine.mmu.l2_4k.access_cycles == 10
        assert machine.mmu.l2_4k.long_access_cycles == 12
        assert machine.mmu.l1d_4k.entries == 64
        assert machine.mmu.pwc.entries_per_level == 16
        assert machine.pc_bitmask_bits == 32
        assert machine.pcid_bits == 12
        assert machine.ccid_bits == 12

    def test_scale_l2_tlb(self):
        machine = baseline_machine().scale_l2_tlb(2.0)
        assert machine.mmu.l2_4k.entries == 3072
        assert machine.mmu.l2_2m.entries == 3072
        # L1s untouched
        assert machine.mmu.l1d_4k.entries == 64

    def test_num_sets(self):
        machine = baseline_machine()
        assert machine.mmu.l2_4k.num_sets == 128
        assert machine.l1d.num_sets == 64
