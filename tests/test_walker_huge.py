"""Deep tests for the page walker: PWC behaviour, 1GB pages, and cache
interactions (Figure 7's mechanics)."""

from repro.hw.cache import CacheHierarchy
from repro.hw.dram import DRAMModel
from repro.hw.params import baseline_machine
from repro.hw.pwc import PageWalkCache
from repro.hw.types import PageSize
from repro.kernel.page_table import PTE, PUD
from repro.kernel.vma import SegmentKind
from repro.sim.walker import PageWalker

from conftest import MiniSystem

MMAP = SegmentKind.MMAP


def walker_setup(cores=1):
    machine = baseline_machine(cores=cores)
    hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
    pwc = PageWalkCache(machine.mmu.pwc)
    return machine, hierarchy, pwc, PageWalker(0, hierarchy, pwc)


class TestPWCBehaviour:
    def test_pwc_caches_upper_levels_not_leaf(self):
        sys = MiniSystem(babelfish=False)
        for off in (0, 1):
            sys.touch(sys.zygote, MMAP, off)
        _machine, _hier, pwc, walker = walker_setup()
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        walker.walk(sys.zygote, vpn)
        assert pwc.occupancy(4) == 1
        assert pwc.occupancy(3) == 1
        assert pwc.occupancy(2) == 1
        # The leaf pte level is what the TLB caches, not the PWC.
        hits_before = pwc.hits
        walker.walk(sys.zygote, vpn + 1)
        assert pwc.hits == hits_before + 3  # PGD/PUD/PMD hits only

    def test_cross_region_walk_misses_pwc(self):
        sys = MiniSystem(babelfish=False)
        sys.touch(sys.zygote, MMAP, 0)
        sys.touch(sys.zygote, SegmentKind.HEAP, 0, write=True)
        _machine, _hier, pwc, walker = walker_setup()
        walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        misses_before = pwc.misses
        walker.walk(sys.zygote, sys.vpn(sys.zygote, SegmentKind.HEAP, 0))
        # Different segment => different PUD/PMD entries: only the PGD
        # entry may hit (different index here, so all three miss).
        assert pwc.misses > misses_before

    def test_shared_tables_share_walk_lines_across_cores(self):
        """Figure 7: container B's walk hits the L3 lines container A's
        walk brought in — because the tables are physically shared."""
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        machine = baseline_machine(cores=2)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        walker_a = PageWalker(0, hierarchy, PageWalkCache(machine.mmu.pwc))
        walker_b = PageWalker(1, hierarchy, PageWalkCache(machine.mmu.pwc))
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        cost_a = walker_a.walk(a, vpn).cycles
        cost_b = walker_b.walk(b, vpn).cycles
        # B misses its own PWC/L2 but hits the shared L3 for the PTE line.
        assert cost_b < cost_a

    def test_private_tables_do_not_share_walk_lines(self):
        sys = MiniSystem(babelfish=False)
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        machine = baseline_machine(cores=2)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        walker_a = PageWalker(0, hierarchy, PageWalkCache(machine.mmu.pwc))
        walker_b = PageWalker(1, hierarchy, PageWalkCache(machine.mmu.pwc))
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        cost_a = walker_a.walk(a, vpn).cycles
        cost_b = walker_b.walk(b, vpn).cycles
        # Different physical pte lines: B pays like A did.
        assert cost_b >= cost_a * 0.8


class Test1GBPages:
    def build_1g(self):
        """Install a 1GB leaf directly at the PUD level (no kernel path
        creates these; the hardware plumbing must still translate them)."""
        sys = MiniSystem(babelfish=False)
        allocator = sys.kernel.allocator
        base_vpn = sys.vpn(sys.zygote, MMAP, 0) & ~((1 << 18) - 1)
        ppn = allocator.alloc(pages=1)  # stands in for a 1GB frame
        pte = PTE(ppn, page_size=PageSize.SIZE_1G)
        sys.zygote.tables.set_leaf(base_vpn, pte, leaf_level=PUD)
        return sys, base_vpn, pte

    def test_walk_finds_1g_leaf(self):
        sys, base_vpn, pte = self.build_1g()
        _machine, _hier, _pwc, walker = walker_setup()
        result = walker.walk(sys.zygote, base_vpn + 12345)
        assert not result.fault
        assert result.pte is pte
        assert result.page_size is PageSize.SIZE_1G
        assert result.leaf_level == PUD

    def test_1g_tlb_structures_exist(self):
        machine = baseline_machine()
        assert machine.mmu.l1d_1g.entries == 4
        assert machine.mmu.l2_1g.entries == 16

    def test_multisize_1g_lookup(self):
        from repro.hw.params import TLBParams
        from repro.hw.tlb import MultiSizeTLB, TLBEntry
        multi = MultiSizeTLB([TLBParams("1g", 4, 4, PageSize.SIZE_1G, 1)])
        multi.insert(TLBEntry(2, 0x1000, PageSize.SIZE_1G, pcid=1))
        vpn4k = (2 << 18) + 98765
        found, size = multi.lookup(vpn4k, lambda e: True)
        assert found is not None and size is PageSize.SIZE_1G


class TestWalkAccounting:
    def test_walk_counts_and_cycles(self):
        sys = MiniSystem(babelfish=False)
        sys.touch(sys.zygote, MMAP, 0)
        _machine, _hier, _pwc, walker = walker_setup()
        walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        assert walker.walks == 2
        assert walker.total_cycles > 0

    def test_fault_level_reported(self):
        sys = MiniSystem(babelfish=False)
        _machine, _hier, _pwc, walker = walker_setup()
        result = walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 7))
        assert result.fault
        assert result.pte is None
        assert result.leaf_level == 4  # nothing mapped: stops at PGD
