"""Lifecycle correctness: exit shootdowns, PCID recycling, slot and
frame reclamation (repro.kernel.lifecycle and the teardown paths).

Three of these are regressions for seed bugs:

- ``test_exit_flushes_*``: process exit issued no TLB invalidations at
  all, so entries tagged with the dead PCID (and entries resolving to
  freed frames) survived in every core's TLBs.
- ``TestPCIDRecycling``: ``pcid = pid & 0xfff`` aliased two live
  processes once pids wrapped the PCID space.
- ``test_cow_exit_cycles_never_exhaust_slots``: ``MaskPage.pid_list``
  was append-only, so sequential CoW-then-exit churn burned through the
  32 writer slots and spuriously reverted the region.
"""

import pytest

from conftest import MiniSystem

from repro.core.aslr import ASLRMode, group_layout_for
from repro.core.ccid import CCIDRegistry
from repro.experiments.common import config_by_name
from repro.hw.params import baseline_machine
from repro.hw.types import AccessKind
from repro.kernel.fault import InvalidationScope
from repro.kernel.frames import FrameKind
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.lifecycle import OutOfPCIDs, PCIDAllocator
from repro.kernel.vma import SegmentKind, VMAKind
from repro.sim.simulator import Simulator

HEAP, MMAP, DATA = SegmentKind.HEAP, SegmentKind.MMAP, SegmentKind.DATA


# -- PCID allocator -----------------------------------------------------------


class TestPCIDAllocator:
    def test_fresh_pcids_are_monotonic_and_nonzero(self):
        alloc = PCIDAllocator(bits=4)
        got = [alloc.allocate() for _ in range(5)]
        assert [pcid for pcid, _ in got] == [1, 2, 3, 4, 5]
        assert not any(recycled for _, recycled in got)
        assert alloc.live == 5

    def test_recycles_fifo_only_after_namespace_exhausted(self):
        alloc = PCIDAllocator(bits=2)  # capacity 3 (pcid 0 reserved)
        a, b, c = (alloc.allocate()[0] for _ in range(3))
        alloc.release(b)
        alloc.release(a)
        # Released values come back in release order, flagged recycled.
        assert alloc.allocate() == (b, True)
        assert alloc.allocate() == (a, True)
        assert alloc.recycles == 2
        assert alloc.is_live(c)

    def test_exhaustion_raises(self):
        alloc = PCIDAllocator(bits=2)
        for _ in range(3):
            alloc.allocate()
        with pytest.raises(OutOfPCIDs):
            alloc.allocate()

    def test_release_is_idempotent(self):
        # A double release must queue the PCID once, not twice —
        # otherwise one value could be handed to two live processes.
        alloc = PCIDAllocator(bits=2)
        pcid, _ = alloc.allocate()
        alloc.release(pcid)
        alloc.release(pcid)
        for _ in range(2):  # drain the remaining fresh values
            alloc.allocate()
        assert alloc.allocate() == (pcid, True)
        with pytest.raises(OutOfPCIDs):
            alloc.allocate()


# -- kernel-level PCID recycling (seed: pcid = pid & mask) --------------------


def _bare_kernel(pcid_bits):
    registry = CCIDRegistry()
    group = registry.group_for("tenant", "wrap")
    layout = group_layout_for(group, ASLRMode.INHERITED)
    kernel = Kernel(KernelConfig(pcid_bits=pcid_bits))
    return kernel, group, layout


class TestPCIDRecycling:
    def test_no_two_live_processes_alias_past_the_wrap(self):
        # Seed bug: with pcid = pid & 0xf, a long-lived process and a
        # short-lived one spawned 16 pids later carried the same PCID
        # while both alive. Spawn/exit far past the 15-wide namespace
        # with one keeper alive throughout.
        kernel, group, layout = _bare_kernel(pcid_bits=4)
        keeper = kernel.spawn(group.ccid, layout, name="keeper")
        for i in range(40):
            proc = kernel.spawn(group.ccid, layout, name="p%d" % i)
            live = [p.pcid for p in kernel.processes.values()]
            assert len(live) == len(set(live)), "aliased PCIDs: %r" % live
            assert 0 not in live
            kernel.exit_process(proc)
        assert kernel.pcids.recycles > 0
        assert kernel.pcids.is_live(keeper.pcid)

    def test_recycled_pcid_spawn_issues_scoped_flush(self):
        kernel, group, layout = _bare_kernel(pcid_bits=2)  # capacity 3
        seen = []
        kernel.invalidation_sink = (
            lambda proc, invs: seen.extend((proc.pid, inv) for inv in invs))
        procs = [kernel.spawn(group.ccid, layout, name="p%d" % i)
                 for i in range(3)]
        assert not any(inv.scope is InvalidationScope.PCID_FLUSH
                       for _pid, inv in seen)
        released = procs[0].pcid
        kernel.exit_process(procs[0])
        reuser = kernel.spawn(group.ccid, layout, name="reuser")
        assert reuser.pcid == released
        flushes = [(pid, inv) for pid, inv in seen
                   if inv.scope is InvalidationScope.PCID_FLUSH
                   and pid == reuser.pid]
        assert flushes and flushes[-1][1].pcid == released

    def test_spawn_past_capacity_raises(self):
        kernel, group, layout = _bare_kernel(pcid_bits=2)
        for i in range(3):
            kernel.spawn(group.ccid, layout, name="p%d" % i)
        with pytest.raises(OutOfPCIDs):
            kernel.spawn(group.ccid, layout, name="overflow")


# -- exit-time TLB shootdowns (seed: none were issued) ------------------------


def _all_entries(mmu):
    for multi in (mmu.l1d, mmu.l1i, mmu.l2):
        yield from multi.entries()


@pytest.mark.parametrize("babelfish", [False, True],
                         ids=["baseline", "babelfish"])
def test_exit_flushes_dead_process_translations(babelfish):
    mini = MiniSystem(babelfish=babelfish)
    config = config_by_name("BabelFish" if babelfish else "Baseline")
    sim = Simulator(baseline_machine(cores=1), config, mini.kernel)
    mmu = sim.mmus[0]
    child = mini.fork("victim")
    survivor = mini.fork("survivor")
    for off in range(4):
        mmu.translate(child, HEAP, off, AccessKind.STORE)
        mmu.translate(child, MMAP, off, AccessKind.LOAD)
        mmu.translate(survivor, MMAP, off, AccessKind.LOAD)
    assert any(e.pcid == child.pcid for e in _all_entries(mmu))

    mini.group.remove(child)
    mini.kernel.exit_process(child)

    # Seed failure mode 1: entries tagged with the dead PCID survive.
    assert not any(e.pcid == child.pcid for e in _all_entries(mmu))
    # Seed failure mode 2: a surviving entry resolves to a freed frame.
    for entry in _all_entries(mmu):
        assert mini.kernel.allocator.refcount(entry.ppn) > 0, \
            "TLB entry for vpn %#x points at a freed frame" % entry.vpn
    # The survivor still translates (via surviving entries or a re-walk).
    again = mmu.translate(survivor, MMAP, 0, AccessKind.LOAD)
    assert again.ppn4k


def test_exit_invalidates_before_freeing_frames(mini_babelfish):
    # The ordering invariant behind the shootdown-before-decref rule:
    # every exit-time invalidation reaches the cores before any frame
    # is released for reuse.
    mini = mini_babelfish
    child = mini.fork("victim")
    mini.touch(child, HEAP, 0, write=True)
    events = []
    mini.kernel.invalidation_sink = (
        lambda proc, invs: events.append(("inv", [i.scope for i in invs])))
    mini.kernel.on_frames_freed = (
        lambda ppns: events.append(("freed", sorted(ppns))))
    mini.group.remove(child)
    mini.kernel.exit_process(child)
    kinds = [kind for kind, _payload in events]
    assert "inv" in kinds and "freed" in kinds
    assert kinds.index("inv") < kinds.index("freed")
    scopes = [s for kind, payload in events if kind == "inv"
              for s in payload]
    assert InvalidationScope.PCID_FLUSH in scopes
    freed = [p for kind, payload in events if kind == "freed"
             for p in payload]
    assert freed  # the CoW copy at least


def test_exit_is_idempotent(mini_babelfish):
    mini = mini_babelfish
    child = mini.fork("victim")
    mini.touch(child, HEAP, 0, write=True)
    mini.group.remove(child)
    mini.kernel.exit_process(child)
    shootdowns = mini.kernel.shootdowns
    assert mini.kernel.exit_process(child) == []
    assert mini.kernel.shootdowns == shootdowns


def test_sanitizer_quarantine_catches_lost_shootdown(mini_babelfish):
    # Defence in depth: if the exit-time IPIs were somehow lost, a hit
    # on a surviving entry that resolves to a freed frame must be a
    # recorded "freed-frame" violation, not a silent wrong translation.
    mini = mini_babelfish
    config = config_by_name("BabelFish", sanitize=True)
    sim = Simulator(baseline_machine(cores=1), config, mini.kernel)
    mmu = sim.mmus[0]
    child = mini.fork("victim")
    mmu.translate(child, HEAP, 0, AccessKind.STORE)
    stale = [e for e in _all_entries(mmu) if e.pcid == child.pcid]
    assert stale
    mini.kernel.invalidation_sink = lambda proc, invs: None  # lost IPI
    mini.group.remove(child)
    mini.kernel.exit_process(child)
    victim_entry = next(e for e in stale
                        if mini.kernel.allocator.refcount(e.ppn) == 0)
    sim.sanitizer.check_hit("L1D", child, victim_entry,
                            child.vpn_group(HEAP, 0))
    assert any(v.kind == "freed-frame" for v in sim.sanitizer.violations)


# -- MaskPage writer-slot reclamation (seed: append-only pid_list) ------------


def test_cow_exit_cycles_never_exhaust_slots(mini_babelfish):
    # 1000 sequential CoW-then-exit cycles against one region: with
    # append-only slots the 33rd cycle overflowed the bitmask and
    # reverted the region; with reclamation every cycle reuses slot 0
    # and the MaskPage (and its frame) dies with its last writer.
    mini = mini_babelfish
    kernel, policy = mini.kernel, mini.policy
    mini.touch(mini.zygote, DATA, 0)  # populate the shared table
    mask_frames_before = kernel.allocator.count(FrameKind.MASK_PAGE)
    for i in range(1000):
        child = mini.fork("c%d" % i)
        mini.touch(child, DATA, 0, write=True)  # CoW -> PC bit + slot
        if i % 200 == 0:
            assert all(page.writers <= 1 for page in policy.mask_dir)
        mini.group.remove(child)
        kernel.exit_process(child)
    assert policy.reverts == 0
    assert policy.mask_dir.total_pages == 0
    assert kernel.allocator.count(FrameKind.MASK_PAGE) == mask_frames_before
    # The shared table's ORPC filter is clear again: no private copies.
    vpn = mini.zygote.vpn_group(DATA, 0)
    table = mini.zygote.tables.walk(vpn)[-1][1]
    assert table.orpc is False


def test_surviving_writer_keeps_bit_position(mini_babelfish):
    # Slot reclamation must not renumber the survivors' bits: entries
    # cached in TLBs carry the old PC-bitmask positions.
    mini = mini_babelfish
    policy = mini.policy
    mini.touch(mini.zygote, DATA, 0)
    a, b = mini.fork("a"), mini.fork("b")
    mini.touch(a, DATA, 0, write=True)
    mini.touch(b, DATA, 1, write=True)
    domain = policy.mask_domain(a.vpn_group(DATA, 0))
    bit_b = b.pc_bits[domain]
    mini.group.remove(a)
    mini.kernel.exit_process(a)
    assert b.pc_bits[domain] == bit_b
    page = policy.mask_dir.get(b.ccid, b.vpn_group(DATA, 0))
    assert page is not None and page.writers == 1
    # The freed slot is refilled by the next writer, not appended.
    c = mini.fork("c")
    mini.touch(c, DATA, 2, write=True)
    assert c.pc_bits[domain] == 0  # a's old slot
    assert page.writers == 2


# -- munmap partial-coverage hole (seed: re-walked the same vpn) --------------


def test_munmap_partial_coverage_missing_index_terminates(
        mini_babelfish, monkeypatch):
    # A partially-covered shared table is privatized mid-munmap; the
    # privatized (or region-reverted) table may have no entry at the
    # target index. The seed code `continue`d without advancing, paying
    # a full extra walk per hole; the fix advances past the page. The
    # stub models the revert re-walk landing on unpopulated slots.
    mini = mini_babelfish
    kernel, policy = mini.kernel, mini.policy
    part = kernel.create_file("part", 8)
    kernel.page_cache.populate(part)
    vma = kernel.mmap(mini.zygote, MMAP, 1536, 8, VMAKind.FILE_PRIVATE,
                      file=part, writable=True, name="part")
    for off in range(8):
        mini.touch(mini.zygote, MMAP, 1536 + off)
    child = mini.fork("child")

    real_install = policy.install_target

    def holed_install(kernel_, proc, vma_, vpn, table, index,
                      private_content):
        got_table, got_index, cycles = real_install(
            kernel_, proc, vma_, vpn, table, index, private_content)
        if vpn % 2:
            pte = got_table.entries.pop(got_index, None)
            if pte is not None and pte.present:
                kernel.allocator.decref(pte.ppn)
        return got_table, got_index, cycles

    monkeypatch.setattr(policy, "install_target", holed_install)

    walks = [0]
    real_walk = child.tables.walk

    def counting_walk(vpn):
        walks[0] += 1
        return real_walk(vpn)

    monkeypatch.setattr(child.tables, "walk", counting_walk)

    child_vma = child.mm.find(child.vpn_group(MMAP, 1536))
    assert child_vma is not None
    invs = kernel.munmap(child, child_vma)
    # One walk per 4K page plus the one _swap_writer_ref does inside
    # the single privatization; the seed re-walked every holed page
    # (the four odd offsets) a second time, for 13.
    assert walks[0] == 9
    assert invs
    for off in range(8):
        assert child.tables.lookup_pte(child.vpn_group(MMAP, 1536 + off)) \
            is None
    # The zygote's view of the range is untouched.
    assert mini.zygote.tables.lookup_pte(
        mini.zygote.vpn_group(MMAP, 1536)) is not None
