"""Tests for the walker, MMU, scheduler, and simulator."""

from repro.core.aslr import ASLRMode
from repro.hw.cache import CacheHierarchy
from repro.hw.dram import DRAMModel
from repro.hw.params import baseline_machine
from repro.hw.types import AccessKind
from repro.kernel.scheduler import Scheduler
from repro.kernel.vma import SegmentKind
from repro.sim.config import babelfish_config, baseline_config, bigtlb_config
from repro.sim.mmu import MMU
from repro.sim.simulator import K_LOAD, Simulator
from repro.sim.stats import MMUStats, percentile
from repro.sim.walker import PageWalker

from conftest import MiniSystem

HEAP, MMAP, LIBS = SegmentKind.HEAP, SegmentKind.MMAP, SegmentKind.LIBS


def make_mmu(sys, config, cores=1):
    machine = baseline_machine(cores=cores)
    hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
    return MMU(0, machine, config, hierarchy, sys.kernel), hierarchy


class TestWalker:
    def test_walk_found(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, MMAP, 0)
        machine = baseline_machine(cores=1)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        from repro.hw.pwc import PageWalkCache
        walker = PageWalker(0, hierarchy, PageWalkCache(machine.mmu.pwc))
        result = walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        assert not result.fault
        assert result.pte is pte
        assert result.cycles > 0

    def test_walk_fault_on_missing(self, mini_baseline):
        sys = mini_baseline
        machine = baseline_machine(cores=1)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        from repro.hw.pwc import PageWalkCache
        walker = PageWalker(0, hierarchy, PageWalkCache(machine.mmu.pwc))
        result = walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 99))
        assert result.fault

    def test_second_walk_cheaper_via_pwc(self, mini_baseline):
        sys = mini_baseline
        sys.touch(sys.zygote, MMAP, 0)
        sys.touch(sys.zygote, MMAP, 1)
        machine = baseline_machine(cores=1)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        from repro.hw.pwc import PageWalkCache
        walker = PageWalker(0, hierarchy, PageWalkCache(machine.mmu.pwc))
        first = walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        second = walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 1))
        assert second.cycles < first.cycles


class TestMMU:
    def test_translate_resolves_fault_and_fills(self, mini_baseline):
        sys = mini_baseline
        mmu, _ = make_mmu(sys, baseline_config())
        result = mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        assert result.cycles > 0
        assert mmu.stats.minor_faults == 1
        # Second access hits the L1 TLB.
        result2 = mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        assert result2.cycles == 1
        assert mmu.stats.l1_hits_d == 1

    def test_translate_paddr(self, mini_baseline):
        sys = mini_baseline
        mmu, _ = make_mmu(sys, baseline_config())
        result = mmu.translate(sys.zygote, MMAP, 5, AccessKind.LOAD)
        pte = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, MMAP, 5))
        assert result.ppn4k == pte.ppn

    def test_baseline_no_cross_process_hit(self, mini_baseline):
        sys = mini_baseline
        a, b = sys.fork("a"), sys.fork("b")
        mmu, _ = make_mmu(sys, baseline_config())
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        mmu.translate(b, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.l2_shared_hits_d == 0

    def test_babelfish_cross_process_hit(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        mmu, _ = make_mmu(sys, babelfish_config())
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        mmu.translate(b, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.l2_shared_hits_d == 1
        assert mmu.stats.minor_faults == 0  # zygote already populated

    def test_aslr_hw_transform_charged(self):
        sys = MiniSystem(babelfish=True, aslr_mode=ASLRMode.HW)
        a = sys.fork("a")
        mmu, _ = make_mmu(sys, babelfish_config(aslr_mode=ASLRMode.HW))
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.aslr_transforms >= 1

    def test_aslr_sw_no_transform(self):
        sys = MiniSystem(babelfish=True, aslr_mode=ASLRMode.SW)
        a = sys.fork("a")
        mmu, _ = make_mmu(sys, babelfish_config(aslr_mode=ASLRMode.SW))
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.aslr_transforms == 0

    def test_write_to_cow_breaks_and_converges(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a = sys.fork("a")
        mmu, _ = make_mmu(sys, babelfish_config())
        # Read loads shared CoW entry; write then breaks it.
        mmu.translate(a, HEAP, 0, AccessKind.LOAD)
        result = mmu.translate(a, HEAP, 0, AccessKind.STORE)
        assert mmu.stats.cow_faults == 1
        pte = a.tables.lookup_pte(sys.vpn(a, HEAP, 0))
        assert result.ppn4k == pte.ppn
        assert pte.writable

    def test_ifetch_uses_itlb(self, mini_baseline):
        sys = mini_baseline
        mmu, _ = make_mmu(sys, baseline_config())
        mmu.translate(sys.zygote, LIBS, 0, AccessKind.IFETCH)
        assert mmu.stats.accesses_i == 1
        # The cold access faults and retries, so >= 1 L1I misses.
        assert mmu.stats.l1_misses_i >= 1
        assert mmu.stats.l1_misses_d == 0

    def test_long_access_when_bitmask_needed(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        sys.kernel.handle_fault(a, sys.vpn(a, HEAP, 0), is_write=True)
        mmu, _ = make_mmu(sys, babelfish_config())
        # b's fill of the shared entry must consult the PC bitmask.
        mmu.translate(b, HEAP, 0, AccessKind.LOAD)
        mmu.l1d.flush()
        mmu.translate(b, HEAP, 0, AccessKind.LOAD)
        assert mmu.stats.l2_long_accesses >= 1

    def test_orpc_disabled_forces_long(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        a = sys.fork("a")
        mmu, _ = make_mmu(sys, babelfish_config(orpc_enabled=False))
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        mmu.l1d.flush()
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.l2_long_accesses >= 1


class TestScheduler:
    def test_round_robin(self):
        sched = Scheduler(1)
        sched.assign("a", 0)
        sched.assign("b", 0)
        assert sched.current(0) == "a"
        assert sched.rotate(0) == "b"
        assert sched.rotate(0) == "a"
        assert sched.context_switches == 2

    def test_single_process_no_switch(self):
        sched = Scheduler(1)
        sched.assign("a", 0)
        assert sched.rotate(0) == "a"
        assert sched.context_switches == 0

    def test_remove(self):
        sched = Scheduler(2)
        sched.assign("a", 1)
        assert sched.remove("a")
        assert not sched.remove("a")
        assert sched.current(1) is None

    def test_core_of(self):
        sched = Scheduler(2)
        sched.assign("x", 1)
        assert sched.core_of("x") == 1
        assert sched.core_of("y") is None

    def test_runnable(self):
        sched = Scheduler(2)
        sched.assign("a", 0)
        sched.assign("b", 1)
        assert sched.runnable == 2


class TestStats:
    def test_mpki(self):
        stats = MMUStats()
        stats.instructions = 2000
        stats.l2_misses_d = 4
        stats.l2_misses_i = 2
        assert stats.mpki("d") == 2.0
        assert stats.mpki("i") == 1.0
        assert stats.mpki() == 3.0

    def test_shared_fraction(self):
        stats = MMUStats()
        stats.l2_hits_d = 10
        stats.l2_shared_hits_d = 4
        assert stats.shared_hit_fraction("d") == 0.4
        assert stats.shared_hit_fraction("i") == 0.0

    def test_merge(self):
        a, b = MMUStats(), MMUStats()
        a.walks = 3
        b.walks = 4
        assert MMUStats.merged([a, b]).walks == 7

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 95) == 95
        assert percentile(values, 100) == 100
        assert percentile([], 95) == 0.0
        assert percentile([42], 50) == 42


class TestSimulator:
    def build(self, babelfish=False):
        sys = MiniSystem(babelfish=babelfish)
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        config = babelfish_config() if babelfish else baseline_config(
        )
        import dataclasses
        config = dataclasses.replace(config, quantum_instructions=500)
        sim = Simulator(baseline_machine(cores=1), config, sys.kernel)
        return sys, sim, a, b

    @staticmethod
    def trace(n, req_base=0, seg=MMAP, kind=K_LOAD):
        for i in range(n):
            yield (kind, seg, i % 64, i % 64, 10, req_base + i)

    def test_run_completes_and_counts(self):
        _sys, sim, a, b = self.build()
        sim.attach(a, self.trace(100), 0)
        sim.attach(b, self.trace(100, req_base=1000), 0)
        result = sim.run()
        assert result.stats.accesses_d == 200
        assert result.stats.instructions == 200 * 11
        assert len(result.request_latency) == 200
        assert result.total_cycles > 0

    def test_context_switches_happen(self):
        _sys, sim, a, b = self.build()
        sim.attach(a, self.trace(200), 0)
        sim.attach(b, self.trace(200, req_base=1000), 0)
        result = sim.run()
        assert result.context_switches > 0

    def test_completion_and_process_cycles(self):
        _sys, sim, a, b = self.build()
        sim.attach(a, self.trace(50), 0)
        sim.attach(b, self.trace(150, req_base=1000), 0)
        result = sim.run()
        assert set(result.completion_cycles) == {a.pid, b.pid}
        assert result.process_cycles[b.pid] > result.process_cycles[a.pid]

    def test_babelfish_fewer_faults(self):
        _sys_b, sim_b, a_b, b_b = self.build(babelfish=False)
        sim_b.attach(a_b, self.trace(100), 0)
        sim_b.attach(b_b, self.trace(100, req_base=1000), 0)
        base = sim_b.run()

        _sys_f, sim_f, a_f, b_f = self.build(babelfish=True)
        sim_f.attach(a_f, self.trace(100), 0)
        sim_f.attach(b_f, self.trace(100, req_base=1000), 0)
        bf = sim_f.run()
        assert bf.stats.minor_faults < base.stats.minor_faults
        assert bf.stats.l2_shared_hits_d > 0

    def test_reset_measurement_keeps_state(self):
        sys, sim, a, b = self.build()
        sim.attach(a, self.trace(50), 0)
        sim.run()
        sim.reset_measurement()
        assert sim.core_cycles == [0]
        # TLB state survives: re-running the same pages is fast.
        sim.attach(a, self.trace(50), 0)
        result = sim.run()
        assert result.stats.minor_faults == 0

    def test_run_single(self):
        sys, sim, a, _b = self.build()
        cycles = sim.run_single(a, self.trace(20), core_id=0)
        assert cycles > 0

    def test_max_instruction_budget(self):
        _sys, sim, a, b = self.build()
        sim.attach(a, self.trace(10_000), 0)
        result = sim.run(max_instructions=400)
        assert result.stats.instructions <= 800  # one extra quantum at most

    def test_bigtlb_scales_structures(self):
        sys = MiniSystem(babelfish=False)
        sim = Simulator(baseline_machine(cores=1), bigtlb_config(2.0),
                        sys.kernel)
        l2 = sim.mmus[0].l2.tlbs
        from repro.hw.types import PageSize
        assert l2[PageSize.SIZE_4K].params.entries == 3072
