"""Regression guard for the paper's Figure 7 timeline (Section III-C).

Containers A (core 0), B (core 1), C (core 0) access the same shared page
in sequence. The conventional architecture repeats the full walk + fault
three times; BabelFish gives B a fault-free walk through cache-warm
shared tables and C a straight L2 TLB hit.
"""

from repro.containers.image import ContainerImage
from repro.experiments.common import build_environment, config_by_name
from repro.hw.types import AccessKind
from repro.kernel.vma import SegmentKind, VMAKind

IMAGE = ContainerImage(name="fig7", binary_pages=8, binary_data_pages=2,
                       lib_pages=16, lib_data_pages=2, infra_pages=8,
                       heap_pages=64)


def timeline(config_name):
    env = build_environment(config_by_name(config_name), cores=2)
    state = env.engine.zygote_for(IMAGE)
    dataset = env.kernel.create_file("page", 8)
    env.kernel.page_cache.populate(dataset)
    env.kernel.mmap(state.proc, SegmentKind.MMAP, 0, 8, VMAKind.FILE_SHARED,
                    file=dataset, name="data")
    containers = [env.engine.launch(IMAGE, name=n)[0] for n in "ABC"]
    events = []
    for container, core in zip(containers, (0, 1, 0)):
        mmu = env.sim.mmus[core]
        faults = mmu.stats.minor_faults + mmu.stats.spurious_faults
        walks = mmu.stats.walks
        l2_hits = mmu.stats.l2_hits_d
        result = mmu.translate(container.proc, SegmentKind.MMAP, 0,
                               AccessKind.LOAD)
        events.append({
            "cycles": result.cycles,
            "fault": (mmu.stats.minor_faults - (faults
                      - mmu.stats.spurious_faults)) > 0,
            "real_fault": mmu.stats.minor_faults > 0 and
                          mmu.stats.minor_faults != faults,
            "minor": mmu.stats.minor_faults,
            "walked": mmu.stats.walks > walks,
            "l2_hit": mmu.stats.l2_hits_d > l2_hits,
        })
    return events


class TestFigure7:
    def test_conventional_repeats_everything(self):
        a, b, c = timeline("Baseline")
        assert a["walked"] and b["walked"] and c["walked"]
        # Every container pays roughly the same, high cost.
        assert min(a["cycles"], b["cycles"], c["cycles"]) > 2000
        assert not c["l2_hit"]

    def test_babelfish_b_avoids_fault_c_hits_tlb(self):
        a, b, c = timeline("BabelFish")
        # A: full cost (walk + real minor fault).
        assert a["walked"]
        assert a["cycles"] > 2000
        # B: walks (per-core TLBs/PWC) but takes no real minor fault and
        # finishes much faster than A.
        assert b["walked"]
        assert b["cycles"] < a["cycles"] * 0.6
        # C: reuses the L2 TLB entry A loaded on core 0 — a handful of
        # cycles, no walk.
        assert c["l2_hit"]
        assert not c["walked"]
        assert c["cycles"] < 30

    def test_babelfish_strictly_dominates(self):
        conventional = timeline("Baseline")
        babelfish = timeline("BabelFish")
        total_conventional = sum(e["cycles"] for e in conventional)
        total_babelfish = sum(e["cycles"] for e in babelfish)
        assert total_babelfish < total_conventional * 0.6
