"""Tests for CCID groups, the O-PC field, and MaskPages."""

import pytest

from repro.core.ccid import CCIDRegistry
from repro.core.mask_page import (
    MaskPage,
    MaskPageDirectory,
    MaskPageFull,
    pmd_index_of,
    region_of,
)
from repro.core.opc import MAX_PRIVATE_COPIES, OPCField
from repro.kernel.frames import FrameAllocator, FrameKind


class TestCCID:
    def test_same_user_app_same_group(self):
        reg = CCIDRegistry()
        a = reg.group_for("u", "app")
        b = reg.group_for("u", "app")
        assert a is b

    def test_distinct_apps_distinct_ccids(self):
        reg = CCIDRegistry()
        a = reg.group_for("u", "app1")
        b = reg.group_for("u", "app2")
        assert a.ccid != b.ccid

    def test_distinct_users_distinct_ccids(self):
        reg = CCIDRegistry()
        assert (reg.group_for("u1", "app").ccid
                != reg.group_for("u2", "app").ccid)

    def test_by_ccid(self):
        reg = CCIDRegistry()
        group = reg.group_for("u", "app")
        assert reg.by_ccid(group.ccid) is group
        assert reg.by_ccid(4095) is None

    def test_members(self):
        reg = CCIDRegistry()
        group = reg.group_for("u", "app")

        class P:
            alive = True
        p = P()
        group.add(p)
        assert group.live_members() == [p]
        group.remove(p)
        assert group.live_members() == []

    def test_aslr_seed_stable(self):
        reg = CCIDRegistry(seed=5)
        assert (reg.group_for("u", "a").aslr_seed
                == reg.group_for("u", "a").aslr_seed)


class TestOPC:
    def test_default_clear(self):
        field = OPCField()
        assert not field.o_bit and not field.orpc and field.pc_mask == 0

    def test_orpc_is_or_of_mask(self):
        field = OPCField()
        assert not field.orpc
        field.set_bit(5)
        assert field.orpc
        field.clear_bit(5)
        assert not field.orpc

    def test_bit_ops(self):
        field = OPCField()
        field.set_bit(0)
        field.set_bit(31)
        assert field.test_bit(0) and field.test_bit(31)
        assert not field.test_bit(15)

    def test_out_of_range_rejected(self):
        field = OPCField()
        with pytest.raises(ValueError):
            field.set_bit(32)
        with pytest.raises(ValueError):
            OPCField(pc_mask=1 << 32)

    def test_pack_unpack_roundtrip(self):
        field = OPCField(o_bit=True, pc_mask=0xDEAD)
        assert OPCField.unpack(field.packed()) == field

    def test_packed_layout(self):
        field = OPCField(o_bit=True, pc_mask=0b10)
        packed = field.packed()
        assert packed & 1           # O
        assert (packed >> 1) & 1    # ORPC
        assert packed >> 2 == 0b10  # PC

    def test_max_width(self):
        assert MAX_PRIVATE_COPIES == 32


class TestMaskPage:
    def test_region_and_pmd_index(self):
        vpn = (7 << 18) | (3 << 9) | 5
        assert region_of(vpn) == 7
        assert pmd_index_of(vpn) == 3

    def test_assign_bits_in_order(self):
        page = MaskPage(1, 0)
        assert page.assign_bit(100) == 0
        assert page.assign_bit(101) == 1
        assert page.assign_bit(100) == 0  # idempotent

    def test_overflow_raises(self):
        page = MaskPage(1, 0)
        for pid in range(32):
            page.assign_bit(pid)
        with pytest.raises(MaskPageFull):
            page.assign_bit(999)

    def test_custom_width(self):
        page = MaskPage(1, 0, max_writers=2)
        page.assign_bit(1)
        page.assign_bit(2)
        with pytest.raises(MaskPageFull):
            page.assign_bit(3)

    def test_set_private_per_pmd_index(self):
        page = MaskPage(1, 0)
        bit = page.assign_bit(7)
        page.set_private(bit, 3)
        assert page.mask(3) == 1 << bit
        assert page.mask(4) == 0
        assert page.orpc(3) and not page.orpc(4)

    def test_bit_of_unknown_pid(self):
        assert MaskPage(1, 0).bit_of(55) is None


class TestMaskPageDirectory:
    def test_get_or_create(self):
        directory = MaskPageDirectory()
        page = directory.get_or_create(1, 0x40000)
        assert directory.get(1, 0x40000 + 5) is page  # same 1GB region
        assert directory.get(1, 2 << 18) is None      # other region

    def test_frames_allocated(self):
        alloc = FrameAllocator()
        directory = MaskPageDirectory(alloc)
        directory.get_or_create(1, 0)
        assert alloc.count(FrameKind.MASK_PAGE) == 1

    def test_drop_releases_frame(self):
        alloc = FrameAllocator()
        directory = MaskPageDirectory(alloc)
        directory.get_or_create(1, 0)
        directory.drop(1, 0)
        assert alloc.count(FrameKind.MASK_PAGE) == 0
        assert directory.total_pages == 0

    def test_mask_for(self):
        directory = MaskPageDirectory()
        page = directory.get_or_create(1, 0)
        bit = page.assign_bit(9)
        page.set_private(bit, pmd_index_of(0))
        assert directory.mask_for(1, 0) == 1 << bit
        assert directory.mask_for(1, 1 << 18) == 0

    def test_width_propagates(self):
        directory = MaskPageDirectory(max_writers=4)
        page = directory.get_or_create(1, 0)
        assert page.max_writers == 4
