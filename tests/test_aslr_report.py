"""Tests for the ASLR modes module, the ASCII charts, and the report CLI
glue (cheap pieces not covered elsewhere)."""

from repro.core.aslr import ASLRMode, group_layout_for, process_layout_for
from repro.core.ccid import CCIDRegistry
from repro.experiments.ascii_chart import (
    grouped_hbar_chart,
    hbar_chart,
    stacked_fraction_chart,
)


class TestASLRModes:
    def group(self):
        return CCIDRegistry().group_for("u", "a")

    def test_mode_properties(self):
        assert ASLRMode.HW.per_process_layout
        assert not ASLRMode.SW.per_process_layout
        assert not ASLRMode.INHERITED.per_process_layout
        assert not ASLRMode.HW.shares_l1
        assert ASLRMode.SW.shares_l1
        assert ASLRMode.INHERITED.shares_l1

    def test_group_layout_deterministic(self):
        group = self.group()
        for mode in ASLRMode:
            assert (group_layout_for(group, mode)
                    == group_layout_for(group, mode))

    def test_sw_process_layout_equals_group(self):
        group = self.group()
        layout = process_layout_for(group, ASLRMode.SW, pid_seed=5)
        assert layout == group_layout_for(group, ASLRMode.SW)

    def test_hw_process_layouts_unique(self):
        group = self.group()
        a = process_layout_for(group, ASLRMode.HW, pid_seed=1)
        b = process_layout_for(group, ASLRMode.HW, pid_seed=2)
        assert a != b
        assert a != group_layout_for(group, ASLRMode.HW)

    def test_different_groups_different_layouts(self):
        registry = CCIDRegistry()
        a = registry.group_for("u", "a")
        b = registry.group_for("u", "b")
        assert (group_layout_for(a, ASLRMode.SW)
                != group_layout_for(b, ASLRMode.SW))


class TestAsciiCharts:
    ROWS = [{"app": "x", "v": 10.0, "w": 5.0, "total": 20},
            {"app": "longer-name", "v": 20.0, "w": 2.5, "total": 40}]

    def test_hbar(self):
        chart = hbar_chart(self.ROWS, "v", title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        # The larger value has the longer bar.
        assert lines[2].count("#") > lines[1].count("#")
        assert "20.0" in lines[2]

    def test_hbar_empty(self):
        assert hbar_chart([], "v", title="T") == "T"

    def test_hbar_zero_values(self):
        chart = hbar_chart([{"app": "z", "v": 0.0}], "v")
        assert "#" not in chart

    def test_grouped(self):
        chart = grouped_hbar_chart(self.ROWS, ["v", "w"],
                                   legend=["first", "second"])
        assert "first" in chart and "second" in chart
        assert chart.count("=") > 0  # second series mark

    def test_stacked(self):
        chart = stacked_fraction_chart(self.ROWS, ["v", "w"], "total",
                                       legend=["a", "b"])
        lines = chart.splitlines()
        # Bars are proportional to fractions of the row's total.
        assert "#" in lines[1] and "-" in lines[1]

    def test_bar_width_bounded(self):
        chart = hbar_chart(self.ROWS, "v", width=10)
        for line in chart.splitlines()[1:]:
            assert line.count("#") <= 10


class TestReportCLI:
    def test_arg_parsing_and_quick_run(self, capsys, tmp_path):
        from repro.report import main
        # Tiny run to exercise the whole code path; cache to tmp so the
        # test never touches benchmarks/out/runcache.
        code = main(["--cores", "1", "--scale", "0.05",
                     "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 11" in out
        assert "Table III" in out
        assert "core area overhead" in out
