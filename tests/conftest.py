"""Shared fixtures: miniature kernels, CCID groups, and deployments.

Also wires the opt-in ``sanitize`` marker: tests that run whole
experiments with the translation-coherence sanitizer enabled are skipped
unless ``--sanitize`` (or ``REPRO_SANITIZE=1``) is given, so tier-1 time
stays flat.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="run the full-experiment translation-coherence sanitizer "
             "tests (slow; also enabled by REPRO_SANITIZE=1)")


def sanitize_enabled(config):
    return (config.getoption("--sanitize")
            or os.environ.get("REPRO_SANITIZE") == "1")


def pytest_collection_modifyitems(config, items):
    if sanitize_enabled(config):
        return
    skip = pytest.mark.skip(
        reason="sanitizer suite is opt-in: pass --sanitize or set "
               "REPRO_SANITIZE=1")
    for item in items:
        if "sanitize" in item.keywords:
            item.add_marker(skip)

from repro.core.aslr import ASLRMode, group_layout_for, process_layout_for
from repro.core.ccid import CCIDRegistry
from repro.core.mask_page import MaskPageDirectory
from repro.core.shared_pt import SharedPTManager
from repro.hw.params import baseline_machine
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.vma import SegmentKind, VMAKind


class MiniSystem:
    """A small kernel + one CCID group + a zygote with typical mappings."""

    def __init__(self, babelfish, thp=True, max_writers=32, aslr_mode=None):
        self.aslr_mode = aslr_mode or (
            ASLRMode.HW if babelfish else ASLRMode.INHERITED)
        self.registry = CCIDRegistry()
        self.group = self.registry.group_for("tenant", "miniapp")
        policy = None
        if babelfish:
            policy = SharedPTManager(
                MaskPageDirectory(max_writers=max_writers))
        self.kernel = Kernel(KernelConfig(thp_enabled=thp), policy=policy)
        if babelfish:
            self.kernel.policy.mask_dir.allocator = self.kernel.allocator
        self.policy = self.kernel.policy
        self.layout = group_layout_for(self.group, self.aslr_mode)
        self.lib = self.kernel.create_file("lib", 1024)
        self.data = self.kernel.create_file("data", 1024)
        self.kernel.page_cache.populate(self.lib)
        self.kernel.page_cache.populate(self.data)
        self.zygote = self.kernel.spawn(self.group.ccid, self.layout,
                                        name="zygote")
        self.kernel.mmap(self.zygote, SegmentKind.LIBS, 0, 1024,
                         VMAKind.FILE_PRIVATE, file=self.lib,
                         writable=False, executable=True, name="lib")
        self.kernel.mmap(self.zygote, SegmentKind.MMAP, 0, 1024,
                         VMAKind.FILE_SHARED, file=self.data,
                         writable=True, name="data")
        self.kernel.mmap(self.zygote, SegmentKind.HEAP, 0, 2048,
                         VMAKind.ANON, name="heap")
        self.bindata = self.kernel.create_file("bindata", 8)
        self.kernel.page_cache.populate(self.bindata)
        self.kernel.mmap(self.zygote, SegmentKind.DATA, 0, 8,
                         VMAKind.FILE_PRIVATE, file=self.bindata,
                         writable=True, name="bindata")

    def fork(self, name="child"):
        layout_proc = process_layout_for(self.group, self.aslr_mode,
                                         pid_seed=len(self.group.members) + 1)
        child, _cycles = self.kernel.fork(self.zygote,
                                          layout_proc=layout_proc, name=name)
        self.group.add(child)
        return child

    def vpn(self, proc, segment, off):
        return proc.vpn_group(segment, off)

    def touch(self, proc, segment, off, write=False):
        return self.kernel.touch(proc, self.vpn(proc, segment, off),
                                 is_write=write)


@pytest.fixture
def mini_baseline():
    return MiniSystem(babelfish=False)


@pytest.fixture
def mini_babelfish():
    return MiniSystem(babelfish=True)


@pytest.fixture(params=[False, True], ids=["baseline", "babelfish"])
def mini_any(request):
    return MiniSystem(babelfish=request.param)


@pytest.fixture
def machine2():
    return baseline_machine(cores=2)
