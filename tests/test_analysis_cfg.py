"""The dataflow framework (CFG/dominators) and the BF4xx/BF5xx/BF6xx
rule families.

The rule tests are *seeded mutations*: each fixture reproduces a real
bug class from the repo's history (the PR 4 missed epoch bump, the PR 5
free-before-shootdown window, a worker writing module state) and must be
flagged by its family, while the corrected variant must lint clean.
"""

import ast
import textwrap

from repro.analysis.lint.cfg import (
    FunctionCFG,
    ModuleIndex,
    function_statements,
)
from repro.analysis.lint.engine import LintEngine


def lint(source, path):
    return LintEngine().lint_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule_id for f in findings]


def build_cfg(source, name="f"):
    tree = ast.parse(textwrap.dedent(source))
    func = next(node for node in ast.walk(tree)
                if isinstance(node, ast.FunctionDef) and node.name == name)
    cfg = FunctionCFG(func)
    by_line = {s.lineno: s for s in cfg.statements()}
    return cfg, by_line


class TestFunctionCFG:
    def test_diamond_dominance(self):
        cfg, line = build_cfg(
            """\
            def f(x):
                a = 1
                if x:
                    b = 2
                else:
                    c = 3
                d = 4
            """)
        assert cfg.dominates(line[2], line[7])       # a= before d= always
        assert cfg.dominates(line[2], line[4])       # a= before b=
        assert not cfg.dominates(line[4], line[7])   # else path skips b=
        assert cfg.postdominates(line[7], line[4])   # d= after b= always
        assert cfg.postdominates(line[7], line[6])
        assert not cfg.postdominates(line[4], line[2])
        assert cfg.covers(line[7], line[4])

    def test_same_block_is_textual_order(self):
        cfg, line = build_cfg(
            """\
            def f():
                a = 1
                b = 2
            """)
        assert cfg.dominates(line[2], line[3])
        assert not cfg.dominates(line[3], line[2])
        assert cfg.postdominates(line[3], line[2])

    def test_loop_zero_iteration_path(self):
        cfg, line = build_cfg(
            """\
            def f(items):
                total = 0
                for item in items:
                    total += 1
                return total
            """)
        assert cfg.dominates(line[2], line[5])
        # The body may never run: it cannot dominate the return...
        assert not cfg.dominates(line[4], line[5])
        # ...but the return still postdominates the body.
        assert cfg.postdominates(line[5], line[4])

    def test_break_escapes_postdomination_of_loop_header(self):
        cfg, line = build_cfg(
            """\
            def f(items):
                found = None
                for item in items:
                    if item:
                        found = item
                        break
                return found
            """)
        assert cfg.postdominates(line[7], line[5])
        assert not cfg.dominates(line[5], line[7])

    def test_try_handler_paths(self):
        cfg, line = build_cfg(
            """\
            def f(path):
                data = None
                try:
                    data = read(path)
                except OSError:
                    data = ""
                return data
            """)
        # The body assignment is not guaranteed (the handler path), but
        # the return runs on both.
        assert not cfg.dominates(line[4], line[7])
        assert cfg.postdominates(line[7], line[4])
        assert cfg.postdominates(line[7], line[6])

    def test_early_return_kills_postdomination(self):
        cfg, line = build_cfg(
            """\
            def f(x):
                if x:
                    return 0
                y = 1
                return y
            """)
        assert not cfg.postdominates(line[4], line[2])
        assert not cfg.dominates(line[4], line[5]) or True  # same path
        assert cfg.dominates(line[2], line[4])

    def test_function_statements_skip_nested_defs(self):
        tree = ast.parse(textwrap.dedent(
            """\
            def outer():
                x = 1
                def inner():
                    y = 2
                return x
            """))
        outer = tree.body[0]
        lines = [s.lineno for s in function_statements(outer)]
        assert 2 in lines and 5 in lines
        assert 4 not in lines  # inner body is a separate scope


class TestModuleIndex:
    SOURCE = """\
        def helper():
            return 1

        class Base:
            def bump(self):
                self.epoch += 1

        class Fast(Base):
            def touch(self):
                self.bump()
                helper()
        """

    def make(self):
        tree = ast.parse(textwrap.dedent(self.SOURCE))
        return tree, ModuleIndex(tree)

    def test_method_resolution_follows_local_bases(self):
        tree, index = self.make()
        fast = index.classes["Fast"]
        touch = index.methods_of(fast)["touch"]
        calls = [n for n in ast.walk(touch) if isinstance(n, ast.Call)]
        targets = {index.resolve_call(c, fast) for c in calls}
        assert index.methods_of(fast)["bump"] in targets
        assert index.functions["helper"] in targets

    def test_iter_functions_covers_methods(self):
        tree, index = self.make()
        names = {f.name for f, _cls in index.iter_functions()}
        assert names == {"helper", "bump", "touch"}


HW_PATH = "src/repro/hw/fixture.py"
KERNEL_PATH = "src/repro/kernel/fixture.py"
EXP_PATH = "src/repro/experiments/fixture.py"

FAST_TWIN_HEADER = textwrap.dedent("""\
    class FastTLB:
        def __init__(self):
            self._buckets = [dict() for _ in range(4)]
            self._set_epochs = [0, 0, 0, 0]
            self.epoch = 0
    """)


def fast_twin(method_source):
    """The fast-twin fixture class with ``method_source`` as a method."""
    body = textwrap.indent(textwrap.dedent(method_source), "    ")
    return FAST_TWIN_HEADER + "\n" + body


class TestEpochCoverageBF401:
    def test_seeded_mutation_deleted_bump_is_flagged(self):
        # The seeded mutation: insert lands in the backing store with the
        # epoch bump deleted. The memo would replay a stale translation.
        assert lint(FAST_TWIN_HEADER, HW_PATH) == []  # header is clean

        findings = lint(fast_twin("""\
            def insert(self, index, vpn, entry):
                self._buckets[index][vpn] = entry
            """), HW_PATH)
        assert rule_ids(findings) == ["BF401"]
        assert "_buckets" in findings[0].message

    def test_bumped_insert_is_clean(self):
        findings = lint(fast_twin("""\
            def insert(self, index, vpn, entry):
                self._buckets[index][vpn] = entry
                self._set_epochs[index] += 1
            """), HW_PATH)
        assert findings == []

    def test_pop_result_guarded_bump_is_flagged(self):
        # The PR 4 bug shape: the bump only runs when the pop result
        # tests truthy, and the fast backing stores None values.
        findings = lint(fast_twin("""\
            def invalidate(self, index, tag):
                popped = self._buckets[index].pop(tag, None)
                if popped is not None:
                    self.epoch += 1
            """), HW_PATH)
        assert rule_ids(findings) == ["BF401"]

    def test_counter_guarded_batch_flush_is_clean(self):
        # The removed-counter idiom: the mutation's own block proves the
        # flag truthy and the flag-guarded bump postdominates.
        findings = lint(fast_twin("""\
            def flush(self):
                removed = 0
                for index in range(4):
                    bucket = self._buckets[index]
                    if bucket:
                        removed += 1
                        bucket.clear()
                if removed:
                    self.epoch += 1
                return removed
            """), HW_PATH)
        assert findings == []

    def test_classes_without_epoch_machinery_are_out_of_scope(self):
        findings = lint("""\
            class PlainBag:
                def __init__(self):
                    self._buckets = {}

                def insert(self, key, value):
                    self._buckets[key] = value
            """, HW_PATH)
        assert findings == []


class TestTeardownOrderBF501:
    def test_seeded_free_before_shootdown_is_flagged(self):
        # The PR 5 bug shape: frames released while a stale TLB entry
        # can still translate to them.
        findings = lint("""\
            class Kernel:
                def exit_process(self, proc):
                    for frame in proc.frames:
                        if self.allocator.decref(frame) == 0:
                            self.freed.append(frame)
                    self.invalidation_sink([("pcid", proc.pcid)])
            """, KERNEL_PATH)
        assert rule_ids(findings) == ["BF501"]

    def test_shootdown_before_free_is_clean(self):
        findings = lint("""\
            class Kernel:
                def exit_process(self, proc):
                    self.invalidation_sink([("pcid", proc.pcid)])
                    for frame in proc.frames:
                        if self.allocator.decref(frame) == 0:
                            self.freed.append(frame)
            """, KERNEL_PATH)
        assert findings == []

    def test_recorded_batch_counts_as_invalidation(self):
        findings = lint("""\
            class Kernel:
                def zap(self, proc, vpn, entry):
                    invalidations = []
                    invalidations.append(TLBInvalidation(vpn, proc.pcid))
                    self.allocator.decref(entry.ppn)
                    return invalidations
            """, KERNEL_PATH)
        assert findings == []

        findings = lint("""\
            class Kernel:
                def zap(self, proc, vpn, entry):
                    invalidations = []
                    self.allocator.decref(entry.ppn)
                    invalidations.append(TLBInvalidation(vpn, proc.pcid))
                    return invalidations
            """, KERNEL_PATH)
        assert rule_ids(findings) == ["BF501"]

    def test_free_only_functions_are_out_of_scope(self):
        # Whether an invalidation is *required* is the runtime
        # sanitizer's question; the rule only checks ordering.
        findings = lint("""\
            class Kernel:
                def _teardown_table(self, table):
                    for entry in table.entries.values():
                        self.allocator.decref(entry.ppn)
            """, KERNEL_PATH)
        assert findings == []


class TestParallelSafetyBF601:
    def test_seeded_worker_global_write_is_flagged(self):
        findings = lint("""\
            RESULTS = {}

            def _worker(item):
                RESULTS[item] = item * 2
                return item

            def run(pool, items):
                futures = [pool.submit(_worker, item) for item in items]
                return [f.result() for f in futures]
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF601"]
        assert "RESULTS" in findings[0].message

    def test_global_rebind_in_worker_is_flagged(self):
        findings = lint("""\
            TOTAL = 0

            def _worker(item):
                global TOTAL
                TOTAL += item
                return item

            def run(pool, items):
                return [pool.submit(_worker, item) for item in items]
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF601"]

    def test_worker_returning_values_is_clean(self):
        findings = lint("""\
            def _worker(item):
                local = {}
                local[item] = item * 2
                return local

            def run(pool, items):
                return [pool.submit(_worker, item) for item in items]
            """, EXP_PATH)
        assert findings == []

    def test_initializer_subtree_is_exempt(self):
        # Configuring worker-local state is what initializers are for.
        findings = lint("""\
            HANDLE = None

            def _configure(path):
                global HANDLE
                HANDLE = path

            def make_pool(executor, path):
                return executor(initializer=_configure,
                                initargs=(path,))
            """, EXP_PATH)
        assert findings == []

    def test_transitive_callee_of_worker_is_checked(self):
        findings = lint("""\
            CACHE = {}

            def _store(key, value):
                CACHE[key] = value

            def _worker(item):
                _store(item, item * 2)
                return item

            def run(pool, items):
                return [pool.submit(_worker, item) for item in items]
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF601"]

    def test_dispatch_roots_marker_seeds_reachability(self):
        # Modules whose entry points are dispatched from elsewhere (the
        # batch engine's run_quantum_batch, dispatched per quantum by
        # the simulator) opt in via a top-level DISPATCH_ROOTS tuple.
        findings = lint("""\
            DISPATCH_ROOTS = ("run_quantum_batch",)
            TOTALS = {}

            def _fold(key, count):
                TOTALS[key] = TOTALS.get(key, 0) + count

            def run_quantum_batch(sim, core_id, proc):
                _fold(core_id, 1)
                return 0
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF601"]
        assert "TOTALS" in findings[0].message

    def test_dispatch_roots_marker_clean_module(self):
        findings = lint("""\
            DISPATCH_ROOTS = ("run_quantum_batch",)

            def run_quantum_batch(sim, core_id, proc):
                folds = {}
                folds[core_id] = 1
                return folds
            """, EXP_PATH)
        assert findings == []

    def test_dispatch_roots_marker_ignores_unknown_names(self):
        findings = lint("""\
            DISPATCH_ROOTS = ("not_defined_here", 42)

            def helper(x):
                return x
            """, EXP_PATH)
        assert findings == []

    def test_dispatch_roots_marker_seeds_async_handler(self):
        # The serving daemon's connection handler is an async function
        # dispatched by asyncio.start_server, never called by name from
        # this module — DISPATCH_ROOTS must seed async defs too.
        findings = lint("""\
            DISPATCH_ROOTS = ("handle_connection",)
            SESSIONS = {}

            async def handle_connection(reader, writer):
                SESSIONS[id(writer)] = reader
                return None
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF601"]
        assert "SESSIONS" in findings[0].message


class TestUnorderedFoldBF602:
    def test_set_iteration_in_dispatching_function_is_flagged(self):
        findings = lint("""\
            def fold(pool, items, work):
                out = []
                for item in set(items):
                    out.append(pool.submit(work, item))
                return out
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF602"]

    def test_popitem_in_fold_is_flagged(self):
        findings = lint("""\
            def drain(pool, jobs, run_one):
                results = {}
                for job in jobs:
                    results[job] = pool.submit(run_one, job)
                out = []
                while results:
                    key, fut = results.popitem()
                    out.append((key, fut.result()))
                return out
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF602"]

    def test_keyed_fold_is_clean(self):
        findings = lint("""\
            def fold(pool, items, work):
                futures = {}
                for item in items:
                    futures[item] = pool.submit(work, item)
                return [futures[item].result() for item in items]
            """, EXP_PATH)
        assert findings == []

    def test_functions_without_dispatch_are_out_of_scope(self):
        # BF602 scopes to the fan-out/fold layer; plain experiments code
        # stays under BF203's (sim-only) jurisdiction.
        findings = lint("""\
            def summarize(rows):
                return [r for r in set(rows)]
            """, EXP_PATH)
        assert findings == []

    def test_dispatch_roots_marker_brings_folds_in_scope(self):
        findings = lint("""\
            DISPATCH_ROOTS = ("run_quantum_batch",)

            def run_quantum_batch(sim, touched):
                total = 0
                for key in set(touched):
                    total += touched[key]
                return total
            """, EXP_PATH)
        assert rule_ids(findings) == ["BF602"]
