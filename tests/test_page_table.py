"""Tests for the x86-64 four-level page tables."""

import pytest

from repro.hw.types import PageSize
from repro.kernel.frames import FrameAllocator
from repro.kernel.page_table import (
    AddressSpaceTables,
    PGD,
    PMD,
    PTE,
    PTE_LEVEL,
    PUD,
    PageTable,
    TableRef,
    pte_table_id,
    region_id,
    table_index,
)


@pytest.fixture
def tables():
    return AddressSpaceTables(FrameAllocator())


class TestIndexing:
    def test_table_index_slices(self):
        vpn = (3 << 27) | (5 << 18) | (7 << 9) | 11
        assert table_index(vpn, PGD) == 3
        assert table_index(vpn, PUD) == 5
        assert table_index(vpn, PMD) == 7
        assert table_index(vpn, PTE_LEVEL) == 11

    def test_index_bounded(self):
        vpn = (1 << 36) - 1
        for level in (PGD, PUD, PMD, PTE_LEVEL):
            assert 0 <= table_index(vpn, level) < 512

    def test_region_and_table_ids(self):
        vpn = 0x40000 + 513
        assert region_id(vpn) == vpn >> 18
        assert pte_table_id(vpn) == vpn >> 9


class TestAddressSpaceTables:
    def test_cr3_is_pgd_frame(self, tables):
        assert tables.cr3 == tables.pgd.frame * 4096

    def test_empty_walk_stops_at_pgd(self, tables):
        path = tables.walk(0x1234)
        assert len(path) == 1
        assert path[0][0] == PGD
        assert path[0][3] is None

    def test_set_leaf_creates_path(self, tables):
        vpn = (1 << 27) | (2 << 18) | (3 << 9) | 4
        tables.set_leaf(vpn, PTE(0x55))
        path = tables.walk(vpn)
        assert len(path) == 4
        assert isinstance(path[-1][3], PTE)
        assert path[-1][3].ppn == 0x55

    def test_lookup_pte(self, tables):
        tables.set_leaf(0x77, PTE(0x99))
        assert tables.lookup_pte(0x77).ppn == 0x99
        assert tables.lookup_pte(0x78) is None

    def test_each_table_has_unique_frame(self, tables):
        tables.set_leaf(0, PTE(1))
        tables.set_leaf(1 << 27, PTE(2))
        frames = [t.frame for t in tables.iter_tables()]
        assert len(frames) == len(set(frames))

    def test_tables_allocated_counter(self, tables):
        before = tables.tables_allocated
        tables.set_leaf(0x123, PTE(1))
        # PUD + PMD + PTE tables created.
        assert tables.tables_allocated == before + 3

    def test_sibling_pages_share_tables(self, tables):
        tables.set_leaf(0x100, PTE(1))
        before = tables.tables_allocated
        tables.set_leaf(0x101, PTE(2))
        assert tables.tables_allocated == before

    def test_huge_leaf_at_pmd(self, tables):
        vpn = 512 * 7
        tables.set_leaf(vpn, PTE(0x1000, page_size=PageSize.SIZE_2M),
                        leaf_level=PMD)
        path = tables.walk(vpn + 5)
        assert path[-1][0] == PMD
        assert isinstance(path[-1][3], PTE)

    def test_mixing_huge_and_4k_rejected(self, tables):
        vpn = 512 * 7
        tables.set_leaf(vpn, PTE(0x1000, page_size=PageSize.SIZE_2M),
                        leaf_level=PMD)
        with pytest.raises(ValueError):
            tables.ensure_path(vpn + 1, PTE_LEVEL)

    def test_iter_leaves_roundtrip(self, tables):
        vpns = [5, 513, (1 << 18) + 7, (1 << 27) + 9]
        for i, vpn in enumerate(vpns):
            tables.set_leaf(vpn, PTE(i + 1))
        leaves = {vpn: pte.ppn for vpn, _l, _t, _i, pte in tables.iter_leaves()}
        assert leaves == {vpn: i + 1 for i, vpn in enumerate(vpns)}

    def test_table_provider_used(self, tables):
        shared = PageTable(PTE_LEVEL, FrameAllocator().alloc())
        shared.entries[5] = PTE(0xABC)

        def provider(level, vpn):
            if level == PTE_LEVEL:
                shared.sharers += 1
                return shared
            return None

        table, index, _alloc = tables.ensure_path(5, table_provider=provider)
        assert table is shared
        assert shared.sharers == 2
        assert isinstance(table.entries[index], PTE)

    def test_entry_paddr(self):
        table = PageTable(PTE_LEVEL, 0x10)
        assert table.entry_paddr(3) == 0x10 * 4096 + 24

    def test_count_table_pages(self, tables):
        tables.set_leaf(0, PTE(1))
        assert tables.count_table_pages() == 4  # PGD..PTE


class TestPTE:
    def test_clone_preserves_fields(self):
        pte = PTE(0x42, writable=False, cow=True, executable=True)
        pte.dirty = True
        clone = pte.clone()
        assert clone.ppn == 0x42
        assert clone.cow and not clone.writable and clone.executable
        assert clone.dirty

    def test_perm_key_equality(self):
        a = PTE(1, writable=True)
        b = PTE(2, writable=True)
        c = PTE(3, writable=False)
        assert a.perm_key() == b.perm_key()
        assert a.perm_key() != c.perm_key()

    def test_tableref_bits(self):
        ref = TableRef(PageTable(PTE_LEVEL, 1), o_bit=True, orpc=False)
        assert ref.o_bit and not ref.orpc
