"""End-to-end integration tests: the paper's headline effects must hold
on miniature deployments, plus cross-cutting invariants (isolation,
determinism, refcount conservation)."""

import dataclasses

import pytest

from repro.hw.params import baseline_machine
from repro.kernel.frames import FrameKind
from repro.kernel.vma import SegmentKind
from repro.sim.simulator import K_LOAD, K_STORE, Simulator
from repro.sim.config import babelfish_config
from repro.workloads.profiles import APP_PROFILES

from repro.experiments.common import (
    build_environment,
    config_by_name,
    deploy_app,
    measure_app,
)

from conftest import MiniSystem

MMAP, HEAP, LIBS = SegmentKind.MMAP, SegmentKind.HEAP, SegmentKind.LIBS


def mini_app_run(config, app="httpd", cores=1, scale=0.08):
    profile = APP_PROFILES[app]
    env = build_environment(config, cores=cores)
    deployment = deploy_app(env, profile)
    result = measure_app(env, deployment, scale=scale)
    return env, deployment, result


class TestHeadlineEffects:
    def test_babelfish_reduces_latency(self):
        _e1, _d1, base = mini_app_run(config_by_name("Baseline"))
        _e2, _d2, bf = mini_app_run(config_by_name("BabelFish"))
        assert bf.mean_latency < base.mean_latency

    def test_babelfish_reduces_l2_mpki(self):
        _e1, _d1, base = mini_app_run(config_by_name("Baseline"))
        _e2, _d2, bf = mini_app_run(config_by_name("BabelFish"))
        assert bf.stats.mpki("d") < base.stats.mpki("d")
        assert bf.stats.mpki("i") < base.stats.mpki("i")

    def test_babelfish_has_shared_hits_baseline_none(self):
        _e1, _d1, base = mini_app_run(config_by_name("Baseline"))
        _e2, _d2, bf = mini_app_run(config_by_name("BabelFish"))
        assert base.stats.shared_hit_fraction() == 0.0
        assert bf.stats.shared_hit_fraction() > 0.0

    def test_babelfish_fewer_fork_table_copies(self):
        env_base, _d, _r = mini_app_run(config_by_name("Baseline"))
        env_bf, _d2, _r2 = mini_app_run(config_by_name("BabelFish"))
        assert (env_bf.kernel.fork_table_pages_copied
                < env_base.kernel.fork_table_pages_copied)

    def test_babelfish_fewer_page_table_pages(self):
        env_base, _d, _r = mini_app_run(config_by_name("Baseline"))
        env_bf, _d2, _r2 = mini_app_run(config_by_name("BabelFish"))
        assert (env_bf.kernel.allocator.count(FrameKind.PAGE_TABLE)
                < env_base.kernel.allocator.count(FrameKind.PAGE_TABLE))

    def test_bigtlb_between_baseline_and_babelfish(self):
        _e1, _d1, base = mini_app_run(config_by_name("Baseline"))
        _e2, _d2, big = mini_app_run(config_by_name("BigTLB"))
        _e3, _d3, bf = mini_app_run(config_by_name("BabelFish"))
        assert big.stats.mpki("d") <= base.stats.mpki("d")
        assert bf.mean_latency <= big.mean_latency


class TestIsolationInvariants:
    def test_no_cross_container_frame_leak_via_sim(self):
        """Drive two containers writing the same heap offsets through the
        full simulator under BabelFish; their frames must stay disjoint."""
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        config = dataclasses.replace(babelfish_config(),
                                     quantum_instructions=200)
        sim = Simulator(baseline_machine(cores=1), config, sys.kernel)

        def writes(proc_tag):
            for i in range(64):
                yield (K_STORE, HEAP, i, 0, 5, None)

        sim.attach(a, writes("a"), 0)
        sim.attach(b, writes("b"), 0)
        sim.run()
        for off in range(64):
            pa = a.tables.lookup_pte(sys.vpn(a, HEAP, off))
            pb = b.tables.lookup_pte(sys.vpn(b, HEAP, off))
            assert pa.ppn != pb.ppn, off

    def test_shared_reads_same_frame_private_writes_diverge(self):
        sys = MiniSystem(babelfish=True)
        a, b = sys.fork("a"), sys.fork("b")
        config = babelfish_config()
        sim = Simulator(baseline_machine(cores=1), config, sys.kernel)

        def mixed():
            for i in range(32):
                yield (K_LOAD, MMAP, i, 0, 5, None)
                yield (K_STORE, HEAP, i, 0, 5, None)

        sim.attach(a, mixed(), 0)
        sim.attach(b, mixed(), 0)
        sim.run()
        for off in range(32):
            # b may never have faulted on the shared pages (it hit a's TLB
            # entries — the BabelFish effect), so resolve via touch.
            assert (sys.touch(a, MMAP, off).ppn
                    == sys.touch(b, MMAP, off).ppn)
            assert (a.tables.lookup_pte(sys.vpn(a, HEAP, off)).ppn
                    != b.tables.lookup_pte(sys.vpn(b, HEAP, off)).ppn)

    def test_cow_write_read_consistency(self):
        """After one container CoWs a page, a reader still sees the clean
        frame and the writer its private one — through the TLBs."""
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 7, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        sim = Simulator(baseline_machine(cores=2), babelfish_config(),
                        sys.kernel)
        sim.attach(a, iter([(K_LOAD, HEAP, 7, 0, 1, None),
                            (K_STORE, HEAP, 7, 0, 1, None)]), 0)
        sim.run()
        sim.attach(b, iter([(K_LOAD, HEAP, 7, 0, 1, None)]), 1)
        sim.run()
        zy = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 7))
        pa = a.tables.lookup_pte(sys.vpn(a, HEAP, 7))
        pb = b.tables.lookup_pte(sys.vpn(b, HEAP, 7))
        assert pa.ppn != zy.ppn
        assert pb.ppn == zy.ppn


class TestConservation:
    def test_exit_all_returns_frames(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        children = [sys.fork("c%d" % i) for i in range(4)]
        for child in children:
            sys.touch(child, HEAP, 1 + child.pid % 7, write=True)
            sys.touch(child, MMAP, 3)
        for child in children:
            sys.kernel.exit_process(child)
        sys.kernel.exit_process(sys.zygote)
        # Only page-cache frames (and mask pages) remain.
        assert sys.kernel.allocator.count(FrameKind.PAGE_TABLE) == 0
        assert sys.kernel.allocator.count(FrameKind.DATA) == 0

    def test_registry_empty_after_teardown(self):
        sys = MiniSystem(babelfish=True)
        a, b = sys.fork("a"), sys.fork("b")
        sys.touch(a, MMAP, 600)
        sys.touch(b, MMAP, 600)
        for proc in (a, b, sys.zygote):
            sys.kernel.exit_process(proc)
        assert not sys.policy.registry


class TestDeterminism:
    def test_same_seed_same_result(self):
        _e1, _d1, r1 = mini_app_run(config_by_name("BabelFish"))
        _e2, _d2, r2 = mini_app_run(config_by_name("BabelFish"))
        assert r1.mean_latency == r2.mean_latency
        assert r1.stats.l2_misses == r2.stats.l2_misses
        assert r1.stats.minor_faults == r2.stats.minor_faults


class TestASLRModes:
    @pytest.mark.parametrize("mode_name", ["SW", "HW"])
    def test_babelfish_works_under_both_aslr_modes(self, mode_name):
        from repro.core.aslr import ASLRMode
        mode = ASLRMode[mode_name]
        config = babelfish_config(aslr_mode=mode)
        _env, _dep, result = mini_app_run(config)
        assert result.stats.shared_hit_fraction() > 0
        if mode is ASLRMode.HW:
            assert result.stats.aslr_transforms > 0
        else:
            assert result.stats.aslr_transforms == 0
