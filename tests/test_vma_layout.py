"""Tests for VMAs, the memory descriptor, ASLR layouts, page cache, LRU."""

import pytest

from repro.hw.types import ENTRIES_PER_TABLE
from repro.kernel.aslr_layout import (
    ASLR_SLOTS,
    CANONICAL_BASES,
    canonical_layout,
    randomized_layout,
)
from repro.kernel.frames import FrameAllocator
from repro.kernel.lru import ActiveInactiveLRU
from repro.kernel.page_cache import FileObject, PageCache
from repro.kernel.vma import MM, SegmentKind, VMA, VMAKind


class TestVMA:
    def file_vma(self, start=0x1000, npages=16, **kw):
        file = FileObject("f", 64)
        kw.setdefault("kind", VMAKind.FILE_PRIVATE)
        return VMA(start, npages, SegmentKind.LIBS, file=file, **kw)

    def test_contains(self):
        vma = self.file_vma()
        assert vma.contains(0x1000)
        assert vma.contains(0x100F)
        assert not vma.contains(0x1010)
        assert not vma.contains(0xFFF)

    def test_file_index(self):
        vma = self.file_vma()
        vma.file_offset = 4
        assert vma.file_index(0x1002) == 6

    def test_file_backed_requires_file(self):
        with pytest.raises(ValueError):
            VMA(0, 4, SegmentKind.HEAP, VMAKind.FILE_SHARED)

    def test_shareable(self):
        assert self.file_vma().shareable
        anon = VMA(0, 4, SegmentKind.HEAP, VMAKind.ANON)
        assert not anon.shareable


class TestMM:
    def test_add_and_find(self):
        mm = MM()
        vma = VMA(100, 10, SegmentKind.HEAP, VMAKind.ANON)
        mm.add(vma)
        assert mm.find(105) is vma
        assert mm.find(99) is None
        assert mm.find(110) is None

    def test_overlap_rejected(self):
        mm = MM()
        mm.add(VMA(100, 10, SegmentKind.HEAP, VMAKind.ANON))
        with pytest.raises(ValueError):
            mm.add(VMA(105, 10, SegmentKind.HEAP, VMAKind.ANON))
        with pytest.raises(ValueError):
            mm.add(VMA(95, 10, SegmentKind.HEAP, VMAKind.ANON))

    def test_adjacent_ok(self):
        mm = MM()
        mm.add(VMA(100, 10, SegmentKind.HEAP, VMAKind.ANON))
        mm.add(VMA(110, 10, SegmentKind.HEAP, VMAKind.ANON))
        assert len(mm) == 2

    def test_find_with_many_vmas(self):
        mm = MM()
        for i in range(20):
            mm.add(VMA(i * 100, 50, SegmentKind.HEAP, VMAKind.ANON))
        assert mm.find(542).start_vpn == 500
        assert mm.find(560) is None

    def test_remove(self):
        mm = MM()
        vma = mm.add(VMA(0, 10, SegmentKind.HEAP, VMAKind.ANON))
        mm.remove(vma)
        assert mm.find(5) is None

    def test_clone_into(self):
        mm = MM()
        mm.add(VMA(0, 10, SegmentKind.HEAP, VMAKind.ANON))
        other = MM()
        mm.clone_into(other)
        assert len(other) == 1
        assert other.find(5) is not mm.find(5)  # copies, not aliases

    def test_total_pages(self):
        mm = MM()
        mm.add(VMA(0, 10, SegmentKind.HEAP, VMAKind.ANON))
        mm.add(VMA(100, 5, SegmentKind.HEAP, VMAKind.ANON))
        assert mm.total_pages == 15


class TestLayout:
    def test_canonical_bases(self):
        layout = canonical_layout()
        for segment in SegmentKind:
            assert layout.base(segment) == CANONICAL_BASES[segment]

    def test_randomized_is_2mb_aligned_offset(self):
        layout = randomized_layout(seed=99)
        for segment in SegmentKind:
            delta = layout.base(segment) - CANONICAL_BASES[segment]
            assert delta % ENTRIES_PER_TABLE == 0
            assert 0 <= delta < ASLR_SLOTS * ENTRIES_PER_TABLE

    def test_deterministic_by_seed(self):
        assert randomized_layout(7) == randomized_layout(7)
        assert randomized_layout(7) != randomized_layout(8)

    def test_vpn(self):
        layout = randomized_layout(1)
        assert (layout.vpn(SegmentKind.HEAP, 10)
                == layout.base(SegmentKind.HEAP) + 10)

    def test_segment_of(self):
        layout = randomized_layout(3)
        vpn = layout.vpn(SegmentKind.LIBS, 1000)
        assert layout.segment_of(vpn) is SegmentKind.LIBS

    def test_diff(self):
        a = randomized_layout(1)
        b = randomized_layout(2)
        diff = a.diff(b)
        seg = SegmentKind.STACK
        assert a.base(seg) + diff[seg] == b.base(seg)


class TestPageCache:
    def test_fill_and_lookup(self):
        cache = PageCache(FrameAllocator())
        file = FileObject("f", 8)
        assert cache.lookup(file, 0) is None
        ppn = cache.fill(file, 0)
        assert cache.lookup(file, 0) == ppn

    def test_fill_idempotent(self):
        cache = PageCache(FrameAllocator())
        file = FileObject("f", 8)
        assert cache.fill(file, 3) == cache.fill(file, 3)

    def test_beyond_eof_rejected(self):
        cache = PageCache(FrameAllocator())
        file = FileObject("f", 8)
        with pytest.raises(ValueError):
            cache.fill(file, 8)

    def test_populate(self):
        cache = PageCache(FrameAllocator())
        file = FileObject("f", 8)
        cache.populate(file)
        assert cache.cached_pages(file) == 8

    def test_distinct_files_distinct_frames(self):
        alloc = FrameAllocator()
        cache = PageCache(alloc)
        a, b = FileObject("a", 2), FileObject("b", 2)
        assert cache.fill(a, 0) != cache.fill(b, 0)

    def test_stats(self):
        cache = PageCache(FrameAllocator())
        file = FileObject("f", 2)
        cache.lookup(file, 0)
        cache.fill(file, 0)
        cache.lookup(file, 0)
        assert cache.lookups == 2
        assert cache.hit_count == 1
        assert cache.fills == 1


class TestLRU:
    def test_promotion_on_second_touch(self):
        lru = ActiveInactiveLRU()
        lru.touch(1)
        assert not lru.is_active(1)
        lru.touch(1)
        assert lru.is_active(1)

    def test_capacity_demotion(self):
        lru = ActiveInactiveLRU(active_capacity=2)
        for ppn in (1, 2, 3):
            lru.touch(ppn)
            lru.touch(ppn)
        assert lru.active_count == 2
        assert not lru.is_active(1)  # oldest demoted

    def test_drop(self):
        lru = ActiveInactiveLRU()
        lru.touch(1)
        lru.touch(1)
        lru.drop(1)
        assert not lru.is_tracked(1)

    def test_reset(self):
        lru = ActiveInactiveLRU()
        lru.touch(1)
        lru.reset()
        assert lru.inactive_count == 0

    def test_counts(self):
        lru = ActiveInactiveLRU()
        lru.touch(1)
        lru.touch(2)
        lru.touch(2)
        assert lru.inactive_count == 1
        assert lru.active_count == 1
        assert lru.promotions == 1
