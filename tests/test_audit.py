"""Tests for the kernel auditor — clean states pass, corrupted fail —
plus audits after every major scenario."""

import pytest

from repro.kernel.audit import AuditError, audit_kernel
from repro.kernel.vma import SegmentKind

from conftest import MiniSystem

HEAP, MMAP, DATA = SegmentKind.HEAP, SegmentKind.MMAP, SegmentKind.DATA


class TestCleanStates:
    def test_fresh_system(self, mini_any):
        assert audit_kernel(mini_any.kernel) == []

    def test_after_faults(self, mini_any):
        sys = mini_any
        for off in range(16):
            sys.touch(sys.zygote, MMAP, off)
            sys.touch(sys.zygote, HEAP, off, write=True)
        assert audit_kernel(sys.kernel) == []

    def test_after_forks(self, mini_any):
        sys = mini_any
        sys.touch(sys.zygote, MMAP, 0)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        for i in range(3):
            sys.fork("c%d" % i)
        assert audit_kernel(sys.kernel) == []

    def test_after_cow_storm(self, mini_babelfish):
        sys = mini_babelfish
        for off in range(4):
            sys.touch(sys.zygote, HEAP, off, write=True)
        children = [sys.fork("c%d" % i) for i in range(4)]
        for i, child in enumerate(children):
            sys.touch(child, HEAP, i, write=True)
        assert audit_kernel(sys.kernel) == []

    def test_after_exits(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        children = [sys.fork("c%d" % i) for i in range(3)]
        for child in children:
            sys.touch(child, HEAP, 0, write=True)
        for child in children[:2]:
            sys.kernel.exit_process(child)
        assert audit_kernel(sys.kernel) == []

    def test_after_munmap(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        a = sys.fork("a")
        vma = a.mm.find(sys.vpn(a, MMAP, 0))
        sys.kernel.munmap(a, vma)
        assert audit_kernel(sys.kernel) == []

    def test_after_revert(self):
        sys = MiniSystem(babelfish=True, max_writers=2)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        children = [sys.fork("c%d" % i) for i in range(3)]
        for child in children:
            sys.touch(child, HEAP, 0, write=True)
        assert sys.policy.reverts == 1
        assert audit_kernel(sys.kernel) == []

    def test_after_full_experiment(self):
        from repro.experiments.common import (
            build_environment, config_by_name, deploy_app, measure_app)
        from repro.workloads.profiles import APP_PROFILES
        env = build_environment(config_by_name("BabelFish"), cores=1)
        deployment = deploy_app(env, APP_PROFILES["httpd"])
        measure_app(env, deployment, scale=0.05)
        assert audit_kernel(env.kernel) == []


class TestCorruptionDetected:
    def test_sharer_count_corruption(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        a = sys.fork("a")
        vpn = sys.vpn(a, MMAP, 0)
        table = a.tables.walk(vpn)[-1][1]
        table.sharers += 1
        with pytest.raises(AuditError) as excinfo:
            audit_kernel(sys.kernel)
        assert "sharers mismatch" in str(excinfo.value)

    def test_refcount_corruption(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, HEAP, 0, write=True)
        sys.kernel.allocator.incref(pte.ppn)
        with pytest.raises(AuditError) as excinfo:
            audit_kernel(sys.kernel)
        assert "refcount" in str(excinfo.value)

    def test_registry_corruption(self, mini_babelfish):
        sys = mini_babelfish
        a = sys.fork("a")
        sys.touch(a, MMAP, 600)
        key = next(iter(sys.policy.registry))
        table, backing = sys.policy.registry[key]
        sys.policy.registry[("bogus", 1, 999)] = (table, backing)
        with pytest.raises(AuditError):
            audit_kernel(sys.kernel)

    def test_cross_ccid_leak_detected(self, mini_babelfish):
        sys = mini_babelfish
        a = sys.fork("a")
        sys.touch(a, MMAP, 600)
        # Manufacture a second group and graft a's table into it.
        other = sys.registry.group_for("tenant", "other-app")
        intruder = sys.kernel.spawn(other.ccid, sys.layout, name="intruder")
        vpn = sys.vpn(a, MMAP, 600)
        table = a.tables.walk(vpn)[-1][1]
        from repro.kernel.page_table import TableRef, table_index, PMD
        itable, idx, _ = intruder.tables.ensure_path(vpn)
        # Replace the private table with a's shared one.
        path = intruder.tables.walk(vpn)
        _lvl, pmd_table, pmd_idx, _e = path[-2] if len(path) >= 2 else path[-1]
        pmd_parent = intruder.tables.walk(vpn)[2][1]
        pmd_parent.entries[table_index(vpn, PMD)] = TableRef(table)
        table.sharers += 1
        with pytest.raises(AuditError) as excinfo:
            audit_kernel(sys.kernel)
        assert "crosses CCIDs" in str(excinfo.value)

    def test_findings_without_raise(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, HEAP, 0, write=True)
        sys.kernel.allocator.incref(pte.ppn)
        findings = audit_kernel(sys.kernel, raise_on_failure=False)
        assert findings
