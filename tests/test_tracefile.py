"""Tests for trace serialization and replay equivalence."""

import pytest

from repro.hw.params import baseline_machine
from repro.kernel.vma import SegmentKind
from repro.sim.config import baseline_config
from repro.sim.simulator import Simulator
from repro.workloads.dataserving import serving_trace
from repro.workloads.profiles import APP_PROFILES
from repro.workloads.tracefile import load_trace, save_trace, trace_stats

from conftest import MiniSystem


def sample_records(requests=5):
    profile = APP_PROFILES["httpd"]
    return list(serving_trace(profile, 1, requests=requests))


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        records = sample_records()
        path = tmp_path / "trace.jsonl"
        count = save_trace(records, path)
        assert count == len(records)
        assert list(load_trace(path)) == records

    def test_bad_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[7, "heap", 0, 0, 1, null]\n')
        with pytest.raises(ValueError):
            list(load_trace(path))

    def test_bad_segment_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1, "nosuch", 0, 0, 1, null]\n')
        with pytest.raises(ValueError):
            list(load_trace(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('\n[1, "heap", 3, 0, 1, null]\n\n')
        records = list(load_trace(path))
        assert len(records) == 1
        assert records[0][1] is SegmentKind.HEAP


class TestReplayEquivalence:
    def test_replayed_trace_gives_identical_run(self, tmp_path):
        records = [(1, SegmentKind.MMAP, i % 32, i % 64, 10, i)
                   for i in range(200)]
        path = tmp_path / "trace.jsonl"
        save_trace(records, path)

        def run(trace):
            sys = MiniSystem(babelfish=False)
            sim = Simulator(baseline_machine(cores=1), baseline_config(),
                            sys.kernel)
            child = sys.fork()
            sim.attach(child, trace, 0)
            return sim.run()

        live = run(iter(records))
        replayed = run(load_trace(path))
        assert live.total_cycles == replayed.total_cycles
        assert live.stats.l2_misses == replayed.stats.l2_misses


class TestStats:
    def test_trace_stats(self):
        records = sample_records(requests=10)
        stats = trace_stats(records)
        assert stats["records"] == len(records)
        assert stats["instructions"] > stats["records"]
        assert stats["requests"] == 10
        assert stats["footprint_pages"] > 0
        assert sum(stats["by_kind"].values()) == stats["records"]
