"""Tests for the workload generators."""

import collections
import itertools

import pytest

from repro.kernel.vma import SegmentKind
from repro.workloads.compute import compute_trace
from repro.workloads.dataserving import serving_trace
from repro.workloads.functions import function_input_pages, function_trace
from repro.workloads.profiles import (
    APP_PROFILES,
    COMPUTE_APPS,
    FUNCTION_PROFILES,
    SERVING_APPS,
)
from repro.workloads.ycsb import YCSBDriver
from repro.workloads.zipf import ZipfGenerator


class TestZipf:
    def test_range(self):
        gen = ZipfGenerator(100, 0.9, seed=1)
        for _ in range(2000):
            assert 0 <= gen.next() < 100

    def test_skew(self):
        gen = ZipfGenerator(1000, 0.99, seed=2)
        counts = collections.Counter(gen.sample(20_000))
        top = sum(counts[k] for k in range(10))
        assert top > 0.3 * 20_000  # head-heavy

    def test_theta_zero_uniform(self):
        gen = ZipfGenerator(100, 0.0, seed=3)
        counts = collections.Counter(gen.sample(50_000))
        assert max(counts.values()) < 3 * 50_000 / 100

    def test_deterministic_by_seed(self):
        a = ZipfGenerator(50, 0.9, seed=7).sample(100)
        b = ZipfGenerator(50, 0.9, seed=7).sample(100)
        assert a == b

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=1.0)

    def test_iter(self):
        gen = ZipfGenerator(10, 0.5, seed=1)
        values = list(itertools.islice(iter(gen), 5))
        assert len(values) == 5


class TestYCSB:
    def test_request_pages_in_range(self):
        driver = YCSBDriver(256, 0.9, write_frac=0.2, seed=1)
        for request in driver.requests(200):
            for page in request.reads + request.writes:
                assert 0 <= page < 256

    def test_request_ids_monotonic(self):
        driver = YCSBDriver(64, 0.5, seed=1, request_base=50)
        ids = [r.request_id for r in driver.requests(10)]
        assert ids == list(range(50, 60))

    def test_writes_respect_fraction(self):
        driver = YCSBDriver(64, 0.5, write_frac=0.0, seed=1)
        assert all(not r.writes for r in driver.requests(50))

    def test_hot_pages_shared_across_drivers(self):
        """Different clients (seeds) hammer the same hot pages — the
        cross-container overlap the paper highlights."""
        a = YCSBDriver(4096, 0.99, seed=1)
        b = YCSBDriver(4096, 0.99, seed=2)
        pages_a = collections.Counter()
        pages_b = collections.Counter()
        for request in a.requests(500):
            pages_a.update(request.reads)
        for request in b.requests(500):
            pages_b.update(request.reads)
        top_a = {p for p, _ in pages_a.most_common(10)}
        top_b = {p for p, _ in pages_b.most_common(10)}
        assert len(top_a & top_b) >= 5

    def test_variable_request_sizes(self):
        driver = YCSBDriver(64, 0.5, reads_per_request=4, seed=3)
        sizes = {len(r.reads) + len(r.writes) for r in driver.requests(300)}
        assert len(sizes) > 1
        assert max(sizes) <= 16


def record_ok(profile, record):
    kind, segment, page, line, gap, _rid = record
    assert kind in (0, 1, 2)
    assert isinstance(segment, SegmentKind)
    assert 0 <= line < 64
    assert gap >= 0
    return segment, page


class TestServingTrace:
    @pytest.mark.parametrize("app", SERVING_APPS)
    def test_records_well_formed(self, app):
        profile = APP_PROFILES[app]
        for record in serving_trace(profile, 1, requests=20):
            segment, page = record_ok(profile, record)
            if segment is SegmentKind.MMAP:
                assert page < profile.dataset_pages
            elif segment is SegmentKind.HEAP:
                assert page < profile.private_pages

    def test_request_tagging(self):
        profile = APP_PROFILES["mongodb"]
        tagged = list(serving_trace(profile, 1, requests=5,
                                    request_base=100))
        ids = {r[5] for r in tagged}
        assert ids == set(range(100, 105))
        untagged = list(serving_trace(profile, 1, requests=5,
                                      tag_requests=False))
        assert {r[5] for r in untagged} == {None}

    def test_deterministic(self):
        profile = APP_PROFILES["httpd"]
        a = list(serving_trace(profile, 2, requests=10))
        b = list(serving_trace(profile, 2, requests=10))
        assert a == b

    def test_containers_differ(self):
        profile = APP_PROFILES["httpd"]
        a = list(serving_trace(profile, 1, requests=10))
        b = list(serving_trace(profile, 2, requests=10))
        assert a != b


class TestComputeTrace:
    @pytest.mark.parametrize("app", COMPUTE_APPS)
    def test_records_well_formed(self, app):
        profile = APP_PROFILES[app]
        for record in compute_trace(profile, 1, iterations=20):
            segment, page = record_ok(profile, record)
            if segment is SegmentKind.MMAP:
                assert page < profile.dataset_pages

    def test_no_request_ids(self):
        profile = APP_PROFILES["fio"]
        assert all(r[5] is None
                   for r in compute_trace(profile, 1, iterations=5))

    def test_graphchi_private_stream_structure(self):
        """The edge stream advances sequentially, with every other access
        revisiting data ~384 pages back (window re-reads)."""
        profile = APP_PROFILES["graphchi"]
        heap_pages = [r[2] for r in compute_trace(profile, 1, iterations=30)
                      if r[1] is SegmentKind.HEAP]
        window = profile.private_hot
        # Both interleaved subsequences (stream + lagged re-read) advance
        # sequentially, and the lag is ~384 pages.
        stream, lagged = heap_pages[0::2], heap_pages[1::2]
        stream_steps = [(b - a) % window for a, b in zip(stream, stream[1:])]
        assert stream_steps.count(1) > len(stream_steps) * 0.9
        lags = [(a - b) % window for a, b in zip(heap_pages, heap_pages[1:])]
        assert lags.count(384) > len(lags) * 0.4


class TestFunctionTrace:
    def test_input_pages(self):
        profile = FUNCTION_PROFILES["parse"]
        assert function_input_pages(profile, dense=True) == profile.input_pages
        assert (function_input_pages(profile, dense=False)
                == profile.input_pages * profile.sparse_factor)

    def test_sparse_touches_more_pages_same_work(self):
        profile = FUNCTION_PROFILES["hash"]
        dense = list(function_trace(profile, True, 1, 5120, 1024))
        sparse = list(function_trace(profile, False, 1, 5120, 1024))
        dense_pages = {r[2] for r in dense if r[1] is SegmentKind.MMAP}
        sparse_pages = {r[2] for r in sparse if r[1] is SegmentKind.MMAP}
        assert len(sparse_pages) > 5 * len(dense_pages)
        # Same work: access counts within 2x.
        assert 0.5 < len(dense) / len(sparse) < 2.0

    def test_code_and_scratch_offsets_respected(self):
        profile = FUNCTION_PROFILES["marshal"]
        code_off, scratch_off = 5120, 1024
        for kind, segment, page, _l, _g, _r in function_trace(
                profile, True, 1, code_off, scratch_off):
            if segment is SegmentKind.LIBS and kind == 0:
                assert page < profile.lib_hot or (
                    code_off <= page < code_off + profile.code_pages)
            if segment is SegmentKind.MMAP and kind == 2:
                assert page >= scratch_off

    def test_finite(self):
        profile = FUNCTION_PROFILES["parse"]
        records = list(function_trace(profile, True, 1, 5120, 1024))
        assert 0 < len(records) < 200_000
