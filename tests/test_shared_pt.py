"""Tests for BabelFish's shared page tables (Sections III-B, IV-B, Appendix)."""

from repro.core.mask_page import region_of
from repro.kernel.fault import FaultType, InvalidationScope
from repro.kernel.page_table import PTE_LEVEL, pte_table_id
from repro.kernel.vma import SegmentKind, VMAKind

from conftest import MiniSystem

LIBS, MMAP, HEAP, DATA = (SegmentKind.LIBS, SegmentKind.MMAP,
                          SegmentKind.HEAP, SegmentKind.DATA)


def leaf_table(proc, vpn):
    path = proc.tables.walk(vpn)
    return path[-1][1]


class TestForkSharing:
    def test_fork_shares_pte_tables(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        child = sys.fork()
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        assert leaf_table(sys.zygote, vpn) is leaf_table(child, vpn)
        assert leaf_table(child, vpn).sharers == 2

    def test_fork_copies_upper_levels(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        child = sys.fork()
        assert child.tables.pgd is not sys.zygote.tables.pgd
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        child_path = child.tables.walk(vpn)
        parent_path = sys.zygote.tables.walk(vpn)
        # PGD/PUD/PMD tables differ; PTE table is the same object.
        for (child_step, parent_step) in zip(child_path[:-1], parent_path[:-1]):
            assert child_step[1] is not parent_step[1]
        assert child_path[-1][1] is parent_path[-1][1]

    def test_fork_cheaper_than_baseline(self):
        base = MiniSystem(babelfish=False)
        bf = MiniSystem(babelfish=True)
        for sys in (base, bf):
            for off in range(0, 512, 8):
                sys.touch(sys.zygote, MMAP, off)
        _c1, base_cycles = base.kernel.fork(base.zygote)
        _c2, bf_cycles = bf.kernel.fork(bf.zygote)
        assert bf_cycles < base_cycles

    def test_population_visible_to_existing_sibling(self, mini_babelfish):
        """Figure 6/7: the second container takes no fault at all for a
        page the first container populated in the shared table."""
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)  # table exists before fork
        a, b = sys.fork("a"), sys.fork("b")
        sys.touch(a, MMAP, 1)
        b.minor_faults = 0
        pte = b.tables.lookup_pte(sys.vpn(b, MMAP, 1))
        assert pte is not None and pte.present
        assert b.minor_faults == 0


class TestFaultTimeAttach:
    def test_attach_on_shared_file_fault(self, mini_babelfish):
        sys = mini_babelfish
        a, b = sys.fork("a"), sys.fork("b")
        # No table existed at fork; 'a' creates + registers, 'b' attaches.
        sys.touch(a, MMAP, 600)
        before = sys.policy.attaches
        outcome = sys.kernel.handle_fault(b, sys.vpn(b, MMAP, 600))
        assert sys.policy.attaches == before + 1
        assert outcome.fault_type is FaultType.SPURIOUS
        vpn = sys.vpn(a, MMAP, 600)
        assert leaf_table(a, vpn) is leaf_table(b, vpn)

    def test_no_attach_for_different_file(self, mini_babelfish):
        sys = mini_babelfish
        a, b = sys.fork("a"), sys.fork("b")
        other = sys.kernel.create_file("other", 1024)
        sys.kernel.page_cache.populate(other)
        # 'b' maps a different file at the same group VPNs.
        vma = b.mm.find(sys.vpn(b, MMAP, 0))
        b.mm.remove(vma)
        sys.kernel.mmap(b, MMAP, 0, 1024, VMAKind.FILE_SHARED, file=other,
                        name="other")
        pa = sys.touch(a, MMAP, 600)
        pb = sys.touch(b, MMAP, 600)
        assert pa.ppn != pb.ppn
        vpn = sys.vpn(a, MMAP, 600)
        assert leaf_table(a, vpn) is not leaf_table(b, vpn)

    def test_no_attach_for_anon(self, mini_babelfish):
        sys = mini_babelfish
        a, b = sys.fork("a"), sys.fork("b")
        sys.touch(a, HEAP, 700, write=True)
        sys.touch(b, HEAP, 700, write=True)
        vpn = sys.vpn(a, HEAP, 700)
        assert leaf_table(a, vpn) is not leaf_table(b, vpn)


class TestCoW:
    def setup_cow(self, sys):
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        return a, b, sys.vpn(sys.zygote, HEAP, 0)

    def test_cow_creates_private_pte_page(self, mini_babelfish):
        sys = mini_babelfish
        a, b, vpn = self.setup_cow(sys)
        shared = leaf_table(a, vpn)
        outcome = sys.kernel.handle_fault(a, vpn, is_write=True)
        assert outcome.fault_type is FaultType.COW
        assert outcome.pte_page_copied
        private = leaf_table(a, vpn)
        assert private is not shared
        assert private.owned_by == a.pid
        assert leaf_table(b, vpn) is shared

    def test_cow_sets_mask_and_orpc(self, mini_babelfish):
        sys = mini_babelfish
        a, _b, vpn = self.setup_cow(sys)
        shared = leaf_table(a, vpn)
        sys.kernel.handle_fault(a, vpn, is_write=True)
        assert shared.orpc
        mask = sys.policy.mask_dir.mask_for(a.ccid, vpn)
        bit = a.pc_bits[region_of(vpn)]
        assert (mask >> bit) & 1

    def test_cow_invalidates_shared_entry_remotely(self, mini_babelfish):
        """Only the shared (O=0) entry is shot down remotely; the writer
        additionally drops its own stale private entry locally."""
        sys = mini_babelfish
        a, _b, vpn = self.setup_cow(sys)
        outcome = sys.kernel.handle_fault(a, vpn, is_write=True)
        scopes = [inv.scope for inv in outcome.invalidations]
        assert scopes.count(InvalidationScope.SHARED_ENTRY) == 1
        assert InvalidationScope.REGION_SHARED not in scopes
        assert all(inv.vpn == vpn for inv in outcome.invalidations)

    def test_other_sharers_keep_clean_page(self, mini_babelfish):
        sys = mini_babelfish
        a, b, vpn = self.setup_cow(sys)
        clean_ppn = b.tables.lookup_pte(vpn).ppn
        sys.kernel.handle_fault(a, vpn, is_write=True)
        assert b.tables.lookup_pte(vpn).ppn == clean_ppn
        assert a.tables.lookup_pte(vpn).ppn != clean_ppn

    def test_second_cow_in_same_range_reuses_private_table(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, HEAP, 0, write=True)
        sys.touch(sys.zygote, HEAP, 1, write=True)
        a = sys.fork("a")
        vpn0 = sys.vpn(a, HEAP, 0)
        vpn1 = sys.vpn(a, HEAP, 1)
        sys.kernel.handle_fault(a, vpn0, is_write=True)
        copies_before = sys.kernel.pte_pages_copied
        outcome = sys.kernel.handle_fault(a, vpn1, is_write=True)
        assert sys.kernel.pte_pages_copied == copies_before  # no new copy
        scopes = [inv.scope for inv in outcome.invalidations]
        assert InvalidationScope.SHARED_ENTRY in scopes

    def test_private_copy_has_cow_entries_for_rest(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, HEAP, 0, write=True)
        sys.touch(sys.zygote, HEAP, 1, write=True)
        a = sys.fork("a")
        sys.kernel.handle_fault(a, sys.vpn(a, HEAP, 0), is_write=True)
        # Page 1 in the private copy still points at the clean frame, CoW.
        pte1 = a.tables.lookup_pte(sys.vpn(a, HEAP, 1))
        zpte1 = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 1))
        assert pte1.ppn == zpte1.ppn
        assert pte1.cow

    def test_frame_refcounts_survive_cow(self, mini_babelfish):
        sys = mini_babelfish
        a, b, vpn = self.setup_cow(sys)
        clean_ppn = b.tables.lookup_pte(vpn).ppn
        sys.kernel.handle_fault(a, vpn, is_write=True)
        # Clean frame: shared table ref + a's private-copy refs dropped for
        # the broken page but kept... it must still be live.
        assert sys.kernel.allocator.refcount(clean_ppn) >= 1


class TestPrivateInstall:
    def test_anon_install_privatizes_shared_table(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, HEAP, 0, write=True)  # heap table exists
        a, b = sys.fork("a"), sys.fork("b")
        # First touch of a *new* heap page by 'a' must not install into
        # the shared table where 'b' would see it.
        pa = sys.touch(a, HEAP, 3, write=True)
        assert b.tables.lookup_pte(sys.vpn(b, HEAP, 3)) is None
        pb = sys.touch(b, HEAP, 3, write=True)
        assert pa.ppn != pb.ppn

    def test_file_private_write_privatizes(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, DATA, 0)
        a, b = sys.fork("a"), sys.fork("b")
        pa = sys.touch(a, DATA, 1, write=True)
        pte_b = b.tables.lookup_pte(sys.vpn(b, DATA, 1))
        assert pte_b is None or pte_b.ppn != pa.ppn


class TestRevert:
    def test_33rd_writer_reverts_region(self):
        sys = MiniSystem(babelfish=True, max_writers=4)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        children = [sys.fork("c%d" % i) for i in range(5)]
        vpn = sys.vpn(sys.zygote, HEAP, 0)
        for child in children[:4]:
            sys.kernel.handle_fault(child, vpn, is_write=True)
        assert sys.policy.reverts == 0
        outcome = sys.kernel.handle_fault(children[4], vpn, is_write=True)
        assert sys.policy.reverts == 1
        scopes = {inv.scope for inv in outcome.invalidations}
        assert InvalidationScope.REGION_SHARED in scopes

    def test_after_revert_all_private(self):
        sys = MiniSystem(babelfish=True, max_writers=2)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        children = [sys.fork("c%d" % i) for i in range(3)]
        vpn = sys.vpn(sys.zygote, HEAP, 0)
        for child in children:
            sys.kernel.handle_fault(child, vpn, is_write=True)
        for proc in [sys.zygote] + children:
            table = leaf_table(proc, vpn)
            assert table.owned_by in (proc.pid, None)
            assert not table.is_shared or table.owned_by is None

    def test_revert_isolation_preserved(self):
        sys = MiniSystem(babelfish=True, max_writers=2)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        children = [sys.fork("c%d" % i) for i in range(3)]
        ppns = set()
        for child in children:
            pte = sys.touch(child, HEAP, 0, write=True)
            ppns.add(pte.ppn)
        assert len(ppns) == 3


class TestFillInfo:
    def test_shared_table_fill(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        child = sys.fork()
        vpn = sys.vpn(child, MMAP, 0)
        table = leaf_table(child, vpn)
        o_bit, orpc, mask = sys.policy.fill_info(child, table, vpn)
        assert not o_bit and not orpc and mask == 0

    def test_private_table_fill_is_owned(self, mini_babelfish):
        sys = mini_babelfish
        child = sys.fork()
        sys.touch(child, HEAP, 900, write=True)
        vpn = sys.vpn(child, HEAP, 900)
        table = leaf_table(child, vpn)
        o_bit, _orpc, _mask = sys.policy.fill_info(child, table, vpn)
        assert o_bit

    def test_orpc_fill_carries_mask(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        vpn = sys.vpn(a, HEAP, 0)
        sys.kernel.handle_fault(a, vpn, is_write=True)
        shared = leaf_table(b, vpn)
        o_bit, orpc, mask = sys.policy.fill_info(b, shared, vpn)
        assert not o_bit and orpc and mask != 0


class TestTeardown:
    def test_last_sharer_frees_table(self, mini_babelfish):
        sys = mini_babelfish
        a, b = sys.fork("a"), sys.fork("b")
        sys.touch(a, MMAP, 600)
        sys.touch(b, MMAP, 600)
        vpn = sys.vpn(a, MMAP, 600)
        key = (a.ccid, PTE_LEVEL, pte_table_id(vpn))
        assert key in sys.policy.registry
        sys.kernel.exit_process(a)
        assert key in sys.policy.registry  # b still shares
        sys.kernel.exit_process(b)
        assert key not in sys.policy.registry

    def test_zygote_exit_keeps_children_tables(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        child = sys.fork()
        vpn = sys.vpn(child, MMAP, 0)
        sys.kernel.exit_process(sys.zygote)
        pte = child.tables.lookup_pte(vpn)
        assert pte is not None and pte.present
