"""Unit tests for the repo-aware lint engine and every rule.

Each rule gets a positive case (a synthetic snippet that must be flagged)
and a suppressed case (the same snippet with ``# bfa: disable=RULE``).
"""

import textwrap

from repro.analysis.findings import Severity
from repro.analysis.lint.engine import LintEngine, ModuleInfo


def lint(source, path="src/repro/sim/synthetic.py"):
    return LintEngine().lint_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestEngine:
    def test_clean_module_has_no_findings(self):
        assert lint("x = 1\n") == []

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == ["BF000"]

    def test_bare_disable_suppresses_everything(self):
        findings = lint("assert x  # bfa: disable -- covered by BF000 test\n")
        assert findings == []

    def test_disable_of_other_rule_does_not_suppress(self):
        # The assert still fires, and the decoy suppression is itself
        # flagged as unused (BF001).
        findings = lint("assert x  # bfa: disable=BF101\n")
        assert rule_ids(findings) == ["BF001", "BF302"]

    def test_finding_structure(self):
        finding = lint("assert x\n")[0]
        assert finding.severity is Severity.ERROR
        assert finding.line == 1
        assert finding.path.endswith("synthetic.py")
        assert finding.as_dict()["rule"] == "BF302"
        assert "BF302" in finding.format()

    def test_module_info_package_detection(self):
        assert ModuleInfo("src/repro/hw/tlb.py").package == "hw"
        assert ModuleInfo("src/repro/report.py").package == ""
        assert ModuleInfo("tests/test_x.py").is_test
        assert ModuleInfo("src/repro/hw/tlb.py").in_sim_path


class TestUnusedSuppressionBF001:
    def test_unused_bare_disable_is_flagged(self):
        findings = lint("x = 1  # bfa: disable -- stale waiver\n")
        assert rule_ids(findings) == ["BF001"]
        assert findings[0].severity is Severity.WARNING

    def test_stale_rule_id_in_partially_used_list_is_flagged(self):
        findings = lint("assert x  # bfa: disable=BF302,BF301\n")
        assert rule_ids(findings) == ["BF001"]
        assert "BF301" in findings[0].message

    def test_fully_used_suppression_is_silent(self):
        assert lint("assert x  # bfa: disable=BF302 -- guard\n") == []

    def test_bf001_cannot_suppress_itself(self):
        # A bare disable absorbing nothing may not excuse its own BF001,
        # and listing BF001 explicitly is itself an unused suppression.
        findings = lint("x = 1  # bfa: disable\n")
        assert rule_ids(findings) == ["BF001"]
        findings = lint("x = 1  # bfa: disable=BF001\n")
        assert rule_ids(findings) == ["BF001"]

    def test_suppression_text_in_strings_is_inert(self):
        # Only COMMENT tokens count: docstrings documenting the syntax
        # neither suppress nor register as unused.
        assert lint('"""usage: # bfa: disable=BF101 -- why"""\n') == []
        assert lint('text = "# bfa: disable"\n') == []

    def test_directive_must_start_the_comment(self):
        assert lint("x = 1  # see also: bfa: disable=BF101\n") == []


class TestCrashResilienceBF002:
    def test_non_utf8_file_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "latin.py"
        bad.write_bytes(b"# comment \xe9\nx = 1\n")
        findings = LintEngine().lint_file(bad)
        assert rule_ids(findings) == ["BF002"]
        assert findings[0].severity is Severity.ERROR
        assert findings[0].path.endswith("latin.py")

    def test_null_bytes_are_a_finding_not_a_crash(self):
        findings = lint("x = 1\x00\n")
        assert rule_ids(findings) == ["BF002"]

    def test_unreadable_file_does_not_abort_the_tree(self, tmp_path):
        (tmp_path / "latin.py").write_bytes(b"\xff\xfe junk")
        (tmp_path / "ok.py").write_text("x = 1\n")
        findings = LintEngine().lint_paths([tmp_path])
        assert rule_ids(findings) == ["BF002"]


class TestLayeringBF101:
    def test_hw_may_not_import_kernel(self):
        findings = lint("from repro.kernel.kernel import Kernel\n",
                        path="src/repro/hw/tlb.py")
        assert rule_ids(findings) == ["BF101"]
        assert "repro.kernel" in findings[0].message

    def test_hw_may_not_import_sim_via_plain_import(self):
        findings = lint("import repro.sim.mmu\n", path="src/repro/hw/tlb.py")
        assert rule_ids(findings) == ["BF101"]

    def test_core_may_not_import_sim(self):
        findings = lint("from repro.sim.config import SimConfig\n",
                        path="src/repro/core/opc.py")
        assert rule_ids(findings) == ["BF101"]

    def test_workloads_may_not_reach_hw_internals(self):
        findings = lint("from repro.hw.tlb import SetAssocTLB\n",
                        path="src/repro/workloads/zipf.py")
        assert rule_ids(findings) == ["BF101"]

    def test_allowed_edges_pass(self):
        assert lint("from repro.hw.types import PageSize\n",
                    path="src/repro/core/opc.py") == []
        assert lint("from repro.kernel.vma import SegmentKind\n",
                    path="src/repro/workloads/zipf.py") == []
        assert lint("from repro.sim.mmu import MMU\n",
                    path="src/repro/experiments/common.py") == []

    def test_suppression(self):
        findings = lint(
            "from repro.sim.mmu import MMU"
            "  # bfa: disable=BF101 -- test shim\n",
            path="src/repro/core/opc.py")
        assert findings == []


class TestUnseededRandomBF201:
    def test_module_level_draw_flagged(self):
        findings = lint("import random\nrandom.randrange(64)\n",
                        path="src/repro/workloads/w.py")
        assert rule_ids(findings) == ["BF201"]

    def test_unseeded_random_instance_flagged(self):
        findings = lint("import random\nrng = random.Random()\n",
                        path="src/repro/containers/e.py")
        assert rule_ids(findings) == ["BF201"]

    def test_seeded_random_instance_passes(self):
        assert lint("import random\nrng = random.Random(7)\n",
                    path="src/repro/containers/e.py") == []

    def test_from_import_of_rng_function_flagged(self):
        findings = lint("from random import shuffle\n",
                        path="src/repro/workloads/w.py")
        assert rule_ids(findings) == ["BF201"]

    def test_suppression(self):
        assert lint("import random\nrandom.seed(0)"
                    "  # bfa: disable=BF201 -- CLI entropy reset\n",
                    path="src/repro/workloads/w.py") == []


class TestWallClockBF202:
    def test_time_time_in_sim_path_flagged(self):
        findings = lint("import time\nstart = time.time()\n",
                        path="src/repro/sim/simulator.py")
        assert rule_ids(findings) == ["BF202"]

    def test_perf_counter_flagged(self):
        findings = lint("import time\nt = time.perf_counter()\n",
                        path="src/repro/kernel/kernel.py")
        assert rule_ids(findings) == ["BF202"]

    def test_datetime_now_flagged(self):
        findings = lint("import datetime\nnow = datetime.datetime.now()\n",
                        path="src/repro/hw/dram.py")
        assert rule_ids(findings) == ["BF202"]

    def test_outside_sim_packages_allowed(self):
        # repro/report.py is a CLI: wall-clock progress output is fine.
        assert lint("import time\nstart = time.time()\n",
                    path="src/repro/report.py") == []
        assert lint("import time\nstart = time.time()\n",
                    path="src/repro/experiments/common.py") == []

    def test_suppression(self):
        assert lint("import time\nt = time.time()"
                    "  # bfa: disable=BF202 -- host-side profiling only\n",
                    path="src/repro/sim/simulator.py") == []


class TestUnorderedIterationBF203:
    def test_for_over_set_literal_flagged(self):
        findings = lint("for x in {1, 2, 3}:\n    pass\n")
        assert rule_ids(findings) == ["BF203"]

    def test_for_over_set_call_flagged(self):
        findings = lint("for x in set(items):\n    pass\n")
        assert rule_ids(findings) == ["BF203"]

    def test_comprehension_over_set_union_flagged(self):
        findings = lint("out = [x for x in a.union(b)]\n")
        assert rule_ids(findings) == ["BF203"]

    def test_sorted_set_passes(self):
        assert lint("for x in sorted(set(items)):\n    pass\n") == []

    def test_dict_iteration_passes(self):
        assert lint("for k in mapping.values():\n    pass\n") == []

    def test_outside_sim_packages_allowed(self):
        assert lint("for x in set(items):\n    pass\n",
                    path="src/repro/experiments/table2.py") == []

    def test_suppression(self):
        assert lint("for x in set(items):"
                    "  # bfa: disable=BF203 -- order-insensitive sum\n"
                    "    pass\n") == []


class TestFloatCyclesBF301:
    def test_division_into_cycles_flagged(self):
        findings = lint("cycles = total / count\n")
        assert rule_ids(findings) == ["BF301"]

    def test_float_literal_augassign_flagged(self):
        findings = lint("stats.walk_cycles += 1.5\n")
        assert rule_ids(findings) == ["BF301"]

    def test_int_wrapped_division_passes(self):
        assert lint("cycles = int(total / count)\n") == []
        assert lint("cycles = total // count\n") == []

    def test_cycles_function_return_flagged(self):
        findings = lint("def fault_cycles(a, b):\n    return a / b\n")
        assert rule_ids(findings) == ["BF301"]

    def test_non_cycles_variables_unconstrained(self):
        assert lint("latency = total / count\n") == []

    def test_outside_sim_packages_allowed(self):
        assert lint("cycles = total / count\n",
                    path="src/repro/experiments/fig9.py") == []

    def test_suppression(self):
        assert lint("cycles = total / count"
                    "  # bfa: disable=BF301 -- plotting average\n") == []


class TestBareAssertBF302:
    def test_assert_in_src_flagged(self):
        findings = lint("assert table.sharers > 0\n")
        assert rule_ids(findings) == ["BF302"]

    def test_assert_in_tests_allowed(self):
        assert lint("assert x == 1\n", path="tests/test_thing.py") == []

    def test_suppression(self):
        assert lint("assert x  # bfa: disable=BF302 -- perf-critical "
                    "debug guard\n") == []
