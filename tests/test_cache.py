"""Unit tests for the set-associative caches and hierarchy."""

import pytest

from repro.hw.cache import CacheHierarchy, SetAssociativeCache
from repro.hw.dram import DRAMModel
from repro.hw.params import CacheParams, baseline_machine
from repro.hw.types import AccessKind, MemoryLevel


def small_cache(size=1024, ways=2, line=64, cycles=2, name="T"):
    return SetAssociativeCache(CacheParams(name, size, ways, line, cycles))


class TestSetAssociativeCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x1000)
        cache.insert(0x1000)
        assert cache.lookup(0x1000)

    def test_same_line_hits(self):
        cache = small_cache()
        cache.insert(0x1000)
        assert cache.lookup(0x1004)
        assert cache.lookup(0x103F)

    def test_different_line_misses(self):
        cache = small_cache()
        cache.insert(0x1000)
        assert not cache.lookup(0x1040)

    def test_lru_eviction_order(self):
        cache = small_cache(size=256, ways=2)  # 2 sets
        sets = cache.num_sets
        # Three lines mapping to set 0.
        line = 64
        a, b, c = 0, sets * line, 2 * sets * line
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a)          # a is now MRU
        cache.insert(c)          # evicts b
        assert cache.lookup(a)
        assert not cache.lookup(b)
        assert cache.lookup(c)

    def test_eviction_counted(self):
        cache = small_cache(size=128, ways=1)
        line = 64
        cache.insert(0)
        cache.insert(cache.num_sets * line)
        assert cache.evictions == 1

    def test_dirty_writeback(self):
        cache = small_cache(size=128, ways=1)
        line = 64
        cache.insert(0, is_write=True)
        cache.insert(cache.num_sets * line)
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(size=128, ways=1)
        cache.insert(0, is_write=False)
        cache.insert(cache.num_sets * 64)
        assert cache.writebacks == 0

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(0x2000)
        cache.invalidate(0x2000)
        assert not cache.lookup(0x2000)

    def test_flush(self):
        cache = small_cache()
        for addr in range(0, 512, 64):
            cache.insert(addr)
        cache.flush()
        assert cache.occupancy == 0

    def test_occupancy_bounded_by_capacity(self):
        cache = small_cache(size=1024, ways=2)
        for addr in range(0, 1 << 16, 64):
            cache.insert(addr)
        assert cache.occupancy <= cache.num_sets * cache.ways

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheParams("bad", 192, 1, 64, 1))

    def test_hit_miss_counters(self):
        cache = small_cache()
        cache.lookup(0)
        cache.insert(0)
        cache.lookup(0)
        assert cache.misses == 1
        assert cache.hits == 1


class TestCacheHierarchy:
    def make(self, cores=2):
        machine = baseline_machine(cores=cores)
        return CacheHierarchy(machine, DRAMModel(machine.dram))

    def test_first_access_reaches_dram(self):
        hierarchy = self.make()
        cycles, level = hierarchy.access(0, 0x123456)
        assert level is MemoryLevel.DRAM
        assert cycles > 40

    def test_second_access_hits_l1(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x123456)
        cycles, level = hierarchy.access(0, 0x123456)
        assert level is MemoryLevel.L1
        assert cycles == hierarchy.l1d[0].params.access_cycles

    def test_cross_core_sharing_through_l3(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x9000)
        _cycles, level = hierarchy.access(1, 0x9000)
        assert level is MemoryLevel.L3

    def test_skip_l1_for_walker_requests(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x4000, skip_l1=True)
        # The line went to L2 but not L1.
        _cycles, level = hierarchy.access(0, 0x4000, skip_l1=True)
        assert level is MemoryLevel.L2
        cycles, level = hierarchy.access(0, 0x4000)
        assert level is MemoryLevel.L2

    def test_ifetch_uses_l1i(self):
        hierarchy = self.make()
        hierarchy.access(0, 0x8000, AccessKind.IFETCH)
        _c, level = hierarchy.access(0, 0x8000, AccessKind.IFETCH)
        assert level is MemoryLevel.L1
        assert hierarchy.l1i[0].hits == 1
        assert hierarchy.l1d[0].hits == 0

    def test_invalidate_line_everywhere(self):
        hierarchy = self.make()
        hierarchy.access(0, 0xA000)
        hierarchy.access(1, 0xA000)
        hierarchy.invalidate_line(0xA000)
        _c, level = hierarchy.access(0, 0xA000)
        assert level is MemoryLevel.DRAM

    def test_stats_keys(self):
        hierarchy = self.make()
        hierarchy.access(0, 0xB000)
        stats = hierarchy.stats()
        for key in ("l1d_hits", "l2_misses", "l3_hits"):
            assert key in stats

    def test_private_l2_isolation(self):
        hierarchy = self.make()
        hierarchy.access(0, 0xC000)
        # Core 1 misses its private L2 and hits shared L3.
        _c, level = hierarchy.access(1, 0xC000, skip_l1=True)
        assert level is MemoryLevel.L3
