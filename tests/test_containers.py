"""Tests for the container engine and FaaS platform."""

from repro.containers.image import ContainerImage, align_pages
from repro.core.aslr import ASLRMode
from repro.kernel.vma import SegmentKind
from repro.sim.config import babelfish_config

from repro.experiments.common import build_environment, config_by_name

IMAGE = ContainerImage(name="testapp", binary_pages=16, binary_data_pages=4,
                       lib_pages=64, lib_data_pages=8, infra_pages=32,
                       heap_pages=256, bringup_touch_pages=60)


def env_for(config_name="Baseline", cores=1):
    return build_environment(config_by_name(config_name), cores=cores)


class TestImage:
    def test_align_pages(self):
        assert align_pages(1) == 512
        assert align_pages(512) == 512
        assert align_pages(513) == 1024

    def test_materialize_creates_files(self):
        env = env_for()
        files = IMAGE.materialize(env.kernel)
        assert set(files) == {"binary", "binary_data", "libs", "lib_data",
                              "infra"}
        assert files["libs"].npages == 64
        # Pre-created image: page cache warm.
        assert env.kernel.page_cache.cached_pages(files["libs"]) == 64


class TestEngine:
    def test_zygote_created_once(self):
        env = env_for()
        a = env.engine.zygote_for(IMAGE)
        b = env.engine.zygote_for(IMAGE)
        assert a is b
        assert a.group.ccid > 0

    def test_zygote_mappings(self):
        env = env_for()
        state = env.engine.zygote_for(IMAGE)
        mm = state.proc.mm
        names = {vma.name for vma in mm}
        assert {"binary", "libs", "infra", "heap", "stack",
                "bin-data", "lib-data"} <= names

    def test_launch_forks_zygote(self):
        env = env_for()
        container, cycles = env.engine.launch(IMAGE)
        assert container.proc.parent is env.engine.zygote_for(IMAGE).proc
        assert container.proc in container.group.members
        assert cycles > 0

    def test_containers_share_ccid(self):
        env = env_for()
        a, _ = env.engine.launch(IMAGE)
        b, _ = env.engine.launch(IMAGE)
        assert a.proc.ccid == b.proc.ccid

    def test_distinct_users_distinct_groups(self):
        env = env_for()
        a, _ = env.engine.launch(IMAGE, user="alice")
        b, _ = env.engine.launch(IMAGE, user="bob")
        assert a.proc.ccid != b.proc.ccid

    def test_bringup_records_within_vmas(self):
        env = env_for()
        container, _ = env.engine.launch(IMAGE)
        for _kind, segment, page, line, gap, _rid in \
                env.engine.bringup_records(container):
            vpn = container.proc.vpn_group(segment, page)
            assert container.proc.mm.find(vpn) is not None, (segment, page)
            assert 0 <= line < 64
            assert gap >= 0

    def test_launch_timed_components(self):
        env = env_for()
        container, total = env.engine.launch_timed(IMAGE, env.sim)
        assert total >= env.engine.engine_overhead_cycles
        assert container.bringup_trace_cycles > 0

    def test_second_launch_cheaper_under_babelfish(self):
        base_env = env_for("Baseline")
        bf_env = env_for("BabelFish")
        results = {}
        for name, env in (("base", base_env), ("bf", bf_env)):
            env.engine.launch_timed(IMAGE, env.sim)  # leader
            _c, cycles = env.engine.launch_timed(IMAGE, env.sim)
            results[name] = cycles
        assert results["bf"] < results["base"]

    def test_stop_container(self):
        env = env_for()
        container, _ = env.engine.launch(IMAGE)
        env.engine.stop(container)
        assert not container.proc.alive
        assert container.proc not in container.group.members

    def test_aslr_hw_gives_unique_layouts(self):
        env = build_environment(babelfish_config(aslr_mode=ASLRMode.HW),
                                cores=1)
        a, _ = env.engine.launch(IMAGE)
        b, _ = env.engine.launch(IMAGE)
        assert a.proc.layout_proc != b.proc.layout_proc
        assert a.proc.layout_group == b.proc.layout_group

    def test_inherited_layouts_identical(self):
        env = env_for("Baseline")
        a, _ = env.engine.launch(IMAGE)
        b, _ = env.engine.launch(IMAGE)
        assert a.proc.layout_proc == b.proc.layout_proc


class TestFaaS:
    def platform(self, config_name="Baseline"):
        from repro.containers.faas import FaaSPlatform
        from repro.workloads.profiles import FAAS_BASE_IMAGE
        env = env_for(config_name)
        return env, FaaSPlatform(env.engine, FAAS_BASE_IMAGE)

    def test_start_function_maps_everything(self):
        env, platform = self.platform()
        fn = platform.start_function("hash", env.sim, input_pages=32,
                                     scratch_pages=8)
        proc = fn.container.proc
        names = {vma.name for vma in proc.mm}
        assert {"fn-code", "fn-input", "fn-scratch"} <= names
        assert fn.bringup_cycles > 0

    def test_functions_share_input_file(self):
        env, platform = self.platform()
        a = platform.start_function("hash", env.sim, input_pages=32)
        b = platform.start_function("parse", env.sim, input_pages=32)
        fa = a.container.proc.mm.find(
            a.container.proc.vpn_group(SegmentKind.MMAP, 0)).file
        fb = b.container.proc.mm.find(
            b.container.proc.vpn_group(SegmentKind.MMAP, 0)).file
        assert fa is fb

    def test_functions_have_distinct_code_slots(self):
        env, platform = self.platform()
        a = platform.start_function("hash", env.sim, input_pages=32)
        b = platform.start_function("parse", env.sim, input_pages=32)
        assert a.container.code_offset != b.container.code_offset

    def test_same_function_same_slot(self):
        env, platform = self.platform()
        a = platform.start_function("hash", env.sim, input_pages=32)
        b = platform.start_function("hash", env.sim, input_pages=32)
        assert a.container.code_offset == b.container.code_offset

    def test_function_code_isolated_across_functions(self):
        """Two different functions must never resolve to each other's
        code frames, even under BabelFish."""
        env, platform = self.platform("BabelFish")
        a = platform.start_function("hash", env.sim, input_pages=32)
        b = platform.start_function("parse", env.sim, input_pages=32)
        pa = env.kernel.touch(a.container.proc, a.container.proc.vpn_group(
            SegmentKind.LIBS, a.container.code_offset))
        pb = env.kernel.touch(b.container.proc, b.container.proc.vpn_group(
            SegmentKind.LIBS, b.container.code_offset))
        assert pa.ppn != pb.ppn
