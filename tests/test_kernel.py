"""Tests for the kernel facade: faults, fork/CoW, THP, teardown."""

import pytest

from repro.hw.types import PageSize
from repro.kernel.errors import ProtectionFault, SegmentationFault
from repro.kernel.fault import FaultType
from repro.kernel.frames import FrameKind
from repro.kernel.vma import SegmentKind, VMAKind

from conftest import MiniSystem

LIBS, MMAP, HEAP, DATA = (SegmentKind.LIBS, SegmentKind.MMAP,
                          SegmentKind.HEAP, SegmentKind.DATA)


class TestFaultHandling:
    def test_segfault_outside_vmas(self, mini_baseline):
        sys = mini_baseline
        with pytest.raises(SegmentationFault):
            sys.kernel.handle_fault(sys.zygote, 0xDEAD_BEEF_0)

    def test_first_touch_anon_is_minor(self, mini_baseline):
        sys = mini_baseline
        vpn = sys.vpn(sys.zygote, HEAP, 3)
        outcome = sys.kernel.handle_fault(sys.zygote, vpn, is_write=True)
        assert outcome.fault_type is FaultType.MINOR
        assert sys.zygote.minor_faults == 1

    def test_warm_file_page_is_minor(self, mini_baseline):
        sys = mini_baseline
        vpn = sys.vpn(sys.zygote, MMAP, 5)
        outcome = sys.kernel.handle_fault(sys.zygote, vpn)
        assert outcome.fault_type is FaultType.MINOR

    def test_cold_file_page_is_major(self, mini_baseline):
        sys = mini_baseline
        cold = sys.kernel.create_file("cold", 4)  # not populated
        sys.kernel.mmap(sys.zygote, MMAP, 2048, 4, VMAKind.FILE_SHARED,
                        file=cold, name="cold")
        vpn = sys.vpn(sys.zygote, MMAP, 2048)
        outcome = sys.kernel.handle_fault(sys.zygote, vpn)
        assert outcome.fault_type is FaultType.MAJOR
        assert outcome.cycles >= sys.kernel.costs.major_fault

    def test_shared_file_pages_share_frames(self, mini_baseline):
        sys = mini_baseline
        child = sys.fork()
        a = sys.touch(sys.zygote, MMAP, 7)
        b = sys.touch(child, MMAP, 7)
        assert a.ppn == b.ppn

    def test_private_read_maps_shared_then_cow_on_write(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, DATA, 1)
        assert pte.cow and not pte.writable
        shared_ppn = pte.ppn
        pte2 = sys.touch(sys.zygote, DATA, 1, write=True)
        assert pte2.writable and not pte2.cow
        assert pte2.ppn != shared_ppn
        assert sys.zygote.cow_faults == 1

    def test_private_write_fault_allocates_immediately(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, DATA, 2, write=True)
        assert pte.writable and not pte.cow
        assert sys.kernel.page_cache.lookup(sys.bindata, 2) != pte.ppn

    def test_write_to_readonly_raises(self, mini_baseline):
        sys = mini_baseline
        sys.touch(sys.zygote, LIBS, 0)
        with pytest.raises(ProtectionFault):
            sys.kernel.handle_fault(sys.zygote,
                                    sys.vpn(sys.zygote, LIBS, 0),
                                    is_write=True)

    def test_spurious_fault_cheap(self, mini_baseline):
        sys = mini_baseline
        vpn = sys.vpn(sys.zygote, MMAP, 9)
        sys.kernel.handle_fault(sys.zygote, vpn)
        outcome = sys.kernel.handle_fault(sys.zygote, vpn)
        assert outcome.fault_type is FaultType.SPURIOUS
        assert outcome.cycles < sys.kernel.costs.minor_fault


class TestForkCow:
    def test_fork_write_protects_anon(self, mini_any):
        sys = mini_any
        sys.touch(sys.zygote, HEAP, 0, write=True)
        child = sys.fork()
        parent_pte = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 0))
        child_pte = child.tables.lookup_pte(sys.vpn(child, HEAP, 0))
        assert parent_pte.cow and not parent_pte.writable
        assert child_pte.cow
        assert parent_pte.ppn == child_pte.ppn

    def test_cow_break_diverges(self, mini_any):
        sys = mini_any
        sys.touch(sys.zygote, HEAP, 1, write=True)
        child = sys.fork()
        child_pte = sys.touch(child, HEAP, 1, write=True)
        parent_pte = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 1))
        assert child_pte.ppn != parent_pte.ppn
        assert child_pte.writable and not child_pte.cow

    def test_anon_isolation_across_siblings(self, mini_any):
        """The critical containment property: two containers' private
        writes must land in different frames, under both policies."""
        sys = mini_any
        a, b = sys.fork("a"), sys.fork("b")
        pa = sys.touch(a, HEAP, 42, write=True)
        pb = sys.touch(b, HEAP, 42, write=True)
        assert pa.ppn != pb.ppn
        # And the zygote sees neither.
        zp = sys.touch(sys.zygote, HEAP, 42, write=True)
        assert zp.ppn not in (pa.ppn, pb.ppn)

    def test_file_shared_not_cow_on_fork(self, mini_any):
        sys = mini_any
        sys.touch(sys.zygote, MMAP, 3, write=True)
        child = sys.fork()
        pte = child.tables.lookup_pte(sys.vpn(child, MMAP, 3))
        assert pte.writable and not pte.cow

    def test_fork_increfs_frames(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, HEAP, 2, write=True)
        before = sys.kernel.allocator.refcount(pte.ppn)
        sys.fork()
        assert sys.kernel.allocator.refcount(pte.ppn) == before + 1

    def test_baseline_fork_copies_tables(self, mini_baseline):
        sys = mini_baseline
        sys.touch(sys.zygote, HEAP, 0)
        before = sys.kernel.allocator.count(FrameKind.PAGE_TABLE)
        sys.fork()
        after = sys.kernel.allocator.count(FrameKind.PAGE_TABLE)
        assert after - before >= 4  # full private tree

    def test_fork_cost_scales_with_copies(self, mini_baseline):
        sys = mini_baseline
        for off in range(0, 600, 10):
            sys.touch(sys.zygote, MMAP, off)
        _child, cycles = sys.kernel.fork(sys.zygote)
        assert cycles > sys.kernel.costs.fork_base


class TestTHP:
    def huge_setup(self, sys):
        sys.kernel.mmap(sys.zygote, HEAP, 2048, 1024, VMAKind.ANON,
                        huge_ok=True, name="thp")
        return sys.vpn(sys.zygote, HEAP, 2048)

    def test_huge_allocation(self, mini_baseline):
        sys = mini_baseline
        vpn = self.huge_setup(sys)
        pte = sys.touch(sys.zygote, HEAP, 2048, write=True)
        assert pte.page_size is PageSize.SIZE_2M
        # The whole 2MB block resolves through the single leaf.
        assert sys.zygote.tables.lookup_pte(vpn + 17) is pte

    def test_huge_disabled_by_config(self):
        sys = MiniSystem(babelfish=False, thp=False)
        sys.kernel.mmap(sys.zygote, HEAP, 2048, 1024, VMAKind.ANON,
                        huge_ok=True, name="thp")
        pte = sys.touch(sys.zygote, HEAP, 2048, write=True)
        assert pte.page_size is PageSize.SIZE_4K

    def test_huge_cow_across_fork(self, mini_any):
        sys = mini_any
        self.huge_setup(sys)
        sys.touch(sys.zygote, HEAP, 2048, write=True)
        child = sys.fork()
        cp = sys.touch(child, HEAP, 2048 + 5, write=True)
        zp = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 2048))
        assert cp.ppn != zp.ppn
        assert cp.page_size is PageSize.SIZE_2M

    def test_unaligned_tail_uses_4k(self, mini_baseline):
        sys = mini_baseline
        sys.kernel.mmap(sys.zygote, HEAP, 4096, 600, VMAKind.ANON,
                        huge_ok=True, name="thp2")
        # Only one full 2MB block fits; the tail takes 4K pages.
        tail = sys.touch(sys.zygote, HEAP, 4096 + 520, write=True)
        assert tail.page_size is PageSize.SIZE_4K


class TestExit:
    def test_exit_frees_private_frames(self, mini_baseline):
        sys = mini_baseline
        child = sys.fork()
        pte = sys.touch(child, HEAP, 9, write=True)
        ppn = pte.ppn
        sys.kernel.exit_process(child)
        assert sys.kernel.allocator.refcount(ppn) == 0

    def test_exit_keeps_shared_file_frames(self, mini_baseline):
        sys = mini_baseline
        child = sys.fork()
        pte = sys.touch(child, MMAP, 11)
        ppn = pte.ppn
        sys.kernel.exit_process(child)
        # Page cache still holds its reference.
        assert sys.kernel.allocator.refcount(ppn) >= 1

    def test_exit_frees_table_frames(self, mini_any):
        sys = mini_any
        child = sys.fork()
        sys.touch(child, HEAP, 5, write=True)
        before = sys.kernel.allocator.count(FrameKind.PAGE_TABLE)
        sys.kernel.exit_process(child)
        assert sys.kernel.allocator.count(FrameKind.PAGE_TABLE) < before

    def test_exit_removes_from_process_table(self, mini_baseline):
        sys = mini_baseline
        child = sys.fork()
        sys.kernel.exit_process(child)
        assert child.pid not in sys.kernel.processes
        assert not child.alive


class TestCounters:
    def test_fault_counters_reset(self, mini_baseline):
        sys = mini_baseline
        sys.touch(sys.zygote, HEAP, 0, write=True)
        sys.kernel.reset_fault_counters()
        assert sys.kernel.total_minor_faults == 0

    def test_clear_accessed_bits(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, MMAP, 0)
        assert pte.accessed
        sys.kernel.clear_accessed_bits()
        assert not pte.accessed
