"""Coverage for smaller pieces: process, costs, errors, engine details,
fig9 classification edge cases, sim config properties."""

import dataclasses

import pytest

from repro.core.aslr import ASLRMode
from repro.kernel.costs import KernelCosts
from repro.kernel.errors import (
    OutOfMemoryError,
    ProtectionFault,
    SegmentationFault,
    SimulationError,
)
from repro.kernel.frames import FrameAllocator
from repro.kernel.process import Process
from repro.kernel.vma import SegmentKind
from repro.kernel.aslr_layout import randomized_layout
from repro.sim.config import (
    babelfish_config,
    babelfish_pt_only_config,
    babelfish_tlb_only_config,
    baseline_config,
    bigtlb_config,
)


class TestProcess:
    def make(self):
        layout = randomized_layout(1)
        return Process(FrameAllocator(), ccid=3, layout_group=layout)

    def test_pcid_within_12_bits(self):
        proc = self.make()
        assert 0 <= proc.pcid < 4096

    def test_pids_unique(self):
        layout = randomized_layout(1)
        alloc = FrameAllocator()
        pids = {Process(alloc, 1, layout).pid for _ in range(50)}
        assert len(pids) == 50

    def test_default_proc_layout_is_group(self):
        proc = self.make()
        assert proc.layout_proc is proc.layout_group
        assert (proc.vpn_proc(SegmentKind.HEAP, 5)
                == proc.vpn_group(SegmentKind.HEAP, 5))

    def test_distinct_layouts_give_distinct_vpns(self):
        group = randomized_layout(1)
        own = randomized_layout(2)
        proc = Process(FrameAllocator(), 1, group, own)
        assert (proc.vpn_proc(SegmentKind.HEAP, 5)
                != proc.vpn_group(SegmentKind.HEAP, 5))

    def test_pc_bit_default_none(self):
        proc = self.make()
        assert proc.pc_bit(123) is None
        proc.pc_bits[123] = 7
        assert proc.pc_bit(123) == 7

    def test_fault_counter_totals(self):
        proc = self.make()
        proc.minor_faults = 2
        proc.major_faults = 1
        proc.cow_faults = 3
        assert proc.total_faults == 6


class TestCosts:
    def test_defaults_sane(self):
        costs = KernelCosts()
        assert costs.major_fault > costs.minor_fault > 0
        assert costs.fork_base > costs.context_switch
        assert costs.tlb_shootdown > 0

    def test_frozen(self):
        costs = KernelCosts()
        with pytest.raises(dataclasses.FrozenInstanceError):
            costs.minor_fault = 1

    def test_custom_costs_flow_into_outcomes(self):
        costs = KernelCosts(minor_fault=7777)
        from repro.kernel.kernel import Kernel, KernelConfig
        from repro.core.ccid import CCIDRegistry
        from repro.kernel.vma import VMAKind
        kernel = Kernel(KernelConfig(costs=costs))
        group = CCIDRegistry().group_for("u", "a")
        proc = kernel.spawn(group.ccid, randomized_layout(1))
        kernel.mmap(proc, SegmentKind.HEAP, 0, 8, VMAKind.ANON, name="h")
        outcome = kernel.handle_fault(
            proc, proc.vpn_group(SegmentKind.HEAP, 0), is_write=True)
        assert outcome.cycles >= 7777


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SegmentationFault, SimulationError)
        assert issubclass(ProtectionFault, SimulationError)
        assert issubclass(OutOfMemoryError, SimulationError)

    def test_messages_carry_context(self):
        err = SegmentationFault(42, 0xABC)
        assert "42" in str(err) and "0xabc" in str(err)
        assert err.pid == 42 and err.vpn == 0xABC
        perr = ProtectionFault(7, 0x10, reason="exec of NX page")
        assert "exec of NX page" in str(perr)


class TestSimConfigs:
    def test_preset_flags(self):
        assert not baseline_config().is_babelfish
        assert babelfish_config().is_babelfish
        pt = babelfish_pt_only_config()
        assert pt.babelfish_pt and not pt.babelfish_tlb
        tlb = babelfish_tlb_only_config()
        assert tlb.babelfish_tlb and not tlb.babelfish_pt
        assert bigtlb_config().l2_tlb_scale == 2.0

    def test_share_l1_rules(self):
        assert not babelfish_config(aslr_mode=ASLRMode.HW).share_l1_tlb
        assert babelfish_config(aslr_mode=ASLRMode.SW).share_l1_tlb
        assert not baseline_config().share_l1_tlb

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            baseline_config().name = "x"

    def test_overrides(self):
        config = babelfish_config(quantum_instructions=5)
        assert config.quantum_instructions == 5


class TestOOMBehaviour:
    def test_fault_raises_oom_cleanly(self):
        from repro.kernel.kernel import Kernel, KernelConfig
        from repro.core.ccid import CCIDRegistry
        from repro.kernel.vma import VMAKind
        kernel = Kernel(KernelConfig(),
                        allocator=FrameAllocator(total_frames=8))
        group = CCIDRegistry().group_for("u", "a")
        proc = kernel.spawn(group.ccid, randomized_layout(1))
        kernel.mmap(proc, SegmentKind.HEAP, 0, 64, VMAKind.ANON, name="h")
        with pytest.raises(OutOfMemoryError):
            for off in range(64):
                kernel.handle_fault(proc,
                                    proc.vpn_group(SegmentKind.HEAP, off),
                                    is_write=True)


class TestFig9Edges:
    def test_classify_empty(self):
        from repro.experiments.fig9 import classify_processes
        from repro.kernel.lru import ActiveInactiveLRU
        counts = classify_processes([], ActiveInactiveLRU())
        assert counts["total"] == 0
        assert counts["active_babelfish"] == 0

    def test_single_process_nothing_shareable(self, mini_baseline):
        from repro.experiments.fig9 import classify_processes
        sys = mini_baseline
        for off in range(4):
            sys.touch(sys.zygote, SegmentKind.MMAP, off)
        counts = classify_processes([sys.zygote], sys.kernel.lru)
        assert counts["total_shareable"] == 0
        assert counts["total"] == counts["total_unshareable"]

    def test_identical_translations_counted_shareable(self, mini_baseline):
        from repro.experiments.fig9 import classify_processes
        sys = mini_baseline
        sys.touch(sys.zygote, SegmentKind.MMAP, 0)
        child = sys.fork()
        sys.touch(child, SegmentKind.MMAP, 0)
        counts = classify_processes([sys.zygote, child], sys.kernel.lru)
        assert counts["total_shareable"] >= 2


class TestEngineDetails:
    def test_bringup_is_deterministic_per_container(self):
        from repro.containers.image import ContainerImage
        from repro.experiments.common import build_environment, config_by_name
        image = ContainerImage(name="det", binary_pages=8, binary_data_pages=2,
                               lib_pages=16, lib_data_pages=2, infra_pages=8,
                               heap_pages=64)
        env = build_environment(config_by_name("Baseline"), cores=1)
        container, _ = env.engine.launch(image)
        a = env.engine.bringup_records(container)
        b = env.engine.bringup_records(container)
        assert a == b

    def test_bringup_budget_respected(self):
        from repro.containers.image import ContainerImage
        from repro.experiments.common import build_environment, config_by_name
        image = ContainerImage(name="budget", binary_pages=8,
                               binary_data_pages=2, lib_pages=512,
                               lib_data_pages=2, infra_pages=512,
                               heap_pages=64, bringup_touch_pages=40)
        env = build_environment(config_by_name("Baseline"), cores=1)
        container, _ = env.engine.launch(image)
        records = env.engine.bringup_records(container)
        loads = [r for r in records if r[0] == 1]
        assert len(loads) <= 40
