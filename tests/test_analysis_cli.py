"""The lint CLI and the repo-clean contract.

The whole repository must lint clean at HEAD (the CI gate), and the CLI
must exit nonzero with rule id + ``file:line`` when a violation exists.
"""

import json
import pathlib

from repro.analysis.__main__ import default_paths, main
from repro.analysis.lint.engine import LintEngine
from repro.analysis.lint.rules import all_rules, rule_catalog

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestRepoClean:
    def test_src_and_tests_lint_clean(self):
        findings = LintEngine().lint_paths([REPO / "src" / "repro",
                                            REPO / "tests"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_default_paths_cover_package_and_tests(self):
        paths = [p.name for p in default_paths()]
        assert "repro" in paths
        assert "tests" in paths

    def test_cli_exits_zero_at_head(self, capsys):
        assert main([str(REPO / "src" / "repro"), str(REPO / "tests")]) == 0
        assert "0 findings" in capsys.readouterr().out


class TestCLIOnViolations:
    def seed(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "hw" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("from repro.sim.mmu import MMU\n"
                       "assert MMU\n")
        return bad

    def test_nonzero_exit_with_rule_id_and_location(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "BF101" in out and "BF302" in out
        assert "%s:1:" % bad in out
        assert "%s:2:" % bad in out

    def test_json_format(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        assert main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"BF101", "BF302"}
        assert all(f["path"] and f["line"] for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out
        assert len(rule_catalog()) == len(all_rules())
