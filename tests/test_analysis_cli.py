"""The lint CLI and the repo-clean contract.

The whole repository must lint clean at HEAD (the CI gate), and the CLI
must exit nonzero with rule id + ``file:line`` when a violation exists.
"""

import json
import pathlib

from repro.analysis.__main__ import default_paths, main
from repro.analysis.lint.engine import LintEngine
from repro.analysis.lint.rules import all_rules, rule_catalog

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestRepoClean:
    def test_src_and_tests_lint_clean(self):
        findings = LintEngine().lint_paths([REPO / "src" / "repro",
                                            REPO / "tests"])
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_default_paths_cover_package_and_tests(self):
        paths = [p.name for p in default_paths()]
        assert "repro" in paths
        assert "tests" in paths

    def test_cli_exits_zero_at_head(self, capsys):
        assert main([str(REPO / "src" / "repro"), str(REPO / "tests")]) == 0
        assert "0 findings" in capsys.readouterr().out


class TestCLIOnViolations:
    def seed(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "hw" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("from repro.sim.mmu import MMU\n"
                       "assert MMU\n")
        return bad

    def test_nonzero_exit_with_rule_id_and_location(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "BF101" in out and "BF302" in out
        assert "%s:1:" % bad in out
        assert "%s:2:" % bad in out

    def test_json_format(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        assert main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"BF101", "BF302"}
        assert all(f["path"] and f["line"] for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out
        # The catalog also lists the three engine pseudo-rules
        # (BF000 syntax, BF001 unused suppression, BF002 unreadable).
        assert len(rule_catalog()) == len(all_rules()) + 3
        for engine_rule in ("BF000", "BF001", "BF002"):
            assert engine_rule in out


class TestStrictAndBaseline:
    def seed(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "hw" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("from repro.sim.mmu import MMU\n"
                       "assert MMU\n")
        return bad

    def test_write_baseline_then_strict_accepts_old_debt(self, tmp_path,
                                                         capsys):
        bad = self.seed(tmp_path)
        bl = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(bl),
                     str(bad)]) == 0
        assert json.loads(bl.read_text())["findings"]
        assert main(["--strict", "--baseline", str(bl), str(bad)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_strict_fails_on_new_finding_beyond_baseline(self, tmp_path):
        bad = self.seed(tmp_path)
        bl = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(bl),
                     str(bad)]) == 0
        bad.write_text(bad.read_text() + "assert MMU is not None\n")
        assert main(["--strict", "--baseline", str(bl), str(bad)]) == 1

    def test_baseline_match_ignores_line_numbers(self, tmp_path):
        bad = self.seed(tmp_path)
        bl = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(bl),
                     str(bad)]) == 0
        # Shift every finding down two lines: still baselined.
        bad.write_text("# moved\n# moved\n" + bad.read_text())
        assert main(["--strict", "--baseline", str(bl), str(bad)]) == 0

    def test_warnings_fail_only_under_strict(self, tmp_path):
        stale = tmp_path / "src" / "repro" / "hw" / "stale.py"
        stale.parent.mkdir(parents=True)
        stale.write_text("x = 1  # bfa: disable=BF101 -- stale\n")
        assert main([str(stale)]) == 0          # BF001 is a warning
        assert main(["--strict", str(stale)]) == 1

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        bl = tmp_path / "baseline.json"
        bl.write_text("{\"findings\": 42}")
        assert main(["--baseline", str(bl), str(bad)]) == 2
        assert "malformed baseline" in capsys.readouterr().err


class TestSarifOutput:
    def seed(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "hw" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("from repro.sim.mmu import MMU\n"
                       "assert MMU\n")
        return bad

    def test_sarif_out_writes_conforming_log(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        sarif_path = tmp_path / "analysis.sarif"
        assert main(["--sarif-out", str(sarif_path), str(bad)]) == 1
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"BF101", "BF302", "BF401", "BF501", "BF601"} <= declared
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"BF101", "BF302"}
        for result in results:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["region"]["startLine"] >= 1
            assert loc["artifactLocation"]["uri"]
            assert result["ruleId"] in declared

    def test_format_sarif_prints_log(self, tmp_path, capsys):
        bad = self.seed(tmp_path)
        assert main(["--format", "sarif", str(bad)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert len(log["runs"][0]["results"]) == 2

    def test_clean_tree_yields_empty_results(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        sarif_path = tmp_path / "clean.sarif"
        assert main(["--sarif-out", str(sarif_path), str(good)]) == 0
        assert json.loads(sarif_path.read_text())["runs"][0]["results"] == []
