"""Edge-path coverage: non-present PTEs, read-only shared files, THP-off
environments, MMU flush, engine stop accounting."""

import pytest

from repro.hw.cache import CacheHierarchy
from repro.hw.dram import DRAMModel
from repro.hw.params import baseline_machine
from repro.hw.pwc import PageWalkCache
from repro.hw.types import AccessKind
from repro.kernel.errors import ProtectionFault
from repro.kernel.fault import FaultType
from repro.kernel.vma import SegmentKind, VMAKind
from repro.sim.config import baseline_config
from repro.sim.mmu import MMU
from repro.sim.walker import PageWalker

from conftest import MiniSystem

MMAP, HEAP, LIBS = SegmentKind.MMAP, SegmentKind.HEAP, SegmentKind.LIBS


class TestNonPresentPTE:
    def test_walker_faults_on_non_present(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, MMAP, 0)
        pte.present = False
        machine = baseline_machine(cores=1)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        walker = PageWalker(0, hierarchy, PageWalkCache(machine.mmu.pwc))
        result = walker.walk(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        assert result.fault
        assert result.pte is None

    def test_fault_repopulates_non_present(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, MMAP, 0)
        pte.present = False
        outcome = sys.kernel.handle_fault(sys.zygote,
                                          sys.vpn(sys.zygote, MMAP, 0))
        assert outcome.fault_type is FaultType.MINOR
        fresh = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, MMAP, 0))
        assert fresh.present


class TestReadOnlySharedFile:
    def test_write_to_readonly_shared_raises(self, mini_baseline):
        sys = mini_baseline
        ro_file = sys.kernel.create_file("ro", 8)
        sys.kernel.page_cache.populate(ro_file)
        sys.kernel.mmap(sys.zygote, MMAP, 2048, 8, VMAKind.FILE_SHARED,
                        file=ro_file, writable=False, name="ro")
        sys.touch(sys.zygote, MMAP, 2048)
        with pytest.raises(ProtectionFault):
            sys.kernel.handle_fault(sys.zygote,
                                    sys.vpn(sys.zygote, MMAP, 2048),
                                    is_write=True)


class TestTHPOffEnvironment:
    def test_deploy_with_thp_disabled(self):
        from repro.experiments.common import (
            build_environment, config_by_name, deploy_app, measure_app)
        from repro.workloads.profiles import APP_PROFILES
        import dataclasses
        config = dataclasses.replace(config_by_name("BabelFish"),
                                     thp_enabled=False)
        env = build_environment(config, cores=1)
        deployment = deploy_app(env, APP_PROFILES["graphchi"])
        result = measure_app(env, deployment, scale=0.05)
        # No huge leaves anywhere.
        for container in deployment.containers:
            for _v, _l, _t, _i, pte in container.proc.tables.iter_leaves():
                assert pte.page_size.base_pages == 1
        assert result.stats.instructions > 0


class TestMMUFlush:
    def test_flush_all_clears_everything(self, mini_baseline):
        sys = mini_baseline
        machine = baseline_machine(cores=1)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        mmu = MMU(0, machine, baseline_config(), hierarchy, sys.kernel)
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        mmu.translate(sys.zygote, LIBS, 0, AccessKind.IFETCH)
        mmu.flush_all()
        assert not list(mmu.l1d.entries())
        assert not list(mmu.l1i.entries())
        assert not list(mmu.l2.entries())
        # Next access misses everywhere again.
        before = mmu.stats.walks
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.walks == before + 1


class TestEngineStopAccounting:
    def test_stop_releases_container_resources(self):
        from repro.containers.image import ContainerImage
        from repro.experiments.common import build_environment, config_by_name
        image = ContainerImage(name="stoppable", binary_pages=8,
                               binary_data_pages=2, lib_pages=16,
                               lib_data_pages=2, infra_pages=8,
                               heap_pages=64)
        env = build_environment(config_by_name("BabelFish"), cores=1)
        a, _ = env.engine.launch(image)
        b, _ = env.engine.launch(image)
        env.kernel.touch(a.proc, a.proc.vpn_group(HEAP, 0), is_write=True)
        before = env.kernel.allocator.allocated
        env.engine.stop(a)
        assert env.kernel.allocator.allocated < before
        # b is untouched and the group survives.
        assert b.proc.alive
        assert b.proc in b.group.members
        from repro.kernel.audit import audit_kernel
        assert audit_kernel(env.kernel) == []


class TestSpuriousThroughMMU:
    def test_racing_group_member_resolution(self):
        """Two group members on different cores race to the same page:
        the loser's fault is spurious under BabelFish."""
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)  # table exists pre-fork
        a, b = sys.fork("a"), sys.fork("b")
        machine = baseline_machine(cores=2)
        hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
        from repro.sim.config import babelfish_config
        mmu0 = MMU(0, machine, babelfish_config(), hierarchy, sys.kernel)
        mmu1 = MMU(1, machine, babelfish_config(), hierarchy, sys.kernel)
        mmu0.translate(a, MMAP, 5, AccessKind.LOAD)     # a faults page in
        mmu1.translate(b, MMAP, 5, AccessKind.LOAD)     # b finds it present
        assert mmu0.stats.minor_faults == 1
        assert mmu1.stats.minor_faults == 0
