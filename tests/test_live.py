"""Streaming telemetry (repro.obs.live + friends): sink/ring
equivalence, constant-memory streaming, progress monitoring under a
fake clock, deterministic shard aggregation, per-cause batch punt
attribution, and the perf-regression watchdog."""

import gzip
import json
import queue

import pytest

from repro.experiments.common import (build_environment, config_by_name,
                                      deploy_app, run_app)
from repro.experiments import perf
from repro.kernel.vma import SegmentKind
from repro.obs import export
from repro.obs import live
from repro.obs import perfwatch
from repro.obs.__main__ import main as obs_main
from repro.obs.events import event_from_dict, event_to_dict
from repro.obs.tracer import Tracer, TraceOptions, replay_events
from repro.sim import batch
from repro.workloads.profiles import APP_PROFILES, FAAS_BASE_IMAGE

SMALL = dict(cores=1, scale=0.08)

_PID_KEYS = ("pid", "prev_pid", "next_pid")


def _dense_pids(event_dicts):
    """Remap raw pids to first-appearance order. Pids are allocated from
    a process-global counter, so two in-process runs of the same workload
    see different raw pids; the dense form is what must match."""
    mapping, out = {}, []
    for data in event_dicts:
        data = dict(data)
        for key in _PID_KEYS:
            if key in data:
                data[key] = mapping.setdefault(data[key], len(mapping))
        out.append(data)
    return out


# -- streaming sinks: ring equivalence + constant memory ------------------------


class TestStreamingSink:
    def test_stream_equals_ring_on_bounded_run(self, tmp_path):
        """A tiny ring + sink must reproduce byte-for-byte the events an
        unbounded ring kept, and replaying the stream must rebuild the
        exact live registry."""
        stream = tmp_path / "trace.jsonl"
        streamed = run_app(
            "mongodb",
            config_by_name("BabelFish",
                           trace={"buffer_size": 64, "sink": str(stream)}),
            use_cache=False, **SMALL)
        tracer = streamed.env.sim.tracer
        assert len(tracer.events) <= 64
        assert tracer.dropped == 0
        path = tracer.finalize()
        assert path == str(stream)
        assert tracer.streamed == tracer.emitted

        ring = run_app("mongodb", config_by_name("BabelFish", trace=True),
                       use_cache=False, **SMALL)
        ring_events = [event_to_dict(e) for e in ring.env.sim.tracer.events]
        assert (_dense_pids(export.read_jsonl(stream))
                == _dense_pids(ring_events))

        replayed = replay_events(export.read_jsonl(stream))
        assert (replayed.registry.snapshot()
                == tracer.registry.snapshot())

    def test_constant_memory_on_long_run(self, tmp_path):
        tracer = Tracer(TraceOptions(buffer_size=32,
                                     sink=str(tmp_path / "long.jsonl")))
        for i in range(10_000):
            tracer.tick(0, i)
            tracer.tlb_hit(0, 7, "L1D", i % 97, False)
            assert len(tracer.events) <= 32
        assert tracer.dropped == 0
        tracer.finalize()
        assert tracer.streamed == tracer.emitted == 10_000
        assert len(list(export.read_jsonl(tmp_path / "long.jsonl"))) == 10_000

    def test_gzip_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        tracer = Tracer(TraceOptions(buffer_size=8, sink=str(path)))
        for i in range(50):
            tracer.tick(0, i)
            tracer.tlb_miss(0, 3, "L1D", i, False)
        tracer.finalize()
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # gzip magic
        events = list(export.read_jsonl(path))
        assert len(events) == 50
        assert replay_events(events).registry.snapshot() \
            == tracer.registry.snapshot()

    def test_zstd_sink_gated_on_availability(self, tmp_path):
        path = tmp_path / "trace.jsonl.zst"
        if not export.zstd_available():
            with pytest.raises(RuntimeError, match="zstd"):
                live.open_sink(path)
            return
        tracer = Tracer(TraceOptions(buffer_size=8, sink=str(path)))
        for i in range(20):
            tracer.tick(0, i)
            tracer.tlb_hit(0, 1, "L1D", i, True)
        tracer.finalize()
        assert len(list(export.read_jsonl(path))) == 20

    def test_finalize_is_atomic_and_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceOptions(buffer_size=4, sink=str(path)))
        tracer.tick(0, 1)
        tracer.tlb_hit(0, 1, "L1D", 5, False)
        # Mid-run, only the staging file exists.
        assert (tmp_path / "trace.jsonl.tmp").exists()
        assert not path.exists()
        assert tracer.finalize() == str(path)
        assert path.exists()
        assert not (tmp_path / "trace.jsonl.tmp").exists()
        # Idempotent; post-finalize emits degrade to the lossy ring.
        assert tracer.finalize() == str(path)
        for i in range(10):
            tracer.tlb_hit(0, 1, "L1D", i, False)
        assert len(tracer.events) <= 4

    def test_reset_truncates_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(TraceOptions(buffer_size=4, sink=str(path)))
        for i in range(9):  # forces flushes into the staging file
            tracer.tick(0, i)
            tracer.tlb_hit(0, 1, "L1D", i, False)
        assert tracer.streamed > 0
        tracer.reset()  # warm-up discard: nothing may survive
        assert tracer.streamed == 0
        assert tracer.sink.events_written == 0
        tracer.tick(0, 0)
        tracer.tlb_miss(0, 2, "L1D", 11, False)
        tracer.finalize()
        events = list(export.read_jsonl(path))
        assert len(events) == 1
        assert events[0]["event"] == "TLB_MISS"

    def test_event_dict_round_trip(self):
        tracer = Tracer()
        tracer.tick(1, 42)
        tracer.page_walk(1, 9, 0x1234, 61, False, "ppm")
        tracer.quantum(1, 9, 0, 500, 100)
        for event in tracer.events:
            assert event_from_dict(event_to_dict(event)) == event


# -- atomic export writers ------------------------------------------------------


class TestAtomicExport:
    def test_write_jsonl_leaves_no_staging_file(self, tmp_path):
        tracer = Tracer()
        tracer.tick(0, 5)
        tracer.tlb_hit(0, 1, "L1D", 3, False)
        out = tmp_path / "events.jsonl"
        assert export.write_jsonl(tracer.events, out) == 1
        assert not list(tmp_path.glob("*.tmp"))
        assert list(export.read_jsonl(out))[0]["event"] == "TLB_HIT"

    def test_failed_write_removes_staging_file(self, tmp_path):
        out = tmp_path / "events.jsonl"
        with pytest.raises(IndexError):
            export.write_jsonl([(999, 0, 0, 0)], out)  # unknown event type
        assert not list(tmp_path.glob("*"))

    def test_compressed_jsonl_by_suffix(self, tmp_path):
        tracer = Tracer()
        tracer.tick(0, 1)
        tracer.invalidation(0, 4, 77, "page")
        out = tmp_path / "events.jsonl.gz"
        export.write_jsonl(tracer.events, out)
        with gzip.open(out, "rt") as handle:
            assert json.loads(handle.readline())["event"] == "INVALIDATION"


# -- progress monitor under a fake clock ----------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestProgressMonitor:
    def _monitor(self, **kwargs):
        clock = _FakeClock()
        lines = []
        kwargs.setdefault("interval", 1.0)
        monitor = live.ProgressMonitor(clock=clock, emit=lines.append,
                                       **kwargs)
        return monitor, clock, lines

    def test_emits_on_interval_cadence(self):
        monitor, clock, lines = self._monitor(total=100, unit="recs")
        clock.now = 0.5
        monitor.advance(10)
        assert lines == []  # under the interval: silent
        clock.now = 1.0
        monitor.advance(10)
        assert len(lines) == 1
        clock.now = 1.5
        monitor.advance(10)
        assert len(lines) == 1  # window restarts at each emitted line
        clock.now = 2.5
        monitor.advance(10)
        assert len(lines) == 2

    def test_rates_and_eta(self):
        monitor, clock, _ = self._monitor(total=100)
        clock.now = 2.0
        monitor.advance(50)
        assert monitor.rate() == 25.0
        assert monitor.eta_seconds() == pytest.approx(2.0)
        clock.now = 4.0
        monitor.advance(50)
        assert monitor.eta_seconds() == 0.0

    def test_punt_totals_and_deltas(self):
        monitor, clock, _ = self._monitor()
        monitor.advance(5, punts=3)
        monitor.advance(5, punts_total=10)  # absolute wins
        assert monitor.punts == 10
        clock.now = 2.0
        assert monitor.punt_rate() == 5.0

    def test_advance_to_is_monotonic(self):
        monitor, _, _ = self._monitor()
        monitor.advance_to(40)
        monitor.advance_to(25)  # stale shard totals never move it back
        assert monitor.done == 40

    def test_snapshot_line_and_finish(self):
        monitor, clock, lines = self._monitor(total=200, unit="runs",
                                              label="matrix")
        clock.now = 2.0
        monitor.advance(100, punts_total=7)
        monitor.count("kills", 3)
        line = monitor.snapshot_line()
        assert "[matrix]" in line and "100/200 runs (50.0%)" in line
        assert "punts 7" in line and "kills 3" in line and "eta" in line
        final = monitor.finish()
        assert "done" in final and final in lines
        data = monitor.as_dict()
        assert data["done"] == 100 and data["punts"] == 7
        assert data["counters"] == {"kills": 3}


# -- shard aggregation ----------------------------------------------------------


class TestShardAggregation:
    PAYLOADS = [("shard-b", {"done": 2, "punts": 5}),
                ("shard-a", {"done": 1}),
                ("shard-b", {"done": 3, "kills": 1}),
                ("shard-c", {"done": 4, "punts": 2})]

    def test_merge_is_delivery_order_independent(self):
        forward, backward = live.ProgressAggregator(), live.ProgressAggregator()
        for shard, payload in self.PAYLOADS:
            forward.apply(shard, payload)
        for shard, payload in reversed(self.PAYLOADS):
            backward.apply(shard, payload)
        assert forward.merged() == backward.merged() == {
            "done": 10, "punts": 7, "kills": 1}

    def test_queue_drain_and_feed(self):
        q = queue.Queue()
        live.bind_worker_queue(q)
        try:
            for shard, payload in self.PAYLOADS:
                live.post_shard(shard, **payload)
        finally:
            live.bind_worker_queue(None)
        live.post_shard("unbound", done=99)  # no queue: silently dropped
        aggregator = live.ProgressAggregator()
        assert aggregator.drain(q) == len(self.PAYLOADS)
        monitor = live.ProgressMonitor(clock=lambda: 1.0, emit=lambda _: None)
        aggregator.feed(monitor)
        assert monitor.done == 10
        assert monitor.punts == 7
        assert monitor.counters["kills"] == 1


# -- batch punt attribution -----------------------------------------------------


def _batch_run(trace):
    """One explicit trace through the batch engine; returns
    ``(as_dict, total measured records)``."""
    config = config_by_name("BabelFish", batch=True)
    env = build_environment(config, cores=1)
    deployment = deploy_app(env, APP_PROFILES["mongodb"])
    for container in deployment.containers:
        env.sim.attach(container.proc, list(trace), container.core)
    d = env.sim.run().as_dict()
    return d, len(trace) * len(deployment.containers)


def _check_attribution_invariants(d, total):
    diag = d["batch"]
    assert diag["claimed_records"] + diag["punts"] == total
    assert sum(diag["punt_causes"].values()) == diag["punts"]
    assert set(diag["punt_causes"]) <= set(batch.PUNT_CAUSES)
    return diag["punt_causes"]


class TestPuntAttribution:
    def test_hot_code_punts_are_memo_misses(self):
        trace = [(0, SegmentKind.CODE, i % 4, i % 64, 2, None)
                 for i in range(300)]
        d, total = _batch_run(trace)
        causes = _check_attribution_invariants(d, total)
        assert causes.get("memo_miss", 0) > 0

    def test_bringup_attributes_faults_and_cow_retries(self):
        # A cold container bring-up is all first touches: minor faults on
        # stack/data pages and CoW-type private copies of library pages.
        # Every record punts with a specific cause — none may be claimed,
        # and none may fall back to the generic memo_miss bucket alone.
        config = config_by_name("BabelFish", batch=True)
        env = build_environment(config, cores=1)
        container, _ = env.engine.launch(FAAS_BASE_IMAGE)
        records = env.engine.bringup_records(container)
        env.sim.attach(container.proc, records, 0)
        d = env.sim.run().as_dict()
        causes = _check_attribution_invariants(d, len(records))
        assert causes.get("fault", 0) > 0
        assert causes.get("cow_retry", 0) > 0

    def test_first_touch_stores_attribute_to_fault(self):
        # Post-bring-up heap pages are unmaterialized: each first store
        # takes a minor fault, so the punt cause must be "fault" — not
        # memo_miss (the memo was warm for none of them anyway, but the
        # fault-delta refinement must win).
        config = config_by_name("BabelFish", batch=True)
        env = build_environment(config, cores=1)
        container, _ = env.engine.launch(FAAS_BASE_IMAGE)
        env.sim.attach(container.proc,
                       env.engine.bringup_records(container), 0)
        env.sim.run()
        env.sim.reset_measurement()
        trace = [(2, SegmentKind.HEAP, i, 0, 2, None) for i in range(16)]
        env.sim.attach(container.proc, trace, 0)
        d = env.sim.run().as_dict()
        causes = _check_attribution_invariants(d, len(trace))
        assert causes.get("fault", 0) == len(trace)

    def test_replacement_churn_and_cow_breaks_attribute_shootdowns(self):
        # The two epoch-family causes, in one co-scheduled scenario:
        # two deployed containers hammer a hot set wider than the L2 TLB
        # (replacement churn moves set epochs under live memo entries ->
        # "epoch"), while a third process CoW-breaks present read-shared
        # pages (read first, installing CoW PTEs; the mid-run writes
        # broadcast invalidations, upgrading epoch punts that straddle
        # them to "shootdown").
        import random

        config = config_by_name("BabelFish", batch=True,
                                quantum_instructions=400)
        env = build_environment(config, cores=1)
        deployment = deploy_app(env, APP_PROFILES["mongodb"])
        writer, _ = env.engine.launch(FAAS_BASE_IMAGE)
        records = env.engine.bringup_records(writer)
        cow_pages = sorted({r[2] for r in records
                            if r[1] == SegmentKind.LIBS and r[0] == 2})
        assert cow_pages, "image has no writable private library pages"
        env.sim.attach(writer.proc,
                       [(1, SegmentKind.LIBS, p, 0, 2, None)
                        for p in cow_pages], 0)
        env.sim.run()
        env.sim.reset_measurement()
        rng = random.Random(7)
        total = 0
        for container in deployment.containers[:2]:
            trace = [(0, SegmentKind.HEAP, rng.randrange(120),
                      rng.randrange(64), 2, None) for _ in range(4000)]
            env.sim.attach(container.proc, trace, container.core)
            total += len(trace)
        wtrace = [(2, SegmentKind.LIBS, page, 1, 900, None)
                  for page in cow_pages]
        env.sim.attach(writer.proc, wtrace, 0)
        total += len(wtrace)
        d = env.sim.run().as_dict()
        causes = _check_attribution_invariants(d, total)
        assert causes.get("epoch", 0) > 0
        assert causes.get("shootdown", 0) > 0
        assert causes.get("cow_retry", 0) > 0

    def test_escape_hatch_disables_attribution(self, monkeypatch):
        monkeypatch.setenv(batch.BATCH_ATTR_ENV, "0")
        trace = [(0, SegmentKind.CODE, i % 4, 0, 2, None) for i in range(60)]
        d, _total = _batch_run(trace)
        assert "batch" not in d

    def test_diagnostics_never_taint_identity(self):
        trace = [(0, SegmentKind.CODE, i % 4, i % 64, 2, None)
                 for i in range(120)]
        d, _total = _batch_run(trace)
        assert "batch" in d
        assert "batch" not in perf.arch_dict(d)


# -- perf-regression watchdog ---------------------------------------------------


def _payload(**tiers):
    return {"bench": "hotpath", "tiers": tiers}


class TestPerfwatch:
    def test_regression_below_floor(self):
        baseline = _payload(batch={"speedup": 2.0, "identical": True})
        fresh = _payload(batch={"speedup": 1.0, "identical": True})
        rows, regressions = perfwatch.compare(fresh, baseline)
        assert len(regressions) == 1
        assert regressions[0]["metric"] == "speedup"
        assert regressions[0]["floor"] == pytest.approx(1.6)

    def test_within_band_is_ok_and_above_is_improved(self):
        baseline = _payload(batch={"speedup": 2.0, "identical": True})
        ok = _payload(batch={"speedup": 1.9, "identical": True})
        up = _payload(batch={"speedup": 3.1, "identical": True})
        assert perfwatch.compare(ok, baseline)[1] == []
        rows, regressions = perfwatch.compare(up, baseline)
        assert regressions == []
        assert rows[0]["status"] == "improved"

    def test_identity_failure_is_unconditional(self):
        baseline = _payload(smoke={"speedup": 1.0, "identical": True})
        fresh = _payload(smoke={"speedup": 5.0, "identical": False})
        _rows, regressions = perfwatch.compare(fresh, baseline)
        assert any(r["metric"] == "identical" for r in regressions)

    def test_new_and_skipped_tiers_never_fail(self):
        baseline = _payload(medium={"speedup": 3.0, "identical": True})
        fresh = _payload(smoke={"speedup": 1.0, "identical": True})
        rows, regressions = perfwatch.compare(fresh, baseline)
        assert regressions == []
        assert {r["status"] for r in rows} == {"new", "skipped"}

    def test_tolerance_overrides(self):
        baseline = _payload(batch={"speedup": 2.0, "identical": True})
        fresh = _payload(batch={"speedup": 1.5, "identical": True})
        assert perfwatch.compare(fresh, baseline,
                                 tolerances={"batch": 0.5})[1] == []
        assert len(perfwatch.compare(fresh, baseline,
                                     tolerances={"batch": 0.1})[1]) == 1

    def test_watch_cli_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(_payload(
            smoke={"speedup": 2.0, "identical": True},
            batch={"speedup": 4.0, "fastpath_speedup": 2.0,
                   "identical": True})))
        # Synthetically degraded batch tier: must exit nonzero.
        fresh.write_text(json.dumps(_payload(
            smoke={"speedup": 2.0, "identical": True},
            batch={"speedup": 1.0, "fastpath_speedup": 2.0,
                   "identical": True})))
        rc = obs_main(["perfwatch", str(fresh), "--baseline", str(base)])
        assert rc == 1
        assert "PERF REGRESSION" in capsys.readouterr().out
        # A wide-enough band clears it.
        rc = obs_main(["perfwatch", str(fresh), "--baseline", str(base),
                       "--tolerance", "batch=0.8"])
        assert rc == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_watch_rejects_bad_inputs(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(SystemExit):
            perfwatch.load_trajectory(str(missing))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit):
            perfwatch.load_trajectory(str(bad))
        with pytest.raises(SystemExit):
            obs_main(["perfwatch", str(bad), "--baseline", str(bad)])


# -- CLI: compressed event streams ----------------------------------------------


class TestCompressedStreamsCLI:
    @pytest.fixture(scope="class")
    def gz_stream(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("stream") / "trace.jsonl.gz"
        tracer = Tracer(TraceOptions(buffer_size=16, sink=str(path)))
        for i in range(120):
            tracer.tick(0, i)
            if i % 3:
                tracer.tlb_hit(0, 2, "L1D", i % 9, False)
            else:
                tracer.tlb_miss(0, 2, "L1D", i % 9, False)
        tracer.finalize()
        return path, tracer.registry.snapshot()

    def test_summarize_reads_gz_stream(self, gz_stream, capsys):
        path, _snapshot = gz_stream
        assert obs_main(["summarize", str(path)]) == 0
        assert "TLB" in capsys.readouterr().out

    def test_diff_gz_stream_against_itself_is_flat(self, gz_stream, capsys):
        path, _snapshot = gz_stream
        assert obs_main(["diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "no differences" in out or "+0" not in out
