"""Policy-registry and policy-zoo tests.

Covers the registry surface (singletons, capability queries, unknown
names), ``SimConfig.policy`` validation and cache-key separation, the
serve daemon's policy rejection, the same-area accounting used by the
BigTLB arm, the two new policies' mechanisms (Victima's L3 victim
level, coalesced span fills), the sanitizer's span-aware freed-frame
quarantine, and the BF701 lint rule that keeps raw policy-flag
dispatch out of the tree.
"""

import dataclasses
import json
import textwrap

import pytest

from conftest import MiniSystem

from repro.analysis.lint.engine import LintEngine
from repro.analysis.sanitizer import TranslationSanitizer
from repro.core import policy as policy_mod
from repro.core.policy import get_policy, known_policies
from repro.experiments import runcache, zoo
from repro.experiments.runcache import DiskRunCache, app_key_data
from repro.hw.cache import CacheHierarchy
from repro.hw.cacti import policy_l2_geometries, same_area_conventional_scale
from repro.hw.dram import DRAMModel
from repro.hw.params import baseline_machine
from repro.hw.types import AccessKind, PageSize
from repro.kernel.vma import SegmentKind
from repro.serve.protocol import BadRequest, wire_to_request
from repro.sim.config import (KNOWN_POLICIES, SimConfig, baseline_config,
                              babelfish_config, coalesced_config,
                              victima_config)
from repro.sim.mmu import MMU

MMAP = SegmentKind.MMAP

ALL_POLICIES = ("conventional", "conventional_2x", "babelfish",
                "babelfish_tlb", "babelfish_pt", "victima", "coalesced")


def make_mmu(sys, config, sanitize=False):
    machine = baseline_machine(cores=1)
    hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
    mmu = MMU(0, machine, config, hierarchy, sys.kernel)
    sanitizer = None
    if sanitize:
        sanitizer = TranslationSanitizer(sys.kernel, config)
        mmu.sanitizer = sanitizer
    return mmu, sanitizer


# -- registry -------------------------------------------------------------------


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(ALL_POLICIES) <= set(known_policies())
        assert KNOWN_POLICIES == tuple(known_policies())

    def test_policies_are_singletons(self):
        for name in ALL_POLICIES:
            assert get_policy(name) is get_policy(name)

    def test_unknown_policy_raises_naming_the_field(self):
        with pytest.raises(ValueError, match="policy"):
            get_policy("paging-is-optional")

    def test_capability_queries(self):
        assert get_policy("babelfish").uses_ccid
        assert get_policy("babelfish_tlb").uses_ccid
        assert not get_policy("conventional").uses_ccid
        assert not get_policy("babelfish_pt").uses_ccid
        assert get_policy("victima").has_victim_level
        assert not get_policy("victima").coalesces
        assert get_policy("coalesced").coalesces
        assert not get_policy("coalesced").has_victim_level

    def test_coalesced_span_is_16k(self):
        span = policy_mod.COALESCED_SPAN_4
        assert span.coalesced
        assert span.base_pages == 4
        assert span.base_mask == 3
        for size in PageSize:
            assert size.coalesced is False


# -- config validation ----------------------------------------------------------


class TestConfigPolicy:
    def test_builders_set_policy(self):
        assert baseline_config().policy == "conventional"
        assert babelfish_config().policy == "babelfish"
        assert victima_config().policy == "victima"
        assert coalesced_config().policy == "coalesced"

    def test_legacy_flags_derive_policy(self):
        # Configs built without an explicit policy (old callers, cached
        # field dicts from before the registry) keep their meaning.
        assert SimConfig(name="x").policy == "conventional"
        assert SimConfig(name="x", babelfish_tlb=True).policy == "babelfish"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            baseline_config(policy="nope")

    def test_flag_policy_inconsistency_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            SimConfig(name="x", babelfish_tlb=True, policy="conventional")
        with pytest.raises(ValueError, match="inconsistent"):
            baseline_config(policy="babelfish")

    def test_capability_properties(self):
        assert victima_config().translation_policy is get_policy("victima")
        assert babelfish_config().shared_tlb_entries
        assert not victima_config().shared_tlb_entries
        assert babelfish_config().shares_page_tables
        assert not coalesced_config().shares_page_tables


# -- cache-key separation -------------------------------------------------------


class TestCacheKeys:
    def test_policy_only_diff_never_aliases(self, tmp_path):
        # Two configs identical in every legacy field but for ``policy``
        # must produce distinct keys in BOTH cache layers — aliasing
        # would serve a conventional run as a Victima result.
        a = baseline_config()
        b = baseline_config(policy="victima")
        assert dataclasses.astuple(a) != dataclasses.astuple(b)
        assert runcache.config_field_dict(a) != runcache.config_field_dict(b)
        cache = DiskRunCache(tmp_path / "rc")
        key_a = cache.key_hash(app_key_data("mongodb", a, 2, 0.05, None))
        key_b = cache.key_hash(app_key_data("mongodb", b, 2, 0.05, None))
        assert key_a != key_b

    def test_field_dict_round_trips_policy(self):
        fields = runcache.config_field_dict(coalesced_config())
        rebuilt = runcache.config_from_fields(fields)
        assert rebuilt.policy == "coalesced"
        assert rebuilt == coalesced_config()


# -- serve wire validation ------------------------------------------------------


class TestServePolicy:
    def test_unknown_policy_is_typed_bad_request(self):
        with pytest.raises(BadRequest, match="'policy'") as exc:
            wire_to_request({"app": "mongodb",
                             "overrides": {"policy": "nope"}})
        assert "nope" in str(exc.value)

    def test_known_policy_override_accepted(self):
        request = wire_to_request({"app": "mongodb",
                                   "overrides": {"policy": "victima"}})
        assert ("policy", "victima") in request.overrides

    def test_inconsistent_policy_flags_rejected(self):
        with pytest.raises(BadRequest, match="policy"):
            wire_to_request({"app": "mongodb", "config_name": "BabelFish",
                             "overrides": {"policy": "conventional"}})


# -- same-area accounting -------------------------------------------------------


class TestSameArea:
    def test_stock_double_is_exact(self):
        machine = baseline_machine()
        scaled = machine.scale_l2_tlb(2.0)
        assert scaled.mmu.l2_4k.entries == 3072
        assert scaled.mmu.l2_2m.entries == 3072
        assert scaled.mmu.l2_1g.entries == 32

    def test_honest_factor_yields_buildable_sets(self):
        # The drift this pins: BabelFish's honest area factor is ~2.07,
        # and ``int(1536 * 2.07) = 3179`` entries is 264.9 sets — not a
        # power of two, so SetAssocTLB refused to build. The snap keeps
        # the factor honest while producing a constructible geometry.
        factor = same_area_conventional_scale("babelfish")
        assert 1.9 < factor < 2.3
        machine = baseline_machine()
        scaled = machine.scale_l2_tlb(factor)
        for params in (scaled.mmu.l2_4k, scaled.mmu.l2_2m, scaled.mmu.l2_1g):
            sets = params.entries // params.ways
            assert sets >= 1 and sets & (sets - 1) == 0

    def test_policy_geometry_areas(self):
        # Victima spends L2-*cache* SRAM, not TLB-array SRAM: its TLB
        # area is exactly baseline. Coalesced rearranges the baseline
        # budget (half span-tagged, half plain), so its factor stays
        # near 1; BabelFish pays for CCID + O-PC bits.
        assert same_area_conventional_scale("victima") == 1.0
        assert 0.8 < same_area_conventional_scale("coalesced") <= 1.1
        with pytest.raises(ValueError):
            policy_l2_geometries("conventional_2x")


# -- Victima mechanism ----------------------------------------------------------


class TestVictima:
    def test_l3_victim_level_exists_only_for_victima(self, mini_baseline):
        mmu, _ = make_mmu(mini_baseline, baseline_config())
        assert mmu.l3 is None
        mmu, _ = make_mmu(mini_baseline, victima_config())
        assert mmu.l3 is not None
        assert ("L3", mmu.l3) in mmu.tlb_levels()

    def test_l3_hit_saves_the_walk(self):
        sys = MiniSystem(babelfish=False)
        sys.touch(sys.zygote, MMAP, 0)
        # fastpath=False keeps the L0 memo out of the way so the flushes
        # below actually route the next access down to L3.
        mmu, _ = make_mmu(sys, victima_config(fastpath=False))
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        walks_after_fill = mmu.stats.walks

        def evict_above_l3():
            for name, tlb in mmu.tlb_levels():
                if name != "L3":
                    tlb.flush()

        evict_above_l3()
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.l3_hits_d == 1
        assert mmu.stats.walks == walks_after_fill
        # The L3 hit refilled L2: evicting only L1 now hits L2, not L3.
        mmu.l1d.flush()
        mmu.l1i.flush()
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.l3_hits_d == 1

    def test_l3_and_l2_never_share_entry_objects(self):
        # Structure-level aliasing is the tier-identity killer: the
        # reference SetAssocTLB honors ``entry.valid`` where the fast
        # structures drop entries eagerly, so one object living in two
        # structures desynchronizes the tiers.
        sys = MiniSystem(babelfish=False)
        sys.touch(sys.zygote, MMAP, 0)
        mmu, _ = make_mmu(sys, victima_config())
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        l2_entries = {id(e) for e in mmu.l2.entries()}
        l3_entries = {id(e) for e in mmu.l3.entries()}
        assert l3_entries
        assert not l2_entries & l3_entries


# -- coalesced mechanism --------------------------------------------------------


def _leaf(proc, vpn):
    path = proc.tables.walk(vpn)
    _level, table, _index, pte = path[-1]
    return pte, table


class TestCoalesced:
    def _contiguous_block(self, sys, proc):
        """A span-aligned vpn whose 4 members are present with
        contiguous frames (file pages populate in order, so the mapped
        data file provides one; skip if the allocator interleaved)."""
        start = sys.vpn(proc, MMAP, 0)
        base = (start + 4) & ~3  # span-aligned, inside the mapping
        ptes = []
        for off in range(4):
            sys.touch(proc, MMAP, (base + off) - start)
            pte, table = _leaf(proc, base + off)
            if pte is None or not pte.present:
                pytest.skip("block member not present")
            ptes.append((pte, table))
        if any(ptes[i][0].ppn != ptes[0][0].ppn + i for i in range(4)):
            pytest.skip("file frames not contiguous in this layout")
        return base, ptes

    def test_fill_coalesces_contiguous_block(self):
        sys = MiniSystem(babelfish=False)
        policy = get_policy("coalesced")
        base, ptes = self._contiguous_block(sys, sys.zygote)
        pte, table = ptes[1]
        entry, _replace = policy.fill_l2(sys.kernel, sys.zygote, base + 1,
                                         pte, table)
        assert entry.page_size.coalesced
        # Coalesced entries tag at span granularity: the 4K base vpn
        # shifted down by log2(degree).
        assert entry.vpn == base >> entry.page_size.shift4k
        assert entry.ppn == ptes[0][0].ppn
        # The resolved slice for each member is its own frame.
        for off in range(4):
            assert entry.ppn + ((base + off) & 3) == ptes[off][0].ppn

    def test_fill_falls_back_to_4k_on_broken_contiguity(self):
        sys = MiniSystem(babelfish=False)
        policy = get_policy("coalesced")
        base, ptes = self._contiguous_block(sys, sys.zygote)
        # Break the block: remap member 3's frame somewhere else.
        pte3, _table = ptes[3]
        pte3.ppn += 17
        pte, table = ptes[0]
        entry, _replace = policy.fill_l2(sys.kernel, sys.zygote, base,
                                         pte, table)
        assert entry.page_size is PageSize.SIZE_4K
        assert entry.ppn == pte.ppn
        pte3.ppn -= 17

    def test_end_to_end_translation_resolves_slices(self):
        sys = MiniSystem(babelfish=False)
        base, ptes = self._contiguous_block(sys, sys.zygote)
        mmu, sanitizer = make_mmu(sys, coalesced_config(sanitize=True),
                                  sanitize=True)
        start = sys.vpn(sys.zygote, MMAP, 0)
        for off in range(4):
            paddr_page = mmu.translate(sys.zygote, MMAP,
                                       (base + off) - start,
                                       AccessKind.LOAD).ppn4k
            assert paddr_page == ptes[off][0].ppn
        assert sanitizer.violations == []


# -- sanitizer: span-aware freed-frame quarantine -------------------------------


class TestCoalescedQuarantine:
    @pytest.mark.parametrize("member", [1, 2, 3])
    def test_freed_member_frame_is_caught_on_its_slice(self, member):
        sys = MiniSystem(babelfish=False)
        mmu, sanitizer = make_mmu(sys, coalesced_config(sanitize=True),
                                  sanitize=True)
        start = sys.vpn(sys.zygote, MMAP, 0)
        base = (start + 4) & ~3
        for off in range(4):
            sys.touch(sys.zygote, MMAP, (base + off) - start)
        mmu.translate(sys.zygote, MMAP, base - start, AccessKind.LOAD)
        coalesced = [e for e in mmu.l2.entries()
                     if e.page_size.coalesced
                     and e.vpn == base >> e.page_size.shift4k]
        if not coalesced:
            pytest.skip("block did not coalesce in this layout")
        entry = coalesced[0]
        victim_ppn = entry.ppn + member
        # Simulate teardown freeing the member frame while the span
        # entry lives on: drop the refcount to zero and quarantine.
        while sys.kernel.allocator.refcount(victim_ppn) > 0:
            sys.kernel.allocator.decref(victim_ppn)
        sanitizer.quarantine_frames([victim_ppn])
        before = len(sanitizer.violations)
        mmu.translate(sys.zygote, MMAP, (base + member) - start,
                      AccessKind.LOAD)
        kinds = [v.kind for v in sanitizer.violations[before:]]
        assert "freed-frame" in kinds
        # Hits on the *other* slices resolve different frames and stay
        # clean — the quarantine is per-resolved-slice, not per-entry.
        clean_mark = len(sanitizer.violations)
        mmu.translate(sys.zygote, MMAP, (base + 0) - start, AccessKind.LOAD)
        assert len([v for v in sanitizer.violations[clean_mark:]
                    if v.kind == "freed-frame"]) == 0


# -- churn storm under sanitizer ------------------------------------------------


class TestChurnNewPolicies:
    @pytest.mark.parametrize("name", ["Victima", "Coalesced"])
    def test_churn_storm_sanitized_clean(self, name):
        from repro.experiments.churn import run_churn
        result = run_churn(cycles=30, config_name=name, sanitize=True)
        assert result.violations == []
        assert result.clean

    @pytest.mark.parametrize("name", ["Victima", "Coalesced"])
    def test_churn_fast_matches_reference(self, name):
        from repro.experiments.churn import run_churn
        fast = run_churn(cycles=20, config_name=name, sanitize=False,
                         fastpath=True)
        ref = run_churn(cycles=20, config_name=name, sanitize=False,
                        fastpath=False)
        assert fast.summary() == ref.summary()


# -- BF701 lint rule ------------------------------------------------------------


SNIPPET = """
def pick(config):
    if config.babelfish_tlb:
        return "shared"
    return "private"
"""


class TestPolicyFlagLint:
    def lint(self, source, path):
        return LintEngine().lint_source(textwrap.dedent(source), path=path)

    def test_raw_flag_read_is_flagged(self):
        findings = self.lint(SNIPPET, "src/repro/sim/mmu.py")
        assert [f.rule_id for f in findings] == ["BF701"]

    def test_all_three_flags_covered(self):
        for flag in ("babelfish_tlb", "babelfish_pt", "is_babelfish"):
            findings = self.lint("x = config.%s\n" % flag,
                                 "src/repro/experiments/foo.py")
            assert [f.rule_id for f in findings] == ["BF701"]

    def test_policy_layer_files_are_exempt(self):
        assert self.lint(SNIPPET, "src/repro/sim/config.py") == []
        assert self.lint(SNIPPET, "src/repro/core/policy.py") == []

    def test_tests_are_exempt(self):
        assert self.lint(SNIPPET, "tests/test_whatever.py") == []

    def test_store_is_not_a_read(self):
        findings = self.lint("config.babelfish_tlb = True\n",
                             "src/repro/sim/mmu.py")
        assert findings == []

    def test_tree_is_clean(self):
        # The refactor's end state: no raw policy-flag dispatch anywhere
        # in the source tree (the whole point of BF701).
        findings = LintEngine().lint_paths(["src/repro"])
        assert [f for f in findings if f.rule_id == "BF701"] == []


# -- zoo experiment plumbing ----------------------------------------------------


class TestZoo:
    def test_matrix_covers_grid(self):
        requests = zoo.zoo_matrix(("mongodb",), 2, 0.05)
        assert len(requests) == len(zoo.ZOO_CONFIGS) * len(zoo.TIER_OVERRIDES)
        names = {r.config_name for r in requests}
        assert set(zoo.NEW_POLICIES) <= names

    def test_gain_math(self):
        grid = {"a": {"Baseline": {"mpki": 4.0}, "P": {"mpki": 2.0}},
                "b": {"Baseline": {"mpki": 9.0}, "P": {"mpki": 4.5}}}
        assert zoo._gain(grid, ("a", "b"), "P", "mpki") == 2.0

    def test_gain_guards_zero_denominator(self):
        grid = {"a": {"Baseline": {"walks": 10}, "P": {"walks": 0}}}
        assert zoo._gain(grid, ("a",), "P", "walks") > 1.0

    def test_run_zoo_merges_existing_tiers(self, tmp_path, monkeypatch):
        out = tmp_path / "BENCH_zoo.json"
        out.write_text(json.dumps(
            {"bench": "zoo", "tiers": {"full": {"identical": True,
                                                "grid": {}}}}))
        stub = {"identical": True, "divergent": [], "grid": {},
                "apps": [], "configs": []}
        monkeypatch.setattr(zoo, "measure_tier",
                            lambda *a, **k: dict(stub))
        payload = zoo.run_zoo(smoke=True, out=out, progress=None)
        assert set(payload["tiers"]) == {"smoke", "full"}
        on_disk = json.loads(out.read_text())
        assert on_disk["tiers"]["full"]["identical"] is True

    def test_bench_zoo_checked_in_and_identical(self):
        path = zoo.default_output_path()
        assert path.exists(), "run `python -m repro.experiments zoo --smoke`"
        payload = json.loads(path.read_text())
        smoke = payload["tiers"]["smoke"]
        assert smoke["identical"] is True
        for config in zoo.NEW_POLICIES:
            for app in smoke["apps"]:
                cell = smoke["grid"][app][config]
                assert cell["identical"] is True
                assert cell["mpki"] > 0
