"""Tests for the physical frame allocator."""

import pytest

from repro.kernel.errors import OutOfMemoryError
from repro.kernel.frames import FrameAllocator, FrameKind


class TestFrameAllocator:
    def test_alloc_unique(self):
        alloc = FrameAllocator()
        frames = {alloc.alloc() for _ in range(100)}
        assert len(frames) == 100

    def test_frame_zero_reserved(self):
        alloc = FrameAllocator()
        assert alloc.alloc() != 0

    def test_kind_tracking(self):
        alloc = FrameAllocator()
        alloc.alloc(FrameKind.PAGE_TABLE)
        alloc.alloc(FrameKind.DATA)
        alloc.alloc(FrameKind.DATA)
        assert alloc.count(FrameKind.PAGE_TABLE) == 1
        assert alloc.count(FrameKind.DATA) == 2

    def test_refcount_lifecycle(self):
        alloc = FrameAllocator()
        ppn = alloc.alloc()
        assert alloc.refcount(ppn) == 1
        alloc.incref(ppn)
        assert alloc.refcount(ppn) == 2
        assert alloc.decref(ppn) == 1
        assert alloc.decref(ppn) == 0
        assert alloc.refcount(ppn) == 0

    def test_free_frame_reused(self):
        alloc = FrameAllocator()
        ppn = alloc.alloc()
        alloc.decref(ppn)
        assert alloc.alloc() == ppn

    def test_decref_unallocated_raises(self):
        alloc = FrameAllocator()
        with pytest.raises(ValueError):
            alloc.decref(0x999)

    def test_incref_unallocated_raises(self):
        alloc = FrameAllocator()
        with pytest.raises(ValueError):
            alloc.incref(0x999)

    def test_out_of_memory(self):
        alloc = FrameAllocator(total_frames=4)
        for _ in range(3):
            alloc.alloc()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc()

    def test_block_alloc_contiguous(self):
        alloc = FrameAllocator()
        base = alloc.alloc(pages=512)
        nxt = alloc.alloc()
        assert nxt >= base + 512

    def test_block_freed_as_unit(self):
        alloc = FrameAllocator()
        before = alloc.allocated
        base = alloc.alloc(FrameKind.DATA, pages=512)
        assert alloc.allocated == before + 512
        alloc.decref(base)
        assert alloc.allocated == before

    def test_block_refcount(self):
        alloc = FrameAllocator()
        base = alloc.alloc(pages=8)
        alloc.incref(base)
        alloc.decref(base)
        assert alloc.refcount(base) == 1

    def test_peak_tracking(self):
        alloc = FrameAllocator()
        pp = [alloc.alloc() for _ in range(10)]
        for ppn in pp:
            alloc.decref(ppn)
        assert alloc.peak_allocated >= 10
        assert alloc.allocated == 0

    def test_kind_lookup(self):
        alloc = FrameAllocator()
        ppn = alloc.alloc(FrameKind.MASK_PAGE)
        assert alloc.kind(ppn) is FrameKind.MASK_PAGE
        assert alloc.kind(0x12345) is None
