"""Smoke tests for every experiment harness at miniature scale."""

import pytest

from repro.experiments import clear_run_cache
from repro.experiments.ablations import (
    run_aslr_ablation,
    run_bitmask_width_ablation,
    run_orpc_ablation,
)
from repro.experiments.bringup import run_bringup
from repro.experiments.common import format_table, pct_reduction
from repro.experiments.fig9 import run_fig9_app, run_fig9_functions, summarize as fig9_summary
from repro.experiments.fig10 import run_fig10, summarize as fig10_summary
from repro.experiments.fig11 import run_fig11, summarize as fig11_summary
from repro.experiments.larger_tlb import run_comparison
from repro.experiments.resources import analytic_space_overhead, run_resources
from repro.experiments.table2 import run_table2, summarize as table2_summary
from repro.experiments.table3 import bitmask_width_sweep, run_table3

SMALL = dict(cores=1, scale=0.08)


@pytest.fixture(autouse=True, scope="module")
def _cache():
    clear_run_cache()
    yield


class TestHelpers:
    def test_pct_reduction(self):
        assert pct_reduction(100, 80) == 20.0
        assert pct_reduction(0, 5) == 0.0

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}], ["a", "b"], title="T")
        assert "T" in text and "2.50" in text


class TestFig9:
    def test_app_row_consistency(self):
        row = run_fig9_app("httpd", scale=0.1)
        assert row.total == (row.total_shareable + row.total_unshareable
                             + row.total_thp)
        assert row.active <= row.total
        assert row.active_babelfish <= row.active
        assert 0 < row.shareable_fraction < 1

    def test_functions_row(self):
        row = run_fig9_functions(scale=0.1)
        assert row.shareable_fraction > 0.7
        assert row.active_reduction > 0.3

    def test_summary_keys(self):
        rows = [run_fig9_app("httpd", scale=0.1),
                run_fig9_functions(scale=0.1)]
        summary = fig9_summary(rows)
        assert "avg_shareable_fraction" in summary
        assert "functions_shareable_fraction" in summary


class TestFig10:
    def test_rows(self):
        rows = run_fig10(apps=("httpd",), **SMALL)
        apps = {r["app"] for r in rows}
        assert {"httpd", "functions-dense", "functions-sparse"} <= apps
        for row in rows:
            assert row["mpki_d_babelfish"] <= row["mpki_d_base"] * 1.05
            assert 0 <= row["shared_hits_d"] <= 1

    def test_summary(self):
        rows = run_fig10(apps=("httpd",), **SMALL)
        summary = fig10_summary(rows)
        assert summary["serving_data_mpki_reduction_pct"] > 0


class TestFig11:
    def test_structure_and_direction(self):
        results = run_fig11(**SMALL)
        assert len(results["serving"]) == 3
        assert len(results["compute"]) == 2
        assert len(results["functions"]) == 6
        summary = fig11_summary(results)
        assert summary["serving_mean_pct"] > 0
        assert summary["functions_sparse_pct"] > summary["functions_dense_pct"]


class TestTable2:
    def test_fractions_bounded(self):
        rows = run_table2(**SMALL)
        for row in rows:
            assert -1.0 <= row["tlb_fraction"] <= 1.0
        summary = table2_summary(rows)
        assert "serving_average" in summary


class TestTable3:
    def test_matches_paper(self):
        for row in run_table3():
            assert row["area_mm2"] == pytest.approx(row["paper_area_mm2"],
                                                    rel=0.05)

    def test_sweep_monotone(self):
        rows = bitmask_width_sweep()
        areas = [r["area_mm2"] for r in rows]
        assert areas == sorted(areas)


class TestLargerTLB:
    def test_bigtlb_recovers_less(self):
        rows = run_comparison(**SMALL)
        by_metric = {r["metric"]: r for r in rows}
        serving = by_metric["serving_mean_pct"]
        assert serving["bigtlb_reduction_pct"] < serving["babelfish_reduction_pct"]


class TestBringup:
    def test_reduction_positive(self):
        result = run_bringup(**SMALL)
        assert result["reduction_pct"] > 0
        assert result["babelfish_cycles"] < result["baseline_cycles"]


class TestResources:
    def test_analytic_matches_paper(self):
        overhead = analytic_space_overhead()
        assert overhead["maskpage_space_overhead_pct"] == pytest.approx(
            0.195, abs=0.01)
        assert overhead["counter_space_overhead_pct"] == pytest.approx(
            0.049, abs=0.005)

    def test_full_report(self):
        report = run_resources(include_measured=False)
        assert report["core_area_overhead_pct"] == pytest.approx(0.4, abs=0.05)
        assert (report["core_area_overhead_no_pc_pct"]
                < report["core_area_overhead_pct"])


class TestAblations:
    def test_aslr(self):
        rows = run_aslr_ablation(cores=1, scale=0.08)
        modes = {r["mode"] for r in rows}
        assert modes == {"aslr-sw", "aslr-hw"}
        sw = next(r for r in rows if r["mode"] == "aslr-sw")
        hw = next(r for r in rows if r["mode"] == "aslr-hw")
        assert sw["aslr_transforms"] == 0
        assert hw["aslr_transforms"] > 0

    def test_orpc(self):
        rows = run_orpc_ablation(cores=1, scale=0.08)
        on = next(r for r in rows if r["orpc_enabled"])
        off = next(r for r in rows if not r["orpc_enabled"])
        assert off["l2_long_accesses"] > on["l2_long_accesses"]

    def test_bitmask_width(self):
        rows = run_bitmask_width_ablation(writers=6, widths=(4, 32), pages=8)
        by_width = {r["pc_bits"]: r for r in rows}
        assert by_width[4]["reverts"] >= 1
        assert by_width[32]["reverts"] == 0

    def test_share_huge(self):
        from repro.experiments.ablations import run_share_huge_ablation
        rows = run_share_huge_ablation(blocks=2, sharers=3)
        on = next(r for r in rows if r["share_huge"])
        off = next(r for r in rows if not r["share_huge"])
        assert on["table_pages"] < off["table_pages"]
        assert on["fork_cycles"] < off["fork_cycles"]


class TestMixedColocation:
    def test_same_app_beats_mixed(self):
        from repro.experiments.mixed import run_mixed_colocation
        rows = run_mixed_colocation(cores=2, scale=0.15)
        by_scenario = {r["scenario"]: r for r in rows}
        assert (by_scenario["same-app"]["shared_hits"]
                >= by_scenario["mixed"]["shared_hits"])


class TestDensitySweep:
    def test_advantage_grows_with_density(self):
        from repro.experiments.density import run_density_sweep
        rows = run_density_sweep(cores=1, scale=0.12, densities=(2, 4))
        assert (rows[1]["shared_hits"] > rows[0]["shared_hits"])
        assert (rows[1]["baseline_table_pages"]
                > rows[1]["babelfish_table_pages"])
