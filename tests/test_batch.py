"""Differential verification of the batch engine (repro.sim.batch).

The contract: with ``SimConfig.batch`` on (and the fast structures
available), ``RunResult.as_dict()`` is bit-identical to both the scalar
fast path and the reference path on the same workload — across chunk
boundaries, faults on the first/last record of a chunk, epoch bumps
mid-chunk, single-record chunks, the numpy span core and the pure-Python
fallback, and a seeded fuzz over mixed configurations. Plus the perf
harness glue: the batch tier and the merge-on-write trajectory file.
"""

import json
import random

import pytest

from repro.experiments.common import (build_environment, config_by_name,
                                      deploy_app)
from repro.experiments import perf
from repro.experiments.perf import run_hot
from repro.kernel.vma import SegmentKind
from repro.sim import batch
from repro.workloads.profiles import APP_PROFILES

STOCK_CONFIGS = ("Baseline", "BabelFish", "BabelFish-PT", "BabelFish-TLB",
                 "BigTLB", "Victima", "Coalesced")


def _run(name, cores=1, records=1200, batch_on=True, **overrides):
    config = config_by_name(name, batch=batch_on, **overrides)
    d, _, _ = run_hot(config, cores, records)
    # Identity comparisons are about the architecture: the batch
    # engine's punt-attribution diagnostics ride outside it.
    return perf.arch_dict(d)


def _run_ref(name, cores=1, records=1200, **overrides):
    config = config_by_name(name, fastpath=False, **overrides)
    d, _, _ = run_hot(config, cores, records)
    return d


def _run_trace(trace, name="BabelFish", batch_on=True, fastpath=True):
    """Run one explicit trace on every deployed container (1 core)."""
    config = config_by_name(name, fastpath=fastpath,
                            batch=batch_on and fastpath)
    env = build_environment(config, cores=1)
    deployment = deploy_app(env, APP_PROFILES["mongodb"])
    for container in deployment.containers:
        env.sim.attach(container.proc, list(trace), container.core)
    return perf.arch_dict(env.sim.run().as_dict())


# -- gating ---------------------------------------------------------------------


def test_gating_flags(monkeypatch):
    on = config_by_name("BabelFish", batch=True)
    off = config_by_name("BabelFish")
    assert batch.batch_active(on)
    assert not batch.batch_active(off)
    # batch requires the fast structures: debug modes force scalar paths.
    assert not batch.batch_active(
        config_by_name("BabelFish", batch=True, sanitize=True))
    assert not batch.batch_active(
        config_by_name("BabelFish", batch=True, fastpath=False))
    monkeypatch.setenv(batch.BATCH_ENV, "0")
    assert not batch.batch_active(on)
    monkeypatch.delenv(batch.BATCH_ENV)
    env = build_environment(on, cores=1)
    assert env.sim._batch is True


def test_numpy_escape_hatch(monkeypatch):
    if batch._np is None:
        pytest.skip("numpy not installed")
    assert batch.numpy_active()
    monkeypatch.setenv(batch.BATCH_NUMPY_ENV, "0")
    assert not batch.numpy_active()


# -- end-to-end triangulation ---------------------------------------------------


@pytest.mark.parametrize("name", STOCK_CONFIGS)
def test_stock_configs_triangulate(name):
    cores = 2 if name == "BabelFish" else 1
    ref = _run_ref(name, cores=cores)
    assert _run(name, cores=cores) == ref


def test_numpy_and_fallback_agree(monkeypatch):
    ref = _run_ref("BabelFish")
    assert _run("BabelFish") == ref
    monkeypatch.setenv(batch.BATCH_NUMPY_ENV, "0")
    assert _run("BabelFish") == ref


def test_forced_numpy_span_core(monkeypatch):
    # NP_SPAN_MIN is normally a heuristic cutover; forcing it to 0 makes
    # every claim take the vectorized precompute so the span core is
    # exercised regardless of punt density.
    if batch._np is None:
        pytest.skip("numpy not installed")
    monkeypatch.setattr(batch, "NP_SPAN_MIN", 0)
    assert _run("BabelFish") == _run_ref("BabelFish")


# -- chunk-boundary edges -------------------------------------------------------


def _boundary_trace(chunk, chunks=6, cold_every=None):
    """A deterministic trace sized in whole chunks: hot records with cold
    (memo-missing, walk-taking) records planted at exact chunk-relative
    positions."""
    rng = random.Random(9)
    records = []
    for i in range(chunk * chunks):
        gap = rng.randrange(2, 5)
        if cold_every is not None and (i % chunk) in cold_every:
            # A fresh cold page each time: first touch faults, so the
            # record can never be claimed.
            records.append((1, SegmentKind.MMAP, 500 + i, 0, gap, None))
        elif rng.random() < 0.3:
            records.append((2, SegmentKind.HEAP, rng.randrange(6),
                            rng.randrange(64), gap, None))
        else:
            records.append((0, SegmentKind.CODE, rng.randrange(4),
                            rng.randrange(64), gap, None))
    return records


@pytest.mark.parametrize("cold_every", [(0,), (7,), (0, 7), ()],
                         ids=["fault-first", "fault-last", "fault-both",
                              "no-faults"])
def test_fault_at_chunk_edges(monkeypatch, cold_every):
    monkeypatch.setattr(batch, "CHUNK", 8)
    trace = _boundary_trace(8, cold_every=cold_every)
    ref = _run_trace(trace, fastpath=False)
    assert _run_trace(trace) == ref


def test_single_record_chunks(monkeypatch):
    monkeypatch.setattr(batch, "CHUNK", 1)
    trace = _boundary_trace(1, chunks=400, cold_every=None)
    assert _run_trace(trace) == _run_trace(trace, fastpath=False)


def test_epoch_bump_mid_chunk(monkeypatch):
    # CoW stores to fresh heap pages fault mid-stream (shootdowns bump
    # TLB set epochs between claims); with a tiny chunk the bumps land
    # inside nearly every chunk.
    monkeypatch.setattr(batch, "CHUNK", 16)
    rng = random.Random(21)
    trace = []
    for i in range(640):
        if i % 5 == 3:
            trace.append((2, SegmentKind.HEAP, rng.randrange(40),
                          rng.randrange(64), 2, None))
        else:
            trace.append((0, SegmentKind.CODE, rng.randrange(4),
                          rng.randrange(64), 3, None))
    assert _run_trace(trace) == _run_trace(trace, fastpath=False)


def test_churn_storm_triangulates():
    # Container stop/restart mid-stream: PCID/CCID flushes, recycling,
    # and cross-core shootdowns all land between (and inside) claims.
    from repro.experiments.churn import run_churn

    ref = run_churn(cycles=25, sanitize=False, fastpath=False,
                    pcid_bits=4, kill_rate=0.2, seed=11)
    bat = run_churn(cycles=25, sanitize=False, fastpath=True, batch=True,
                    pcid_bits=4, kill_rate=0.2, seed=11)
    assert bat.pcid_recycles > 0
    assert bat.summary() == ref.summary()


# -- seeded fuzz ----------------------------------------------------------------


def test_fuzz_mixed_configs(monkeypatch):
    # 50 randomized (config, cores, records, CHUNK, NP_SPAN_MIN, numpy)
    # draws; every one must be bit-identical to the reference run.
    rng = random.Random(1234)
    for trial in range(50):
        name = rng.choice(STOCK_CONFIGS)
        cores = rng.choice((1, 2))
        records = rng.randrange(150, 700)
        chunk = rng.choice((1, 3, 8, 64, 2048))
        span_min = rng.choice((0, 4, 192))
        use_np = rng.random() < 0.5
        monkeypatch.setattr(batch, "CHUNK", chunk)
        monkeypatch.setattr(batch, "NP_SPAN_MIN", span_min)
        monkeypatch.setenv(batch.BATCH_NUMPY_ENV, "1" if use_np else "0")
        got = _run(name, cores=cores, records=records)
        want = _run_ref(name, cores=cores, records=records)
        assert got == want, (
            "fuzz trial %d diverged: %s cores=%d records=%d chunk=%d "
            "span_min=%d numpy=%s"
            % (trial, name, cores, records, chunk, span_min, use_np))


# -- perf harness: batch tier + merge-on-write ----------------------------------


def test_batch_tier_entry_shape(monkeypatch):
    spec = perf.TIERS["batch"]
    assert spec["overrides"] == {"batch": True}
    small = dict(perf.TIERS)
    small["batch"] = dict(spec, records=1500)
    monkeypatch.setattr(perf, "TIERS", small)
    entry = perf.measure_tier("batch", repeats=1)
    assert entry["identical"] is True
    assert entry["overrides"] == {"batch": True}
    assert entry["speedup"] > 0
    assert entry["fastpath_speedup"] > 0
    # Punt attribution rides along on batch-tier entries: every record
    # is either claimed or punted, and every punt has a cause.
    punts = entry["punts"]
    assert punts["claimed_records"] + punts["total"] == entry["accesses"]
    assert sum(punts["causes"].values()) == punts["total"]


def test_run_harness_merges_existing_tiers(tmp_path, monkeypatch):
    # A smoke run must extend the trajectory file, not erase the tiers
    # it did not run (the old write clobbered medium on every CI run).
    out = tmp_path / "BENCH_hotpath.json"
    out.write_text(json.dumps({
        "bench": "hotpath", "app": "mongodb",
        "tiers": {"medium": {"speedup": 3.21, "identical": True}},
    }))

    def fake_measure(tier, repeats=None, monitor=None):
        return {"speedup": 1.0, "identical": True,
                "fast_accesses_per_sec": 1, "reference_accesses_per_sec": 1}

    monkeypatch.setattr(perf, "measure_tier", fake_measure)
    payload = perf.run_harness(smoke=True, out=out, progress=lambda *_: None)
    assert set(payload["tiers"]) == {"smoke", "medium", "batch"}
    on_disk = json.loads(out.read_text())
    assert on_disk["tiers"]["medium"]["speedup"] == 3.21
    assert set(on_disk["tiers"]) == {"smoke", "medium", "batch"}
    assert not list(tmp_path.glob("*.tmp"))


def test_run_harness_tolerates_corrupt_trajectory(tmp_path, monkeypatch):
    out = tmp_path / "BENCH_hotpath.json"
    out.write_text("{not json")
    monkeypatch.setattr(
        perf, "measure_tier",
        lambda tier, repeats=None, monitor=None: {
            "speedup": 1.0, "identical": True,
            "fast_accesses_per_sec": 1, "reference_accesses_per_sec": 1})
    payload = perf.run_harness(smoke=True, out=out, progress=lambda *_: None)
    assert set(payload["tiers"]) == {"smoke", "batch"}
    assert set(json.loads(out.read_text())["tiers"]) == {"smoke", "batch"}
