"""MMUStats derived-metric edges, percentile(), and the canonical
``RunResult.as_dict`` summary shape."""

from repro.experiments.runcache import result_from_dict, result_to_dict
from repro.sim.stats import MMUStats, RunResult, percentile


class TestMMUStatsEdges:
    def test_mpki_zero_instructions(self):
        stats = MMUStats()
        stats.l2_misses_i = 7
        stats.l2_misses_d = 5
        assert stats.instructions == 0
        for kind in ("i", "d", "all"):
            assert stats.mpki(kind) == 0.0

    def test_mpki_counts_per_kilo_instruction(self):
        stats = MMUStats()
        stats.instructions = 2000
        stats.l2_misses_i = 1
        stats.l2_misses_d = 3
        assert stats.mpki("i") == 0.5
        assert stats.mpki("d") == 1.5
        assert stats.mpki() == 2.0

    def test_shared_hit_fraction_zero_hits(self):
        stats = MMUStats()
        for kind in ("i", "d", "all"):
            assert stats.shared_hit_fraction(kind) == 0.0

    def test_shared_hit_fraction_partial(self):
        stats = MMUStats()
        stats.l2_hits_i = 4
        stats.l2_hits_d = 6
        stats.l2_shared_hits_i = 1
        stats.l2_shared_hits_d = 3
        assert stats.shared_hit_fraction("i") == 0.25
        assert stats.shared_hit_fraction("d") == 0.5
        assert stats.shared_hit_fraction() == 0.4
        # Zero hits on one side must not divide by zero either.
        stats.l2_hits_i = stats.l2_shared_hits_i = 0
        assert stats.shared_hit_fraction("i") == 0.0


class TestPercentile:
    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_single_element_every_pct(self):
        for pct in (0, 1, 50, 95, 99, 100):
            assert percentile([42], pct) == 42.0

    def test_nearest_rank(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 0) == 10.0


class TestHistogramPercentileAgreement:
    """The histogram summary (repro.obs.metrics) and the exact-value
    summary (repro.sim.stats) use the same nearest-rank definition: for
    any fixture, the histogram answer is the bucket upper bound of the
    exact answer's bucket."""

    FIXTURES = [
        [0],
        [0, 0, 0],
        [1, 1, 4, 4, 4],          # half-way count: round() picked rank 2
        [10, 20, 30, 40],
        [3, 7, 7, 100, 100, 2000],
        list(range(1, 101)),
        [5] * 9 + [800],
    ]

    def test_same_element_for_shared_fixtures(self):
        from repro.obs.metrics import Histogram, bucket_of

        for values in self.FIXTURES:
            hist = Histogram()
            for v in values:
                hist.observe(v)
            for pct in (0, 1, 25, 50, 75, 90, 95, 99, 100):
                exact = percentile(values, pct)
                want = float((1 << bucket_of(int(exact))) - 1)
                got = hist.percentile(pct)
                assert got == want, (values, pct, got, want)

    def test_halfway_count_uses_ceil_rank(self):
        # N=5, p50 -> rank ceil(2.5)=3 (the old int(round(2.5)) gave 2
        # via banker's rounding, reporting the lower element's bucket).
        from repro.obs.metrics import Histogram

        hist = Histogram()
        for v in (1, 1, 4, 4, 4):
            hist.observe(v)
        assert hist.percentile(50) == 7.0  # bucket of 4 is [4,8)

    def test_zero_bucket_uniform_upper_bound(self):
        from repro.obs.metrics import Histogram

        hist = Histogram()
        for v in (0, 0, 0, 2):
            hist.observe(v)
        assert hist.percentile(50) == 0.0
        assert hist.percentile(100) == 3.0
        empty = Histogram()
        assert empty.percentile(95) == 0.0


def _sample_result():
    result = RunResult("Sample")
    result.stats.instructions = 1000
    result.stats.l2_misses_d = 4
    result.core_cycles = {0: 500, 1: 700}
    result.request_latency = {"r0": 100, "r1": 300}
    # Raw pids deliberately non-dense: as_dict must renumber them.
    result.completion_cycles = {207: 650, 203: 600}
    result.process_cycles = {203: 580, 207: 640}
    result.context_switches = 3
    return result


class TestRunResultAsDict:
    def test_dense_pid_normalization(self):
        data = _sample_result().as_dict()
        assert data["completion_cycles"] == [[0, 600], [1, 650]]
        assert data["process_cycles"] == [[0, 580], [1, 640]]

    def test_latency_block(self):
        data = _sample_result().as_dict()
        assert data["latency"]["mean"] == 200.0
        assert data["latency"]["p50"] == 100.0
        assert data["latency"]["p99"] == 300.0
        assert data["total_cycles"] == 700

    def test_runcache_roundtrip_is_canonical(self):
        original = _sample_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.as_dict() == original.as_dict()
        assert restored.stats.as_dict() == original.stats.as_dict()
        assert restored.obs is None

    def test_obs_snapshot_pids_remapped(self):
        result = _sample_result()
        result.obs = {
            "events_emitted": 1, "events_kept": 1, "events_dropped": 0,
            "options": {},
            "metrics": {"counters": [
                {"name": "faults", "labels": {"kind": "minor", "pid": 203},
                 "value": 2},
                {"name": "faults", "labels": {"kind": "minor", "pid": 207},
                 "value": 5}],
                "gauges": [], "histograms": []},
        }
        data = result.as_dict()
        labels = [entry["labels"]
                  for entry in data["obs"]["metrics"]["counters"]]
        assert labels == [{"kind": "minor", "pid": 0},
                          {"kind": "minor", "pid": 1}]
        # The live result is untouched: only the summary view is remapped.
        assert result.obs["metrics"]["counters"][0]["labels"]["pid"] == 203
        restored = result_from_dict(result_to_dict(result))
        assert restored.obs == data["obs"]
