"""Run-cache keying, the disk run cache, and the parallel runner.

The headline regression here: configs built via ``config_by_name(name,
**overrides)`` share ``config.name`` with the stock config, and the old
name-based cache key silently returned the stock config's run for them.
"""

import dataclasses

import pytest

from repro.containers.image import ContainerImage
from repro.experiments.common import (
    build_environment,
    clear_run_cache,
    config_by_name,
    config_cache_key,
    deploy_app,
    run_app,
    run_functions,
    set_disk_cache,
    simulation_run_count,
)
from repro.experiments.runcache import (
    DiskRunCache,
    config_field_dict,
    config_from_fields,
)
from repro.experiments.runner import (
    RunRequest,
    execute,
    fig11_matrix,
    parallel_map,
    report_matrix,
    request_overrides,
)
from repro.workloads.profiles import APP_PROFILES

SMALL = dict(cores=1, scale=0.08)


@pytest.fixture(autouse=True)
def _isolated_caches():
    """Every test starts from empty caches and leaves none installed."""
    previous = set_disk_cache(None)
    clear_run_cache()
    yield
    set_disk_cache(previous)
    clear_run_cache()


class TestConfigKeying:
    def test_same_name_different_fields_distinct_keys(self):
        stock = config_by_name("Baseline")
        tweaked = config_by_name("Baseline", thp_enabled=False)
        assert stock.name == tweaked.name
        assert config_cache_key(stock) != config_cache_key(tweaked)

    def test_costs_fields_participate(self):
        from repro.kernel.costs import KernelCosts
        stock = config_by_name("Baseline")
        tweaked = config_by_name("Baseline",
                                 costs=KernelCosts(minor_fault=9999))
        assert config_cache_key(stock) != config_cache_key(tweaked)

    def test_same_name_configs_do_not_share_runs(self):
        """Regression: the old key used config.name only, so the second
        call below returned the first call's run."""
        before = simulation_run_count()
        stock = run_app("httpd", config_by_name("Baseline"), **SMALL)
        tweaked = run_app("httpd", config_by_name("Baseline",
                                                  thp_enabled=False), **SMALL)
        assert stock is not tweaked
        assert simulation_run_count() == before + 2
        assert tweaked.config.thp_enabled is False

    def test_identical_configs_still_share(self):
        before = simulation_run_count()
        first = run_app("httpd", config_by_name("Baseline"), **SMALL)
        again = run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert again is first
        assert simulation_run_count() == before + 1

    def test_functions_keyed_on_fields(self):
        stock = config_by_name("BabelFish")
        tweaked = config_by_name("BabelFish", orpc_enabled=False)
        key = ("functions", config_cache_key(stock), True, 1, 0.08)
        other = ("functions", config_cache_key(tweaked), True, 1, 0.08)
        assert key != other

    def test_config_roundtrip_through_field_dict(self):
        config = config_by_name("BabelFish", orpc_enabled=False,
                                pc_bitmask_bits=8)
        rebuilt = config_from_fields(config_field_dict(config))
        assert rebuilt == config
        assert config_cache_key(rebuilt) == config_cache_key(config)


class TestReportArgs:
    def test_explicit_zero_cores_errors(self):
        from repro import report
        with pytest.raises(SystemExit) as excinfo:
            report.parse_args(["--cores", "0"])
        assert excinfo.value.code == 2

    def test_explicit_zero_scale_errors(self):
        from repro import report
        with pytest.raises(SystemExit) as excinfo:
            report.parse_args(["--scale", "0"])
        assert excinfo.value.code == 2

    def test_negative_jobs_errors(self):
        from repro import report
        with pytest.raises(SystemExit):
            report.parse_args(["--jobs", "0"])

    def test_quick_defaults(self):
        from repro import report
        args = report.parse_args(["--quick"])
        assert args.cores == 2
        assert args.scale == 0.25

    def test_explicit_values_respected(self):
        from repro import report
        args = report.parse_args(["--quick", "--cores", "1",
                                  "--scale", "0.5"])
        assert args.cores == 1
        assert args.scale == 0.5


class TestWarmupEdgeCases:
    def test_zero_binary_and_lib_pages(self):
        """Regression: _os_warmup computed ``page % image.binary_pages``
        (and the lib equivalent), so an image with no binary or library
        pages raised ZeroDivisionError even though there is simply no
        code working set to warm."""
        from repro.experiments.common import Deployment, _os_warmup
        env = build_environment(config_by_name("Baseline"), cores=1)
        deployment = deploy_app(env, APP_PROFILES["httpd"])
        codeless = dataclasses.replace(
            deployment.profile,
            image=dataclasses.replace(deployment.profile.image,
                                      binary_pages=0, lib_pages=0))
        assert codeless.code_hot and codeless.lib_hot
        _os_warmup(env, Deployment(codeless, deployment.group,
                                   deployment.containers,
                                   deployment.dataset_file))


class TestDiskCache:
    def test_hit_skips_simulation_and_preserves_summary(self, tmp_path):
        set_disk_cache(DiskRunCache(tmp_path, fingerprint="fp-a"))
        before = simulation_run_count()
        live = run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert simulation_run_count() == before + 1
        clear_run_cache()
        cached = run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert simulation_run_count() == before + 1  # no re-simulation
        assert cached is not live
        assert cached.result.stats.as_dict() == live.result.stats.as_dict()
        assert cached.result.request_latency == live.result.request_latency
        assert cached.result.mean_latency == live.result.mean_latency

    def test_kernel_snapshot_survives(self, tmp_path):
        from repro.kernel.frames import FrameKind
        set_disk_cache(DiskRunCache(tmp_path, fingerprint="fp-a"))
        live = run_app("httpd", config_by_name("Baseline"), **SMALL)
        live_tables = live.env.kernel.allocator.count(FrameKind.PAGE_TABLE)
        clear_run_cache()
        cached = run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert (cached.env.kernel.allocator.count(FrameKind.PAGE_TABLE)
                == live_tables)

    def test_functions_roundtrip(self, tmp_path):
        set_disk_cache(DiskRunCache(tmp_path, fingerprint="fp-a"))
        before = simulation_run_count()
        live = run_functions(config_by_name("BabelFish"), dense=True, **SMALL)
        clear_run_cache()
        cached = run_functions(config_by_name("BabelFish"), dense=True,
                               **SMALL)
        assert simulation_run_count() == before + 1
        assert cached.bringup_cycles == live.bringup_cycles
        assert cached.exec_cycles == live.exec_cycles

    def test_code_fingerprint_invalidates(self, tmp_path):
        set_disk_cache(DiskRunCache(tmp_path, fingerprint="fp-a"))
        before = simulation_run_count()
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert simulation_run_count() == before + 1
        # Same cache dir, new code fingerprint: entry no longer matches.
        set_disk_cache(DiskRunCache(tmp_path, fingerprint="fp-b"))
        clear_run_cache()
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert simulation_run_count() == before + 2

    def test_distinct_configs_distinct_entries(self, tmp_path):
        cache = DiskRunCache(tmp_path, fingerprint="fp-a")
        set_disk_cache(cache)
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        run_app("httpd", config_by_name("Baseline", thp_enabled=False),
                **SMALL)
        assert len(cache.entries()) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskRunCache(tmp_path, fingerprint="fp-a")
        set_disk_cache(cache)
        before = simulation_run_count()
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        for path in cache.entries():
            path.write_text("{ not json")
        clear_run_cache()
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert simulation_run_count() == before + 2

    def test_clear(self, tmp_path):
        cache = DiskRunCache(tmp_path, fingerprint="fp-a")
        set_disk_cache(cache)
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        assert cache.clear() == 1
        assert cache.entries() == []


def _result_signature(run):
    """Everything the report reads off a result. Pid-keyed maps compare
    by value sequence: pids depend on process history, the cycles don't."""
    result = run.result
    return (result.stats.as_dict(), sorted(result.request_latency.items()),
            sorted(result.core_cycles.items()),
            [v for _k, v in sorted(result.process_cycles.items())],
            [v for _k, v in sorted(result.completion_cycles.items())])


class TestParallelRunner:
    MATRIX = [
        RunRequest(kind="app", app="httpd", config_name="Baseline", **SMALL),
        RunRequest(kind="app", app="httpd", config_name="BabelFish", **SMALL),
        RunRequest(kind="functions", config_name="Baseline", dense=True,
                   **SMALL),
        RunRequest(kind="functions", config_name="BabelFish", dense=True,
                   **SMALL),
    ]

    def test_parallel_equals_sequential(self):
        sequential = execute(self.MATRIX, jobs=1)
        signatures = [_result_signature(run) for run in sequential]
        clear_run_cache()
        parallel = execute(self.MATRIX, jobs=2)
        assert [_result_signature(run) for run in parallel] == signatures

    def test_execute_seeds_run_cache(self):
        before = simulation_run_count()
        execute(self.MATRIX[:2], jobs=2)
        # The harness path (run_app) must now hit the seeded memo without
        # simulating in this process.
        run_app("httpd", config_by_name("Baseline"), **SMALL)
        run_app("httpd", config_by_name("BabelFish"), **SMALL)
        assert simulation_run_count() == before

    def test_parallel_workers_populate_disk_cache(self, tmp_path):
        cache = DiskRunCache(tmp_path, fingerprint="fp-a")
        set_disk_cache(cache)
        execute(self.MATRIX[:2], jobs=2)
        assert len(cache.entries()) == 2

    def test_execute_deduplicates(self):
        before = simulation_run_count()
        runs = execute([self.MATRIX[0], self.MATRIX[0]], jobs=1)
        assert len(runs) == 2
        assert runs[0] is runs[1]
        assert simulation_run_count() == before + 1

    def test_overrides_reach_config(self):
        request = RunRequest(kind="app", app="httpd",
                             config_name="Baseline",
                             overrides=request_overrides(thp_enabled=False),
                             **SMALL)
        assert request.config().thp_enabled is False

    def test_matrices_cover_report(self):
        matrix = report_matrix(cores=2, scale=0.25)
        assert matrix == fig11_matrix(cores=2, scale=0.25)
        apps = {r.app for r in matrix if r.kind == "app"}
        assert len(apps) == 5
        assert len(matrix) == len(set(matrix))

    def test_parallel_map_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=2) == [9, 1, 4]


def _square(value):
    return value * value
