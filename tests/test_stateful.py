"""Stateful property testing: random fork/read/write/exit sequences.

A hypothesis RuleBasedStateMachine drives a BabelFish kernel and a
conventional baseline kernel through the *same* random operation
sequence, tracking a logical-content model on the side:

- every write to an anonymous page stamps a unique token for the writing
  process; forked children inherit the parent's tokens (CoW semantics);
- shared-file pages carry one token for everybody.

After every step both kernels must satisfy, for every pair of live
processes and every page:

- **isolation**: different tokens => different physical frames;
- **shared-file unity**: all mappers of a shared file page see one frame;
- the full kernel audit (sharer counts, refcounts, registry, CCID
  confinement) stays clean.
"""

import itertools

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.kernel.audit import audit_kernel
from repro.kernel.vma import SegmentKind

from conftest import MiniSystem

HEAP, MMAP = SegmentKind.HEAP, SegmentKind.MMAP

PAGES = st.integers(0, 11)
MAX_PROCS = 6


class SharingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tokens = itertools.count(1)

    @initialize()
    def setup(self):
        self.systems = {"baseline": MiniSystem(babelfish=False),
                        "babelfish": MiniSystem(babelfish=True)}
        # procs[name] = {label: process}; the zygote is label 0.
        self.procs = {name: {0: sys.zygote}
                      for name, sys in self.systems.items()}
        self.next_label = 1
        #: anon content model: {label: {page: token}}; absent = zero page.
        self.anon = {0: {}}
        #: shared-file content model: {page: token}.
        self.shared = {}
        self.parent_of = {0: None}

    # -- operations --------------------------------------------------------

    @precondition(lambda self: self.next_label < MAX_PROCS)
    @rule(parent=st.integers(0, MAX_PROCS - 1))
    def fork(self, parent):
        labels = [l for l in self.anon if l <= parent] or [0]
        parent = max(labels)
        label = self.next_label
        self.next_label += 1
        for name, sys in self.systems.items():
            parent_proc = self.procs[name][parent]
            child, _ = sys.kernel.fork(parent_proc, name="p%d" % label)
            sys.group.add(child)
            self.procs[name][label] = child
        self.anon[label] = dict(self.anon[parent])
        self.parent_of[label] = parent

    @rule(label=st.integers(0, MAX_PROCS - 1), page=PAGES)
    def write_anon(self, label, page):
        label = self._live_label(label)
        token = next(self.tokens)
        for name in self.systems:
            sys = self.systems[name]
            proc = self.procs[name][label]
            sys.touch(proc, HEAP, page, write=True)
        self.anon[label][page] = token

    @rule(label=st.integers(0, MAX_PROCS - 1), page=PAGES)
    def read_anon(self, label, page):
        label = self._live_label(label)
        for name in self.systems:
            sys = self.systems[name]
            sys.touch(self.procs[name][label], HEAP, page)
        self.anon[label].setdefault(page, 0)  # observed the zero page

    @rule(label=st.integers(0, MAX_PROCS - 1), page=PAGES)
    def write_shared(self, label, page):
        label = self._live_label(label)
        token = next(self.tokens)
        for name in self.systems:
            sys = self.systems[name]
            sys.touch(self.procs[name][label], MMAP, page, write=True)
        self.shared[page] = token

    @rule(label=st.integers(0, MAX_PROCS - 1), page=PAGES)
    def read_shared(self, label, page):
        label = self._live_label(label)
        for name in self.systems:
            sys = self.systems[name]
            sys.touch(self.procs[name][label], MMAP, page)

    @precondition(lambda self: len(getattr(self, "anon", {})) > 1)
    @rule(label=st.integers(1, MAX_PROCS - 1))
    def exit_proc(self, label):
        live = [l for l in self.anon if l != 0]
        if not live:
            return
        label = min(live, key=lambda l: abs(l - label))
        for name in self.systems:
            sys = self.systems[name]
            proc = self.procs[name].pop(label)
            sys.group.remove(proc)
            sys.kernel.exit_process(proc)
        del self.anon[label]

    # -- helpers ------------------------------------------------------------

    def _live_label(self, label):
        live = sorted(self.anon)
        return min(live, key=lambda l: abs(l - label))

    def _frame(self, name, label, segment, page):
        proc = self.procs[name][label]
        pte = proc.tables.lookup_pte(proc.vpn_group(segment, page))
        if pte is None or not pte.present:
            return None
        return pte.ppn

    # -- invariants ------------------------------------------------------------

    @invariant()
    def audits_clean(self):
        if not hasattr(self, "systems"):
            return
        for sys in self.systems.values():
            audit_kernel(sys.kernel)

    @invariant()
    def isolation_holds(self):
        if not hasattr(self, "systems"):
            return
        labels = sorted(self.anon)
        for name in self.systems:
            for i, a in enumerate(labels):
                for b in labels[i + 1:]:
                    for page in set(self.anon[a]) | set(self.anon[b]):
                        ta = self.anon[a].get(page)
                        tb = self.anon[b].get(page)
                        if ta is None or tb is None or ta == tb:
                            continue
                        fa = self._frame(name, a, HEAP, page)
                        fb = self._frame(name, b, HEAP, page)
                        if fa is not None and fb is not None:
                            assert fa != fb, (
                                "%s: procs %d/%d share frame %#x at heap "
                                "page %d despite divergent writes"
                                % (name, a, b, fa, page))

    @invariant()
    def shared_file_unity(self):
        if not hasattr(self, "systems"):
            return
        for name in self.systems:
            for page in self.shared:
                frames = {self._frame(name, label, MMAP, page)
                          for label in self.anon}
                frames.discard(None)
                assert len(frames) <= 1, (
                    "%s: shared page %d maps to frames %s"
                    % (name, page, frames))


SharingMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None)
TestSharingMachine = SharingMachine.TestCase
