"""Unit tests for experiment-harness helper functions."""

import pytest

from repro.experiments import paper_values
from repro.experiments.fig10 import _mpki_row
from repro.experiments.table2 import _fraction
from repro.sim.stats import MMUStats


class TestTable2Fraction:
    def test_basic(self):
        # base=100, pt_only=40, full=20: TLB adds 20 of the 80 total.
        assert _fraction(100, 40, 20) == pytest.approx(0.25)

    def test_zero_total(self):
        assert _fraction(50, 50, 50) == 0.0

    def test_clamped(self):
        assert _fraction(100, 500, 90) == 1.0
        assert _fraction(100, 0, 90) == -1.0


class TestFig10Row:
    def stats(self, insts, d_miss, i_miss, d_hits=0, d_shared=0):
        stats = MMUStats()
        stats.instructions = insts
        stats.l2_misses_d = d_miss
        stats.l2_misses_i = i_miss
        stats.l2_hits_d = d_hits
        stats.l2_shared_hits_d = d_shared
        return stats

    def test_reduction_computed(self):
        base = self.stats(1000, 10, 4)
        bf = self.stats(1000, 5, 1)
        row = _mpki_row("x", base, bf)
        assert row["mpki_d_reduction_pct"] == pytest.approx(50.0)
        assert row["mpki_i_reduction_pct"] == pytest.approx(75.0)

    def test_zero_base_mpki(self):
        base = self.stats(1000, 0, 0)
        bf = self.stats(1000, 0, 0)
        row = _mpki_row("x", base, bf)
        assert row["mpki_d_reduction_pct"] == 0.0

    def test_shared_hit_fields(self):
        base = self.stats(1000, 1, 1)
        bf = self.stats(1000, 1, 1, d_hits=10, d_shared=4)
        row = _mpki_row("x", base, bf)
        assert row["shared_hits_d"] == pytest.approx(0.4)


class TestPaperValues:
    def test_headline_keys(self):
        needed = {"serving_mean_latency_reduction_pct",
                  "function_bringup_reduction_pct",
                  "shared_translations_serverless_pct"}
        assert needed <= set(paper_values.HEADLINE)

    def test_table2_complete(self):
        for app in ("mongodb", "arangodb", "httpd", "graphchi", "fio"):
            assert app in paper_values.TABLE2

    def test_table3_rows_match_cacti_calibration(self):
        from repro.hw.cacti import PAPER_TABLE3
        for name, row in paper_values.TABLE3.items():
            assert row["area_mm2"] == PAPER_TABLE3[name].area_mm2
            assert row["access_time_ps"] == PAPER_TABLE3[name].access_time_ps

    def test_fig11_consistent_with_headline(self):
        assert (paper_values.FIG11["serving_mean_pct"]
                == paper_values.HEADLINE["serving_mean_latency_reduction_pct"])
