"""Opt-in full-experiment runs with the translation-coherence sanitizer.

Skipped by default (see conftest); enable with ``--sanitize`` or
``REPRO_SANITIZE=1``. Each run replays a scaled-down bringup workload
with ``SimConfig(sanitize=True)`` and requires a spotless coherence
record — any stale TLB entry, CCID leak, O-PC desync, or invalidation
leak anywhere in the run fails the test with the violation text.
"""

import pytest

from repro.experiments.common import config_by_name, run_app, run_functions
from repro.sim.config import babelfish_tlb_only_config

pytestmark = pytest.mark.sanitize


def assert_coherent(run):
    violations = run.result.coherence_violations
    assert violations == [], "\n".join(v.format() for v in violations[:20])


@pytest.mark.parametrize("name", ["Baseline", "BabelFish", "BabelFish-PT"])
def test_functions_run_coherent(name):
    config = config_by_name(name, sanitize=True)
    run = run_functions(config, dense=True, cores=2, scale=0.25,
                        use_cache=False)
    assert_coherent(run)


def test_functions_tlb_only_ablation_coherent():
    # The ablation pairs shared TLB entries with private page tables — the
    # configuration where fill_info tagging bugs surface as cross-container
    # frame leaks, so it gets its own sanitized run.
    run = run_functions(babelfish_tlb_only_config(sanitize=True),
                        dense=True, cores=2, scale=0.25, use_cache=False)
    assert_coherent(run)


@pytest.mark.parametrize("app", ["mongodb", "graphchi"])
@pytest.mark.parametrize("name", ["Baseline", "BabelFish"])
def test_apps_run_coherent(app, name):
    config = config_by_name(name, sanitize=True)
    run = run_app(app, config, cores=2, scale=0.25, use_cache=False)
    assert_coherent(run)
