"""Tests for the Appendix extension: per-2MB-range pid lists.

The paper notes that "with an extra indirection, one could support more
writing processes" than the 32-per-PMD-table-set limit. With
``per_range_lists`` every pmd_t entry gets its own pid list, raising the
limit to 32 writers per 2MB range.
"""

import pytest

from repro.core.mask_page import MaskPage, MaskPageDirectory, MaskPageFull
from repro.core.shared_pt import SharedPTManager
from repro.core.ccid import CCIDRegistry
from repro.core.aslr import ASLRMode, group_layout_for
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.vma import SegmentKind, VMAKind

HEAP = SegmentKind.HEAP


class TestMaskPagePerRange:
    def test_independent_lists_per_range(self):
        page = MaskPage(1, 0, per_range=True, max_writers=2)
        assert page.assign_bit(10, pmd_index=0) == 0
        assert page.assign_bit(11, pmd_index=0) == 1
        # Range 1 has its own list: same pids get fresh bits, more pids fit.
        assert page.assign_bit(12, pmd_index=1) == 0
        assert page.assign_bit(13, pmd_index=1) == 1
        with pytest.raises(MaskPageFull):
            page.assign_bit(14, pmd_index=0)

    def test_bit_of_scoped(self):
        page = MaskPage(1, 0, per_range=True)
        page.assign_bit(10, pmd_index=3)
        assert page.bit_of(10, pmd_index=3) == 0
        assert page.bit_of(10, pmd_index=4) is None

    def test_writers_counts_all_ranges(self):
        page = MaskPage(1, 0, per_range=True)
        page.assign_bit(1, pmd_index=0)
        page.assign_bit(2, pmd_index=1)
        assert page.writers == 2

    def test_directory_propagates_mode(self):
        directory = MaskPageDirectory(per_range_lists=True, max_writers=4)
        page = directory.get_or_create(1, 0)
        assert page.per_range
        assert page.max_writers == 4


def storm_kernel(max_writers, per_range):
    registry = CCIDRegistry()
    group = registry.group_for("tenant", "storm")
    kernel = Kernel(KernelConfig(), policy=SharedPTManager(
        MaskPageDirectory(max_writers=max_writers,
                          per_range_lists=per_range)))
    kernel.policy.mask_dir.allocator = kernel.allocator
    layout = group_layout_for(group, ASLRMode.SW)
    zygote = kernel.spawn(group.ccid, layout, name="zygote")
    kernel.mmap(zygote, HEAP, 0, 2048, VMAKind.ANON, name="heap")
    return kernel, group, zygote


class TestIndirectionEndToEnd:
    def cow_storm(self, per_range, writers, pages_per_range=1):
        """Writers CoW pages spread over several 2MB ranges of one 1GB
        region: page i*600 stays in range i (600 > 512)."""
        kernel, group, zygote = storm_kernel(max_writers=4,
                                             per_range=per_range)
        # Parent populates one page in each of 3 ranges.
        for r in range(3):
            kernel.touch(zygote, zygote.vpn_group(HEAP, r * 600),
                         is_write=True)
        children = []
        for i in range(writers):
            child, _ = kernel.fork(zygote, name="w%d" % i)
            group.add(child)
            children.append(child)
        for i, child in enumerate(children):
            target_range = i % 3
            kernel.handle_fault(
                child, child.vpn_group(HEAP, target_range * 600),
                is_write=True)
        return kernel, children

    def test_without_indirection_region_overflows(self):
        # 9 writers over 3 ranges share ONE region list of 4 -> revert.
        kernel, _children = self.cow_storm(per_range=False, writers=9)
        assert kernel.policy.reverts >= 1

    def test_with_indirection_no_overflow(self):
        # Same storm, per-range lists: 3 writers per range <= 4 -> fine.
        kernel, _children = self.cow_storm(per_range=True, writers=9)
        assert kernel.policy.reverts == 0

    def test_indirection_still_overflows_per_range(self):
        kernel, group, zygote = storm_kernel(max_writers=2, per_range=True)
        kernel.touch(zygote, zygote.vpn_group(HEAP, 0), is_write=True)
        children = []
        for i in range(3):
            child, _ = kernel.fork(zygote, name="w%d" % i)
            group.add(child)
            children.append(child)
        for child in children:
            kernel.handle_fault(child, child.vpn_group(HEAP, 0),
                                is_write=True)
        assert kernel.policy.reverts == 1

    def test_isolation_preserved_under_indirection(self):
        kernel, children = self.cow_storm(per_range=True, writers=6)
        ppns = {}
        for i, child in enumerate(children):
            vpn = child.vpn_group(HEAP, (i % 3) * 600)
            pte = child.tables.lookup_pte(vpn)
            ppns.setdefault(i % 3, set()).add(pte.ppn)
        # Writers of the same range got distinct private frames.
        for frames in ppns.values():
            assert len(frames) == len(frames)  # all resolvable
        all_frames = [f for s in ppns.values() for f in s]
        assert len(all_frames) == len(set(all_frames))

    def test_tlb_lookup_uses_range_domain(self):
        from repro.core.babelfish_tlb import BabelFishLookup
        from repro.hw.params import TLBParams
        from repro.hw.tlb import MultiSizeTLB, TLBEntry
        from repro.hw.types import PageSize

        kernel, children = self.cow_storm(per_range=True, writers=3)
        policy = kernel.policy
        writer = children[0]  # CoW'ed range 0
        vpn = writer.vpn_group(HEAP, 0)
        domain = policy.mask_domain(vpn)
        assert domain == vpn >> 9
        bit = writer.pc_bits[domain]
        multi = MultiSizeTLB([TLBParams("4k", 16, 4, PageSize.SIZE_4K, 10)])
        shared_entry = TLBEntry(vpn, 0x999, pcid=0, ccid=writer.ccid,
                                o_bit=False, orpc=True, pc_mask=1 << bit,
                                inserted_by=0)
        multi.insert(shared_entry)
        lookup = BabelFishLookup(multi, policy.entry_mask_domain)
        assert not lookup.lookup(vpn, writer).hit       # holder blocked
        assert lookup.lookup(vpn, children[1]).hit      # other range writer ok
