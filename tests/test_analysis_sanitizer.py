"""Translation-coherence sanitizer tests: clean runs stay clean, and
deliberately injected desyncs (stale entries, CoW breaks without
shootdown, CCID leaks, O-PC tampering, skipped invalidations) are caught.
"""

import pytest

from repro.analysis.sanitizer import (
    CoherenceError,
    TranslationSanitizer,
)
from repro.hw.cache import CacheHierarchy
from repro.hw.dram import DRAMModel
from repro.hw.params import baseline_machine
from repro.hw.tlb import TLBEntry
from repro.hw.types import AccessKind
from repro.kernel.fault import InvalidationScope, TLBInvalidation
from repro.kernel.vma import SegmentKind
from repro.sim.config import babelfish_config, baseline_config
from repro.sim.mmu import MMU
from repro.sim.simulator import K_LOAD, Simulator

from conftest import MiniSystem

HEAP, MMAP = SegmentKind.HEAP, SegmentKind.MMAP


def make_sanitized_mmu(sys, config):
    machine = baseline_machine(cores=1)
    hierarchy = CacheHierarchy(machine, DRAMModel(machine.dram))
    mmu = MMU(0, machine, config, hierarchy, sys.kernel)
    sanitizer = TranslationSanitizer(sys.kernel, config)
    mmu.sanitizer = sanitizer
    return mmu, sanitizer


def zap_pte(proc, vpn):
    """Remove the leaf translation from the tables *without* telling the
    MMU — simulates a munmap whose TLB shootdown got lost."""
    path = proc.tables.walk(vpn)
    _level, table, index, entry = path[-1]
    assert entry is not None
    del table.entries[index]


class TestCleanRuns:
    def test_baseline_translates_clean(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        for off in range(8):
            mmu.translate(sys.zygote, MMAP, off, AccessKind.LOAD)
            mmu.translate(sys.zygote, MMAP, off, AccessKind.LOAD)
        assert sanitizer.violations == []
        assert sanitizer.checks > 0
        sanitizer.assert_clean()

    def test_babelfish_sharing_is_not_a_violation(self):
        # A hits a shared entry B filled before A's own tree attaches the
        # range — BabelFish's mechanism, which the reference walk must
        # accept (group fallback), not report as stale.
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        mmu, sanitizer = make_sanitized_mmu(
            sys, babelfish_config(sanitize=True))
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        mmu.translate(b, MMAP, 0, AccessKind.LOAD)
        assert mmu.stats.l2_shared_hits_d == 1
        assert sanitizer.violations == []

    def test_cow_break_with_shootdown_is_clean(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a = sys.fork("a")
        mmu, sanitizer = make_sanitized_mmu(
            sys, babelfish_config(sanitize=True))
        mmu.translate(a, HEAP, 0, AccessKind.LOAD)
        mmu.translate(a, HEAP, 0, AccessKind.STORE)  # CoW break + shootdown
        mmu.translate(a, HEAP, 0, AccessKind.LOAD)
        assert mmu.stats.cow_faults == 1
        assert sanitizer.violations == []

    def test_scan_clean_after_traffic(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        for off in range(4):
            mmu.translate(sys.zygote, MMAP, off, AccessKind.LOAD)
        assert sanitizer.scan(mmu) == []


class TestInjectedDesyncs:
    def test_stale_entry_after_zapped_pte(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        assert sanitizer.violations == []
        zap_pte(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        # The TLB still hits — exactly the bug class the sanitizer exists for.
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        kinds = {v.kind for v in sanitizer.violations}
        assert "stale-entry" in kinds
        v = sanitizer.violations[0]
        assert v.pid == sys.zygote.pid
        assert "architectural walk faults" in v.detail

    def test_ppn_mismatch_after_silent_remap(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        mmu.translate(sys.zygote, MMAP, 3, AccessKind.LOAD)
        pte = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, MMAP, 3))
        pte.ppn += 0x1000  # frame moved; no invalidation issued
        mmu.translate(sys.zygote, MMAP, 3, AccessKind.LOAD)
        assert {v.kind for v in sanitizer.violations} == {"ppn-mismatch"}

    def test_stale_detected_in_scan_too(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        mmu.translate(sys.zygote, MMAP, 1, AccessKind.LOAD)
        zap_pte(sys.zygote, sys.vpn(sys.zygote, MMAP, 1))
        violations = sanitizer.scan(mmu)
        assert any(v.kind == "stale-entry" for v in violations)

    def test_private_copy_must_beat_shared_entry(self):
        # a breaks CoW (owns a private frame) but the shared group entry
        # is left in the L2: a's own tables are the reference, so serving
        # a from the stale shared entry is a ppn-mismatch.
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a = sys.fork("a")
        mmu, sanitizer = make_sanitized_mmu(
            sys, babelfish_config(sanitize=True))
        mmu.translate(a, HEAP, 0, AccessKind.LOAD)   # shared CoW entry
        # Break the CoW in the kernel WITHOUT applying the invalidations.
        vpn = sys.vpn(a, HEAP, 0)
        sys.kernel.handle_fault(a, vpn, is_write=True)
        mmu.translate(a, HEAP, 0, AccessKind.LOAD)
        assert any(v.kind in ("ppn-mismatch", "stale-entry", "perm-mismatch")
                   for v in sanitizer.violations)

    def test_ccid_leak_on_fill(self, mini_baseline):
        sys = mini_baseline
        _mmu, sanitizer = make_sanitized_mmu(
            sys, baseline_config(sanitize=True))
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        pte = sys.touch(sys.zygote, MMAP, 0)
        rogue = TLBEntry(vpn, pte.ppn, pcid=sys.zygote.pcid,
                         ccid=sys.zygote.ccid + 99,
                         inserted_by=sys.zygote.pid)
        sanitizer.check_fill("L2", sys.zygote, rogue, vpn)
        assert [v.kind for v in sanitizer.violations] == ["ccid-leak"]

    def test_opc_desync_on_tampered_o_bit(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        a = sys.fork("a")
        config = babelfish_config(sanitize=True)
        mmu, sanitizer = make_sanitized_mmu(sys, config)
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        assert sanitizer.violations == []
        legit = next(e for e in mmu.l2.entries() if not e.o_bit)
        tampered = TLBEntry(legit.vpn, legit.ppn, legit.page_size,
                            pcid=a.pcid, ccid=a.ccid,
                            o_bit=True,  # claims private ownership
                            orpc=legit.orpc, pc_mask=legit.pc_mask,
                            inserted_by=a.pid)
        sanitizer.check_fill("L2", a, tampered, sys.vpn(a, MMAP, 0))
        assert any(v.kind == "opc-desync" and "O=" in v.detail
                   for v in sanitizer.violations)

    def test_opc_desync_on_tampered_bitmask(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        a = sys.fork("a")
        config = babelfish_config(sanitize=True)
        mmu, sanitizer = make_sanitized_mmu(sys, config)
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        legit = next(e for e in mmu.l2.entries() if not e.o_bit)
        tampered = TLBEntry(legit.vpn, legit.ppn, legit.page_size,
                            pcid=a.pcid, ccid=a.ccid, o_bit=legit.o_bit,
                            orpc=legit.orpc,
                            pc_mask=legit.pc_mask ^ 0x5,  # flipped PC bits
                            inserted_by=a.pid)
        sanitizer.check_fill("L2", a, tampered, sys.vpn(a, MMAP, 0))
        assert any(v.kind == "opc-desync" and "bitmask" in v.detail
                   for v in sanitizer.violations)

    def test_invalidation_leak_when_mmu_skips(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        inv = TLBInvalidation(vpn, InvalidationScope.PROCESS,
                              pcid=sys.zygote.pcid)
        # The kernel "requested" this invalidation but the MMU never
        # applied it — the post-condition check must see survivors.
        sanitizer.check_invalidation(mmu, sys.zygote, inv)
        leaks = [v for v in sanitizer.violations
                 if v.kind == "invalidation-leak"]
        assert leaks and leaks[0].vpn == vpn

    def test_applied_invalidation_leaves_no_leak(self, mini_baseline):
        sys = mini_baseline
        mmu, sanitizer = make_sanitized_mmu(sys, baseline_config(sanitize=True))
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        vpn = sys.vpn(sys.zygote, MMAP, 0)
        inv = TLBInvalidation(vpn, InvalidationScope.PROCESS,
                              pcid=sys.zygote.pcid)
        mmu.apply_invalidation(sys.zygote, inv)  # runs the check itself
        assert sanitizer.violations == []

    def test_raise_on_violation_mode(self, mini_baseline):
        sys = mini_baseline
        config = baseline_config(sanitize=True)
        mmu, _ = make_sanitized_mmu(sys, config)
        strict = TranslationSanitizer(sys.kernel, config,
                                      raise_on_violation=True)
        mmu.sanitizer = strict
        mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)
        zap_pte(sys.zygote, sys.vpn(sys.zygote, MMAP, 0))
        with pytest.raises(CoherenceError):
            mmu.translate(sys.zygote, MMAP, 0, AccessKind.LOAD)


class TestSimulatorIntegration:
    @staticmethod
    def trace(n, req_base=0):
        for i in range(n):
            yield (K_LOAD, SegmentKind.MMAP, i % 64, i % 64, 10, req_base + i)

    def build(self, babelfish):
        sys = MiniSystem(babelfish=babelfish)
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        config = (babelfish_config(sanitize=True) if babelfish
                  else baseline_config(sanitize=True))
        sim = Simulator(baseline_machine(cores=1), config, sys.kernel)
        return sys, sim, a, b

    @pytest.mark.parametrize("babelfish", [False, True],
                             ids=["baseline", "babelfish"])
    def test_run_reports_zero_violations(self, babelfish):
        _sys, sim, a, b = self.build(babelfish)
        sim.attach(a, self.trace(200), 0)
        sim.attach(b, self.trace(200, req_base=1000), 0)
        result = sim.run()
        assert sim.sanitizer is not None
        assert sim.sanitizer.checks > 0
        assert result.coherence_violations == []

    def test_unsanitized_run_has_no_shadow_mmu(self):
        sys = MiniSystem(babelfish=False)
        sim = Simulator(baseline_machine(cores=1), baseline_config(),
                        sys.kernel)
        assert sim.sanitizer is None
        assert all(m.sanitizer is None for m in sim.mmus)
