"""Tests for TLB invalidation propagation across cores (shootdowns)."""

from repro.hw.params import baseline_machine
from repro.hw.types import AccessKind, PageSize
from repro.kernel.fault import InvalidationScope, TLBInvalidation
from repro.kernel.vma import SegmentKind
from repro.sim.config import babelfish_config, baseline_config
from repro.sim.simulator import Simulator

from conftest import MiniSystem

HEAP, MMAP = SegmentKind.HEAP, SegmentKind.MMAP


def sim_for(sys, babelfish, cores=2):
    config = babelfish_config() if babelfish else baseline_config()
    return Simulator(baseline_machine(cores=cores), config, sys.kernel)


class TestCrossCoreShootdown:
    def test_cow_break_invalidates_remote_shared_entry(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        sim = sim_for(sys, babelfish=True)
        mmu0, mmu1 = sim.mmus
        # b loads the shared CoW entry on core 1.
        mmu1.translate(b, HEAP, 0, AccessKind.LOAD)
        shared_in_l2 = [e for e in mmu1.l2.entries() if not e.o_bit]
        assert shared_in_l2, "expected a shared entry on core 1"
        # a writes on core 0 -> CoW break -> remote invalidation.
        mmu0.translate(a, HEAP, 0, AccessKind.STORE)
        shared_after = [e for e in mmu1.l2.entries() if not e.o_bit]
        assert not shared_after

    def test_owned_entries_survive_shared_invalidation(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a, b = sys.fork("a"), sys.fork("b")
        sim = sim_for(sys, babelfish=True)
        mmu0, mmu1 = sim.mmus
        # b breaks CoW first: owns a private entry on core 1.
        mmu1.translate(b, HEAP, 0, AccessKind.STORE)
        owned_before = [e for e in mmu1.l2.entries() if e.o_bit]
        assert owned_before
        # a breaks CoW on core 0: only shared entries are shot down.
        mmu0.translate(a, HEAP, 0, AccessKind.STORE)
        owned_after = [e for e in mmu1.l2.entries()
                       if e.o_bit and e.pcid == b.pcid]
        assert owned_after

    def test_baseline_cow_shootdown_own_entries(self):
        sys = MiniSystem(babelfish=False)
        sys.touch(sys.zygote, HEAP, 0, write=True)
        a = sys.fork("a")
        sim = sim_for(sys, babelfish=False)
        mmu0 = sim.mmus[0]
        mmu0.translate(a, HEAP, 0, AccessKind.LOAD)
        mmu0.translate(a, HEAP, 0, AccessKind.STORE)
        # a's surviving entries map the new private frame, writable.
        pte = a.tables.lookup_pte(sys.vpn(a, HEAP, 0))
        for entry in mmu0.l2.entries():
            if entry.pcid == a.pcid:
                assert entry.ppn == pte.ppn
                assert entry.writable


class TestScopes:
    def apply(self, mmu, proc, inv):
        mmu.apply_invalidation(proc, inv)

    def test_process_scope_translates_to_proc_space(self):
        """Under ASLR-HW the L1 holds process-space VPNs; a PROCESS-scope
        invalidation must hit them too."""
        from repro.core.aslr import ASLRMode
        sys = MiniSystem(babelfish=True, aslr_mode=ASLRMode.HW)
        a = sys.fork("a")
        sim = sim_for(sys, babelfish=True)
        mmu = sim.mmus[0]
        mmu.translate(a, MMAP, 5, AccessKind.LOAD)
        assert any(e.pcid == a.pcid for e in mmu.l1d.entries())
        vpn_group = sys.vpn(a, MMAP, 5)
        self.apply(mmu, a, TLBInvalidation(
            vpn_group, InvalidationScope.PROCESS, pcid=a.pcid, ccid=a.ccid))
        assert not any(e.pcid == a.pcid for e in mmu.l1d.entries())

    def test_region_scope_flushes_whole_region(self):
        sys = MiniSystem(babelfish=True)
        sys.touch(sys.zygote, MMAP, 0)
        sys.touch(sys.zygote, MMAP, 1)
        a = sys.fork("a")
        sim = sim_for(sys, babelfish=True)
        mmu = sim.mmus[0]
        mmu.translate(a, MMAP, 0, AccessKind.LOAD)
        mmu.translate(a, MMAP, 1, AccessKind.LOAD)
        vpn = sys.vpn(a, MMAP, 0)
        self.apply(mmu, a, TLBInvalidation(
            vpn, InvalidationScope.REGION_SHARED, ccid=a.ccid))
        assert not [e for e in mmu.l2.entries() if not e.o_bit]

    def test_shared_scope_leaves_other_ccids(self):
        sys = MiniSystem(babelfish=True)
        a = sys.fork("a")
        sim = sim_for(sys, babelfish=True)
        mmu = sim.mmus[0]
        mmu.translate(a, MMAP, 3, AccessKind.LOAD)
        vpn = sys.vpn(a, MMAP, 3)
        self.apply(mmu, a, TLBInvalidation(
            vpn, InvalidationScope.SHARED_ENTRY, ccid=a.ccid + 1))
        assert [e for e in mmu.l2.entries() if not e.o_bit]


class TestHugeTranslation:
    def test_huge_page_through_mmu(self):
        sys = MiniSystem(babelfish=False)
        from repro.kernel.vma import VMAKind
        sys.kernel.mmap(sys.zygote, HEAP, 2048, 1024, VMAKind.ANON,
                        huge_ok=True, name="thp")
        sim = sim_for(sys, babelfish=False, cores=1)
        mmu = sim.mmus[0]
        result = mmu.translate(sys.zygote, HEAP, 2048 + 5, AccessKind.STORE)
        assert result.page_size is PageSize.SIZE_2M
        pte = sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 2048))
        assert result.ppn4k == pte.ppn + 5
        # Next access within the block hits the 2M L1 entry.
        result2 = mmu.translate(sys.zygote, HEAP, 2048 + 400,
                                AccessKind.LOAD)
        assert result2.cycles == 1
        assert result2.ppn4k == pte.ppn + 400

    def test_huge_entry_invalidation(self):
        sys = MiniSystem(babelfish=False)
        from repro.kernel.vma import VMAKind
        sys.kernel.mmap(sys.zygote, HEAP, 2048, 1024, VMAKind.ANON,
                        huge_ok=True, name="thp")
        sim = sim_for(sys, babelfish=False, cores=1)
        mmu = sim.mmus[0]
        mmu.translate(sys.zygote, HEAP, 2048, AccessKind.STORE)
        vpn = sys.vpn(sys.zygote, HEAP, 2048) + 17  # any 4K vpn inside
        mmu.apply_invalidation(sys.zygote, TLBInvalidation(
            vpn, InvalidationScope.PROCESS, pcid=sys.zygote.pcid,
            ccid=sys.zygote.ccid))
        assert not list(mmu.l2.entries())
