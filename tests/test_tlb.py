"""Unit tests for the generic TLB structures (Figure 1/3 substrate)."""

import pytest

from repro.hw.params import TLBParams
from repro.hw.tlb import MultiSizeTLB, SetAssocTLB, TLBEntry, conventional_match
from repro.hw.types import PageSize


def small_tlb(entries=8, ways=2, size=PageSize.SIZE_4K):
    return SetAssocTLB(TLBParams("t", entries, ways, size, 1))


def entry(vpn, ppn=0x100, pcid=1, **kw):
    return TLBEntry(vpn, ppn, pcid=pcid, **kw)


class TestSetAssocTLB:
    def test_insert_lookup(self):
        tlb = small_tlb()
        tlb.insert(entry(0x10))
        found = tlb.lookup(0x10, lambda e: True)
        assert found is not None
        assert found.ppn == 0x100

    def test_lookup_miss_counted(self):
        tlb = small_tlb()
        assert tlb.lookup(0x10, lambda e: True) is None
        assert tlb.misses == 1

    def test_pcid_mismatch_misses(self):
        tlb = small_tlb()
        tlb.insert(entry(0x10, pcid=1))
        assert tlb.lookup(0x10, lambda e: e.pcid == 2) is None

    def test_two_entries_same_vpn_different_pcid(self):
        """Conventional TLBs replicate translations per process (the
        problem the paper attacks)."""
        tlb = small_tlb()
        tlb.insert(entry(0x10, pcid=1))
        tlb.insert(entry(0x10, pcid=2))
        assert tlb.lookup(0x10, lambda e: e.pcid == 1) is not None
        assert tlb.lookup(0x10, lambda e: e.pcid == 2) is not None
        assert tlb.occupancy == 2

    def test_lru_eviction(self):
        tlb = small_tlb(entries=4, ways=2)  # 2 sets
        sets = tlb.num_sets
        tlb.insert(entry(0))
        tlb.insert(entry(sets))
        tlb.lookup(0, lambda e: True)
        tlb.insert(entry(2 * sets))  # evicts vpn=sets
        assert tlb.lookup(0, lambda e: True) is not None
        assert tlb.lookup(sets, lambda e: True) is None

    def test_insert_replace_in_place(self):
        tlb = small_tlb()
        tlb.insert(entry(0x10, ppn=0xAAA, pcid=3))
        tlb.insert(entry(0x10, ppn=0xBBB, pcid=3),
                   replace=lambda old: old.pcid == 3)
        assert tlb.occupancy == 1
        assert tlb.lookup(0x10, lambda e: True).ppn == 0xBBB

    def test_replace_only_matching(self):
        tlb = small_tlb()
        tlb.insert(entry(0x10, pcid=3))
        tlb.insert(entry(0x10, pcid=4), replace=lambda old: old.pcid == 4)
        assert tlb.occupancy == 2

    def test_invalidate_by_pred(self):
        tlb = small_tlb()
        tlb.insert(entry(0x10, pcid=1))
        tlb.insert(entry(0x10, pcid=2))
        removed = tlb.invalidate(0x10, lambda e: e.pcid == 1)
        assert removed == 1
        assert tlb.lookup(0x10, lambda e: e.pcid == 2) is not None

    def test_flush_by_pred(self):
        tlb = small_tlb()
        tlb.insert(entry(1, pcid=1))
        tlb.insert(entry(2, pcid=2))
        assert tlb.flush(lambda e: e.pcid == 1) == 1
        assert tlb.occupancy == 1

    def test_flush_all(self):
        tlb = small_tlb()
        for vpn in range(4):
            tlb.insert(entry(vpn))
        tlb.flush()
        assert tlb.occupancy == 0

    def test_occupancy_bounded(self):
        tlb = small_tlb(entries=8, ways=2)
        for vpn in range(100):
            tlb.insert(entry(vpn))
        assert tlb.occupancy <= 8

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssocTLB(TLBParams("bad", 12, 2, PageSize.SIZE_4K, 1))

    def test_conventional_match(self):
        e = entry(0x10, pcid=7)
        assert conventional_match(e, 0x10, 7)
        assert not conventional_match(e, 0x10, 8)
        assert not conventional_match(e, 0x11, 7)


class TestMultiSizeTLB:
    def make(self):
        return MultiSizeTLB([
            TLBParams("4k", 8, 2, PageSize.SIZE_4K, 1),
            TLBParams("2m", 4, 2, PageSize.SIZE_2M, 1),
        ])

    def test_4k_lookup(self):
        multi = self.make()
        multi.insert(TLBEntry(0x10, 0x100, PageSize.SIZE_4K, pcid=1))
        found, size = multi.lookup(0x10, lambda e: True)
        assert found is not None
        assert size is PageSize.SIZE_4K

    def test_2m_lookup_by_4k_vpn(self):
        multi = self.make()
        # A 2MB page at 2M-VPN 3 covers 4K-VPNs [3*512, 4*512).
        multi.insert(TLBEntry(3, 0x100, PageSize.SIZE_2M, pcid=1))
        found, size = multi.lookup(3 * 512 + 17, lambda e: True)
        assert found is not None
        assert size is PageSize.SIZE_2M

    def test_miss_returns_none(self):
        multi = self.make()
        found, size = multi.lookup(0x999, lambda e: True)
        assert found is None and size is None

    def test_invalidate_covers_all_sizes(self):
        multi = self.make()
        multi.insert(TLBEntry(3, 0x100, PageSize.SIZE_2M, pcid=1))
        removed = multi.invalidate(3 * 512 + 5)
        assert removed == 1

    def test_entries_iteration(self):
        multi = self.make()
        multi.insert(TLBEntry(1, 1, PageSize.SIZE_4K, pcid=1))
        multi.insert(TLBEntry(2, 2, PageSize.SIZE_2M, pcid=1))
        assert len(list(multi.entries())) == 2

    def test_size_restricted_lookup(self):
        multi = self.make()
        multi.insert(TLBEntry(0x10, 0x100, PageSize.SIZE_4K, pcid=1))
        found, _ = multi.lookup(0x10, lambda e: True,
                                page_size=PageSize.SIZE_2M)
        assert found is None
