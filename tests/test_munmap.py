"""Tests for munmap: zapping, shared-table detach, partial coverage."""

import pytest

from repro.kernel.errors import SegmentationFault
from repro.kernel.frames import FrameKind
from repro.kernel.vma import SegmentKind

HEAP, MMAP = SegmentKind.HEAP, SegmentKind.MMAP


class TestPrivateMunmap:
    def test_zaps_leaves_and_frees_frames(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, HEAP, 0, write=True)
        ppn = pte.ppn
        vma = sys.zygote.mm.find(sys.vpn(sys.zygote, HEAP, 0))
        invs = sys.kernel.munmap(sys.zygote, vma)
        assert sys.kernel.allocator.refcount(ppn) == 0
        assert sys.zygote.tables.lookup_pte(sys.vpn(sys.zygote, HEAP, 0)) is None
        assert invs

    def test_access_after_munmap_segfaults(self, mini_baseline):
        sys = mini_baseline
        sys.touch(sys.zygote, HEAP, 0, write=True)
        vma = sys.zygote.mm.find(sys.vpn(sys.zygote, HEAP, 0))
        sys.kernel.munmap(sys.zygote, vma)
        with pytest.raises(SegmentationFault):
            sys.kernel.handle_fault(sys.zygote,
                                    sys.vpn(sys.zygote, HEAP, 0))

    def test_file_pages_stay_cached(self, mini_baseline):
        sys = mini_baseline
        pte = sys.touch(sys.zygote, MMAP, 0)
        ppn = pte.ppn
        vma = sys.zygote.mm.find(sys.vpn(sys.zygote, MMAP, 0))
        sys.kernel.munmap(sys.zygote, vma)
        # Page cache still references the frame.
        assert sys.kernel.allocator.refcount(ppn) >= 1
        assert sys.kernel.page_cache.lookup(sys.data, 0) == ppn

    def test_sparse_vma_munmap(self, mini_baseline):
        """Only a few pages of a large VMA are populated."""
        sys = mini_baseline
        for off in (0, 700, 1900):
            sys.touch(sys.zygote, HEAP, off, write=True)
        vma = sys.zygote.mm.find(sys.vpn(sys.zygote, HEAP, 0))
        before = sys.kernel.allocator.count(FrameKind.DATA)
        sys.kernel.munmap(sys.zygote, vma)
        assert sys.kernel.allocator.count(FrameKind.DATA) == before - 3


class TestSharedMunmap:
    def test_detach_leaves_sharers_intact(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        a, b = sys.fork("a"), sys.fork("b")
        vpn = sys.vpn(a, MMAP, 0)
        shared_table = a.tables.walk(vpn)[-1][1]
        sharers_before = shared_table.sharers
        vma = a.mm.find(vpn)
        sys.kernel.munmap(a, vma)
        assert shared_table.sharers == sharers_before - 1
        # b still resolves the page.
        pte = b.tables.lookup_pte(vpn)
        assert pte is not None and pte.present
        # a no longer does.
        assert a.tables.lookup_pte(vpn) is None

    def test_last_detach_frees_shared_table(self, mini_babelfish):
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        a = sys.fork("a")
        vpn = sys.vpn(a, MMAP, 0)
        procs = [sys.zygote, a]
        for proc in procs:
            vma = proc.mm.find(proc.vpn_group(MMAP, 0))
            sys.kernel.munmap(proc, vma)
        # The registry entry is gone with the table.
        assert not sys.policy.registry or all(
            key[2] != vpn >> 9 for key in sys.policy.registry)

    def test_partial_shared_coverage_privatizes(self, mini_babelfish):
        """Unmapping a sub-range of a shared table privatizes rather than
        yanking translations from the other sharers."""
        sys = mini_babelfish
        sys.touch(sys.zygote, MMAP, 0)
        sys.touch(sys.zygote, MMAP, 1)
        a, b = sys.fork("a"), sys.fork("b")
        vpn0 = sys.vpn(a, MMAP, 0)
        # Replace a's one VMA with a smaller one, then unmap it.
        big = a.mm.find(vpn0)
        a.mm.remove(big)
        from repro.kernel.vma import VMA
        small = a.mm.add(VMA(vpn0, 1, big.segment, big.kind, big.file,
                             big.file_offset, big.writable, big.executable,
                             name="small"))
        sys.kernel.munmap(a, small)
        # b keeps both pages.
        assert b.tables.lookup_pte(vpn0) is not None
        assert b.tables.lookup_pte(vpn0 + 1) is not None
        # a lost page 0.
        assert a.tables.lookup_pte(vpn0) is None
