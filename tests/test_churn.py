"""The churn experiment: lifecycle storms leak nothing and stay coherent.

These run the real stack (engine + kernel + simulator) at small cycle
counts; ``python -m repro.experiments churn`` is the same code at 500.
"""

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.churn import (ChurnResult, format_churn, run_churn,
                                     resource_snapshot, snapshot_diff)


def test_storm_is_clean_with_sanitizer():
    result = run_churn(cycles=24, cores=2, kill_rate=0.2, seed=7)
    assert result.launches == 24
    assert result.stops == 24
    assert result.kills > 0
    assert result.violations == []
    assert result.audit_findings == []
    assert result.leaks == {}
    assert result.final == result.baseline
    assert result.clean


def test_storm_exercises_pcid_recycling():
    # A 4-bit namespace (15 PCIDs) wraps within a short storm; the
    # recycle path must stay leak-free too.
    result = run_churn(cycles=30, sanitize=False, pcid_bits=4,
                       live_pool=2, kill_rate=0.15, seed=3)
    assert result.pcid_recycles > 0
    assert result.clean


def test_storm_is_deterministic_per_seed():
    a = run_churn(cycles=12, sanitize=False, kill_rate=0.25, seed=42)
    b = run_churn(cycles=12, sanitize=False, kill_rate=0.25, seed=42)
    assert a.summary() == b.summary()


def test_summary_is_json_ready_and_pid_free():
    import json

    result = run_churn(cycles=8, sanitize=False, seed=5)
    summary = result.summary()
    json.dumps(summary)  # plain scalars/dicts/lists only
    assert summary["launches"] == 8
    assert "stats" in summary and "baseline" in summary


def test_snapshot_diff_reports_both_sides():
    assert snapshot_diff({"a": 1, "b": 2}, {"a": 1, "b": 5}) == {"b": (2, 5)}
    assert snapshot_diff({"a": 1}, {}) == {"a": (1, None)}
    assert snapshot_diff({"a": 1}, {"a": 1}) == {}


def test_format_churn_flags_leaks():
    result = run_churn(cycles=6, sanitize=False, seed=9)
    text = format_churn(result)
    assert "verdict: CLEAN" in text
    dirty = ChurnResult(**{**result.__dict__,
                           "leaks": {"frames_data": (0, 3)}})
    text = format_churn(dirty)
    assert "LEAKS" in text and "frames_data" in text
    assert "verdict: DIRTY" in text


def test_cli_churn_smoke(capsys):
    rc = experiments_main(["churn", "--smoke", "--no-sanitize"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verdict: CLEAN" in out
    assert "40 cycles" in out


def test_cli_rejects_bad_cycles(capsys):
    with pytest.raises(SystemExit):
        experiments_main(["churn", "--cycles", "0"])
