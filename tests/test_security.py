"""Security-domain tests (Section V): translation sharing is confined to
a CCID group; physical-page dedup across tenants does not leak
translations or private data."""

from repro.containers.image import ContainerImage
from repro.experiments.common import build_environment
from repro.hw.types import AccessKind
from repro.kernel.vma import SegmentKind
from repro.sim.config import babelfish_config

IMAGE = ContainerImage(name="sec-image", binary_pages=16, binary_data_pages=4,
                       lib_pages=64, lib_data_pages=8, infra_pages=16,
                       heap_pages=128)


def two_tenants():
    env = build_environment(babelfish_config(), cores=1)
    alice, _ = env.engine.launch(IMAGE, user="alice")
    bob, _ = env.engine.launch(IMAGE, user="bob")
    return env, alice, bob


class TestCrossTenant:
    def test_distinct_ccids(self):
        _env, alice, bob = two_tenants()
        assert alice.proc.ccid != bob.proc.ccid

    def test_image_pages_deduplicated(self):
        env, alice, bob = two_tenants()
        pa = env.kernel.touch(alice.proc,
                              alice.proc.vpn_group(SegmentKind.LIBS, 0))
        pb = env.kernel.touch(bob.proc,
                              bob.proc.vpn_group(SegmentKind.LIBS, 0))
        assert pa.ppn == pb.ppn  # same page-cache frame

    def test_no_cross_tenant_tlb_hit(self):
        env, alice, bob = two_tenants()
        mmu = env.sim.mmus[0]
        mmu.translate(alice.proc, SegmentKind.LIBS, 0, AccessKind.LOAD)
        walks = mmu.stats.walks
        mmu.translate(bob.proc, SegmentKind.LIBS, 0, AccessKind.LOAD)
        assert mmu.stats.walks > walks  # bob had to walk
        assert mmu.stats.l2_shared_hits_i + mmu.stats.l2_shared_hits_d == 0

    def test_no_cross_tenant_table_sharing(self):
        env, alice, bob = two_tenants()
        env.kernel.touch(alice.proc,
                         alice.proc.vpn_group(SegmentKind.LIBS, 0))
        env.kernel.touch(bob.proc, bob.proc.vpn_group(SegmentKind.LIBS, 0))
        ta = alice.proc.tables.walk(
            alice.proc.vpn_group(SegmentKind.LIBS, 0))[-1][1]
        tb = bob.proc.tables.walk(
            bob.proc.vpn_group(SegmentKind.LIBS, 0))[-1][1]
        assert ta is not tb

    def test_cross_tenant_private_data_disjoint(self):
        env, alice, bob = two_tenants()
        pa = env.kernel.touch(alice.proc,
                              alice.proc.vpn_group(SegmentKind.HEAP, 0),
                              is_write=True)
        pb = env.kernel.touch(bob.proc,
                              bob.proc.vpn_group(SegmentKind.HEAP, 0),
                              is_write=True)
        assert pa.ppn != pb.ppn

    def test_registry_keys_are_ccid_scoped(self):
        env, alice, bob = two_tenants()
        env.kernel.touch(alice.proc,
                         alice.proc.vpn_group(SegmentKind.LIBS, 0))
        env.kernel.touch(bob.proc, bob.proc.vpn_group(SegmentKind.LIBS, 0))
        policy = env.kernel.policy
        ccids = {key[0] for key in policy.registry}
        # Both tenants registered tables, under their own CCIDs.
        assert alice.proc.ccid in ccids or bob.proc.ccid in ccids
        for key, (table, _backing) in policy.registry.items():
            assert table.shared_key == key


class TestSameTenantDifferentApps:
    def test_apps_are_separate_domains(self):
        env = build_environment(babelfish_config(), cores=1)
        other = ContainerImage(name="other-app", binary_pages=16,
                               binary_data_pages=4, lib_pages=64,
                               lib_data_pages=8, infra_pages=16,
                               heap_pages=128)
        a, _ = env.engine.launch(IMAGE, user="alice")
        b, _ = env.engine.launch(other, user="alice")
        # Same user, different application: the paper's conservative
        # domain still separates them.
        assert a.proc.ccid != b.proc.ccid
