"""The serving daemon: framing, request mapping, scheduling, cache
concurrency, and end-to-end serving with crash recovery.

The end-to-end class drives a real in-process daemon (unix socket, one
spawned pool worker) through the full client surface: a warm run, a
cache hit, fault-injected worker death with a bit-identical retry, and
the typed framing errors. The drain test exercises the CLI daemon as a
subprocess under SIGTERM.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments import runner
from repro.experiments.common import clear_run_cache, set_disk_cache
from repro.experiments.runcache import DiskRunCache
from repro.obs import perfwatch
from repro.obs.__main__ import main as obs_main
from repro.serve import protocol
from repro.serve.daemon import Job, ServeDaemon, TwoClassScheduler

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

WORKLOAD = {"app": "mongodb", "config_name": "BabelFish",
            "cores": 1, "scale": 0.02}


@pytest.fixture(autouse=True)
def _isolated_caches():
    previous = set_disk_cache(None)
    clear_run_cache()
    yield
    set_disk_cache(previous)
    clear_run_cache()


def canonical(summary):
    return json.dumps(summary, sort_keys=True, separators=(",", ":"))


# -- framing ------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        frame = protocol.encode_frame({"op": "ping", "id": 7})
        decoder = protocol.FrameDecoder()
        decoder.feed(frame)
        assert list(decoder.frames()) == [{"op": "ping", "id": 7}]
        assert decoder.at_boundary()

    def test_byte_at_a_time_and_pipelined(self):
        frames = (protocol.encode_frame({"id": 1})
                  + protocol.encode_frame({"id": 2}))
        decoder = protocol.FrameDecoder()
        seen = []
        for index in range(len(frames)):
            decoder.feed(frames[index:index + 1])
            seen.extend(decoder.frames())
        assert seen == [{"id": 1}, {"id": 2}]

    def test_oversized_declared_length_raises_before_payload(self):
        decoder = protocol.FrameDecoder(max_frame=64)
        decoder.feed((1 << 20).to_bytes(4, "big"))
        with pytest.raises(protocol.FrameTooLarge):
            list(decoder.frames())

    def test_oversized_encode_refused(self):
        with pytest.raises(protocol.FrameTooLarge):
            protocol.encode_frame({"blob": "x" * 128}, max_frame=64)

    def test_garbage_payloads(self):
        for payload in (b"not json", b"[1, 2]", b"\xff\xfe\x00"):
            with pytest.raises(protocol.FrameGarbage):
                protocol.decode_payload(payload)

    def test_error_codes_are_stable(self):
        assert protocol.error_body(protocol.FrameTooLarge("x"))["code"] \
            == "frame_too_large"
        assert protocol.error_body(protocol.FrameTruncated("x"))["code"] \
            == "frame_truncated"
        assert protocol.error_body(protocol.FrameGarbage("x"))["code"] \
            == "frame_garbage"
        assert protocol.error_body(protocol.BadRequest("x"))["code"] \
            == "bad_request"
        assert protocol.error_body(ValueError("x"))["code"] == "internal"

    def test_read_frame_clean_eof_is_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await protocol.read_frame(reader)
        assert asyncio.run(scenario()) is None

    def test_read_frame_truncated_header_and_payload(self):
        async def scenario(data):
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await protocol.read_frame(reader)
        with pytest.raises(protocol.FrameTruncated):
            asyncio.run(scenario(b"\x00\x00"))
        with pytest.raises(protocol.FrameTruncated):
            asyncio.run(scenario(b"\x00\x00\x00\x09{\"op\""))

    def test_read_frame_oversized_without_reading_payload(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((1 << 30).to_bytes(4, "big"))
            return await protocol.read_frame(reader, max_frame=1024)
        with pytest.raises(protocol.FrameTooLarge):
            asyncio.run(scenario())


# -- request mapping ----------------------------------------------------------


class TestWireRequest:
    def test_round_trip_preserves_the_request(self):
        request = runner.RunRequest(
            kind="app", app="httpd", config_name="BabelFish",
            overrides=runner.request_overrides(thp_enabled=False),
            cores=2, scale=0.5, containers_per_core=3, dense=True)
        wire = protocol.request_to_wire(request)
        assert protocol.wire_to_request(json.loads(json.dumps(wire))) \
            == request

    def test_rejections_name_the_field(self):
        bad = [
            ({"kind": "nope"}, "kind"),
            ({"app": "excel"}, "app"),
            ({"app": "mongodb", "config_name": "NoSuch"}, "config"),
            ({"app": "mongodb", "overrides": [1]}, "overrides"),
            ({"app": "mongodb", "overrides": {"thp_enabled": [1]}},
             "scalar"),
            ({"app": "mongodb", "cores": 0}, "cores"),
            ({"app": "mongodb", "cores": True}, "cores"),
            ({"app": "mongodb", "scale": -1}, "scale"),
            ({"app": "mongodb", "containers_per_core": 0},
             "containers_per_core"),
            ({"app": "mongodb", "dense": 1}, "dense"),
        ]
        for body, needle in bad:
            with pytest.raises(protocol.BadRequest) as err:
                protocol.wire_to_request(body)
            assert needle in str(err.value)

    def test_request_key_matches_direct_runs(self):
        wire = {"app": "mongodb", "config_name": "BabelFish",
                "cores": 1, "scale": 0.05}
        request = protocol.wire_to_request(wire)
        direct = runner.RunRequest(kind="app", app="mongodb",
                                   config_name="BabelFish",
                                   cores=1, scale=0.05)
        assert runner.request_key_data(request) \
            == runner.request_key_data(direct)


# -- scheduling ---------------------------------------------------------------


class TestTwoClassScheduler:
    def test_interactive_preempts_batch_fifo_within_class(self):
        async def scenario():
            sched = TwoClassScheduler()
            jobs = [Job({"n": 0}, "batch"), Job({"n": 1}, "interactive"),
                    Job({"n": 2}, "batch"), Job({"n": 3}, "interactive")]
            for job in jobs:
                sched.push(job)
            assert sched.depth() == {"interactive": 2, "batch": 2}
            order = [await sched.get() for _ in range(4)]
            return jobs, order, sched
        jobs, order, sched = asyncio.run(scenario())
        assert order == [jobs[1], jobs[3], jobs[0], jobs[2]]
        assert sched.pushed == {"interactive": 2, "batch": 2}
        assert sched.depth() == {"interactive": 0, "batch": 0}

    def test_get_waits_for_a_late_push(self):
        async def scenario():
            sched = TwoClassScheduler()

            async def late():
                await asyncio.sleep(0.01)
                sched.push(Job({"late": True}, "batch"))
            asyncio.ensure_future(late())
            job = await asyncio.wait_for(sched.get(), timeout=5)
            return job.payload
        assert asyncio.run(scenario()) == {"late": True}


# -- run-cache concurrency ----------------------------------------------------


class TestRunCacheConcurrency:
    def test_stale_truncated_tmp_files_are_invisible(self, tmp_path):
        """Regression: leftover staging files from a crashed writer must
        never be read, collide with, or count as entries."""
        cache = DiskRunCache(tmp_path, fingerprint="fp")
        key = {"k": 1}
        final = cache.store(key, {"v": 1})
        # A dead writer's truncated staging files, both the old shared
        # name and a modern unique one.
        final.with_name(final.stem + ".tmp").write_text('{"key": {"k')
        final.with_name(final.stem + ".tmp.999.0").write_text('{"pay')
        assert cache.load(key) == {"v": 1}
        assert cache.entries() == [final]
        assert cache.store(key, {"v": 2}) == final
        assert cache.load(key) == {"v": 2}

    def test_torn_final_entry_is_a_miss_and_repairable(self, tmp_path):
        cache = DiskRunCache(tmp_path, fingerprint="fp")
        key = {"k": 2}
        path = cache.store(key, {"v": 1})
        path.write_text('{"payload": {"v"')  # torn by external fault
        assert cache.load(key) is None
        cache.store(key, {"v": 3})
        assert cache.load(key) == {"v": 3}

    def test_concurrent_same_key_writers_never_tear_a_read(self, tmp_path):
        """N writers hammering one key while a reader polls: every load
        observes either a miss or one complete payload, every staged
        tmp file is gone afterwards, and no writer errors out."""
        key = {"k": 3}
        payload = {"rows": list(range(200)), "nested": {"deep": "x" * 64}}
        errors = []
        stop = threading.Event()

        def write():
            cache = DiskRunCache(tmp_path, fingerprint="fp")
            try:
                for _ in range(40):
                    cache.store(key, payload)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        def read():
            cache = DiskRunCache(tmp_path, fingerprint="fp")
            while not stop.is_set():
                got = cache.load(key)
                if got is not None and got != payload:
                    errors.append(AssertionError("torn read"))
                    return

        reader = threading.Thread(target=read)
        writers = [threading.Thread(target=write) for _ in range(6)]
        reader.start()
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=60)
        stop.set()
        reader.join(timeout=60)
        assert errors == []
        cache = DiskRunCache(tmp_path, fingerprint="fp")
        assert cache.load(key) == payload
        assert list(tmp_path.glob("*.tmp.*")) == []


# -- perfwatch gating of the serve trajectory ---------------------------------


class TestPerfwatchServeGate:
    @staticmethod
    def _trajectory(warm_speedup, identical=True):
        return {"tiers": {"serve": {"warm_speedup": warm_speedup,
                                    "identical": identical}}}

    def test_watched_override_gates_the_serve_ratio(self):
        base = self._trajectory(2.0)
        ok = self._trajectory(1.8)
        bad = self._trajectory(0.5)
        watched = ("warm_speedup",)
        assert perfwatch.compare(ok, base, watched=watched,
                                 default_tolerance=0.5)[1] == []
        _rows, regressions = perfwatch.compare(bad, base, watched=watched,
                                               default_tolerance=0.5)
        assert [r["metric"] for r in regressions] == ["warm_speedup"]

    def test_identity_failure_is_unconditional(self):
        _rows, regressions = perfwatch.compare(
            self._trajectory(9.9, identical=False), self._trajectory(2.0),
            watched=("warm_speedup",))
        assert [r["metric"] for r in regressions] == ["identical"]

    def test_cli_bench_and_ratio_flags(self, tmp_path):
        base = tmp_path / "BENCH_serve_base.json"
        fresh = tmp_path / "BENCH_serve.json"
        base.write_text(json.dumps(self._trajectory(2.0)))
        fresh.write_text(json.dumps(self._trajectory(1.9)))
        assert obs_main(["perfwatch", "--bench", str(fresh),
                         "--baseline", str(base),
                         "--ratio", "warm_speedup",
                         "--tolerance", "serve=0.5"]) == 0
        fresh.write_text(json.dumps(self._trajectory(0.4)))
        assert obs_main(["perfwatch", "--bench", str(fresh),
                         "--baseline", str(base),
                         "--ratio", "warm_speedup",
                         "--tolerance", "serve=0.5"]) == 1


# -- end to end ---------------------------------------------------------------


async def _call(reader, writer, frame, timeout=240):
    """Send one frame; return the first non-progress reply (and the
    count of progress frames that preceded it)."""
    await protocol.write_frame(writer, frame)
    progress = 0
    while True:
        reply = await asyncio.wait_for(protocol.read_frame(reader),
                                       timeout=timeout)
        assert reply is not None, "connection closed mid-call"
        if reply.get("kind") == "progress":
            progress += 1
            continue
        reply["progress_frames"] = progress
        return reply


class TestServeDaemonEndToEnd:
    def test_serve_cache_crash_retry_and_framing_errors(self, tmp_path):
        """One daemon, one worker, the whole client surface: warm run,
        cache hit, chaos-killed worker retried bit-identically, typed
        framing/request errors, stats, graceful drain."""
        summaries = asyncio.run(self._scenario(tmp_path))
        warm, cached, retried, direct = summaries
        assert canonical(warm) == canonical(cached)
        assert canonical(warm) == canonical(retried)
        assert canonical(warm) == canonical(direct)

    async def _scenario(self, tmp_path):
        socket_path = str(tmp_path / "serve.sock")
        daemon = ServeDaemon(pool_size=1,
                             cache_root=str(tmp_path / "cache"),
                             warm=False)
        await daemon.start(socket_path=socket_path)
        try:
            reader, writer = await asyncio.open_unix_connection(socket_path)

            pong = await _call(reader, writer, {"op": "ping", "id": 0})
            assert pong["ok"] and not pong["draining"]

            # 1. First run simulates on the (cold-started) pool worker.
            run_frame = {"op": "run", "id": 1, "request": WORKLOAD,
                         "stream": True, "progress_interval": 0.01}
            first = await _call(reader, writer, run_frame)
            assert first["kind"] == "result"
            assert first["served"] == "warm"
            assert first["worker_pid"] not in (None, os.getpid())
            assert not first["retried"]

            # 2. The repeat is answered from the disk cache, no pool.
            second = await _call(reader, writer,
                                 {"op": "run", "id": 2,
                                  "request": WORKLOAD})
            assert second["served"] == "cache"
            assert second["worker_pid"] is None
            assert second["timings"]["queue_s"] == 0.0

            # 3. Chaos: the worker dies mid-request; the job retries on
            # a fresh worker and still returns the identical bytes.
            chaos = await _call(reader, writer,
                                {"op": "run", "id": 3, "request": WORKLOAD,
                                 "use_cache": False, "chaos": "exit"})
            assert chaos["kind"] == "result"
            assert chaos["served"] == "warm-retry"
            assert chaos["retried"]
            assert chaos["worker_pid"] != first["worker_pid"]

            # 4. Typed request errors leave the connection usable.
            bad_app = await _call(reader, writer,
                                  {"op": "run", "id": 4,
                                   "request": {"app": "excel"}})
            assert bad_app["kind"] == "error"
            assert bad_app["error"]["code"] == "bad_request"
            bad_prio = await _call(reader, writer,
                                   {"op": "run", "id": 5,
                                    "request": WORKLOAD,
                                    "priority": "turbo"})
            assert bad_prio["error"]["code"] == "bad_request"
            bad_op = await _call(reader, writer, {"op": "warp", "id": 6})
            assert bad_op["error"]["code"] == "bad_op"

            stats = await _call(reader, writer, {"op": "stats", "id": 7})
            counts = stats["stats"]
            assert counts["cache"] == 1
            assert counts["warm"] == 1
            assert counts["warm-retry"] == 1
            assert counts["worker_crashes"] == 1
            assert counts["pool"]["crashes"] == 1

            writer.close()
            await writer.wait_closed()

            # 5. Framing garbage gets one typed error, then the stream
            # closes (framing is lost, nothing hangs).
            g_reader, g_writer = await asyncio.open_unix_connection(
                socket_path)
            g_writer.write(b"\x00\x00\x00\x08notjson!")
            await g_writer.drain()
            error = await asyncio.wait_for(protocol.read_frame(g_reader),
                                           timeout=60)
            assert error["error"]["code"] == "frame_garbage"
            assert await asyncio.wait_for(protocol.read_frame(g_reader),
                                          timeout=60) is None
            g_writer.close()
            await g_writer.wait_closed()

            # 6. Direct in-process run of the same request for the
            # bit-identity comparison (fresh simulation, no caches).
            request = protocol.wire_to_request(WORKLOAD)
            run = await asyncio.get_running_loop().run_in_executor(
                None, lambda: runner.run_request(request, use_cache=False))
            direct = runner.request_summary(request, run)
            return (first["summary"], second["summary"], chaos["summary"],
                    json.loads(canonical(direct)))
        finally:
            await daemon.drain()


class TestDaemonDrainUnderSignal:
    def test_sigterm_drains_cleanly(self, tmp_path):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO, "src"),
                   REPRO_RUN_CACHE_DIR=str(tmp_path / "cache"))
        socket_path = str(tmp_path / "serve.sock")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "daemon",
             "--socket", socket_path, "--pool", "1", "--no-warm"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO)
        try:
            ready = self._await_line(proc, "ready on", timeout=120)
            assert socket_path in ready
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        assert proc.returncode == 0, out
        assert "repro-serve: draining" in out
        assert "drained after 0 request(s)" in out
        assert not os.path.exists(socket_path)

    @staticmethod
    def _await_line(proc, needle, timeout):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line and proc.poll() is not None:
                raise AssertionError("daemon exited before %r" % needle)
            if needle in line:
                return line
        raise AssertionError("timed out waiting for %r" % needle)
