"""Tests for the Figure 8 TLB lookup flowchart."""

from repro.core.babelfish_tlb import (
    BabelFishLookup,
    babelfish_fill_fields,
    conventional_lookup,
    entry_region,
    make_entry,
)
from repro.hw.params import TLBParams
from repro.hw.tlb import MultiSizeTLB, TLBEntry
from repro.hw.types import PageSize
from repro.kernel.page_table import PTE


class FakeProc:
    def __init__(self, pid=1, pcid=1, ccid=7, pc_bits=None):
        self.pid = pid
        self.pcid = pcid
        self.ccid = ccid
        self.pc_bits = pc_bits or {}


def multi():
    return MultiSizeTLB([TLBParams("4k", 16, 4, PageSize.SIZE_4K, 10, 12)])


def shared_entry(vpn=0x10, ppn=0x100, ccid=7, orpc=False, pc_mask=0,
                 cow=False, writable=True, inserted_by=99):
    return TLBEntry(vpn, ppn, pcid=12, ccid=ccid, writable=writable,
                    cow=cow, o_bit=False, orpc=orpc, pc_mask=pc_mask,
                    inserted_by=inserted_by)


def owned_entry(vpn=0x10, ppn=0x200, pcid=1, ccid=7):
    return TLBEntry(vpn, ppn, pcid=pcid, ccid=ccid, o_bit=True,
                    inserted_by=1)


class TestFigure8:
    def test_box1_ccid_mismatch_misses(self):
        tlb = multi()
        tlb.insert(shared_entry(ccid=8))
        result = BabelFishLookup(tlb).lookup(0x10, FakeProc(ccid=7))
        assert not result.hit

    def test_shared_hit_any_process(self):
        """Box 4: a shared entry hits for every process in the group."""
        tlb = multi()
        tlb.insert(shared_entry())
        for pcid in (1, 2, 3):
            result = BabelFishLookup(tlb).lookup(
                0x10, FakeProc(pcid=pcid, ccid=7))
            assert result.hit

    def test_owned_entry_needs_pcid(self):
        """Boxes 2/9: Ownership set means the PCID must also match."""
        tlb = multi()
        tlb.insert(owned_entry(pcid=1))
        assert BabelFishLookup(tlb).lookup(0x10, FakeProc(pcid=1)).hit
        assert not BabelFishLookup(tlb).lookup(0x10, FakeProc(pcid=2)).hit

    def test_private_copy_holder_misses_shared(self):
        """Box 3: a process whose PC bit is set cannot use the shared
        entry."""
        tlb = multi()
        entry = shared_entry(orpc=True, pc_mask=0b100)
        tlb.insert(entry)
        region = entry_region(entry)
        holder = FakeProc(pcid=1, ccid=7, pc_bits={region: 2})
        other = FakeProc(pcid=2, ccid=7, pc_bits={region: 0})
        stranger = FakeProc(pcid=3, ccid=7)
        assert not BabelFishLookup(tlb).lookup(0x10, holder).hit
        assert BabelFishLookup(tlb).lookup(0x10, other).hit
        assert BabelFishLookup(tlb).lookup(0x10, stranger).hit

    def test_bitmask_consultation_flag(self):
        """ORPC clear: the PC bitmask read (and long access) is skipped."""
        tlb = multi()
        tlb.insert(shared_entry(orpc=False))
        result = BabelFishLookup(tlb).lookup(0x10, FakeProc())
        assert result.hit and not result.consulted_bitmask

        tlb2 = multi()
        tlb2.insert(shared_entry(orpc=True, pc_mask=1))
        result2 = BabelFishLookup(tlb2).lookup(0x10, FakeProc(pcid=5))
        assert result2.hit and result2.consulted_bitmask

    def test_owned_hit_skips_bitmask(self):
        tlb = multi()
        tlb.insert(owned_entry(pcid=1))
        result = BabelFishLookup(tlb).lookup(0x10, FakeProc(pcid=1))
        assert result.hit and not result.consulted_bitmask

    def test_write_to_cow_raises_cow_fault(self):
        """Boxes 5/6: a write hit on a CoW entry is a CoW page fault."""
        tlb = multi()
        tlb.insert(shared_entry(cow=True, writable=False))
        result = BabelFishLookup(tlb).lookup(0x10, FakeProc(), is_write=True)
        assert result.cow_fault and not result.hit

    def test_read_of_cow_hits(self):
        tlb = multi()
        tlb.insert(shared_entry(cow=True, writable=False))
        result = BabelFishLookup(tlb).lookup(0x10, FakeProc(), is_write=False)
        assert result.hit and not result.cow_fault

    def test_write_permission_miss(self):
        tlb = multi()
        tlb.insert(shared_entry(writable=False))
        result = BabelFishLookup(tlb).lookup(0x10, FakeProc(), is_write=True)
        assert not result.hit and not result.cow_fault

    def test_miss_on_empty(self):
        result = BabelFishLookup(multi()).lookup(0x10, FakeProc())
        assert not result.hit and result.entry is None

    def test_shared_and_owned_coexist(self):
        """The advanced case: most processes share {VPN0, PPN0}; one has
        its private {VPN0, PPN1} (Section III-A)."""
        tlb = multi()
        shared = shared_entry(ppn=0x100, orpc=True, pc_mask=0b1)
        tlb.insert(shared)
        tlb.insert(owned_entry(ppn=0x200, pcid=9))
        region = entry_region(shared)
        owner = FakeProc(pcid=9, ccid=7, pc_bits={region: 0})
        result = BabelFishLookup(tlb).lookup(0x10, owner)
        assert result.hit and result.entry.ppn == 0x200
        other = FakeProc(pcid=5, ccid=7)
        result2 = BabelFishLookup(tlb).lookup(0x10, other)
        assert result2.hit and result2.entry.ppn == 0x100


class TestConventionalLookup:
    def test_pcid_match(self):
        tlb = multi()
        tlb.insert(TLBEntry(0x10, 0x1, pcid=4, inserted_by=1))
        assert conventional_lookup(tlb, 0x10, FakeProc(pcid=4)).hit
        assert not conventional_lookup(tlb, 0x10, FakeProc(pcid=5)).hit

    def test_cow_write(self):
        tlb = multi()
        tlb.insert(TLBEntry(0x10, 0x1, pcid=4, cow=True, writable=False))
        result = conventional_lookup(tlb, 0x10, FakeProc(pcid=4),
                                     is_write=True)
        assert result.cow_fault


class TestFillHelpers:
    def test_fill_fields_skip_rules(self):
        # O set: skip.
        assert babelfish_fill_fields((True, False, 0)) == (True, False, 0, False)
        # O clear, ORPC clear: skip.
        assert babelfish_fill_fields((False, False, 0)) == (False, False, 0, False)
        # O clear, ORPC set: load the mask (long access).
        o, orpc, mask, long_access = babelfish_fill_fields((False, True, 0xF))
        assert not o and orpc and mask == 0xF and long_access

    def test_make_entry(self):
        pte = PTE(0x123, writable=True, cow=False)
        proc = FakeProc(pid=42, pcid=3, ccid=9)
        entry = make_entry(0x10, pte, proc, (False, True, 0b10),
                           PageSize.SIZE_4K)
        assert entry.vpn == 0x10 and entry.ppn == 0x123
        assert entry.ccid == 9 and entry.pcid == 3
        assert entry.orpc and entry.pc_mask == 0b10
        assert entry.inserted_by == 42

    def test_entry_region_by_size(self):
        e4k = TLBEntry(5 << 18, 1, PageSize.SIZE_4K)
        assert entry_region(e4k) == 5
        e2m = TLBEntry(5 << 9, 1, PageSize.SIZE_2M)
        assert entry_region(e2m) == 5
