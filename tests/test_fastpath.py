"""Differential verification of the exact fast path (repro.sim.fastpath).

The contract under test: with ``SimConfig.fastpath`` on (the default),
every architectural observable — ``RunResult.as_dict()``, per-call
translation cycles and physical addresses, TLB/cache counters — is
bit-identical to a run with ``fastpath=False``. The suite drives the
whole stack (every stock config, end to end), the swapped structures
(random operation streams against both backings), and the L0 memo's
invalidation edge cases (CoW retry, cross-core shootdowns, mid-run
measurement reset, debug-mode bypass).
"""

import random

import pytest

from conftest import MiniSystem

from repro.experiments import runcache
from repro.experiments.common import (build_environment, config_by_name,
                                      config_cache_key, run_app)
from repro.experiments.perf import run_hot
from repro.hw.cache import FastSetAssociativeCache, SetAssociativeCache
from repro.hw.params import CacheParams, TLBParams, baseline_machine
from repro.hw.tlb import (FastMultiSizeTLB, FastSetAssocTLB, SetAssocTLB,
                          TLBEntry)
from repro.hw.types import AccessKind, PageSize
from repro.kernel.fault import InvalidationScope, TLBInvalidation
from repro.kernel.vma import SegmentKind
from repro.sim.fastpath import (FASTPATH_ENV, fastpath_active,
                                structures_active)
from repro.sim.simulator import Simulator

STOCK_CONFIGS = ("Baseline", "BabelFish", "BabelFish-PT", "BabelFish-TLB",
                 "BigTLB", "Victima", "Coalesced")


def _run_both(name, cores=1, scale=0.03, **overrides):
    fast = run_app("mongodb", config_by_name(name, **overrides),
                   cores=cores, scale=scale, use_cache=False)
    ref = run_app("mongodb", config_by_name(name, fastpath=False, **overrides),
                  cores=cores, scale=scale, use_cache=False)
    return fast.result.as_dict(), ref.result.as_dict()


# -- end-to-end bit-identity ----------------------------------------------------


@pytest.mark.parametrize("name", STOCK_CONFIGS)
def test_stock_configs_bit_identical(name):
    cores = 2 if name == "BabelFish" else 1
    fast, ref = _run_both(name, cores=cores)
    assert fast == ref


@pytest.mark.parametrize("name", STOCK_CONFIGS)
def test_stock_configs_triangulate_with_batch(name):
    # reference == fastpath == batch on the full app pipeline: the batch
    # engine (repro.sim.batch) rides the same structures the fast path
    # uses, so any divergence shows up against either leg.
    cores = 2 if name == "BabelFish" else 1
    fast, ref = _run_both(name, cores=cores)
    batched = run_app("mongodb", config_by_name(name, batch=True),
                      cores=cores, scale=0.03, use_cache=False)
    assert fast == ref
    # arch_dict strips the batch engine's punt-attribution diagnostics
    # (engine telemetry, not architectural state) before the comparison.
    from repro.experiments.perf import arch_dict
    assert arch_dict(batched.result.as_dict()) == ref


def test_sanitize_mode_bit_identical():
    fast, ref = _run_both("BabelFish", scale=0.02, sanitize=True)
    assert fast == ref


def test_trace_mode_bit_identical():
    fast, ref = _run_both("BabelFish", scale=0.02, trace=True)
    assert fast == ref


def test_churn_stop_restart_stream_bit_identical():
    # Container churn is the hard case for the memo/epoch machinery:
    # every stop fires PCID/CCID-scoped flushes mid-stream and every
    # restart reuses cores (and, past the wrap, PCIDs). The summary is
    # pid-free and deterministic, so fast and reference runs of the
    # same seed must agree bit for bit.
    from repro.experiments.churn import run_churn

    fast = run_churn(cycles=25, sanitize=False, fastpath=True,
                     pcid_bits=4, kill_rate=0.2, seed=11)
    ref = run_churn(cycles=25, sanitize=False, fastpath=False,
                    pcid_bits=4, kill_rate=0.2, seed=11)
    assert fast.pcid_recycles > 0  # the storm actually wrapped
    assert fast.summary() == ref.summary()


def test_reset_measurement_mid_run_identical():
    # run_hot warms, calls reset_measurement(), then measures — the memo
    # and epochs survive the reset (stats objects are replaced, not the
    # TLBs) and must still replay the reference path exactly.
    fast_dict, accesses, _s = run_hot(config_by_name("BabelFish"), 1, 1500)
    ref_dict, _, _s = run_hot(config_by_name("BabelFish", fastpath=False),
                              1, 1500)
    assert accesses == 3000  # 2 containers on the single core
    assert fast_dict == ref_dict


# -- gating -------------------------------------------------------------------


def test_escape_hatches(monkeypatch):
    config = config_by_name("BabelFish")
    assert fastpath_active(config) and structures_active(config)
    assert not fastpath_active(config_by_name("BabelFish", fastpath=False))
    monkeypatch.setenv(FASTPATH_ENV, "0")
    assert not fastpath_active(config)
    env = build_environment(config, cores=1)
    assert env.sim._fast is False
    assert env.sim.mmus[0]._memo is None


# (ids avoid the literal word "sanitize", which conftest treats as the
# opt-in marker keyword and would skip.)
@pytest.mark.parametrize("overrides", [{"sanitize": True}, {"trace": True}],
                         ids=["sanitizer-mode", "tracer-mode"])
def test_debug_modes_bypass_fast_structures(overrides):
    config = config_by_name("BabelFish", **overrides)
    assert fastpath_active(config)
    assert not structures_active(config)
    env = build_environment(config, cores=1)
    assert env.sim._fast is False
    mmu = env.sim.mmus[0]
    assert mmu._memo is None
    assert not isinstance(mmu.l1d, FastMultiSizeTLB)
    assert type(env.sim.hierarchy.l3) is SetAssociativeCache


def test_post_hoc_tracer_or_sanitizer_disables_memo():
    env = build_environment(config_by_name("BabelFish"), cores=1)
    mmu = env.sim.mmus[0]
    assert mmu._memo is mmu._memo_store is not None
    mmu.tracer = object()
    assert mmu._memo is None
    mmu.tracer = None
    assert mmu._memo is mmu._memo_store
    mmu.sanitizer = object()
    assert mmu._memo is None
    mmu.sanitizer = None
    assert mmu._memo is mmu._memo_store


def test_run_cache_key_includes_fastpath():
    fast = config_by_name("BabelFish")
    ref = config_by_name("BabelFish", fastpath=False)
    assert config_cache_key(fast) != config_cache_key(ref)
    assert (runcache.app_key_data("mongodb", fast, 1, 0.1, None)
            != runcache.app_key_data("mongodb", ref, 1, 0.1, None))
    assert runcache.config_field_dict(fast)["fastpath"] is True
    assert runcache.config_field_dict(ref)["fastpath"] is False


# -- structure equivalence under random operation streams ----------------------


def _tlb_state(tlb):
    return ([(e.vpn, e.pcid, e.ppn) for e in tlb.entries()],
            tlb.hits, tlb.misses, tlb.insertions, tlb.invalidations,
            tlb.occupancy)


def test_tlb_backings_equivalent_under_random_stream():
    params = TLBParams("t", 32, 4, PageSize.SIZE_4K, 1)
    ref = SetAssocTLB(params)
    fast = FastSetAssocTLB(params)
    rng = random.Random(7)
    for _ in range(4000):
        op = rng.random()
        vpn = rng.randrange(64)
        pcid = rng.randrange(4)
        match = lambda e: e.pcid == pcid
        if op < 0.50:
            a = ref.lookup(vpn, match)
            b = fast.lookup(vpn, match)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.vpn, a.pcid, a.ppn) == (b.vpn, b.pcid, b.ppn)
        elif op < 0.80:
            ppn = rng.randrange(1 << 20)
            replace = match if rng.random() < 0.5 else None
            a = ref.insert(TLBEntry(vpn, ppn, pcid=pcid), replace=replace)
            b = fast.insert(TLBEntry(vpn, ppn, pcid=pcid), replace=replace)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.vpn, a.pcid, a.ppn) == (b.vpn, b.pcid, b.ppn)
        elif op < 0.95:
            assert ref.invalidate(vpn, match) == fast.invalidate(vpn, match)
        elif op < 0.98:
            assert ref.flush(match) == fast.flush(match)
        else:
            assert ref.flush() == fast.flush()
        assert _tlb_state(ref) == _tlb_state(fast)


@pytest.mark.parametrize("cls", [SetAssocTLB, FastSetAssocTLB],
                         ids=["reference", "fast"])
def test_no_invalid_entry_survives_in_a_set(cls):
    # Regression for the removed dead re-filter in insert():
    # invalidate/flush drop entries as they mark them invalid, so a
    # resident invalid entry must be impossible at any point.
    tlb = cls(TLBParams("t", 16, 4, PageSize.SIZE_4K, 1))
    rng = random.Random(3)
    for _ in range(2000):
        op = rng.random()
        vpn = rng.randrange(32)
        pcid = rng.randrange(3)
        if op < 0.6:
            tlb.insert(TLBEntry(vpn, rng.randrange(1 << 16), pcid=pcid))
        elif op < 0.9:
            tlb.invalidate(vpn, lambda e: e.pcid == pcid)
        else:
            tlb.flush(lambda e: e.pcid == pcid)
        assert all(e.valid for tset in tlb._sets for e in tset)


def _cache_state(cache):
    return ([set(cset) for cset in cache._sets], set(cache._dirty),
            cache.hits, cache.misses, cache.evictions, cache.writebacks,
            cache.epoch, cache.occupancy)


def test_cache_backings_equivalent_under_random_stream():
    params = CacheParams("c", 4096, 4)  # 16 sets, 4 ways
    ref = SetAssociativeCache(params)
    fast = FastSetAssociativeCache(params)
    rng = random.Random(11)
    for _ in range(6000):
        op = rng.random()
        paddr = rng.randrange(256) * 64
        is_write = rng.random() < 0.3
        if op < 0.55:
            assert ref.lookup(paddr, is_write) == fast.lookup(paddr, is_write)
        elif op < 0.90:
            ref.insert(paddr, is_write)
            fast.insert(paddr, is_write)
        elif op < 0.97:
            ref.invalidate(paddr)
            fast.invalidate(paddr)
        else:
            ref.flush()
            fast.flush()
        assert _cache_state(ref) == _cache_state(fast)


def test_cache_backings_pick_same_victims():
    # Fill one set beyond capacity in a known order and confirm both
    # backings evict the same (LRU) tags after an intervening hit.
    params = CacheParams("c", 1024, 4)  # 4 sets, 4 ways
    for cls in (SetAssociativeCache, FastSetAssociativeCache):
        cache = cls(params)
        lines = [tag * 4 * 64 for tag in range(5)]  # all map to set 0
        for paddr in lines[:4]:
            cache.insert(paddr)
        assert cache.lookup(lines[0])  # line 0 becomes MRU
        cache.insert(lines[4])         # evicts line 1, the LRU
        assert cache.lookup(lines[0])
        assert not cache.lookup(lines[1])
        assert cache.evictions == 1


# -- L0 memo invalidation edge cases -------------------------------------------


def test_cow_fault_retry_invalidates_memo(mini_babelfish):
    mini = mini_babelfish
    sim = Simulator(baseline_machine(cores=1), config_by_name("BabelFish"),
                    mini.kernel)
    mmu = sim.mmus[0]
    mini.touch(mini.zygote, SegmentKind.HEAP, 3, write=True)
    child = mini.fork()
    first = mmu.translate(child, SegmentKind.HEAP, 3, AccessKind.LOAD)
    repeat = mmu.translate(child, SegmentKind.HEAP, 3, AccessKind.LOAD)
    # The repeat read is a pure L1-hit replay from the memo.
    assert repeat.cycles == mmu.l1_cycles
    assert repeat.ppn4k == first.ppn4k
    assert (child.pid, SegmentKind.HEAP, 3) in mmu._memo.d
    before = mmu.stats.cow_faults
    write = mmu.translate(child, SegmentKind.HEAP, 3, AccessKind.STORE)
    # The memoized record (seeded by a read of a CoW page) must not serve
    # the write: the reference retry loop takes the CoW fault and lands
    # on the private copy.
    assert mmu.stats.cow_faults == before + 1
    assert write.ppn4k != first.ppn4k
    after = mmu.translate(child, SegmentKind.HEAP, 3, AccessKind.LOAD)
    assert after.ppn4k == write.ppn4k


def test_cross_core_shootdown_between_same_page_accesses():
    # Twin differential: the same six-access sequence on a fast and a
    # reference simulator (identical MiniSystems, so pids/layouts/frames
    # coincide) must produce identical per-access timing, physical
    # addresses, and counters — including across the cross-core
    # SHARED_ENTRY/REGION_SHARED shootdown that b's CoW write broadcasts
    # between core 0's two accesses to the same page.
    outcomes = []
    for fastpath in (True, False):
        mini = MiniSystem(babelfish=True)
        sim = Simulator(baseline_machine(cores=2),
                        config_by_name("BabelFish", fastpath=fastpath),
                        mini.kernel)
        mmu0, mmu1 = sim.mmus
        a = mini.fork("a")
        b = mini.fork("b")
        seq = [
            mmu0.translate(a, SegmentKind.DATA, 2, AccessKind.LOAD),
            mmu0.translate(a, SegmentKind.DATA, 2, AccessKind.LOAD),
            mmu1.translate(b, SegmentKind.DATA, 2, AccessKind.LOAD),
            # b's write privatizes the CoW-shared page; the kernel's
            # shootdown goes through the simulator's broadcast sink to
            # BOTH cores' MMUs.
            mmu1.translate(b, SegmentKind.DATA, 2, AccessKind.STORE),
            mmu0.translate(a, SegmentKind.DATA, 2, AccessKind.LOAD),
            mmu1.translate(b, SegmentKind.DATA, 2, AccessKind.LOAD),
        ]
        stats = [[getattr(m.stats, f) for f in type(m.stats).__slots__]
                 for m in sim.mmus]
        outcomes.append(([(t.cycles, t.ppn4k, t.page_size) for t in seq],
                         stats))
        if fastpath:
            # Semantic spot-checks on the fast run: b lands on its
            # private copy, a keeps the original page.
            assert seq[3].ppn4k != seq[0].ppn4k
            assert seq[4].ppn4k == seq[0].ppn4k
            assert seq[5].ppn4k == seq[3].ppn4k
    assert outcomes[0] == outcomes[1]


def test_manual_process_invalidation_defeats_memo(mini_babelfish):
    mini = mini_babelfish
    sim = Simulator(baseline_machine(cores=1), config_by_name("BabelFish"),
                    mini.kernel)
    mmu = sim.mmus[0]
    child = mini.fork()
    mmu.translate(child, SegmentKind.MMAP, 5, AccessKind.LOAD)
    hit = mmu.translate(child, SegmentKind.MMAP, 5, AccessKind.LOAD)
    assert hit.cycles == mmu.l1_cycles
    vpn_group = child.vpn_group(SegmentKind.MMAP, 5)
    mmu.apply_invalidation(child, TLBInvalidation(
        vpn_group, InvalidationScope.PROCESS, pcid=child.pcid))
    miss = mmu.translate(child, SegmentKind.MMAP, 5, AccessKind.LOAD)
    assert miss.cycles > mmu.l1_cycles
    assert miss.ppn4k == hit.ppn4k
