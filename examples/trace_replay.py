#!/usr/bin/env python3
"""Record and replay workload traces.

Generates a MongoDB YCSB trace, saves it as JSONL, and replays it through
two independently-built simulators to demonstrate bit-exact
reproducibility — the property that lets a reported result be re-checked
from a trace artifact alone.

Run:  python examples/trace_replay.py [out.jsonl]
"""

import sys
import tempfile

from repro.experiments.common import build_environment, config_by_name
from repro.kernel.vma import SegmentKind, VMAKind
from repro.workloads.dataserving import serving_trace
from repro.workloads.profiles import APP_PROFILES
from repro.workloads.tracefile import load_trace, save_trace, trace_stats


def run_once(trace):
    profile = APP_PROFILES["mongodb"]
    env = build_environment(config_by_name("BabelFish"), cores=1)
    state = env.engine.zygote_for(profile.image)
    dataset = env.kernel.create_file("dataset", profile.dataset_pages)
    env.kernel.page_cache.populate(dataset)
    env.kernel.mmap(state.proc, SegmentKind.MMAP, 0, profile.dataset_pages,
                    VMAKind.FILE_SHARED, file=dataset, writable=True,
                    name="dataset")
    container, _ = env.engine.launch(profile.image)
    env.sim.attach(container.proc, trace, 0)
    return env.sim.run()


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else (
        tempfile.gettempdir() + "/mongodb-trace.jsonl")
    profile = APP_PROFILES["mongodb"]
    records = list(serving_trace(profile, container_index=1, requests=120))
    count = save_trace(records, path)
    stats = trace_stats(records)
    print("recorded %d records (%d instructions, %d pages footprint, "
          "%d requests) to %s" % (count, stats["instructions"],
                                  stats["footprint_pages"],
                                  stats["requests"], path))

    live = run_once(iter(records))
    replayed = run_once(load_trace(path))
    print("live run:     %10d cycles, %d L2 TLB misses"
          % (live.total_cycles, live.stats.l2_misses))
    print("replayed run: %10d cycles, %d L2 TLB misses"
          % (replayed.total_cycles, replayed.stats.l2_misses))
    assert live.total_cycles == replayed.total_cycles
    print("bit-exact replay confirmed")


if __name__ == "__main__":
    main()
