#!/usr/bin/env python3
"""Trace walkthrough: watching Figure 10b's shared TLB hits happen.

Two MongoDB containers share one core under full BabelFish, with event
tracing on (``SimConfig(trace=True)``). After a small measured slice we
replay the event ring and print a timeline of L2 TLB hits whose entries
were inserted by the *other* container — the hits Figure 10b counts as
"Shared Hits". The same events, aggregated in the tracer's metrics
registry, give the shared-vs-private hit matrix, which matches the
simulator's own ``MMUStats`` counters exactly.

Run:  python examples/trace_walkthrough.py
"""

from repro.experiments.common import config_by_name, run_app
from repro.obs import events as ev
from repro.obs import format_summary, summarize

#: One core, two MongoDB containers sharing it — the smallest slice in
#: which container C can hit entries container A inserted (Figure 7).
CORES = 1
CONTAINERS_PER_CORE = 2
SCALE = 0.08


def pid_names(run):
    """pid -> short container label, in creation order."""
    return {container.proc.pid: "C%d" % index
            for index, container in enumerate(run.deployment.containers)}


def shared_hit_timeline(run, limit=20):
    """(cycle, pid, vpn) for L2 hits with shared provenance, oldest
    kept first (the ring keeps the freshest tail of the run)."""
    timeline = []
    for event in run.env.sim.tracer.events:
        if event[0] != ev.TLB_HIT:
            continue
        _etype, _core, cycle, pid, level, vpn, provenance = event
        if level == "L2" and provenance == ev.PROVENANCE_SHARED:
            timeline.append((cycle, pid, vpn))
    return timeline[:limit]


def main():
    config = config_by_name("BabelFish", trace=True)
    print("deploying %d mongodb containers on %d core (trace=True) ..."
          % (CORES * CONTAINERS_PER_CORE, CORES))
    run = run_app("mongodb", config, cores=CORES, scale=SCALE,
                  containers_per_core=CONTAINERS_PER_CORE, use_cache=False)
    names = pid_names(run)

    print("\nshared L2 TLB hits (entries inserted by the other container):")
    timeline = shared_hit_timeline(run)
    if not timeline:
        print("  (none in the retained ring — increase SCALE)")
    for cycle, pid, vpn in timeline:
        print("  cycle %8d  %s hits vpn %#014x  (inserted by the other "
              "container)" % (cycle, names.get(pid, "pid %d" % pid), vpn))

    print("\naggregate view (exact, survives ring wrap):")
    print(format_summary(summarize(run.result.obs, top=5)))

    stats = run.result.stats
    print("\ncross-check against MMUStats: L2 shared-hit fraction %.3f "
          "(Figure 10b's metric)" % stats.shared_hit_fraction())


if __name__ == "__main__":
    main()
