#!/usr/bin/env python3
"""Microscope: the Figure 7 timeline, reproduced event by event.

Three containers A, B, C share the translation for one page. A runs on
core 0, then B on core 1, then C on core 0 — exactly the example of
Section III-C. We print what each access costs under the conventional
architecture and under BabelFish, showing:

- A pays the full walk + minor fault in both designs,
- B avoids the fault and walks through cache-warm shared tables under
  BabelFish,
- C hits the TLB entry A loaded (CCID match) under BabelFish.

Run:  python examples/translation_microscope.py
"""

from repro.containers.image import ContainerImage
from repro.experiments.common import build_environment
from repro.hw.types import AccessKind
from repro.kernel.vma import SegmentKind, VMAKind
from repro.sim.config import babelfish_config, baseline_config

IMAGE = ContainerImage(name="microscope", binary_pages=8, binary_data_pages=2,
                       lib_pages=16, lib_data_pages=2, infra_pages=8,
                       heap_pages=64)


def run(config):
    env = build_environment(config, cores=2)
    state = env.engine.zygote_for(IMAGE)
    dataset = env.kernel.create_file("shared-page", 8)
    env.kernel.page_cache.populate(dataset)
    env.kernel.mmap(state.proc, SegmentKind.MMAP, 0, 8, VMAKind.FILE_SHARED,
                    file=dataset, name="data")
    a, _ = env.engine.launch(IMAGE, name="A")
    b, _ = env.engine.launch(IMAGE, name="B")
    c, _ = env.engine.launch(IMAGE, name="C")

    events = []
    for container, core in ((a, 0), (b, 1), (c, 0)):
        mmu = env.sim.mmus[core]
        faults_before = mmu.stats.minor_faults + mmu.stats.spurious_faults
        walks_before = mmu.stats.walks
        l1_hits = mmu.stats.l1_hits_d
        l2_hits = mmu.stats.l2_hits_d
        result = mmu.translate(container.proc, SegmentKind.MMAP, 0,
                               AccessKind.LOAD)
        events.append({
            "who": "%s@core%d" % (container.name.split("-")[-1], core),
            "cycles": result.cycles,
            "fault": (mmu.stats.minor_faults + mmu.stats.spurious_faults
                      - faults_before),
            "walk": mmu.stats.walks - walks_before,
            "l1_hit": mmu.stats.l1_hits_d - l1_hits,
            "l2_hit": mmu.stats.l2_hits_d - l2_hits,
        })
    return events


def main():
    print("Figure 7 timeline: containers A (core 0), B (core 1), "
          "C (core 0) access VPN0\n")
    for config in (baseline_config(), babelfish_config()):
        print(config.name)
        for event in run(config):
            path = ("L1 TLB hit" if event["l1_hit"] else
                    "L2 TLB hit" if event["l2_hit"] else
                    "page walk + fault" if event["fault"] else
                    "page walk (no fault)")
            print("  container %s: %4d cycles  [%s]"
                  % (event["who"], event["cycles"], path))
        print()


if __name__ == "__main__":
    main()
