#!/usr/bin/env python3
"""Serverless functions: bring-up and execution under BabelFish.

Reproduces the paper's FaaS experiment structure: three C/C++ functions
(Parse, Hash, Marshal) on a shared GCC base image, three containers per
core. The first wave takes the cold-start costs; the measured second wave
shows where BabelFish wins — shared infrastructure translations remove
most bring-up and execution page faults, dramatically so for sparse
inputs.

Run:  python examples/serverless_faas.py [dense|sparse]
"""

import sys

from repro.experiments.common import (
    config_by_name,
    pct_reduction,
    run_functions,
)
from repro.workloads.profiles import FUNCTION_NAMES


def main():
    dense = (sys.argv[1] if len(sys.argv) > 1 else "dense") != "sparse"
    label = "dense" if dense else "sparse"
    print("FaaS experiment (%s inputs): parse+hash+marshal per core\n"
          % label)

    runs = {}
    for name in ("Baseline", "BabelFish"):
        run = run_functions(config_by_name(name), dense=dense, cores=2,
                            scale=0.6, use_cache=False)
        runs[name] = run
        print("%-10s bring-up %8.0f cyc | %s"
              % (name, run.bringup_cycles,
                 " | ".join("%s %8.0f cyc" % (fn, run.exec_cycles[fn])
                            for fn in FUNCTION_NAMES)))

    base, bf = runs["Baseline"], runs["BabelFish"]
    print("\nBabelFish vs Baseline (%s):" % label)
    print("  bring-up time  -%.1f%%  (paper: ~8%%)"
          % pct_reduction(base.bringup_cycles, bf.bringup_cycles))
    for fn in FUNCTION_NAMES:
        print("  %-8s exec  -%.1f%%  (paper: ~%s)"
              % (fn, pct_reduction(base.exec_cycles[fn], bf.exec_cycles[fn]),
                 "10%" if dense else "55%"))
    print("\n%d%% of BabelFish's translations were shared hits; "
          "minor faults fell from %d to %d."
          % (100 * bf.result.stats.shared_hit_fraction(),
             base.result.stats.minor_faults, bf.result.stats.minor_faults))
    print("(this example runs at reduced scale, which shortens the compute "
          "phase and\n inflates fault-dominated reductions; the calibrated "
          "numbers come from\n pytest benchmarks/bench_fig11_latency.py)")


if __name__ == "__main__":
    main()
