#!/usr/bin/env python3
"""Compute workloads: GraphChi PageRank and FIO, Baseline vs BabelFish.

GraphChi traverses a shared graph with low locality while streaming
through large private edge buffers — which is why the paper finds its
gains are small and come almost entirely from page-table (not TLB)
sharing. FIO's regular accesses over a shared data set show the opposite
profile. This example reproduces that contrast.

Run:  python examples/compute_pagerank.py [cores]
"""

import sys

from repro.experiments.common import (
    build_environment,
    config_by_name,
    deploy_app,
    measure_app,
    pct_reduction,
)
from repro.workloads.profiles import APP_PROFILES, COMPUTE_APPS


def run(app, config_name, cores):
    env = build_environment(config_by_name(config_name), cores=cores)
    deployment = deploy_app(env, APP_PROFILES[app])
    result = measure_app(env, deployment, scale=0.6)
    return sum(result.process_cycles.values()), result


def main():
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    for app in COMPUTE_APPS:
        base_cycles, base = run(app, "Baseline", cores)
        bf_cycles, bf = run(app, "BabelFish", cores)
        pt_cycles, _pt = run(app, "BabelFish-PT", cores)
        total = base_cycles - bf_cycles
        tlb_fraction = (pt_cycles - bf_cycles) / total if total else 0.0
        print("%s (%d containers):" % (app, 2 * cores))
        print("  execution time  -%.1f%%  (paper compute average: ~11%%)"
              % pct_reduction(base_cycles, bf_cycles))
        print("  data MPKI       -%.1f%% | instr MPKI -%.1f%%"
              % (pct_reduction(base.stats.mpki("d"), bf.stats.mpki("d")),
                 pct_reduction(base.stats.mpki("i"), bf.stats.mpki("i"))))
        print("  fraction of gain from L2 TLB sharing: %.2f "
              "(paper: graphchi 0.11, fio 0.29)" % tlb_fraction)
        print("  shared hits: data %.0f%%, instr %.0f%%\n"
              % (100 * bf.stats.shared_hit_fraction("d"),
                 100 * bf.stats.shared_hit_fraction("i")))


if __name__ == "__main__":
    main()
