#!/usr/bin/env python3
"""Data-serving latency study: MongoDB under YCSB, Baseline vs BabelFish.

Reproduces the Figure 11 serving experiment for one application at a
configurable scale: 2 containers per core driven by distinct YCSB
clients over a shared memory-mapped data set, reporting mean and
95th-percentile request latency plus the TLB-level reasons for the
difference.

Run:  python examples/data_serving_latency.py [app] [cores]
      app in {mongodb, arangodb, httpd}; defaults: mongodb, 4 cores.
"""

import sys

from repro.experiments.common import (
    build_environment,
    config_by_name,
    deploy_app,
    measure_app,
    pct_reduction,
)
from repro.workloads.profiles import APP_PROFILES, SERVING_APPS


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "mongodb"
    cores = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if app not in SERVING_APPS:
        raise SystemExit("app must be one of %s" % (SERVING_APPS,))
    profile = APP_PROFILES[app]
    print("%s: %d containers on %d cores, %d-page shared dataset\n"
          % (app, 2 * cores, cores, profile.dataset_pages))

    results = {}
    for name in ("Baseline", "BabelFish"):
        env = build_environment(config_by_name(name), cores=cores)
        deployment = deploy_app(env, profile)
        result = measure_app(env, deployment, scale=0.6)
        results[name] = result
        stats = result.stats
        print("%-10s mean %6.0f cyc | p95 %6.0f | MPKI D %5.2f I %5.2f | "
              "walks %6d | minor faults %4d"
              % (name, result.mean_latency, result.tail_latency(),
                 stats.mpki("d"), stats.mpki("i"), stats.walks,
                 stats.minor_faults))

    base, bf = results["Baseline"], results["BabelFish"]
    print("\nBabelFish vs Baseline:")
    print("  mean latency  -%.1f%%   (paper: ~11%% serving average)"
          % pct_reduction(base.mean_latency, bf.mean_latency))
    print("  p95 latency   -%.1f%%   (paper: ~18%% serving average)"
          % pct_reduction(base.tail_latency(), bf.tail_latency()))
    print("  data MPKI     -%.1f%%"
          % pct_reduction(base.stats.mpki("d"), bf.stats.mpki("d")))
    print("  instr MPKI    -%.1f%%"
          % pct_reduction(base.stats.mpki("i"), bf.stats.mpki("i")))
    print("  %d%% of BabelFish's L2 TLB hits were on entries brought in "
          "by another container" % (100 * bf.stats.shared_hit_fraction()))


if __name__ == "__main__":
    main()
