#!/usr/bin/env python3
"""Multi-tenant security domains (Section V).

The paper's conservative security domain: a CCID group contains only the
containers of a single user running a single application. This example
runs two tenants' containers of the *same image* side by side and shows:

- containers of the same tenant share TLB entries and page tables,
- containers of different tenants never do — different CCIDs make their
  translations invisible to each other even for identical binaries, and
- physical page sharing (page cache) still happens across tenants (the
  kernel deduplicates the image), but translation sharing does not: the
  attack surface the paper discusses is no larger than the baseline's.

Run:  python examples/multi_tenant_isolation.py
"""

from repro.containers.image import ContainerImage
from repro.experiments.common import build_environment
from repro.hw.types import AccessKind
from repro.kernel.vma import SegmentKind
from repro.sim.config import babelfish_config

IMAGE = ContainerImage(name="shared-image", binary_pages=16,
                       binary_data_pages=4, lib_pages=96, lib_data_pages=8,
                       infra_pages=32, heap_pages=256)


def main():
    env = build_environment(babelfish_config(), cores=1)
    alice_1, _ = env.engine.launch(IMAGE, user="alice")
    alice_2, _ = env.engine.launch(IMAGE, user="alice")
    bob_1, _ = env.engine.launch(IMAGE, user="bob")

    print("CCIDs: alice-1=%d alice-2=%d bob-1=%d\n"
          % (alice_1.proc.ccid, alice_2.proc.ccid, bob_1.proc.ccid))
    mmu = env.sim.mmus[0]

    # alice-1 warms a library page.
    mmu.translate(alice_1.proc, SegmentKind.LIBS, 0, AccessKind.LOAD)

    # alice-2 hits alice-1's shared entry.
    before = mmu.stats.l2_shared_hits_i + mmu.stats.l2_shared_hits_d
    result = mmu.translate(alice_2.proc, SegmentKind.LIBS, 0,
                           AccessKind.LOAD)
    shared = (mmu.stats.l2_shared_hits_i + mmu.stats.l2_shared_hits_d
              - before)
    print("alice-2 translating the same library page: %d cycles "
          "(%s)" % (result.cycles,
                    "shared L2 TLB hit" if shared else "no sharing"))

    # bob misses: same VPN, same image — different CCID.
    walks_before = mmu.stats.walks
    result = mmu.translate(bob_1.proc, SegmentKind.LIBS, 0, AccessKind.LOAD)
    walked = mmu.stats.walks - walks_before
    print("bob-1   translating the same library page: %d cycles "
          "(%s)" % (result.cycles,
                    "full page walk — no cross-tenant TLB sharing"
                    if walked else "UNEXPECTED TLB sharing!"))
    assert walked, "cross-tenant TLB sharing must never happen"

    # Page-table level: alice's containers share a PTE table; bob's don't.
    vpn_a = alice_1.proc.vpn_group(SegmentKind.LIBS, 0)
    vpn_b = bob_1.proc.vpn_group(SegmentKind.LIBS, 0)
    table_a1 = alice_1.proc.tables.walk(vpn_a)[-1][1]
    table_a2 = alice_2.proc.tables.walk(vpn_a)[-1][1]
    table_b = bob_1.proc.tables.walk(vpn_b)[-1][1]
    print("\nPTE table identity: alice-1 %s alice-2  |  alice %s bob"
          % ("==" if table_a1 is table_a2 else "!=",
             "==" if table_a1 is table_b else "!="))
    assert table_a1 is table_a2
    assert table_a1 is not table_b

    # Physical page dedup still applies across tenants (page cache).
    pte_a = env.kernel.touch(alice_1.proc, vpn_a)
    pte_b = env.kernel.touch(bob_1.proc, vpn_b)
    print("physical library frame: alice %#x, bob %#x (%s)"
          % (pte_a.ppn, pte_b.ppn,
             "same page-cache frame — translations differ, data dedup'ed"
             if pte_a.ppn == pte_b.ppn else "distinct frames"))


if __name__ == "__main__":
    main()
