#!/usr/bin/env python3
"""Quickstart: run two containers with and without BabelFish.

Builds the Table I machine, launches two containers of one application
from a shared image, drives a small YCSB-like trace through the full
translation path, and prints the headline effects: shared TLB hits,
avoided minor faults, and latency.

Run:  python examples/quickstart.py
"""

from repro.containers.image import ContainerImage
from repro.experiments.common import build_environment
from repro.kernel.vma import SegmentKind, VMAKind
from repro.sim.config import babelfish_config, baseline_config
from repro.sim.simulator import K_IFETCH, K_LOAD, K_STORE
from repro.workloads.zipf import ZipfGenerator

IMAGE = ContainerImage(name="quickstart", binary_pages=32,
                       binary_data_pages=8, lib_pages=128, lib_data_pages=8,
                       infra_pages=64, heap_pages=512)


def trace(seed, requests=400):
    """A toy request loop: code fetch, two zipfian dataset reads, one
    private buffer write."""
    zipf = ZipfGenerator(2048, 0.9, seed=seed)
    code = ZipfGenerator(96, 0.6, seed=seed ^ 99)
    for rid in range(requests):
        yield (K_IFETCH, SegmentKind.LIBS, code.next(), 0, 40,
               seed * 100_000 + rid)
        for _ in range(2):
            page = zipf.next()
            yield (K_LOAD, SegmentKind.MMAP, page, (page * 13) % 64, 40,
                   seed * 100_000 + rid)
        yield (K_STORE, SegmentKind.HEAP, rid % 256, 0, 40,
               seed * 100_000 + rid)


def run(config):
    env = build_environment(config, cores=1)
    # A shared data set, mapped by the image zygote so every container
    # inherits it.
    state = env.engine.zygote_for(IMAGE)
    dataset = env.kernel.create_file("dataset", 2048)
    env.kernel.page_cache.populate(dataset)
    env.kernel.mmap(state.proc, SegmentKind.MMAP, 0, 2048,
                    VMAKind.FILE_SHARED, file=dataset, name="dataset")

    containers = []
    for i in range(2):
        container, _cycles = env.engine.launch(IMAGE)
        containers.append(container)
    for i, container in enumerate(containers):
        env.sim.attach(container.proc, trace(seed=i + 1), core_id=0)
    result = env.sim.run()
    return result


def main():
    print("BabelFish quickstart: 2 containers, 1 core, shared 8MB dataset\n")
    rows = []
    for config in (baseline_config(), babelfish_config()):
        result = run(config)
        stats = result.stats
        rows.append((config.name, result))
        print("%-10s mean latency %6.0f cycles | p95 %6.0f | "
              "L2 TLB MPKI %5.2f | shared hits %4.0f%% | minor faults %d"
              % (config.name, result.mean_latency, result.tail_latency(),
                 stats.mpki(), 100 * stats.shared_hit_fraction(),
                 stats.minor_faults))
    base, bf = rows[0][1], rows[1][1]
    print("\nBabelFish reduces mean latency by %.1f%% and "
          "minor faults by %.1f%%"
          % (100 * (1 - bf.mean_latency / base.mean_latency),
             100 * (1 - (bf.stats.minor_faults or 1)
                    / max(1, base.stats.minor_faults))))


if __name__ == "__main__":
    main()
