"""Setup shim: enables editable installs on environments without the
`wheel` package (offline). Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
