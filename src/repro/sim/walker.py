"""The hardware page walker (Section II-B, Figure 2).

Walks a process's software page tables level by level. PGD/PUD/PMD entry
reads probe the page walk cache first; on a PWC miss (and always for the
leaf pte_t) the walker issues a request to the cache hierarchy at the
entry's *physical* address — so walks by different containers over shared
tables hit the same cache lines (Figure 7's BabelFish timeline).
"""

import dataclasses

from repro.hw.types import AccessKind
from repro.kernel.page_table import PGD, PTE, TableRef, table_index


@dataclasses.dataclass
class WalkResult:
    pte: object          # PTE or None
    leaf_table: object   # PageTable holding the leaf (None on fault)
    leaf_level: int      # level the walk ended at
    cycles: int
    memory_accesses: int
    fault: bool

    @property
    def page_size(self):
        return self.pte.page_size if self.pte is not None else None


class PageWalker:
    def __init__(self, core_id, hierarchy, pwc):
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.pwc = pwc
        self.walks = 0
        self.total_cycles = 0
        #: Optional event tracer (:mod:`repro.obs`); set by the simulator
        #: when tracing is enabled.
        self.tracer = None

    def walk(self, proc, vpn):
        """Translate a 4K VPN through ``proc``'s tables with timing."""
        self.walks += 1
        cycles = 0
        accesses = 0
        table = proc.tables.pgd
        level = PGD
        # Per-level PWC/memory outcomes, root first ("p"/"m"), collected
        # only when tracing so the hot path stays allocation-free.
        outcomes = None if self.tracer is None else []
        while True:
            index = table_index(vpn, level)
            entry_paddr = table.entry_paddr(index)
            if level > 1 and self.pwc.lookup(level, entry_paddr):
                cycles += self.pwc.access_cycles
                if outcomes is not None:
                    outcomes.append("p")
            else:
                access_cycles, _level_hit = self.hierarchy.access(
                    self.core_id, entry_paddr, AccessKind.LOAD, skip_l1=True)
                cycles += access_cycles
                if level > 1:
                    self.pwc.insert(level, entry_paddr)
                if outcomes is not None:
                    outcomes.append("m")
            entry = table.entries.get(index)
            if entry is None:
                result = WalkResult(None, None, level, cycles, accesses, True)
                break
            if isinstance(entry, PTE):
                if not entry.present:
                    result = WalkResult(None, table, level, cycles, accesses, True)
                else:
                    entry.accessed = True
                    result = WalkResult(entry, table, level, cycles, accesses, False)
                break
            if not isinstance(entry, TableRef):
                raise TypeError("level-%d entry at vpn %#x is neither PTE "
                                "nor TableRef: %r" % (level, vpn, entry))
            table = entry.table
            level -= 1
        self.total_cycles += result.cycles
        if outcomes is not None:
            self.tracer.page_walk(self.core_id, proc.pid, vpn, result.cycles,
                                  result.fault, "".join(outcomes))
        return result
