"""Batched trace execution over the exact fast path.

The scalar fast path (:mod:`repro.sim.fastpath`) still pays one Python
interpreter round trip per trace record — the memo guard chain, a
``data_access`` call, per-record stat attribute bumps. This module —
ROADMAP's "next 10x" — compiles each attached trace into flat parallel
arrays at attach time and executes the steady-state stream in *chunks*:
a claim proves, for a span of the next chunk, that every record's
translation is served by the L0 memo (an L1-TLB hit), then runs the
span through a tight loop in which the set-index math, tag values, and
physical addresses are precomputed per chunk via numpy (with a pure-
Python fallback so numpy stays optional) and the per-record residue is
a handful of dict operations; the translation-side stat folds (per-key
TLB hit counters, LRU move-to-ends, per-space access counters, cycle
sums) are applied once per chunk from prefix sums and a key fold.
Cache-level misses inside a claimed span are executed inline through
the real L2/L3/DRAM objects in record order, so their evictions,
writebacks, and fill effects are the scalar ones by construction.

Any record the claim cannot prove is translation-steady — a memo miss,
epoch boundary, fault, CoW retry, or cross-core shootdown inside the
chunk — punts to the scalar machinery: exactly one record runs through
``MMU.translate`` + ``CacheHierarchy.data_access`` (which service
faults, seed the memo, and shoot down exactly as always), and the claim
re-arms behind it.

Exactness (DESIGN.md §14): a claimed span consists only of memo
replays, whose translation side effects are commutative counter
increments and LRU move-to-ends — nothing in a claimed span mutates a
TLB set, so the guards verified at claim time hold for the whole span
and the key fold reconstructs the final LRU order from per-key
last-occurrence order. Cache state is mutated in record order (hits
are the inlined ``data_access`` hit path; misses call the same
lookup/insert methods), so the cache side needs no reordering argument
at all. The simulator is single-threaded, so nothing interleaves with
a claim. ``RunResult.as_dict()`` of a batch run is therefore
bit-identical to the reference run (tests/test_batch.py triangulates
reference == fastpath == batch on every stock config).

Verified keys are cached *across* chunks: the hw twins' chunk-boundary
epoch hooks (``FastSetAssocTLB._epoch_log``) record which sets changed
since the last chunk, so a claim invalidates exactly the keys whose
guard sets moved instead of re-verifying its whole working set after
every interlude. Verified-resident cache lines are cached the same
way, keyed on the L1's aggregate epoch (hits never bump it — the
documented contract) and maintained through the claim's own fills and
evictions.

Gating: ``SimConfig.batch`` (default off) requires the fast structures
(``structures_active``); ``REPRO_BATCH=0`` disables it, and
``REPRO_BATCH_NUMPY=0`` forces the pure-Python scan even when numpy is
importable.

Punt attribution (``BatchStats``, on by default, compiled out with
``REPRO_BATCH_ATTRIBUTION=0``): every punt is classified by cause —
the memo's peek verdict (memo miss, epoch movement, write verdict,
ORPC mask bit) refined by what the scalar interlude actually did (CoW
retry, other faults, epoch movement with intervening kernel
invalidations = shootdown) — and every flushed claim feeds a
claim-length histogram. The result rides on ``RunResult.as_dict()``
under the ``"batch"`` key; it is engine diagnostics, not architecture,
so identity comparisons strip it.
"""

import bisect
import itertools
import os

from repro.hw.types import AccessKind
from repro.obs.metrics import MetricsRegistry

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: Environment escape hatch: ``REPRO_BATCH=0`` forces the scalar loop
#: regardless of ``SimConfig.batch``.
BATCH_ENV = "REPRO_BATCH"

#: ``REPRO_BATCH_NUMPY=0`` selects the pure-Python fallback scan even
#: when numpy is installed (the CI matrix drives both).
BATCH_NUMPY_ENV = "REPRO_BATCH_NUMPY"

#: ``REPRO_BATCH_ATTRIBUTION=0`` compiles out the per-cause punt
#: counters and claim-length histograms (``Simulator.batch_stats`` stays
#: None and every hook is a single ``is not None`` test) — the overhead
#: benchmark drives both states to prove the instrumented engine stays
#: within noise of the bare one.
BATCH_ATTR_ENV = "REPRO_BATCH_ATTRIBUTION"

#: Claim window: at most this many records are examined per claim.
#: Module-level so tests can shrink it to force chunk boundaries.
CHUNK = 2048

#: Use the vectorized (numpy) span precompute only when the previous
#: claim ran at least this long: per-claim numpy fixed costs (unique,
#: gathers, tolist) amortize over long steady spans but lose to the
#: plain-dict core when punts chop claims short. Module-level so tests
#: can force either core.
NP_SPAN_MIN = 192

#: repro.analysis marker (BF601/BF602): the batch engine's chunk folds
#: are dispatch-reachable code — the simulator dispatches
#: ``run_quantum_batch`` per quantum the way the runner dispatches pool
#: workers — so the parallel-safety rules root their reachability here.
DISPATCH_ROOTS = ("run_quantum_batch",)

_KINDS = (AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE)


def numpy_active():
    """True when the vectorized scan should back compiled traces."""
    return _np is not None and os.environ.get(BATCH_NUMPY_ENV, "1") != "0"


def batch_active(config):
    """True when traces should be compiled and run through the batch
    engine: ``SimConfig.batch`` on top of the fast structures (sanitize/
    trace and the fastpath escape hatches all force the scalar paths)."""
    from repro.sim.fastpath import structures_active

    if not getattr(config, "batch", False):
        return False
    if os.environ.get(BATCH_ENV, "1") == "0":
        return False
    return structures_active(config)


def attribution_active():
    """True when batch runs should collect punt attribution (default)."""
    return os.environ.get(BATCH_ATTR_ENV, "1") != "0"


#: Punt causes, from the memo's peek verdict refined by what the scalar
#: interlude actually did: "cow_retry" (the punted record took a CoW
#: write fault), "fault" (any other minor/major/spurious fault),
#: "shootdown" (guard epochs moved with kernel invalidations applied to
#: this core since the trace's last punt), "epoch" (guard epochs moved
#: from plain replacement churn), "memo_miss" (key never seeded or
#: evicted from the memo), "write_verdict" (read-seeded record asked to
#: prove a write or vice versa), "mask_bit" (live ORPC privatization
#: re-check failed).
PUNT_CAUSES = ("cow_retry", "epoch", "fault", "mask_bit", "memo_miss",
               "shootdown", "write_verdict")


class BatchStats:
    """Engine diagnostics for batched runs: why records punted out of
    the claim path and how long the claimed spans ran.

    Everything here is *diagnostic* — it lives outside
    :class:`~repro.sim.stats.MMUStats` and is attached to the run as
    ``RunResult.batch``, which identity comparisons against the scalar
    engines strip (the architectural summary is bit-identical with
    attribution on, off, or compiled out).

    Counters and the claim-length histogram live in a real
    :class:`~repro.obs.metrics.MetricsRegistry` (resolved once here, so
    the punt hook is an attribute increment, not a registry lookup):
    snapshots merge across the process-pool fan-out with
    :func:`repro.obs.metrics.merge_snapshots` like any other registry.

    A *claim* is one contiguous claimed span as flushed — spans are
    bounded by ``CHUNK`` and cut at quantum ends, so a long steady run
    shows up as several maximum-length claims rather than one.
    """

    __slots__ = ("registry", "punts", "claims", "claimed_records",
                 "_cause_counters", "_claim_hist")

    def __init__(self):
        self.registry = MetricsRegistry()
        self.punts = 0
        self.claims = 0
        self.claimed_records = 0
        self._cause_counters = {
            cause: self.registry.counter("batch_punts", cause=cause)
            for cause in PUNT_CAUSES}
        self._claim_hist = self.registry.histogram("batch_claim_records")

    def punt(self, cause):
        self.punts += 1
        self._cause_counters[cause].inc()

    def claim(self, span):
        self.claims += 1
        self.claimed_records += span
        self._claim_hist.observe(span)

    def causes(self):
        """Cause -> count, deterministically ordered."""
        return {cause: self._cause_counters[cause].value
                for cause in PUNT_CAUSES}

    def snapshot(self):
        """JSON-ready diagnostics (``RunResult.as_dict()['batch']``)."""
        return {"claims": self.claims,
                "claimed_records": self.claimed_records,
                "punts": self.punts,
                "punt_causes": self.causes(),
                "metrics": self.registry.snapshot()}


class BatchTrace:
    """One attached trace, compiled to flat parallel arrays.

    Compile-time state (immutable over the run): the original records,
    per-record dense key ids (a *key* is ``(instr, is_write, segment,
    page)`` — exactly the memo's lookup identity), per-record flags and
    cycle components, and exclusive prefix sums of instructions /
    claimed-record cycles / memory cycles / ifetch counts, so a claim's
    quantum cut and stat totals are O(1) lookups and differences.

    Dynamic state (per binding to a core's MMU): per-key verification
    results mirrored from the memo (``g_ok``/``g_ppn``/``g_info``),
    the reverse index from guard (structure, set) pairs to key ids,
    epoch-log cursors per watched structure, and the verified-resident
    line caches per L1 cache.
    """

    __slots__ = (
        "records", "n", "pos", "use_numpy", "has_reqs",
        "ids", "lines", "instrs", "writes", "reqs",
        "gap_cycles", "rec_cycles",
        "insts_prefix", "cycles_prefix", "mem_prefix", "instr_prefix",
        "ids_np", "lines_np", "last_nk",
        "key_meta", "nkeys",
        "mmu", "core_id", "l1_cycles", "l1i_cache", "l1d_cache",
        "lb_i", "lb_d", "line_memo_slot",
        "g_ok", "g_ppn", "g_ok_np", "g_ppn_np",
        "g_info", "masked", "rev", "log_cursors",
        "vlines_i", "vlines_d", "vlines_i_epoch", "vlines_d_epoch",
        "inval_mark",
    )

    def bind(self, sim, core_id):
        """(Re)bind the dynamic verification state to one core's MMU and
        caches. Called at compile time and again if the trace ever runs
        on a different core (all cached verifications are dropped)."""
        mmu = sim.mmus[core_id]
        self.mmu = mmu
        self.core_id = core_id
        self.l1_cycles = mmu.l1_cycles
        self.l1i_cache = sim.hierarchy.l1i[core_id]
        self.l1d_cache = sim.hierarchy.l1d[core_id]
        self.lb_i = self.l1i_cache.line_bits
        self.lb_d = self.l1d_cache.line_bits
        self.line_memo_slot = sim.hierarchy._line_memo[core_id]
        nkeys = self.nkeys
        # Plain lists for the per-record core: list indexing returns
        # native bool/int, where numpy arrays would leak numpy scalars
        # into every paddr computation and dict key downstream. The
        # numpy mirrors exist only for the span path's vectorized
        # gathers and are dual-written at the (low-frequency) verify
        # and invalidate sites.
        self.g_ok = [False] * nkeys
        self.g_ppn = [0] * nkeys
        if self.use_numpy:
            self.g_ok_np = _np.zeros(nkeys, dtype=bool)
            self.g_ppn_np = _np.zeros(nkeys, dtype=_np.int64)
        else:
            self.g_ok_np = self.g_ppn_np = None
        self.g_info = [None] * nkeys
        self.masked = {}
        self.last_nk = 0
        #: Punt-attribution watermark against ``mmu.invals_applied``:
        #: epoch-cause punts with invalidation activity since the last
        #: punt classify as "shootdown" rather than replacement churn.
        self.inval_mark = mmu.invals_applied
        self.rev = {}
        self.log_cursors = {}
        self.vlines_i = {}
        self.vlines_d = {}
        self.vlines_i_epoch = -1
        self.vlines_d_epoch = -1


def compile_trace(trace, sim, core_id):
    """Compile ``trace`` (any iterable of records) into a
    :class:`BatchTrace` bound to ``core_id``'s structures."""
    bt = BatchTrace()
    records = list(trace)
    bt.records = records
    bt.n = len(records)
    bt.pos = 0
    bt.use_numpy = numpy_active()

    mmu = sim.mmus[core_id]
    base_cpi = sim.base_cpi
    l1_cycles = mmu.l1_cycles
    ci = sim.hierarchy.l1i[core_id].access_cycles
    cd = sim.hierarchy.l1d[core_id].access_cycles

    key_index = {}
    key_meta = []
    ids = []
    lines = []
    instrs = []
    writes = []
    reqs = []
    gap_cycles = []
    rec_cycles = []
    insts_per = []
    mem_per = []
    has_reqs = False
    for kind_code, segment, page_off, line, gap, req_id in records:
        instr = kind_code == 0
        is_write = kind_code == 2
        key = (instr, is_write, segment, page_off)
        kid = key_index.get(key)
        if kid is None:
            kid = len(key_meta)
            key_index[key] = kid
            key_meta.append((segment, page_off, instr, is_write))
        ids.append(kid)
        # Pre-shifted into paddr position: paddr = g_ppn[kid] | lines[i].
        lines.append(line << 6)
        instrs.append(instr)
        writes.append(is_write)
        reqs.append(req_id)
        if req_id is not None:
            has_reqs = True
        # Same truncation as the scalar loops' int(gap * base_cpi).
        gc = int(gap * base_cpi)
        gap_cycles.append(gc)
        mc = ci if instr else cd
        mem_per.append(mc)
        rec_cycles.append(gc + l1_cycles + mc)
        insts_per.append(gap + 1)
    bt.ids = ids
    bt.lines = lines
    bt.instrs = instrs
    bt.writes = writes
    bt.has_reqs = has_reqs
    bt.reqs = reqs if has_reqs else None
    bt.gap_cycles = gap_cycles
    bt.rec_cycles = rec_cycles
    bt.key_meta = key_meta
    bt.nkeys = len(key_meta)
    # Exclusive prefix sums (index i = total before record i): the
    # quantum cut is a bisect and every claim total an O(1) difference.
    # ``rec_cycles``/``mem_per`` assume the record is an L1 cache hit;
    # misses add their extra level cycles inline during the claim.
    bt.insts_prefix = [0] + list(itertools.accumulate(insts_per))
    bt.cycles_prefix = [0] + list(itertools.accumulate(rec_cycles))
    bt.mem_prefix = [0] + list(itertools.accumulate(mem_per))
    bt.instr_prefix = [0] + list(itertools.accumulate(
        1 if f else 0 for f in instrs))

    if bt.use_numpy:
        bt.ids_np = _np.asarray(ids, dtype=_np.int64)
        bt.lines_np = _np.asarray(lines, dtype=_np.int64)
    else:
        bt.ids_np = bt.lines_np = None

    bt.bind(sim, core_id)
    return bt


# -- cross-chunk verification state -------------------------------------------


def _watch(bt, tlb):
    """Start consuming ``tlb``'s epoch change log (enabling it on first
    interest); the cursor starts *now* — everything already logged
    predates every verification that depends on it."""
    if tlb not in bt.log_cursors:
        tlb._log_epochs = True
        bt.log_cursors[tlb] = tlb._epoch_log_base + len(tlb._epoch_log)


def _drain_logs(bt):
    """Invalidate verified keys whose guard sets changed since the last
    chunk, by consuming each watched structure's epoch change log."""
    cursors = bt.log_cursors
    g_ok = bt.g_ok
    g_ok_np = bt.g_ok_np
    rev = bt.rev
    masked = bt.masked
    for tlb in cursors:
        log = tlb._epoch_log
        base = tlb._epoch_log_base
        end = base + len(log)
        cur = cursors[tlb]
        if cur >= end:
            continue
        if cur < base:
            # The producer trimmed past our cursor: we lost events, so
            # conservatively drop every key guarded by this structure.
            stale = [pair for pair in rev if pair[0] is tlb]
            for pair in stale:
                for kid in rev.pop(pair):
                    g_ok[kid] = False
                    if g_ok_np is not None:
                        g_ok_np[kid] = False
                    masked.pop(kid, None)
        else:
            for j in range(cur - base, len(log)):
                kids = rev.pop((tlb, log[j]), None)
                if kids is not None:
                    for kid in kids:
                        g_ok[kid] = False
                        if g_ok_np is not None:
                            g_ok_np[kid] = False
                        masked.pop(kid, None)
        cursors[tlb] = end


def _recheck_masked(bt, proc):
    """Re-run the live ORPC bitmask check for every verified key that
    carries one (``proc.pc_bits`` has no epoch, so this runs every
    claim; it is empty unless the config shares the L1 TLB)."""
    masked = bt.masked
    if not masked:
        return
    pc_bits = proc.pc_bits
    drop = None
    for kid in masked:
        mask_domain, pc_mask = masked[kid]
        bit = pc_bits.get(mask_domain)
        if bit is not None and (pc_mask >> bit) & 1:
            if drop is None:
                drop = []
            drop.append(kid)
    if drop:
        g_ok_np = bt.g_ok_np
        for kid in drop:
            bt.g_ok[kid] = False
            if g_ok_np is not None:
                g_ok_np[kid] = False
            del masked[kid]


def _verify_key(bt, proc, kid):
    """Verify one key against the memo (side-effect-free peek); on
    success, cache the replay info and register the key under every
    guard (structure, set) pair so epoch-log drains can invalidate it."""
    segment, page_off, instr, is_write = bt.key_meta[kid]
    rec = bt.mmu.memo_peek(proc, segment, page_off, instr, is_write)
    if rec is None:
        return False
    (entry, tlb, set_idx, _set_epoch, ppn4k, _page_size,
     _write_ok, _write_seeded, mask_domain, pc_mask, pre,
     _hit_snap, _pre_deep) = rec
    bt.g_ok[kid] = True
    # Pre-shifted into paddr position (paddr = g_ppn | line<<6), and the
    # per-set LRU dict resolved once here: the dict object is stable for
    # the TLB's lifetime (flushes clear() in place), and any structural
    # change bumps the set epoch, which re-verifies the key anyway.
    bt.g_ppn[kid] = ppn4k << 12
    if bt.g_ok_np is not None:
        # Numpy mirrors exist only for the vectorized span path; the
        # scalar core reads the plain lists so record arithmetic never
        # touches numpy scalars (np.bool_/np.int64 poison every
        # downstream int op with 2-5x overhead).
        bt.g_ok_np[kid] = True
        bt.g_ppn_np[kid] = ppn4k << 12
    bt.g_info[kid] = (entry, tlb, tlb._lru[set_idx],
                      tuple(p[0] for p in pre))
    rev = bt.rev
    _watch(bt, tlb)
    bucket = rev.get((tlb, set_idx))
    if bucket is None:
        rev[(tlb, set_idx)] = {kid: None}
    else:
        bucket[kid] = None
    for pre_tlb, pre_idx, _epoch in pre:
        _watch(bt, pre_tlb)
        bucket = rev.get((pre_tlb, pre_idx))
        if bucket is None:
            rev[(pre_tlb, pre_idx)] = {kid: None}
        else:
            bucket[kid] = None
    if mask_domain is not None:
        bt.masked[kid] = (mask_domain, pc_mask)
    else:
        bt.masked.pop(kid, None)
    return True


def _vlines(bt, instr):
    """The verified-resident line cache for one L1 cache, cleared
    whenever that cache's aggregate epoch moved outside a claim (hits
    never bump it, so an unchanged epoch proves unchanged residency; a
    claim's own fills and evictions maintain the dict and re-snapshot
    the epoch, so only interlude fills and external invalidations wipe
    it)."""
    if instr:
        cache = bt.l1i_cache
        if bt.vlines_i_epoch != cache.epoch:
            bt.vlines_i = {}
            bt.vlines_i_epoch = cache.epoch
        return bt.vlines_i
    cache = bt.l1d_cache
    if bt.vlines_d_epoch != cache.epoch:
        bt.vlines_d = {}
        bt.vlines_d_epoch = cache.epoch
    return bt.vlines_d




# -- the quantum loop ---------------------------------------------------------


def _l2_miss(hier, l2, paddr, is_write):
    """L2-miss leg of the inlined ``data_access`` miss path: probe L3
    (then DRAM) through the real objects — their LRU state, fills, and
    counters are the scalar ones by construction — and fill L2. Returns
    the cycles beyond the L1 and L2 probes."""
    l3 = hier.l3
    extra = l3.access_cycles
    if not l3.lookup(paddr, is_write):
        extra += hier.dram.access(paddr)
        l3.insert(paddr, is_write)
    l2.insert(paddr, is_write)
    return extra


def run_quantum_batch(sim, core_id, proc):
    """``Simulator._run_quantum`` for compiled traces: execute the
    steady-state stream in chunks, punting to the scalar translation
    machinery (one record at a time) wherever the memo cannot replay a
    record — faults, CoW retries, seeding misses, shootdown-invalidated
    entries, and every other non-steady-state event happen inside that
    scalar record exactly as on the fast path. Scheduler bookkeeping
    (finished/rotate/switch-cost) mirrors
    :func:`repro.sim.fastpath.run_quantum_fast` exactly.

    The chunk loop is inlined into the quantum loop so its working
    state binds to locals once per quantum, and punts are handled *in
    the loop*: the pending translation fold is flushed (the scalar
    ``translate`` reads TLB hit counters and LRU order), the record's
    translation runs through ``mmu.translate``, and its cache side runs
    through the same inlined hierarchy code the steady records use —
    so the verified-lines caches and the pending line-memo slot stay
    live across punts instead of being wiped by a ``data_access``
    detour. Steady spans between punts fold their translation effects
    per span; pure counters (L1/L2 hit, miss, eviction, writeback
    totals, per-side access counts, the translation-cycle fold)
    accumulate in locals and flush once at quantum end — increments
    commute, and nothing inside the quantum reads them. The L1 cache
    epochs are kept in locals and written back around each
    ``translate`` call, the only path that can move them externally
    (fault-side line invalidations); a moved epoch wipes that side's
    verified-lines cache, exactly as the epoch contract requires.

    The quantum budget needs no per-record test: every path consumes
    exactly ``gap + 1`` instructions per record, so the quantum's end
    position is a single bisect on the instruction prefix up front
    (``qcut``), and chunks simply never run past it.
    """
    mmu = sim.mmus[core_id]
    stats = mmu.stats
    bstats = sim.batch_stats
    bt = sim._traces.get(proc.pid)
    quantum = sim.scheduler.quantum_instructions
    request_latency = sim._request_latency
    rl_get = request_latency.get
    cycles = 0
    insts = 0
    t_cycles = 0
    m_cycles = 0
    finished = False
    if bt is None:
        finished = True
    else:
        if bt.mmu is not mmu:
            bt.bind(sim, core_id)
        # With the memo unwired (e.g. the debug store swapped out)
        # nothing can be claimed; every record takes the scalar path,
        # whose translate() runs the reference sequence.
        memo_live = mmu._memo is not None
        translate = mmu.translate
        scratch = mmu._tr_scratch
        kinds = _KINDS
        records = bt.records
        gap_cycles = bt.gap_cycles
        n = bt.n
        if not memo_live:
            data_access = sim.hierarchy.data_access
            while insts < quantum:
                i = bt.pos
                if i >= n:
                    finished = True
                    break
                bt.pos = i + 1
                kind_code, segment, page_off, line, gap, req_id = records[i]
                tr = translate(proc, segment, page_off, kinds[kind_code],
                               kind_code == 2, scratch)
                mem = data_access(core_id, (tr.ppn4k << 12) | (line << 6),
                                  kind_code)
                record_cycles = gap_cycles[i] + tr.cycles + mem
                cycles += record_cycles
                insts += gap + 1
                t_cycles += tr.cycles
                m_cycles += mem
                if req_id is not None:
                    request_latency[req_id] = rl_get(req_id, 0) + record_cycles
        else:
            # -- per-quantum state --------------------------------------
            prefix = bt.insts_prefix
            cyc_prefix = bt.cycles_prefix
            mem_prefix = bt.mem_prefix
            in_prefix = bt.instr_prefix
            ids = bt.ids
            lines = bt.lines
            instrs = bt.instrs
            writes = bt.writes
            reqs = bt.reqs
            rec_cycles = bt.rec_cycles
            has_reqs = bt.has_reqs
            g_ok = bt.g_ok
            g_ppn = bt.g_ppn
            g_info = bt.g_info
            use_np = bt.use_numpy
            hier = sim.hierarchy
            l1i = bt.l1i_cache
            l1d = bt.l1d_cache
            l2 = hier.l2[core_id]
            sets_i = l1i._sets
            sets_d = l1d._sets
            sets_2 = l2._sets
            mask_i = l1i.set_mask
            mask_d = l1d.set_mask
            mask_2 = l2.set_mask
            shift_i = l1i._tag_shift
            shift_d = l1d._tag_shift
            shift_2 = l2._tag_shift
            lb_i = bt.lb_i
            lb_d = bt.lb_d
            lb_2 = l2.line_bits
            c2 = l2.access_cycles
            ways_i = l1i.ways
            ways_d = l1d.ways
            dirty_i = l1i._dirty
            dirty_d = l1d._dirty
            dirty_2 = l2._dirty
            slot = bt.line_memo_slot
            vli = _vlines(bt, True)
            vld = _vlines(bt, False)
            ep_i = l1i.epoch
            ep_d = l1d.epoch
            # Pending line-memo slot lids; nothing else reads or writes
            # the slot while the quantum runs (the interludes bypass
            # data_access), so they flush only once. The slot epoch is
            # always the side's current local epoch: it only moves at
            # that side's own accesses — except fault-side invalidations,
            # which flush the pending slot with the old epoch first.
            sl_i_lid = sl_d_lid = None
            hits_i = hits_d = 0
            miss_i = miss_d = 0
            ev_i = ev_d = 0
            wb_i = wb_d = 0
            h2 = m2 = 0
            n2_total = 0
            ni_total = 0
            pos0 = pos = bt.pos
            qcut = bisect.bisect_left(prefix, prefix[pos] + quantum, pos, n)
            _drain_logs(bt)
            if bt.masked:
                _recheck_masked(bt, proc)
            while True:
                pos = bt.pos
                if pos >= n:
                    finished = True
                    break
                if pos >= qcut:
                    break
                iend = pos + CHUNK
                if iend > qcut:
                    iend = qcut
                paddrs = None
                end = iend
                if use_np and bt.last_nk >= NP_SPAN_MIN:
                    # Steady phase (the last span ran long): verify the
                    # whole chunk's keys up front — one unique over the
                    # chunk, the per-key peek only for keys not already
                    # verified — and precompute every record's physical
                    # address in one shot. An unverifiable key cuts the
                    # span; a zero-length span falls through to the
                    # per-record core, which punts on that record.
                    ids_span = bt.ids_np[pos:iend]
                    uks = _np.unique(ids_span)
                    g_ok_np = bt.g_ok_np
                    for kid in uks[~g_ok_np[uks]]:
                        _verify_key(bt, proc, int(kid))
                    ok = g_ok_np[ids_span]
                    nk = (iend - pos) if ok.all() else int(_np.argmin(ok))
                    if nk:
                        end = pos + nk
                        paddrs = (bt.g_ppn_np[ids_span[:nk]]
                                  | bt.lines_np[pos:end]).tolist()
                key_touch = {}
                span_start = pos
                for i in range(pos, end):
                    if paddrs is not None:
                        paddr = paddrs[i - pos]
                    else:
                        kid = ids[i]
                        if not g_ok[kid] and not _verify_key(bt, proc, kid):
                            # -- punt: scalar translation interlude -----
                            span = i - span_start
                            if span:
                                # Flush the steady span behind us: the
                                # scalar translate() reads TLB counters
                                # and LRU order. Last-occurrence order —
                                # pop-and-reinsert kept dict order =
                                # ascending last touch.
                                for kid2, count in key_touch.items():
                                    entry, tlb, lru, pre = g_info[kid2]
                                    for pre_tlb in pre:
                                        pre_tlb.misses += count
                                    tlb.hits += count
                                    del lru[entry]
                                    lru[entry] = None
                                key_touch = {}
                                n2_total += span
                                ni_total += (in_prefix[i]
                                             - in_prefix[span_start])
                                m_cycles += (mem_prefix[i]
                                             - mem_prefix[span_start])
                                cycles += (cyc_prefix[i]
                                           - cyc_prefix[span_start])
                                if bstats is not None:
                                    bstats.claim(span)
                            if bstats is not None:
                                # Attribution baselines: the memo's peek
                                # verdict, plus fault-counter watermarks
                                # so the scalar interlude's actual
                                # outcome can refine it below.
                                punt_reason = mmu._memo.peek_reason
                                f_base = (stats.minor_faults
                                          + stats.major_faults
                                          + stats.spurious_faults)
                                c_base = stats.cow_faults
                            (kind_code, segment, page_off, line, gap,
                             req_id) = records[i]
                            # translate() is the only in-quantum path
                            # that reads or moves the L1 epochs
                            # (fault-side line invalidations).
                            l1i.epoch = ep_i
                            l1d.epoch = ep_d
                            tr = translate(proc, segment, page_off,
                                           kinds[kind_code], kind_code == 2,
                                           scratch)
                            if bstats is not None:
                                if stats.cow_faults != c_base:
                                    punt_reason = "cow_retry"
                                elif (stats.minor_faults
                                      + stats.major_faults
                                      + stats.spurious_faults) != f_base:
                                    punt_reason = "fault"
                                elif (punt_reason == "epoch"
                                      and mmu.invals_applied
                                      != bt.inval_mark):
                                    punt_reason = "shootdown"
                                bt.inval_mark = mmu.invals_applied
                                bstats.punt(punt_reason)
                            e2 = l1i.epoch
                            if e2 != ep_i:
                                # The pending slot's access predates the
                                # invalidation: flush it under the old
                                # epoch (stale, as the scalar path would
                                # have left it).
                                if sl_i_lid is not None:
                                    slot[0] = (sl_i_lid, ep_i)
                                    sl_i_lid = None
                                ep_i = e2
                                vli = {}
                                bt.vlines_i = vli
                            e2 = l1d.epoch
                            if e2 != ep_d:
                                if sl_d_lid is not None:
                                    slot[1] = (sl_d_lid, ep_d)
                                    sl_d_lid = None
                                ep_d = e2
                                vld = {}
                                bt.vlines_d = vld
                            _drain_logs(bt)
                            if bt.masked:
                                _recheck_masked(bt, proc)
                            # Cache side of the punted record: the same
                            # inlined hierarchy code the steady records
                            # use, so vlines/slot state stays live.
                            paddr = (tr.ppn4k << 12) | (line << 6)
                            rec_extra = 0
                            if kind_code == 0:
                                lid = paddr >> lb_i
                                index = lid & mask_i
                                tag = lid >> shift_i
                                cset = sets_i[index]
                                if lid in vli:
                                    del cset[tag]
                                    cset[tag] = None
                                    hits_i += 1
                                elif tag in cset:
                                    vli[lid] = None
                                    del cset[tag]
                                    cset[tag] = None
                                    hits_i += 1
                                else:
                                    miss_i += 1
                                    lid2 = paddr >> lb_2
                                    idx2 = lid2 & mask_2
                                    tag2 = lid2 >> shift_2
                                    cset2 = sets_2[idx2]
                                    if tag2 in cset2:
                                        del cset2[tag2]
                                        cset2[tag2] = None
                                        h2 += 1
                                        rec_extra = c2
                                    else:
                                        m2 += 1
                                        rec_extra = c2 + _l2_miss(
                                            hier, l2, paddr, False)
                                    if len(cset) >= ways_i:
                                        victim = next(iter(cset))
                                        del cset[victim]
                                        ev_i += 1
                                        if (index, victim) in dirty_i:
                                            dirty_i.discard((index, victim))
                                            wb_i += 1
                                        vli.pop((victim << shift_i) | index,
                                                None)
                                    cset[tag] = None
                                    ep_i += 1
                                    vli[lid] = None
                                sl_i_lid = lid
                            else:
                                is_write = kind_code == 2
                                lid = paddr >> lb_d
                                index = lid & mask_d
                                tag = lid >> shift_d
                                cset = sets_d[index]
                                if lid in vld:
                                    del cset[tag]
                                    cset[tag] = None
                                    if is_write:
                                        dirty_d.add((index, tag))
                                    hits_d += 1
                                elif tag in cset:
                                    vld[lid] = None
                                    del cset[tag]
                                    cset[tag] = None
                                    if is_write:
                                        dirty_d.add((index, tag))
                                    hits_d += 1
                                else:
                                    miss_d += 1
                                    lid2 = paddr >> lb_2
                                    idx2 = lid2 & mask_2
                                    tag2 = lid2 >> shift_2
                                    cset2 = sets_2[idx2]
                                    if tag2 in cset2:
                                        del cset2[tag2]
                                        cset2[tag2] = None
                                        if is_write:
                                            dirty_2.add((idx2, tag2))
                                        h2 += 1
                                        rec_extra = c2
                                    else:
                                        m2 += 1
                                        rec_extra = c2 + _l2_miss(
                                            hier, l2, paddr, is_write)
                                    if len(cset) >= ways_d:
                                        victim = next(iter(cset))
                                        del cset[victim]
                                        ev_d += 1
                                        if (index, victim) in dirty_d:
                                            dirty_d.discard((index, victim))
                                            wb_d += 1
                                        vld.pop((victim << shift_d) | index,
                                                None)
                                    cset[tag] = None
                                    if is_write:
                                        dirty_d.add((index, tag))
                                    ep_d += 1
                                    vld[lid] = None
                                sl_d_lid = lid
                            mem = (mem_prefix[i + 1] - mem_prefix[i]
                                   + rec_extra)
                            record_cycles = gap_cycles[i] + tr.cycles + mem
                            cycles += record_cycles
                            t_cycles += tr.cycles
                            m_cycles += mem
                            if req_id is not None:
                                request_latency[req_id] = (rl_get(req_id, 0)
                                                           + record_cycles)
                            span_start = i + 1
                            bt.pos = span_start
                            continue
                        # Last-occurrence order for the span fold:
                        # pop-and-reinsert keeps dict order = ascending
                        # last touch.
                        key_touch[kid] = key_touch.pop(kid, 0) + 1
                        paddr = g_ppn[kid] | lines[i]
                    rec_extra = 0
                    if instrs[i]:
                        lid = paddr >> lb_i
                        index = lid & mask_i
                        tag = lid >> shift_i
                        cset = sets_i[index]
                        if lid in vli:
                            del cset[tag]
                            cset[tag] = None
                            hits_i += 1
                        elif tag in cset:
                            vli[lid] = None
                            del cset[tag]
                            cset[tag] = None
                            hits_i += 1
                        else:
                            # Inlined miss path: L2 probe here, L3/DRAM
                            # and the L2 fill in _l2_miss, then the L1
                            # fill (eviction pruned from vli).
                            miss_i += 1
                            lid2 = paddr >> lb_2
                            idx2 = lid2 & mask_2
                            tag2 = lid2 >> shift_2
                            cset2 = sets_2[idx2]
                            if tag2 in cset2:
                                del cset2[tag2]
                                cset2[tag2] = None
                                h2 += 1
                                rec_extra = c2
                            else:
                                m2 += 1
                                rec_extra = c2 + _l2_miss(hier, l2, paddr,
                                                          False)
                            if len(cset) >= ways_i:
                                victim = next(iter(cset))
                                del cset[victim]
                                ev_i += 1
                                if (index, victim) in dirty_i:
                                    dirty_i.discard((index, victim))
                                    wb_i += 1
                                vli.pop((victim << shift_i) | index, None)
                            cset[tag] = None
                            ep_i += 1
                            vli[lid] = None
                            cycles += rec_extra
                            m_cycles += rec_extra
                        sl_i_lid = lid
                    else:
                        lid = paddr >> lb_d
                        index = lid & mask_d
                        tag = lid >> shift_d
                        cset = sets_d[index]
                        is_write = writes[i]
                        if lid in vld:
                            del cset[tag]
                            cset[tag] = None
                            if is_write:
                                dirty_d.add((index, tag))
                            hits_d += 1
                        elif tag in cset:
                            vld[lid] = None
                            del cset[tag]
                            cset[tag] = None
                            if is_write:
                                dirty_d.add((index, tag))
                            hits_d += 1
                        else:
                            miss_d += 1
                            lid2 = paddr >> lb_2
                            idx2 = lid2 & mask_2
                            tag2 = lid2 >> shift_2
                            cset2 = sets_2[idx2]
                            if tag2 in cset2:
                                del cset2[tag2]
                                cset2[tag2] = None
                                if is_write:
                                    dirty_2.add((idx2, tag2))
                                h2 += 1
                                rec_extra = c2
                            else:
                                m2 += 1
                                rec_extra = c2 + _l2_miss(hier, l2, paddr,
                                                          is_write)
                            if len(cset) >= ways_d:
                                victim = next(iter(cset))
                                del cset[victim]
                                ev_d += 1
                                if (index, victim) in dirty_d:
                                    dirty_d.discard((index, victim))
                                    wb_d += 1
                                vld.pop((victim << shift_d) | index, None)
                            cset[tag] = None
                            if is_write:
                                dirty_d.add((index, tag))
                            ep_d += 1
                            vld[lid] = None
                            cycles += rec_extra
                            m_cycles += rec_extra
                        sl_d_lid = lid
                    if has_reqs:
                        rid = reqs[i]
                        if rid is not None:
                            request_latency[rid] = (rl_get(rid, 0)
                                                    + rec_cycles[i]
                                                    + rec_extra)
                # -- chunk-end flush of the trailing steady span --------
                span = end - span_start
                bt.last_nk = span
                if span:
                    if paddrs is not None:
                        # Last-occurrence-ascending key fold: an
                        # entry's final LRU recency is its last touch,
                        # so applying per-key move-to-ends in that
                        # order reproduces the scalar order even when
                        # keys share entries.
                        uk, kidx, counts = _np.unique(
                            bt.ids_np[span_start:end][::-1],
                            return_index=True, return_counts=True)
                        key_order = [(int(uk[k]), int(counts[k]))
                                     for k in _np.argsort((span - 1) - kidx)]
                    else:
                        key_order = key_touch.items()
                    for kid2, count in key_order:
                        entry, tlb, lru, pre = g_info[kid2]
                        for pre_tlb in pre:
                            pre_tlb.misses += count
                        tlb.hits += count
                        del lru[entry]
                        lru[entry] = None
                    n2_total += span
                    ni_total += in_prefix[end] - in_prefix[span_start]
                    m_cycles += mem_prefix[end] - mem_prefix[span_start]
                    cycles += cyc_prefix[end] - cyc_prefix[span_start]
                    if bstats is not None:
                        bstats.claim(span)
                bt.pos = end
            # -- quantum-end flush of deferred state --------------------
            # Every path consumes exactly gap+1 instructions per record,
            # so the quantum's instruction total is position-determined.
            insts = prefix[bt.pos] - prefix[pos0]
            if sl_i_lid is not None:
                slot[0] = (sl_i_lid, ep_i)
            if sl_d_lid is not None:
                slot[1] = (sl_d_lid, ep_d)
            l1i.epoch = ep_i
            l1d.epoch = ep_d
            bt.vlines_i_epoch = ep_i
            bt.vlines_d_epoch = ep_d
            l1i.hits += hits_i
            l1d.hits += hits_d
            l1i.misses += miss_i
            l1d.misses += miss_d
            l1i.evictions += ev_i
            l1d.evictions += ev_d
            l1i.writebacks += wb_i
            l1d.writebacks += wb_d
            l2.hits += h2
            l2.misses += m2
            if n2_total:
                nd_total = n2_total - ni_total
                stats.accesses_i += ni_total
                stats.l1_hits_i += ni_total
                stats.accesses_d += nd_total
                stats.l1_hits_d += nd_total
                t_cycles += n2_total * bt.l1_cycles
    stats.translation_cycles += t_cycles
    stats.memory_cycles += m_cycles
    stats.instructions += insts
    sim.core_cycles[core_id] += cycles
    sim._proc_cycles[proc.pid] = sim._proc_cycles.get(proc.pid, 0) + cycles
    if finished:
        sim._completion[proc.pid] = sim.core_cycles[core_id]
        sim._traces.pop(proc.pid, None)
        sim.scheduler.remove(proc)
    nxt = sim.scheduler.rotate(core_id)
    if nxt is not None and nxt is not proc:
        sim.core_cycles[core_id] += sim.switch_cost
    return insts
