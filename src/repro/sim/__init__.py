"""Trace-driven multi-core simulator with full translation-path timing."""

from repro.sim.config import (
    SimConfig,
    babelfish_config,
    babelfish_pt_only_config,
    babelfish_tlb_only_config,
    baseline_config,
    bigtlb_config,
)
from repro.sim.stats import MMUStats, RunResult, percentile
from repro.sim.walker import PageWalker, WalkResult
from repro.sim.mmu import MMU
from repro.sim.simulator import Simulator

__all__ = [
    "SimConfig",
    "baseline_config",
    "babelfish_config",
    "babelfish_pt_only_config",
    "babelfish_tlb_only_config",
    "bigtlb_config",
    "MMUStats",
    "RunResult",
    "percentile",
    "PageWalker",
    "WalkResult",
    "MMU",
    "Simulator",
]
