"""Simulation configurations: Baseline, BabelFish, ablations, BigTLB.

A :class:`SimConfig` selects which of BabelFish's two mechanisms are
enabled (Section VII separates "L2 TLB effects" from "page table effects"
in Table II), the ASLR mode, and scaling knobs.
"""

import dataclasses

from repro.core.aslr import ASLRMode
from repro.kernel.costs import KernelCosts


@dataclasses.dataclass(frozen=True)
class SimConfig:
    name: str
    #: CCID-tagged TLB entry sharing (Section III-A).
    babelfish_tlb: bool = False
    #: Shared page tables (Section III-B).
    babelfish_pt: bool = False
    aslr_mode: ASLRMode = ASLRMode.INHERITED
    thp_enabled: bool = True
    #: Scale factor on L2 TLB entries ("larger conventional TLB" study).
    l2_tlb_scale: float = 1.0
    #: The ORPC optimization (Figure 5b): when disabled, every shared-entry
    #: L2 TLB access pays the long (PC-bitmask) access time. Ablation knob.
    orpc_enabled: bool = True
    #: PC bitmask width: maximum CoW writers per PMD table set before the
    #: group reverts to non-shared translations (Appendix). Ablation knob.
    pc_bitmask_bits: int = 32
    #: Merge PMD tables for 2MB huge pages (Section IV-C). Ablation knob.
    share_huge: bool = True
    #: Appendix extension: per-2MB-range pid lists ("an extra
    #: indirection could support more writing processes"). Raises the CoW
    #: writer limit from 32 per 1GB region to 32 per 2MB range.
    pc_overflow_indirection: bool = False
    #: Scheduler quantum in instructions (Table I's 10ms scaled down with
    #: the measurement slice; see DESIGN.md Section 4).
    quantum_instructions: int = 20_000
    #: Enable the exact simulator fast path (:mod:`repro.sim.fastpath`):
    #: the per-core L0 translation memo, dict-backed TLB sets, the
    #: same-line L1 cache memo, and the tightened trace loop. Bit-
    #: identical to the reference path by construction (DESIGN.md §11;
    #: tests/test_fastpath.py verifies every stock config both ways), so
    #: it defaults on. ``False`` — or ``REPRO_FASTPATH=0`` in the
    #: environment — forces the reference implementations; ``sanitize``
    #: and ``trace`` runs fall back to them automatically.
    fastpath: bool = True
    #: Execute attached traces in vectorized chunks (:mod:`repro.sim.batch`):
    #: traces are compiled to flat parallel arrays at attach time and the
    #: steady-state (memo-hit, L1-cache-hit) stream is claimed per chunk —
    #: set-index math, tag compares, and stat folds done with numpy (or a
    #: pure-Python fallback when numpy is absent) — punting to the scalar
    #: fast path at any record it cannot prove is a pure hit. Requires the
    #: fast structures (``fastpath=True`` and no sanitize/trace); bit-
    #: identical to the reference path by the same ``as_dict()`` gate
    #: (DESIGN.md §14; tests/test_batch.py). ``REPRO_BATCH=0`` disables.
    batch: bool = False
    #: Enable the translation-coherence sanitizer: a shadow MMU that
    #: cross-checks every TLB fill/hit/invalidation against an independent
    #: architectural walk of the kernel page tables
    #: (:mod:`repro.analysis.sanitizer`). Debug/CI knob — adds a software
    #: walk per TLB event, so keep it off for performance numbers.
    sanitize: bool = False
    #: Enable event tracing (:mod:`repro.obs`): ``None`` (default) keeps
    #: every hook a no-op ``is not None`` test; ``True`` traces with
    #: default options; a :class:`repro.obs.TraceOptions` (or its field
    #: dict) tunes ring size, event families, and the streaming ``sink``
    #: — a ``.jsonl``/``.jsonl.gz``/``.jsonl.zst`` path the ring drains
    #: to at every wrap (flight-recorder mode: constant memory, no
    #: drop-oldest; published atomically by ``Tracer.finalize()``). The
    #: measured-phase snapshot lands on ``RunResult.obs``.
    trace: object = None
    costs: KernelCosts = dataclasses.field(default_factory=KernelCosts)

    @property
    def is_babelfish(self):
        return self.babelfish_tlb or self.babelfish_pt

    @property
    def share_l1_tlb(self):
        """L1 sharing is only possible when the L1 sees group addresses
        (ASLR-SW / inherited layouts); under ASLR-HW the transform sits
        between L1 and L2 (Section IV-D)."""
        return self.babelfish_tlb and self.aslr_mode.shares_l1


def baseline_config(**overrides):
    """Conventional server: per-process TLB entries and page tables."""
    return SimConfig(name="Baseline", **overrides)


def babelfish_config(aslr_mode=ASLRMode.HW, **overrides):
    """Full BabelFish; ASLR-HW by default, as in the paper's evaluation."""
    return SimConfig(name="BabelFish", babelfish_tlb=True, babelfish_pt=True,
                     aslr_mode=aslr_mode, **overrides)


def babelfish_pt_only_config(**overrides):
    """Ablation: page-table sharing without TLB entry sharing (used to
    attribute Table II's 'fraction from L2 TLB effects')."""
    return SimConfig(name="BabelFish-PT", babelfish_pt=True,
                     aslr_mode=ASLRMode.HW, **overrides)


def babelfish_tlb_only_config(**overrides):
    """Ablation: TLB entry sharing with conventional private page tables."""
    return SimConfig(name="BabelFish-TLB", babelfish_tlb=True,
                     aslr_mode=ASLRMode.HW, **overrides)


def bigtlb_config(scale=2.0, **overrides):
    """Section VII-C: spend BabelFish's extra TLB bits on a larger
    conventional L2 TLB instead (the CCID+O-PC bits roughly double the
    array, so the default is a 2x-entries conventional TLB)."""
    return SimConfig(name="BigTLB", l2_tlb_scale=scale, **overrides)
