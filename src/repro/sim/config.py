"""Simulation configurations: Baseline, BabelFish, ablations, BigTLB.

A :class:`SimConfig` selects which of BabelFish's two mechanisms are
enabled (Section VII separates "L2 TLB effects" from "page table effects"
in Table II), the ASLR mode, and scaling knobs.
"""

import dataclasses

from repro.core.aslr import ASLRMode
from repro.core.policy import get_policy, known_policies
from repro.kernel.costs import KernelCosts


@dataclasses.dataclass(frozen=True)
class SimConfig:
    name: str
    #: CCID-tagged TLB entry sharing (Section III-A).
    babelfish_tlb: bool = False
    #: Shared page tables (Section III-B).
    babelfish_pt: bool = False
    #: Translation-policy registry name (:mod:`repro.core.policy`): which
    #: TLB policy the MMUs run. ``""`` (the default) derives the legacy
    #: mapping from the flags above — ``babelfish`` when
    #: ``babelfish_tlb`` is set, else ``conventional`` — so existing
    #: configs keep meaning what they meant. The normalized name is a
    #: real field: it flows into ``dataclasses.astuple``/``asdict`` and
    #: therefore into every run-cache key and serve wire request.
    policy: str = ""
    aslr_mode: ASLRMode = ASLRMode.INHERITED
    thp_enabled: bool = True
    #: Scale factor on L2 TLB entries ("larger conventional TLB" study).
    l2_tlb_scale: float = 1.0
    #: The ORPC optimization (Figure 5b): when disabled, every shared-entry
    #: L2 TLB access pays the long (PC-bitmask) access time. Ablation knob.
    orpc_enabled: bool = True
    #: PC bitmask width: maximum CoW writers per PMD table set before the
    #: group reverts to non-shared translations (Appendix). Ablation knob.
    pc_bitmask_bits: int = 32
    #: Merge PMD tables for 2MB huge pages (Section IV-C). Ablation knob.
    share_huge: bool = True
    #: Appendix extension: per-2MB-range pid lists ("an extra
    #: indirection could support more writing processes"). Raises the CoW
    #: writer limit from 32 per 1GB region to 32 per 2MB range.
    pc_overflow_indirection: bool = False
    #: Scheduler quantum in instructions (Table I's 10ms scaled down with
    #: the measurement slice; see DESIGN.md Section 4).
    quantum_instructions: int = 20_000
    #: Enable the exact simulator fast path (:mod:`repro.sim.fastpath`):
    #: the per-core L0 translation memo, dict-backed TLB sets, the
    #: same-line L1 cache memo, and the tightened trace loop. Bit-
    #: identical to the reference path by construction (DESIGN.md §11;
    #: tests/test_fastpath.py verifies every stock config both ways), so
    #: it defaults on. ``False`` — or ``REPRO_FASTPATH=0`` in the
    #: environment — forces the reference implementations; ``sanitize``
    #: and ``trace`` runs fall back to them automatically.
    fastpath: bool = True
    #: Execute attached traces in vectorized chunks (:mod:`repro.sim.batch`):
    #: traces are compiled to flat parallel arrays at attach time and the
    #: steady-state (memo-hit, L1-cache-hit) stream is claimed per chunk —
    #: set-index math, tag compares, and stat folds done with numpy (or a
    #: pure-Python fallback when numpy is absent) — punting to the scalar
    #: fast path at any record it cannot prove is a pure hit. Requires the
    #: fast structures (``fastpath=True`` and no sanitize/trace); bit-
    #: identical to the reference path by the same ``as_dict()`` gate
    #: (DESIGN.md §14; tests/test_batch.py). ``REPRO_BATCH=0`` disables.
    batch: bool = False
    #: Enable the translation-coherence sanitizer: a shadow MMU that
    #: cross-checks every TLB fill/hit/invalidation against an independent
    #: architectural walk of the kernel page tables
    #: (:mod:`repro.analysis.sanitizer`). Debug/CI knob — adds a software
    #: walk per TLB event, so keep it off for performance numbers.
    sanitize: bool = False
    #: Enable event tracing (:mod:`repro.obs`): ``None`` (default) keeps
    #: every hook a no-op ``is not None`` test; ``True`` traces with
    #: default options; a :class:`repro.obs.TraceOptions` (or its field
    #: dict) tunes ring size, event families, and the streaming ``sink``
    #: — a ``.jsonl``/``.jsonl.gz``/``.jsonl.zst`` path the ring drains
    #: to at every wrap (flight-recorder mode: constant memory, no
    #: drop-oldest; published atomically by ``Tracer.finalize()``). The
    #: measured-phase snapshot lands on ``RunResult.obs``.
    trace: object = None
    costs: KernelCosts = dataclasses.field(default_factory=KernelCosts)

    def __post_init__(self):
        if not self.policy:
            derived = "babelfish" if self.babelfish_tlb else "conventional"
            object.__setattr__(self, "policy", derived)
        policy = get_policy(self.policy)  # unknown names raise ValueError
        if policy.uses_ccid != bool(self.babelfish_tlb):
            raise ValueError(
                "inconsistent config: policy %r %s CCID-shared entries but "
                "babelfish_tlb=%r — set both through one builder"
                % (self.policy,
                   "uses" if policy.uses_ccid else "does not use",
                   self.babelfish_tlb))

    @property
    def translation_policy(self):
        """The :class:`repro.core.policy.TranslationPolicy` singleton —
        the one dispatch point; everything below branches on its
        capability queries, never on the raw flags."""
        return get_policy(self.policy)

    @property
    def is_babelfish(self):
        return self.babelfish_tlb or self.babelfish_pt

    @property
    def shared_tlb_entries(self):
        """TLB entries are CCID-tagged and group-shared (Figure 8 lookup
        rules apply). Capability query — true exactly for the BabelFish
        TLB policies, false for conventional/victima/coalesced."""
        return self.translation_policy.uses_ccid

    @property
    def shares_page_tables(self):
        """The kernel runs BabelFish's shared page tables
        (:class:`repro.core.shared_pt.SharedPTManager`). A kernel-policy
        capability, deliberately not part of the TLB-policy registry."""
        return self.babelfish_pt

    @property
    def share_l1_tlb(self):
        """L1 sharing is only possible when the L1 sees group addresses
        (ASLR-SW / inherited layouts); under ASLR-HW the transform sits
        between L1 and L2 (Section IV-D)."""
        return self.shared_tlb_entries and self.aslr_mode.shares_l1


def baseline_config(**overrides):
    """Conventional server: per-process TLB entries and page tables."""
    overrides.setdefault("policy", "conventional")
    return SimConfig(name="Baseline", **overrides)


def babelfish_config(aslr_mode=ASLRMode.HW, **overrides):
    """Full BabelFish; ASLR-HW by default, as in the paper's evaluation."""
    overrides.setdefault("policy", "babelfish")
    return SimConfig(name="BabelFish", babelfish_tlb=True, babelfish_pt=True,
                     aslr_mode=aslr_mode, **overrides)


def babelfish_pt_only_config(**overrides):
    """Ablation: page-table sharing without TLB entry sharing (used to
    attribute Table II's 'fraction from L2 TLB effects')."""
    overrides.setdefault("policy", "babelfish_pt")
    return SimConfig(name="BabelFish-PT", babelfish_pt=True,
                     aslr_mode=ASLRMode.HW, **overrides)


def babelfish_tlb_only_config(**overrides):
    """Ablation: TLB entry sharing with conventional private page tables."""
    overrides.setdefault("policy", "babelfish_tlb")
    return SimConfig(name="BabelFish-TLB", babelfish_tlb=True,
                     aslr_mode=ASLRMode.HW, **overrides)


def bigtlb_config(scale=2.0, **overrides):
    """Section VII-C: spend BabelFish's extra TLB bits on a larger
    conventional L2 TLB instead (the CCID+O-PC bits roughly double the
    array, so the default is a 2x-entries conventional TLB;
    ``repro.hw.cacti.same_area_conventional_scale`` prices the honest
    factor, which the power-of-two set snap rounds back to 2x)."""
    overrides.setdefault("policy", "conventional_2x")
    return SimConfig(name="BigTLB", l2_tlb_scale=scale, **overrides)


def victima_config(**overrides):
    """Policy-zoo arm: Victima-style cache-backed TLB reach — a large L3
    victim TLB level carved from the L2 cache, probed before the walk."""
    overrides.setdefault("policy", "victima")
    return SimConfig(name="Victima", **overrides)


def coalesced_config(**overrides):
    """Policy-zoo arm: CoLT-style coalesced TLB — one L2 entry per
    aligned run of 4 contiguous 4K translations."""
    overrides.setdefault("policy", "coalesced")
    return SimConfig(name="Coalesced", **overrides)


#: Re-exported for layers (serve) that may import ``sim`` but not
#: ``core``: the valid ``policy`` field values.
KNOWN_POLICIES = tuple(known_policies())
