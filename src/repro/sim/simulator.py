"""The top-level trace-driven simulator.

Processes (container workloads) are attached to cores together with their
memory-access traces; the scheduler multiplexes 2-3 of them per core with
the Table I quantum. Every trace record is one memory access plus a gap of
non-memory instructions; the access runs through the per-core MMU (full
translation timing) and then the cache hierarchy.

Trace record format (plain tuples for speed)::

    (kind, segment, page_offset, line, gap, request_id)

where ``kind`` is 0=IFETCH, 1=LOAD, 2=STORE, ``segment`` is a
:class:`repro.kernel.vma.SegmentKind`, ``page_offset`` is the
segment-relative page, ``line`` the cache line within the page (0..63),
``gap`` the non-memory instructions preceding the access, and
``request_id`` an optional request tag for latency accounting.
"""

from repro.analysis.sanitizer import TranslationSanitizer
from repro.hw.cache import CacheHierarchy
from repro.hw.dram import DRAMModel
from repro.hw.types import AccessKind
from repro.kernel.scheduler import Scheduler
from repro.obs.tracer import Tracer, resolve_trace_options
from repro.sim import batch
from repro.sim import fastpath
from repro.sim.mmu import MMU
from repro.sim.stats import MMUStats, RunResult

#: Trace record "kind" codes.
K_IFETCH, K_LOAD, K_STORE = 0, 1, 2

_KIND = {K_IFETCH: AccessKind.IFETCH, K_LOAD: AccessKind.LOAD,
         K_STORE: AccessKind.STORE}


class Simulator:
    def __init__(self, machine, config, kernel):
        if config.l2_tlb_scale != 1.0:
            machine = machine.scale_l2_tlb(config.l2_tlb_scale)
        self.machine = machine
        self.config = config
        self.kernel = kernel
        self.dram = DRAMModel(machine.dram)
        #: Exact fast path (repro.sim.fastpath): tight trace loop +
        #: same-line cache memo; the MMUs make the matching choice from
        #: the same predicate. Off under sanitize/trace (debug modes run
        #: the reference path) or REPRO_FASTPATH=0.
        self._fast = fastpath.structures_active(config)
        #: Batched execution (repro.sim.batch): traces are compiled to
        #: flat arrays at attach time and pure-hit prefixes are claimed
        #: per chunk, punting to the scalar machinery at every
        #: non-steady-state record. Requires the fast structures.
        self._batch = self._fast and batch.batch_active(config)
        #: Per-cause punt attribution for the batch engine; None unless
        #: batching is on and REPRO_BATCH_ATTRIBUTION != 0. Sits outside
        #: MMUStats so it never touches the architectural summary.
        self.batch_stats = (batch.BatchStats()
                            if self._batch and batch.attribution_active()
                            else None)
        #: Optional :class:`repro.obs.live.ProgressMonitor`; the run loop
        #: advances it once per quantum (instructions + punt totals).
        #: Stays None unless a harness attaches one — the hot loop then
        #: pays a single ``is not None`` test per quantum.
        self.progress = None
        self.hierarchy = CacheHierarchy(machine, self.dram,
                                        fastpath=self._fast)
        self.sanitizer = (TranslationSanitizer(kernel, config)
                          if config.sanitize else None)
        trace_options = resolve_trace_options(config.trace)
        self.tracer = Tracer(trace_options) if trace_options else None
        self.mmus = [MMU(core, machine, config, self.hierarchy, kernel)
                     for core in range(machine.cores)]
        for mmu in self.mmus:
            mmu.invalidation_sink = self._broadcast_invalidations
            mmu.sanitizer = self.sanitizer
            mmu.tracer = self.tracer
            mmu.walker.tracer = self.tracer
        # Kernel-initiated shootdowns (process exit, PCID recycling)
        # reach every core the same way fault-time ones do, and teardown
        # reports freed frames into the sanitizer's quarantine.
        kernel.invalidation_sink = self._broadcast_invalidations
        kernel.tracer = self.tracer
        if self.sanitizer is not None:
            kernel.on_frames_freed = self.sanitizer.quarantine_frames
        self.scheduler = Scheduler(machine.cores, config.quantum_instructions)
        self.scheduler.tracer = self.tracer
        self.core_cycles = [0] * machine.cores
        self._traces = {}
        self._request_latency = {}
        self._completion = {}
        self._proc_cycles = {}
        self.base_cpi = machine.core.base_cpi
        self.switch_cost = config.costs.context_switch

    # -- workload attachment -------------------------------------------------

    def attach(self, proc, trace, core_id):
        """Attach a process and its trace iterator to a core's run queue.

        Under batch execution the trace is materialized and compiled to
        flat arrays here (attach time), bound to ``core_id``'s MMU and
        caches.
        """
        if self._batch:
            self._traces[proc.pid] = batch.compile_trace(trace, self, core_id)
        else:
            self._traces[proc.pid] = iter(trace)
        self.scheduler.assign(proc, core_id)

    def detach(self, proc):
        """Yank a process mid-run (random-kill fault injection in the
        churn experiment): its trace and run-queue slot are dropped
        without completing, leaving whatever TLB/cache state it built for
        the exit path to clean up."""
        self._traces.pop(proc.pid, None)
        self.scheduler.remove(proc)

    def _broadcast_invalidations(self, proc, invalidations):
        for inv in invalidations:
            for mmu in self.mmus:
                mmu.apply_invalidation(proc, inv)

    # -- execution -------------------------------------------------------------

    def run(self, max_instructions=None):
        """Run until every attached trace is exhausted (or the optional
        per-run instruction budget is spent). Returns a RunResult."""
        budget = max_instructions
        while self._traces:
            progressed = False
            for core_id in range(self.machine.cores):
                proc = self.scheduler.current(core_id)
                if proc is None:
                    continue
                progressed = True
                consumed = self._run_quantum(core_id, proc)
                if self.progress is not None:
                    bstats = self.batch_stats
                    self.progress.advance(
                        consumed,
                        punts_total=(bstats.punts
                                     if bstats is not None else None))
                if budget is not None:
                    budget -= consumed
                    if budget <= 0:
                        return self._finish()
            if not progressed:
                break
        return self._finish()

    def _run_quantum(self, core_id, proc):
        if self._batch:
            return batch.run_quantum_batch(self, core_id, proc)
        if self._fast:
            return fastpath.run_quantum_fast(self, core_id, proc)
        mmu = self.mmus[core_id]
        stats = mmu.stats
        trace = self._traces.get(proc.pid)
        quantum = self.scheduler.quantum_instructions
        hierarchy_access = self.hierarchy.access
        base_cpi = self.base_cpi
        tracer = self.tracer
        quantum_start = self.core_cycles[core_id]
        cycles = 0
        insts = 0
        finished = False
        if trace is not None:
            while insts < quantum:
                rec = next(trace, None)
                if rec is None:
                    finished = True
                    break
                kind_code, segment, page_off, line, gap, req_id = rec
                kind = _KIND[kind_code]
                if tracer is not None:
                    tracer.tick(core_id, quantum_start + cycles)
                tr = mmu.translate(proc, segment, page_off, kind,
                                   is_write=kind_code == K_STORE)
                paddr = (tr.ppn4k << 12) | (line << 6)
                mem_cycles, _level = hierarchy_access(core_id, paddr, kind)
                record_cycles = int(gap * base_cpi) + tr.cycles + mem_cycles
                cycles += record_cycles
                insts += gap + 1
                stats.translation_cycles += tr.cycles
                stats.memory_cycles += mem_cycles
                if req_id is not None:
                    self._request_latency[req_id] = (
                        self._request_latency.get(req_id, 0) + record_cycles)
        else:
            finished = True
        stats.instructions += insts
        self.core_cycles[core_id] += cycles
        if tracer is not None:
            tracer.quantum(core_id, proc.pid, quantum_start,
                           self.core_cycles[core_id], insts)
        self._proc_cycles[proc.pid] = self._proc_cycles.get(proc.pid, 0) + cycles
        if finished:
            self._completion[proc.pid] = self.core_cycles[core_id]
            self._traces.pop(proc.pid, None)
            self.scheduler.remove(proc)
        nxt = self.scheduler.rotate(core_id)
        if nxt is not None and nxt is not proc:
            self.core_cycles[core_id] += self.switch_cost
        return insts

    def _finish(self):
        result = RunResult(self.config.name)
        result.stats = MMUStats.merged([m.stats for m in self.mmus])
        if self.sanitizer is not None:
            # End-of-run sweep: every surviving TLB entry must still agree
            # with the architectural page tables.
            for mmu in self.mmus:
                self.sanitizer.scan(mmu)
            result.coherence_violations = list(self.sanitizer.violations)
        result.core_cycles = {i: c for i, c in enumerate(self.core_cycles)}
        result.request_latency = dict(self._request_latency)
        result.context_switches = self.scheduler.context_switches
        result.completion_cycles = dict(self._completion)
        result.process_cycles = dict(self._proc_cycles)
        if self.tracer is not None:
            # With a streaming sink, drain the ring so the staging file
            # holds the complete stream after every run() (the harness
            # publishes it with tracer.finalize() when the whole
            # experiment is done).
            self.tracer.flush()
            result.obs = self.tracer.snapshot()
        if self.batch_stats is not None:
            result.batch = self.batch_stats.snapshot()
        return result

    # -- utilities ------------------------------------------------------------------

    def run_single(self, proc, trace, core_id=0):
        """Run one trace to completion on one core, returning the cycles it
        took (used for bring-up and function-execution measurements)."""
        before = self.core_cycles[core_id]
        self.attach(proc, trace, core_id)
        self.run()
        return self.core_cycles[core_id] - before

    def reset_measurement(self):
        """Clear timing counters while keeping all architectural state warm
        (the paper's 'warm up, then measure' methodology)."""
        for mmu in self.mmus:
            mmu.stats = MMUStats()
        self.core_cycles = [0] * self.machine.cores
        self._request_latency = {}
        self._completion = {}
        self._proc_cycles = {}
        self.scheduler.context_switches = 0
        if self.batch_stats is not None:
            # Warm-up claims/punts are not part of the measured run.
            self.batch_stats = batch.BatchStats()
        if self.tracer is not None:
            # Warm-up events must not leak into the measured snapshot.
            self.tracer.reset()
