"""Per-core MMU: L1 TLBs, unified L2 TLB, PWC, walker, fault retry loop.

The translation path (Section VI's timing rules):

1. L1 TLB (1 cycle). Entries are per-process (PCID) except under
   BabelFish + ASLR-SW, where the whole group shares them.
2. On an L1 miss with BabelFish + ASLR-HW, the address transformation
   module adds 2 cycles and converts the process-space VA to the group's
   shared VA (Section IV-D).
3. L2 TLB (10 cycles; 12 when the PC bitmask must be consulted —
   Figure 5b / Table I).
4. Page walk through the PWC and cache hierarchy; faults invoke the
   kernel and retry.
"""

from repro.hw.pwc import PageWalkCache
from repro.hw.tlb import FastMultiSizeTLB, MultiSizeTLB, TLBEntry
from repro.hw.types import AccessKind, PageSize
from repro.core.babelfish_tlb import (
    BabelFishLookup,
    babelfish_lookup_fast,
    conventional_lookup,
    conventional_lookup_fast,
    hit_provenance,
)
from repro.core.mask_page import region_of
from repro.kernel.fault import FaultType, InvalidationScope, trace_outcome
from repro.sim.fastpath import TranslationMemo, structures_active
from repro.sim.stats import MMUStats
from repro.sim.walker import PageWalker

_MAX_FAULT_RETRIES = 6


class TranslationResult:
    """One translated access (allocated per access on the reference path,
    reused per core by the fast trace loop — hence a mutable slotted
    class rather than a dataclass)."""

    __slots__ = ("cycles", "ppn4k", "page_size")

    def __init__(self, cycles=0, ppn4k=0, page_size=PageSize.SIZE_4K):
        self.cycles = cycles
        self.ppn4k = ppn4k
        self.page_size = page_size

    def __repr__(self):
        return ("TranslationResult(cycles=%r, ppn4k=%r, page_size=%r)"
                % (self.cycles, self.ppn4k, self.page_size))


class MMU:
    def __init__(self, core_id, machine, config, hierarchy, kernel):
        self.core_id = core_id
        self.config = config
        self.kernel = kernel
        mmu = machine.mmu
        #: The translation policy (repro.core.policy): structure
        #: geometry, fill rule, and capability flags all come from here.
        self.policy = policy = config.translation_policy
        #: Fast structures + L0 memo, unless the config/env/debug modes
        #: force the reference implementations (repro.sim.fastpath).
        self.fast = structures_active(config)
        multi = FastMultiSizeTLB if self.fast else MultiSizeTLB
        self.l1d = multi([mmu.l1d_4k, mmu.l1d_2m, mmu.l1d_1g])
        self.l1i = multi([mmu.l1i_4k])
        self.l2 = multi(list(policy.l2_tlb_params(mmu)))
        victim = policy.victim_tlb_params(machine)
        #: Optional L3 victim TLB level (Victima-style policies): probed
        #: between an L2 TLB miss and the page walk.
        self.l3 = multi(list(victim[0])) if victim is not None else None
        self.l3_cycles = victim[1] if victim is not None else 0
        self.pwc = PageWalkCache(mmu.pwc)
        self.walker = PageWalker(core_id, hierarchy, self.pwc)
        self.l2_short_cycles = mmu.l2_4k.access_cycles
        self.l2_long_cycles = mmu.l2_4k.long_access_cycles or mmu.l2_4k.access_cycles
        self.l1_cycles = mmu.l1d_4k.access_cycles
        self.aslr_cycles = mmu.aslr_transform_cycles
        self.stats = MMUStats()
        domain_fn = getattr(kernel.policy, "entry_mask_domain", None)
        self._bf_l1d = BabelFishLookup(self.l1d, domain_fn)
        self._bf_l1i = BabelFishLookup(self.l1i, domain_fn)
        self._bf_l2 = BabelFishLookup(self.l2, domain_fn)
        #: Callback set by the simulator: applies kernel-requested TLB
        #: invalidations to every core.
        self.invalidation_sink = self._local_invalidation_sink
        #: L0 translation memo (repro.sim.fastpath). ``_memo_store`` is
        #: the instance (or None without fast structures); ``_memo`` is
        #: what translate() consults and goes None whenever a sanitizer
        #: or tracer is wired (their per-event hooks must see every
        #: lookup). The sanitizer/tracer properties below keep the two
        #: in sync for any wiring order.
        self._memo_store = (
            TranslationMemo(config.share_l1_tlb, self._bf_l1d.domain_fn)
            if self.fast else None)
        self._memo = self._memo_store
        #: Reused result for the fast trace loop (one per core; the
        #: public translate() still allocates unless ``into`` is passed).
        self._tr_scratch = TranslationResult()
        # Per-config constants prebound for the fast translate path
        # (none of these can change over a run). All policy capability
        # queries, never raw config flags (lint rule BF701).
        self._share_l1 = config.share_l1_tlb
        self._bf_tlb = policy.uses_ccid
        self._aslr_transform = (policy.uses_ccid
                                and not config.aslr_mode.shares_l1)
        self._orpc = config.orpc_enabled
        self._tlb_levels = tuple(
            pair for pair in (("L1D", self.l1d), ("L1I", self.l1i),
                              ("L2", self.l2), ("L3", self.l3))
            if pair[1] is not None)
        self._domain_fn = self._bf_l1d.domain_fn
        self._sanitizer = None
        self._tracer = None
        #: Monotonic count of kernel-requested invalidations applied to
        #: this core's TLBs. Diagnostics only (the batch engine's punt
        #: attribution tells remote-shootdown epoch movement apart from
        #: local churn by watching it); never part of MMUStats.
        self.invals_applied = 0

    #: Optional translation-coherence sanitizer (shadow MMU); set by
    #: the simulator when ``config.sanitize`` is enabled.
    @property
    def sanitizer(self):
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, value):
        self._sanitizer = value
        self._sync_memo()

    #: Optional event tracer (:mod:`repro.obs`); set by the simulator
    #: when ``config.trace`` is enabled. None keeps every hook to a
    #: single ``is not None`` test.
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value):
        self._tracer = value
        self._sync_memo()

    def _sync_memo(self):
        self._memo = (self._memo_store
                      if self._sanitizer is None and self._tracer is None
                      else None)

    def tlb_levels(self):
        """``(name, structure)`` pairs, L1s first, including the victim
        level when the policy declares one. The invalidation sweep and
        the sanitizer iterate this, so a policy adding a level is
        covered automatically."""
        return self._tlb_levels

    def memo_peek(self, proc, segment, page_off, instr, is_write):
        """Side-effect-free memo guard evaluation for the batch engine
        (:mod:`repro.sim.batch`): returns the validated memo record when
        a :meth:`TranslationMemo.probe` of the same access would hit,
        else None. None whenever the memo itself is unwired (sanitizer/
        tracer modes), in which case the batch path claims nothing and
        every record takes :meth:`translate`."""
        memo = self._memo
        if memo is None:
            return None
        return memo.peek(proc, segment, page_off, instr, is_write)

    # -- main entry point --------------------------------------------------------

    def translate(self, proc, segment, page_off, kind, is_write=False,
                  into=None):
        """Translate one access; returns a :class:`TranslationResult`
        (``into``, updated in place, when the caller passes one)."""
        stats = self.stats
        instr = kind is AccessKind.IFETCH
        is_write = is_write or kind is AccessKind.STORE
        memo = self._memo
        if memo is not None:
            hit = memo.probe(proc, segment, page_off, instr, is_write,
                             stats)
            if hit is not None:
                if into is None:
                    return TranslationResult(self.l1_cycles, hit[0], hit[1])
                into.cycles = self.l1_cycles
                into.ppn4k = hit[0]
                into.page_size = hit[1]
                return into
            try_translate = self._try_translate_fast
        else:
            try_translate = self._try_translate
        if instr:
            stats.accesses_i += 1
        else:
            stats.accesses_d += 1
        vpn_proc = proc.vpn_proc(segment, page_off)
        vpn_group = proc.vpn_group(segment, page_off)
        cycles = 0
        for _ in range(_MAX_FAULT_RETRIES):
            result = try_translate(proc, segment, page_off, vpn_proc,
                                   vpn_group, instr, is_write)
            cycles += result[0]
            if result[1] is not None:
                if into is None:
                    return TranslationResult(cycles, result[1], result[2])
                into.cycles = cycles
                into.ppn4k = result[1]
                into.page_size = result[2]
                return into
            # A CoW fault (from a TLB hit or walk) was serviced; retry.
        raise RuntimeError("translation did not converge for vpn %#x" % vpn_group)

    def _try_translate(self, proc, segment, page_off, vpn_proc, vpn_group,
                       instr, is_write):
        """One pass through L1 -> L2 -> walk. Returns (cycles, ppn4k|None,
        page_size|None); ppn4k None means a fault was serviced and the
        access must retry."""
        stats = self.stats
        config = self.config
        tracer = self.tracer
        cycles = self.l1_cycles
        l1_multi = self.l1i if instr else self.l1d

        if config.share_l1_tlb:
            bf = self._bf_l1i if instr else self._bf_l1d
            l1_res = bf.lookup(vpn_group, proc, is_write)
        else:
            l1_res = conventional_lookup(l1_multi, vpn_proc, proc, is_write)
        if l1_res.cow_fault:
            cycles += self._service_fault(proc, vpn_group, is_write)
            return cycles, None, None
        if l1_res.hit:
            if instr:
                stats.l1_hits_i += 1
            else:
                stats.l1_hits_d += 1
            entry = l1_res.entry
            if self.sanitizer is not None:
                self.sanitizer.check_hit("L1I" if instr else "L1D",
                                         proc, entry, vpn_group)
            if tracer is not None:
                tracer.tlb_hit(self.core_id, proc.pid,
                               "L1I" if instr else "L1D", vpn_group,
                               hit_provenance(entry, proc))
            lookup_vpn = vpn_group if config.share_l1_tlb else vpn_proc
            ppn4k = entry.ppn + (lookup_vpn & (entry.page_size.base_pages - 1))
            memo = self._memo
            if memo is not None:
                memo.seed(proc, segment, page_off, instr, is_write,
                          lookup_vpn, entry, l1_multi, ppn4k)
            return cycles, ppn4k, entry.page_size
        if instr:
            stats.l1_misses_i += 1
        else:
            stats.l1_misses_d += 1
        if tracer is not None:
            tracer.tlb_miss(self.core_id, proc.pid,
                            "L1I" if instr else "L1D", vpn_group, instr)

        if self._aslr_transform:
            # ASLR-HW transformation between L1 and L2 (Section IV-D).
            cycles += self.aslr_cycles
            stats.aslr_transforms += 1

        if self._bf_tlb:
            l2_res = self._bf_l2.lookup(vpn_group, proc, is_write)
            long_access = l2_res.consulted_bitmask
            if not config.orpc_enabled and l2_res.entry is not None \
                    and not l2_res.entry.o_bit:
                # Without the ORPC filter every shared-entry access must
                # read the PC bitmask (Figure 5b's saving, ablated).
                long_access = True
            if long_access:
                cycles += self.l2_long_cycles
                stats.l2_long_accesses += 1
            else:
                cycles += self.l2_short_cycles
        else:
            l2_res = conventional_lookup(self.l2, vpn_group, proc, is_write)
            cycles += self.l2_short_cycles
        if l2_res.cow_fault:
            cycles += self._service_fault(proc, vpn_group, is_write)
            return cycles, None, None
        if l2_res.hit:
            entry = l2_res.entry
            if self.sanitizer is not None:
                self.sanitizer.check_hit("L2", proc, entry, vpn_group)
            if tracer is not None:
                tracer.tlb_hit(self.core_id, proc.pid, "L2", vpn_group,
                               hit_provenance(entry, proc))
            if instr:
                stats.l2_hits_i += 1
                if entry.inserted_by != proc.pid:
                    stats.l2_shared_hits_i += 1
            else:
                stats.l2_hits_d += 1
                if entry.inserted_by != proc.pid:
                    stats.l2_shared_hits_d += 1
            self._fill_l1(proc, vpn_proc, vpn_group, entry, instr)
            # Model accessed-bit harvesting: L2-TLB-level activity drives
            # the kernel's page LRU (Figure 9's active list).
            self.kernel.lru.touch(entry.ppn)
            ppn4k = entry.ppn + (vpn_group & (entry.page_size.base_pages - 1))
            return cycles, ppn4k, entry.page_size
        if instr:
            stats.l2_misses_i += 1
        else:
            stats.l2_misses_d += 1
        if tracer is not None:
            tracer.tlb_miss(self.core_id, proc.pid, "L2", vpn_group, instr)

        if self.l3 is not None:
            cycles += self.l3_cycles
            l3_res = conventional_lookup(self.l3, vpn_group, proc, is_write)
            if l3_res.cow_fault:
                cycles += self._service_fault(proc, vpn_group, is_write)
                return cycles, None, None
            if l3_res.hit:
                entry = l3_res.entry
                if instr:
                    stats.l3_hits_i += 1
                else:
                    stats.l3_hits_d += 1
                if self.sanitizer is not None:
                    self.sanitizer.check_hit("L3", proc, entry, vpn_group)
                if tracer is not None:
                    tracer.tlb_hit(self.core_id, proc.pid, "L3", vpn_group,
                                   hit_provenance(entry, proc))
                l2_entry = self._refill_from_l3(proc, entry, vpn_group)
                self._fill_l1(proc, vpn_proc, vpn_group, l2_entry, instr)
                self.kernel.lru.touch(entry.ppn)
                ppn4k = entry.ppn + (vpn_group
                                     & (entry.page_size.base_pages - 1))
                return cycles, ppn4k, entry.page_size
            if instr:
                stats.l3_misses_i += 1
            else:
                stats.l3_misses_d += 1
            if tracer is not None:
                tracer.tlb_miss(self.core_id, proc.pid, "L3", vpn_group,
                                instr)

        walk = self.walker.walk(proc, vpn_group)
        stats.walks += 1
        stats.walk_cycles += walk.cycles
        cycles += walk.cycles
        pte = walk.pte
        if walk.fault or (is_write and (pte.cow or not pte.writable)):
            cycles += self._service_fault(proc, vpn_group, is_write)
            return cycles, None, None

        entry = self._fill_l2(proc, vpn_group, pte, walk.leaf_table)
        self._fill_l1(proc, vpn_proc, vpn_group, entry, instr)
        self.kernel.lru.touch(pte.ppn)
        ppn4k = pte.ppn + (vpn_group & (pte.page_size.base_pages - 1))
        return cycles, ppn4k, pte.page_size

    def _try_translate_fast(self, proc, segment, page_off, vpn_proc,
                            vpn_group, instr, is_write):
        """:meth:`_try_translate` specialized for the fast path: inlined
        allocation-free TLB probes (:func:`babelfish_lookup_fast` /
        :func:`conventional_lookup_fast`) over the Fast* structures and
        prebound config flags, with every counter, cycle, LRU, fill, and
        fault effect identical to the reference pass. Only dispatched
        when the L0 memo is live, i.e. fast structures are in use and no
        sanitizer/tracer hooks are wired (their hook sites are omitted
        here). tests/test_fastpath.py holds the two passes bit-equal."""
        stats = self.stats
        cycles = self.l1_cycles
        l1_multi = self.l1i if instr else self.l1d

        if self._share_l1:
            lookup_vpn = vpn_group
            entry, _size, _consulted, cow_fault = babelfish_lookup_fast(
                l1_multi, vpn_group, proc, is_write, self._domain_fn)
        else:
            lookup_vpn = vpn_proc
            entry, _size, cow_fault = conventional_lookup_fast(
                l1_multi, vpn_proc, proc.pcid, is_write)
        if cow_fault:
            cycles += self._service_fault(proc, vpn_group, is_write)
            return cycles, None, None
        if entry is not None:
            if instr:
                stats.l1_hits_i += 1
            else:
                stats.l1_hits_d += 1
            ppn4k = entry.ppn + (lookup_vpn & entry.page_size.base_mask)
            memo = self._memo
            if memo is not None:
                memo.seed(proc, segment, page_off, instr, is_write,
                          lookup_vpn, entry, l1_multi, ppn4k)
            return cycles, ppn4k, entry.page_size
        if instr:
            stats.l1_misses_i += 1
        else:
            stats.l1_misses_d += 1

        if self._aslr_transform:
            # ASLR-HW transformation between L1 and L2 (Section IV-D).
            cycles += self.aslr_cycles
            stats.aslr_transforms += 1

        if self._bf_tlb:
            entry, _size, consulted, cow_fault = babelfish_lookup_fast(
                self.l2, vpn_group, proc, is_write, self._domain_fn)
            long_access = consulted
            if not self._orpc and entry is not None and not entry.o_bit:
                # Without the ORPC filter every shared-entry access must
                # read the PC bitmask (Figure 5b's saving, ablated).
                long_access = True
            if long_access:
                cycles += self.l2_long_cycles
                stats.l2_long_accesses += 1
            else:
                cycles += self.l2_short_cycles
        else:
            entry, _size, cow_fault = conventional_lookup_fast(
                self.l2, vpn_group, proc.pcid, is_write)
            cycles += self.l2_short_cycles
        if cow_fault:
            cycles += self._service_fault(proc, vpn_group, is_write)
            return cycles, None, None
        if entry is not None:
            if instr:
                stats.l2_hits_i += 1
                if entry.inserted_by != proc.pid:
                    stats.l2_shared_hits_i += 1
            else:
                stats.l2_hits_d += 1
                if entry.inserted_by != proc.pid:
                    stats.l2_shared_hits_d += 1
            self._fill_l1(proc, vpn_proc, vpn_group, entry, instr)
            # Accessed-bit harvesting, as in the reference pass.
            self.kernel.lru.touch(entry.ppn)
            ppn4k = entry.ppn + (vpn_group & entry.page_size.base_mask)
            return cycles, ppn4k, entry.page_size
        if instr:
            stats.l2_misses_i += 1
        else:
            stats.l2_misses_d += 1

        if self.l3 is not None:
            cycles += self.l3_cycles
            entry, _size, cow_fault = conventional_lookup_fast(
                self.l3, vpn_group, proc.pcid, is_write)
            if cow_fault:
                cycles += self._service_fault(proc, vpn_group, is_write)
                return cycles, None, None
            if entry is not None:
                if instr:
                    stats.l3_hits_i += 1
                else:
                    stats.l3_hits_d += 1
                l2_entry = self._refill_from_l3(proc, entry, vpn_group)
                self._fill_l1(proc, vpn_proc, vpn_group, l2_entry, instr)
                self.kernel.lru.touch(entry.ppn)
                ppn4k = entry.ppn + (vpn_group & entry.page_size.base_mask)
                return cycles, ppn4k, entry.page_size
            if instr:
                stats.l3_misses_i += 1
            else:
                stats.l3_misses_d += 1

        walk = self.walker.walk(proc, vpn_group)
        stats.walks += 1
        stats.walk_cycles += walk.cycles
        cycles += walk.cycles
        pte = walk.pte
        if walk.fault or (is_write and (pte.cow or not pte.writable)):
            cycles += self._service_fault(proc, vpn_group, is_write)
            return cycles, None, None

        entry = self._fill_l2(proc, vpn_group, pte, walk.leaf_table)
        self._fill_l1(proc, vpn_proc, vpn_group, entry, instr)
        self.kernel.lru.touch(pte.ppn)
        ppn4k = pte.ppn + (vpn_group & pte.page_size.base_mask)
        return cycles, ppn4k, pte.page_size

    # -- fills -----------------------------------------------------------------------

    def _fill_l2(self, proc, vpn_group, pte, leaf_table):
        entry, replace = self.policy.fill_l2(self.kernel, proc, vpn_group,
                                             pte, leaf_table)
        self.l2.insert(entry, replace=replace)
        if self.sanitizer is not None:
            self.sanitizer.check_fill("L2", proc, entry, vpn_group)
        if self.l3 is not None and entry.page_size in self.l3.tlbs:
            # Inclusive victim fill. Always a clone: the reference and
            # fast structures track validity/occupancy differently, so
            # one entry object must never live in two structures.
            clone = self._clone_entry(entry)
            self.l3.insert(clone, replace=lambda old: old.pcid == clone.pcid)
            if self.sanitizer is not None:
                self.sanitizer.check_fill("L3", proc, clone, vpn_group)
        return entry

    def _refill_from_l3(self, proc, l3_entry, vpn_group):
        """An L3 victim hit refills the L2 TLB (and the caller refills
        the L1) with a clone of the victim entry."""
        entry = self._clone_entry(l3_entry)
        self.l2.insert(entry, replace=lambda old: old.pcid == entry.pcid)
        if self.sanitizer is not None:
            self.sanitizer.check_fill("L2", proc, entry, vpn_group)
        return entry

    @staticmethod
    def _clone_entry(entry):
        clone = TLBEntry(entry.vpn, entry.ppn, entry.page_size,
                         pcid=entry.pcid, ccid=entry.ccid,
                         writable=entry.writable, user=entry.user,
                         cow=entry.cow, o_bit=entry.o_bit, orpc=entry.orpc,
                         pc_mask=entry.pc_mask,
                         inserted_by=entry.inserted_by)
        return clone

    def _fill_l1(self, proc, vpn_proc, vpn_group, l2_entry, instr):
        size = l2_entry.page_size
        ppn = l2_entry.ppn
        if size.coalesced:
            # The L1s hold only architectural sizes: project the covered
            # 4K slice out of the span (frames are contiguous from the
            # span base, so the slice's frame is ppn + offset).
            ppn += vpn_group & size.base_mask
            size = PageSize.SIZE_4K
        if self._share_l1:
            vpn = vpn_group >> (size.shift - PageSize.SIZE_4K.shift)
            entry = TLBEntry(vpn, ppn, size, pcid=proc.pcid,
                             ccid=proc.ccid, writable=l2_entry.writable,
                             cow=l2_entry.cow, o_bit=l2_entry.o_bit,
                             orpc=l2_entry.orpc, pc_mask=l2_entry.pc_mask,
                             inserted_by=proc.pid)
            replace = (lambda old: old.ccid == entry.ccid
                       and old.o_bit == entry.o_bit
                       and (not entry.o_bit or old.pcid == entry.pcid))
        else:
            vpn = vpn_proc >> (size.shift - PageSize.SIZE_4K.shift)
            entry = TLBEntry(vpn, ppn, size, pcid=proc.pcid,
                             ccid=proc.ccid, writable=l2_entry.writable,
                             cow=l2_entry.cow, o_bit=True,
                             inserted_by=proc.pid)
            replace = lambda old: old.pcid == entry.pcid
        multi = self.l1i if instr else self.l1d
        if size in multi.tlbs:
            multi.insert(entry, replace=replace)
            if self.sanitizer is not None:
                self.sanitizer.check_fill("L1I" if instr else "L1D",
                                          proc, entry, vpn_group)

    # -- faults and invalidations --------------------------------------------------------

    def _service_fault(self, proc, vpn_group, is_write):
        outcome = self.kernel.handle_fault(proc, vpn_group, is_write)
        stats = self.stats
        stats.fault_cycles += outcome.cycles
        if self.tracer is not None:
            trace_outcome(self.tracer, self.core_id, proc.pid, vpn_group,
                          outcome)
        if outcome.fault_type is FaultType.MINOR:
            stats.minor_faults += 1
        elif outcome.fault_type is FaultType.MAJOR:
            stats.major_faults += 1
        elif outcome.fault_type is FaultType.COW:
            stats.cow_faults += 1
        else:
            stats.spurious_faults += 1
        if outcome.invalidations:
            self.invalidation_sink(proc, outcome.invalidations)
        return outcome.cycles

    def _local_invalidation_sink(self, proc, invalidations):
        for inv in invalidations:
            self.apply_invalidation(proc, inv)

    def apply_invalidation(self, proc, inv):
        """Apply one kernel-requested invalidation to this core's TLBs."""
        self.invals_applied += 1
        if self.tracer is not None:
            self.tracer.invalidation(self.core_id, proc.pid, inv.vpn,
                                     inv.scope.value)
        if inv.scope is InvalidationScope.PROCESS:
            pred = lambda e: e.pcid == inv.pcid
            vpns = {inv.vpn}
            vpn_proc = self._to_proc_space(proc, inv.vpn)
            if vpn_proc is not None:
                vpns.add(vpn_proc)
            for _name, tlb in self._tlb_levels:
                for vpn in vpns:
                    tlb.invalidate(vpn, pred)
        elif inv.scope is InvalidationScope.SHARED_ENTRY:
            pred = lambda e: (not e.o_bit) and e.ccid == inv.ccid
            for _name, tlb in self._tlb_levels:
                tlb.invalidate(inv.vpn, pred)
        elif inv.scope is InvalidationScope.REGION_SHARED:
            region = region_of(inv.vpn)

            def pred(entry):
                if entry.o_bit or entry.ccid != inv.ccid:
                    return False
                vpn4k = entry.vpn << (entry.page_size.shift
                                      - PageSize.SIZE_4K.shift)
                return region_of(vpn4k) == region

            for _name, tlb in self._tlb_levels:
                tlb.flush(pred)
        elif inv.scope is InvalidationScope.PCID_FLUSH:
            # Process exit / PCID recycle: every entry tagged with the
            # PCID goes, whatever its VPN (inv.vpn is 0 and ignored).
            pred = lambda e: e.pcid == inv.pcid
            for _name, tlb in self._tlb_levels:
                tlb.flush(pred)
        elif inv.scope is InvalidationScope.CCID_SHARED:
            # Teardown freed shared tables: every group-shared (O=0)
            # entry of the CCID goes (no PCID flush covers them).
            pred = lambda e: (not e.o_bit) and e.ccid == inv.ccid
            for _name, tlb in self._tlb_levels:
                tlb.flush(pred)
        if self.sanitizer is not None:
            self.sanitizer.check_invalidation(self, proc, inv)

    @staticmethod
    def _to_proc_space(proc, vpn_group):
        """Translate a group-space VPN to the process's own layout (for
        invalidating per-process L1 entries under ASLR-HW)."""
        if proc.layout_proc is proc.layout_group:
            return vpn_group
        segment = proc.layout_group.segment_of(vpn_group)
        if segment is None:
            return None
        offset = vpn_group - proc.layout_group.base(segment)
        return proc.layout_proc.base(segment) + offset

    def flush_all(self):
        for _name, tlb in self._tlb_levels:
            tlb.flush()
        self.pwc.flush()
