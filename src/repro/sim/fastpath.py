"""The simulator's exact fast path: L0 translation memo + tight trace loop.

Every experiment funnels millions of trace records through
``Simulator._run_quantum`` -> ``MMU.translate`` -> TLB lookups ->
``CacheHierarchy.access``; per-access interpreter overhead dominates
end-to-end latency. Mirroring the fast/slow split of Utopia (PAPERS.md)
— and exploiting the same page-level locality BabelFish itself banks on
— this module short-circuits the *repeat* case while provably preserving
every architectural observable:

- :func:`fastpath_active` / :func:`structures_active` gate everything on
  ``SimConfig.fastpath`` (default on) and the ``REPRO_FASTPATH=0``
  environment escape hatch; sanitize/trace runs always take the
  reference path.
- :class:`TranslationMemo` caches, per (pid, segment, page) and per
  access space (ifetch/data), the L1 TLB entry that hit last time plus
  everything needed to *replay* the reference hit: the precomputed
  ppn4k, the entry's set and set-epoch in its (fast) TLB structure, the
  set-epochs of any structures probed before it, and the ORPC bitmask
  scope for re-checking ``proc.pc_bits`` live. A probe serves the access
  only when it can prove the reference lookup would return the same
  entry with the same side effects (see DESIGN.md §11 for the exactness
  argument); otherwise it falls through to the reference path, which
  reseeds.
- :func:`run_quantum_fast` is ``Simulator._run_quantum`` with prebound
  locals, a tuple-indexed kind table, and a per-core reused
  :class:`~repro.sim.mmu.TranslationResult` instead of a fresh
  allocation per record. It is only dispatched when no tracer/sanitizer
  is wired, so the (then no-op) tracer hooks are omitted.

Nothing here is ever exported into a :class:`~repro.sim.stats.RunResult`
— epochs and memo state are internal, so ``RunResult.as_dict()`` of a
fast run is bit-identical to the reference run (tests/test_fastpath.py
asserts this for every stock config).
"""

import os

from repro.hw.types import AccessKind

#: Environment escape hatch: ``REPRO_FASTPATH=0`` forces the reference
#: path regardless of ``SimConfig.fastpath``.
FASTPATH_ENV = "REPRO_FASTPATH"

#: Trace-record kind codes index this directly (0=IFETCH 1=LOAD 2=STORE).
_KINDS = (AccessKind.IFETCH, AccessKind.LOAD, AccessKind.STORE)


def fastpath_active(config):
    """True when ``config`` and the environment both allow the fast path."""
    if not getattr(config, "fastpath", True):
        return False
    return os.environ.get(FASTPATH_ENV, "1") != "0"


def structures_active(config):
    """True when the fast structures (FastSetAssocTLB, memo, tight loop)
    should back this config. Sanitize/trace runs use the reference path:
    they are debug modes whose per-event hooks the memo would bypass."""
    return (fastpath_active(config) and not config.sanitize
            and not config.trace)


class TranslationMemo:
    """Per-core L0 memo over the L1 TLB hit path.

    Record layout (one tuple per (pid, segment, page_off) key, separate
    tables for ifetch and data)::

        (entry, tlb, set_idx, set_epoch, ppn4k, page_size,
         write_ok, write_seeded, mask_domain, pc_mask, pre,
         hit_snap, pre_deep)

    where ``tlb`` is the :class:`~repro.hw.tlb.FastSetAssocTLB` holding
    ``entry``, ``pre`` lists ``(tlb, set_idx, set_epoch)`` for every
    structure the multi-size lookup probed (and missed) before the hit,
    ``write_ok`` is ``entry.writable and not entry.cow``, and
    ``mask_domain`` is the ORPC bitmask scope to re-check against
    ``proc.pc_bits`` (None when the reference match does no mask check).

    ``hit_snap`` and ``pre_deep`` back :meth:`peek`'s deep
    revalidation: set epochs count *any* content change in a set, but
    the probed outcome only depends on the one VPN bucket each probe
    scans. ``hit_snap`` is the seed-time identity snapshot
    (``tuple(bucket)``) of the hit entry's bucket, and ``pre_deep``
    holds ``(probe_vpn, snapshot)`` per pre-probed structure. A guard
    epoch that moved while the snapshot still matches proves the
    probe's bucket scan is unchanged (entries compare by identity and
    every membership or order change rebuilds the list), so the record
    can be revalidated instead of discarded. :meth:`probe` — and its
    inlined copy in :func:`run_quantum_fast` — ignore both fields: the
    fast path reseeds through its reference hit anyway, and keeping
    its guard sequence unchanged keeps its per-record cost unchanged.

    A probe hit replays the reference side effects exactly: the access
    and L1-hit counters, one miss per pre-probed structure, the hit
    structure's hit counter, and the entry's move-to-end LRU touch.
    """

    __slots__ = ("i", "d", "share_l1", "domain_fn", "limit", "peek_reason")

    def __init__(self, share_l1, domain_fn, limit=8192):
        self.i = {}
        self.d = {}
        self.share_l1 = share_l1
        self.domain_fn = domain_fn
        self.limit = limit
        #: Why the most recent :meth:`peek` returned None — "memo_miss",
        #: "epoch", "write_verdict", or "mask_bit". Pure diagnostics for
        #: the batch engine's punt attribution; never read by any
        #: architectural path.
        self.peek_reason = None

    def probe(self, proc, segment, page_off, instr, is_write, stats):
        """Serve a repeat access, or return None to take the reference
        path (which reseeds on its own L1 hit)."""
        table = self.i if instr else self.d
        key = (proc.pid, segment, page_off)
        rec = table.get(key)
        if rec is None:
            return None
        (entry, tlb, set_idx, set_epoch, ppn4k, page_size,
         write_ok, write_seeded, mask_domain, pc_mask, pre,
         _hit_snap, _pre_deep) = rec
        if tlb._set_epochs[set_idx] != set_epoch:
            # The entry's set changed (fill/invalidate/flush): the
            # recorded outcome can no longer be trusted.
            del table[key]
            return None
        if is_write:
            if not write_ok:
                # Permission miss or CoW write fault — both leave the
                # L1-hit fast case; the reference path handles them.
                return None
        elif write_seeded:
            # A write-seeded record proves nothing about reads: an
            # earlier same-bucket entry rejected only by the write-
            # permission clause would match a read first.
            return None
        if mask_domain is not None:
            # Live ORPC re-check: the process may have privatized a page
            # in this scope since the seed (pc_bits only ever gains
            # bits, so match can only flip hit -> miss).
            bit = proc.pc_bits.get(mask_domain)
            if bit is not None and (pc_mask >> bit) & 1:
                return None
        for pre_tlb, pre_idx, pre_epoch in pre:
            if pre_tlb._set_epochs[pre_idx] != pre_epoch:
                # A structure probed before the hit changed; a new entry
                # there could now shadow the memoized one.
                return None
        # -- exact replay of the reference L1-hit side effects ----------
        if instr:
            stats.accesses_i += 1
            stats.l1_hits_i += 1
        else:
            stats.accesses_d += 1
            stats.l1_hits_d += 1
        for pre_tlb, _idx, _epoch in pre:
            pre_tlb.misses += 1
        tlb.hits += 1
        lru = tlb._lru[set_idx]
        del lru[entry]
        lru[entry] = None
        return ppn4k, page_size

    def peek(self, proc, segment, page_off, instr, is_write):
        """Evaluate the probe guards without replaying any side effect.

        The batch engine (:mod:`repro.sim.batch`) uses this to *verify*
        that a record would be served by :meth:`probe` before claiming a
        whole chunk of them at once; the replay effects are then folded
        in bulk. Returns the validated memo record tuple, or None where
        the record cannot be trusted. The only state changes are the
        same stale-record eviction :meth:`probe` performs and the
        guard-epoch refresh below — both invisible to every
        architectural observable.

        Where :meth:`probe` discards on any guard-epoch movement, peek
        *deep-revalidates*: each probe's outcome depends only on the
        one VPN bucket it scans, so if that bucket is identity-equal to
        its seed-time snapshot (and the hit entry's permission and mask
        state recompute to the recorded values), the record is provably
        what a reseed would rebuild — its guard epochs are refreshed in
        place and the record survives. Every removal, insertion,
        replacement, or reordering a set can undergo rewrites the
        bucket list, entries compare by identity, and in-place
        permission flips (CoW upgrades) reinstall through
        :meth:`~repro.hw.tlb.FastSetAssocTLB.insert`, so a matching
        snapshot proves an unchanged first-match scan. Anything less
        than an exact match falls back to the reference path."""
        table = self.i if instr else self.d
        key = (proc.pid, segment, page_off)
        rec = table.get(key)
        if rec is None:
            self.peek_reason = "memo_miss"
            return None
        (entry, tlb, set_idx, set_epoch, ppn4k, page_size,
         write_ok, write_seeded, mask_domain, pc_mask, pre,
         hit_snap, pre_deep) = rec
        stale = False
        if tlb._set_epochs[set_idx] != set_epoch:
            bucket = tlb._buckets[set_idx].get(entry.vpn)
            if (tuple(bucket) if bucket else ()) != hit_snap:
                del table[key]
                self.peek_reason = "epoch"
                return None
            if (entry.writable and not entry.cow) != write_ok:
                del table[key]
                self.peek_reason = "epoch"
                return None
            if self.share_l1 and not entry.o_bit and entry.orpc:
                if (mask_domain != self.domain_fn(entry)
                        or pc_mask != entry.pc_mask):
                    del table[key]
                    self.peek_reason = "epoch"
                    return None
            elif mask_domain is not None:
                del table[key]
                self.peek_reason = "epoch"
                return None
            stale = True
        if is_write:
            if not write_ok:
                self.peek_reason = "write_verdict"
                return None
        elif write_seeded:
            self.peek_reason = "write_verdict"
            return None
        if mask_domain is not None:
            bit = proc.pc_bits.get(mask_domain)
            if bit is not None and (pc_mask >> bit) & 1:
                self.peek_reason = "mask_bit"
                return None
        for k, (pre_tlb, pre_idx, pre_epoch) in enumerate(pre):
            if pre_tlb._set_epochs[pre_idx] != pre_epoch:
                pre_vpn, pre_snap = pre_deep[k]
                bucket = pre_tlb._buckets[pre_idx].get(pre_vpn)
                if (tuple(bucket) if bucket else ()) != pre_snap:
                    del table[key]
                    self.peek_reason = "epoch"
                    return None
                stale = True
        if stale:
            rec = (entry, tlb, set_idx, tlb._set_epochs[set_idx], ppn4k,
                   page_size, write_ok, write_seeded, mask_domain, pc_mask,
                   tuple((t, i, t._set_epochs[i]) for t, i, _e in pre),
                   hit_snap, pre_deep)
            table[key] = rec
        return rec

    def seed(self, proc, segment, page_off, instr, is_write, lookup_vpn,
             entry, multi, ppn4k):
        """Record a reference L1 hit so the next access to the same page
        can be served by :meth:`probe`."""
        size = entry.page_size
        pre = []
        pre_deep = []
        tlb = None
        set_idx = 0
        for probe_size, shift, probe_tlb in multi._probe:
            idx = (lookup_vpn >> shift) & probe_tlb.set_mask
            if probe_size is size:
                tlb = probe_tlb
                set_idx = idx
                break
            pre.append((probe_tlb, idx, probe_tlb._set_epochs[idx]))
            pre_vpn = lookup_vpn >> shift
            bucket = probe_tlb._buckets[idx].get(pre_vpn)
            pre_deep.append((pre_vpn, tuple(bucket) if bucket else ()))
        hit_bucket = tlb._buckets[set_idx].get(entry.vpn)
        hit_snap = tuple(hit_bucket) if hit_bucket else ()
        if self.share_l1 and not entry.o_bit and entry.orpc:
            mask_domain = self.domain_fn(entry)
            pc_mask = entry.pc_mask
        else:
            mask_domain = None
            pc_mask = 0
        table = self.i if instr else self.d
        if len(table) >= self.limit:
            table.clear()
        table[(proc.pid, segment, page_off)] = (
            entry, tlb, set_idx, tlb._set_epochs[set_idx], ppn4k, size,
            entry.writable and not entry.cow, is_write,
            mask_domain, pc_mask, tuple(pre), hit_snap, tuple(pre_deep))


def run_quantum_fast(sim, core_id, proc):
    """``Simulator._run_quantum`` with prebound locals, a reused
    translation result, and the L0 memo replay inlined into the loop
    (the exact guard-and-replay sequence of :meth:`TranslationMemo.probe`
    — a record failing a guard falls through to ``mmu.translate``, whose
    own probe re-runs the same checks and reaches the same verdict).
    Dispatched only when no tracer or sanitizer is wired, so their
    (always-None) hooks are omitted; every counter and cycle update
    matches the reference loop exactly."""
    mmu = sim.mmus[core_id]
    stats = mmu.stats
    trace = sim._traces.get(proc.pid)
    quantum = sim.scheduler.quantum_instructions
    translate = mmu.translate
    data_access = sim.hierarchy.data_access
    base_cpi = sim.base_cpi
    request_latency = sim._request_latency
    rl_get = request_latency.get
    kinds = _KINDS
    scratch = mmu._tr_scratch
    memo = mmu._memo
    # An empty table never hits, turning the inline replay into a plain
    # dict miss when the memo is unwired (e.g. a hand-attached tracer).
    memo_i = memo.i if memo is not None else {}
    memo_d = memo.d if memo is not None else {}
    pid = proc.pid
    pc_bits = proc.pc_bits
    l1_cycles = mmu.l1_cycles
    cycles = 0
    insts = 0
    t_cycles = 0
    m_cycles = 0
    # Memo-hit counter deltas, flushed to ``stats`` after the loop. All
    # increments commute with the ones ``translate`` applies directly,
    # and nothing reads ``stats`` mid-quantum on this (hook-free) path.
    acc_i = hits_i = acc_d = hits_d = 0
    finished = False
    if trace is not None:
        while insts < quantum:
            rec = next(trace, None)
            if rec is None:
                finished = True
                break
            kind_code, segment, page_off, line, gap, req_id = rec
            # -- L0 translation memo, inlined ---------------------------
            instr = kind_code == 0
            is_write = kind_code == 2
            table = memo_i if instr else memo_d
            key = (pid, segment, page_off)
            rec_m = table.get(key)
            tr_cycles = -1
            if rec_m is not None:
                (entry, tlb, set_idx, set_epoch, ppn4k, _page_size,
                 write_ok, write_seeded, mask_domain, pc_mask, pre,
                 _hit_snap, _pre_deep) = rec_m
                if tlb._set_epochs[set_idx] != set_epoch:
                    del table[key]
                elif write_ok if is_write else not write_seeded:
                    ok = True
                    if mask_domain is not None:
                        bit = pc_bits.get(mask_domain)
                        if bit is not None and (pc_mask >> bit) & 1:
                            ok = False
                    if ok:
                        for pre_tlb, pre_idx, pre_epoch in pre:
                            if pre_tlb._set_epochs[pre_idx] != pre_epoch:
                                ok = False
                                break
                    if ok:
                        # Exact replay of the reference L1-hit effects.
                        if instr:
                            acc_i += 1
                            hits_i += 1
                        else:
                            acc_d += 1
                            hits_d += 1
                        for pre_tlb, _idx, _epoch in pre:
                            pre_tlb.misses += 1
                        tlb.hits += 1
                        lru = tlb._lru[set_idx]
                        del lru[entry]
                        lru[entry] = None
                        tr_cycles = l1_cycles
            if tr_cycles < 0:
                tr = translate(proc, segment, page_off, kinds[kind_code],
                               is_write, scratch)
                tr_cycles = tr.cycles
                ppn4k = tr.ppn4k
            mem_cycles = data_access(
                core_id, (ppn4k << 12) | (line << 6), kind_code)
            record_cycles = int(gap * base_cpi) + tr_cycles + mem_cycles
            cycles += record_cycles
            insts += gap + 1
            t_cycles += tr_cycles
            m_cycles += mem_cycles
            if req_id is not None:
                request_latency[req_id] = rl_get(req_id, 0) + record_cycles
    else:
        finished = True
    stats.accesses_i += acc_i
    stats.l1_hits_i += hits_i
    stats.accesses_d += acc_d
    stats.l1_hits_d += hits_d
    stats.translation_cycles += t_cycles
    stats.memory_cycles += m_cycles
    stats.instructions += insts
    sim.core_cycles[core_id] += cycles
    sim._proc_cycles[proc.pid] = sim._proc_cycles.get(proc.pid, 0) + cycles
    if finished:
        sim._completion[proc.pid] = sim.core_cycles[core_id]
        sim._traces.pop(proc.pid, None)
        sim.scheduler.remove(proc)
    nxt = sim.scheduler.rotate(core_id)
    if nxt is not None and nxt is not proc:
        sim.core_cycles[core_id] += sim.switch_cost
    return insts
