"""Simulation statistics: per-MMU counters and run-level results."""

import math

from repro.obs.metrics import map_label


class MMUStats:
    """Counters for one core's MMU (instruction/data kept separate, as
    Figure 10 reports them separately)."""

    __slots__ = (
        "accesses_i", "accesses_d",
        "l1_hits_i", "l1_hits_d", "l1_misses_i", "l1_misses_d",
        "l2_hits_i", "l2_hits_d", "l2_misses_i", "l2_misses_d",
        "l2_shared_hits_i", "l2_shared_hits_d",
        "l2_long_accesses",
        "l3_hits_i", "l3_hits_d", "l3_misses_i", "l3_misses_d",
        "walks", "walk_cycles",
        "minor_faults", "major_faults", "cow_faults", "spurious_faults",
        "fault_cycles", "translation_cycles", "memory_cycles",
        "instructions", "aslr_transforms",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def merge(self, other):
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @classmethod
    def merged(cls, stats_list):
        total = cls()
        for stats in stats_list:
            total.merge(stats)
        return total

    # -- derived metrics ------------------------------------------------------

    @property
    def l2_misses(self):
        return self.l2_misses_i + self.l2_misses_d

    @property
    def l2_hits(self):
        return self.l2_hits_i + self.l2_hits_d

    def mpki(self, kind="all"):
        """L2 TLB misses per kilo-instruction (Figure 10a's metric)."""
        if not self.instructions:
            return 0.0
        misses = {"i": self.l2_misses_i, "d": self.l2_misses_d,
                  "all": self.l2_misses}[kind]
        return 1000.0 * misses / self.instructions

    def shared_hit_fraction(self, kind="all"):
        """Fraction of L2 TLB hits on entries inserted by another process
        (Figure 10b's metric)."""
        hits = {"i": self.l2_hits_i, "d": self.l2_hits_d,
                "all": self.l2_hits}[kind]
        shared = {"i": self.l2_shared_hits_i, "d": self.l2_shared_hits_d,
                  "all": self.l2_shared_hits_i + self.l2_shared_hits_d}[kind]
        return shared / hits if hits else 0.0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


def percentile(values, pct):
    """Nearest-rank percentile (pct in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if pct >= 100:
        return float(ordered[-1])
    rank = math.ceil(pct / 100.0 * len(ordered)) - 1
    return float(ordered[max(0, min(len(ordered) - 1, rank))])


def _pairs(mapping):
    """Dict -> sorted [key, value] pairs (deterministic JSON lists)."""
    return sorted([k, v] for k, v in mapping.items())


class RunResult:
    """Outcome of one simulation run."""

    def __init__(self, config_name):
        self.config_name = config_name
        self.stats = MMUStats()
        self.core_cycles = {}
        #: request id -> accumulated cycles (data-serving latency metric)
        self.request_latency = {}
        self.context_switches = 0
        #: per-process completion time in that core's local cycles
        self.completion_cycles = {}
        #: per-process cycles actually spent executing (excludes time the
        #: process was descheduled) — the function execution-time metric
        self.process_cycles = {}
        #: CoherenceViolation records from the translation sanitizer
        #: (empty unless the run had ``SimConfig(sanitize=True)``)
        self.coherence_violations = []
        #: Observability snapshot (:meth:`repro.obs.Tracer.snapshot`);
        #: None unless the run had ``SimConfig(trace=...)`` enabled.
        self.obs = None
        #: Batch-engine diagnostics (:meth:`repro.sim.batch.BatchStats.
        #: snapshot`): per-cause punt attribution and claim-length
        #: histograms. None unless the run used the batch engine (with
        #: attribution compiled in). Engine diagnostics, not
        #: architecture: identity comparisons against the scalar paths
        #: strip this key.
        self.batch = None

    @property
    def total_cycles(self):
        return max(self.core_cycles.values()) if self.core_cycles else 0

    @property
    def mean_latency(self):
        lats = list(self.request_latency.values())
        return sum(lats) / len(lats) if lats else 0.0

    def tail_latency(self, pct=95):
        return percentile(list(self.request_latency.values()), pct)

    def as_dict(self):
        """The canonical JSON-ready run summary (what the disk run cache
        stores and pool workers ship back to the parent).

        Pids come from a process-global counter, so the same simulation
        in a fresh worker process yields different pids than in the
        parent. Pid-keyed maps — and the ``pid`` labels inside the obs
        snapshot — are renumbered to dense creation-order indices so
        summaries are bit-identical regardless of which process ran
        them.
        """
        pids = sorted(set(self.completion_cycles) | set(self.process_cycles))
        index = {pid: i for i, pid in enumerate(pids)}
        lats = list(self.request_latency.values())
        data = {
            "config_name": self.config_name,
            "stats": self.stats.as_dict(),
            "core_cycles": _pairs(self.core_cycles),
            "request_latency": _pairs(self.request_latency),
            "completion_cycles": _pairs(
                {index[k]: v for k, v in self.completion_cycles.items()}),
            "process_cycles": _pairs(
                {index[k]: v for k, v in self.process_cycles.items()}),
            "context_switches": self.context_switches,
            "total_cycles": self.total_cycles,
            "latency": {"mean": self.mean_latency,
                        "p50": percentile(lats, 50),
                        "p95": percentile(lats, 95),
                        "p99": percentile(lats, 99)},
            "coherence_violations": len(self.coherence_violations),
        }
        if self.obs is not None:
            data["obs"] = dict(self.obs,
                               metrics=map_label(self.obs["metrics"],
                                                 "pid", index))
        if self.batch is not None:
            data["batch"] = self.batch
        return data

    def __repr__(self):
        return "<RunResult %s cycles=%d requests=%d>" % (
            self.config_name, self.total_cycles, len(self.request_latency))
