"""Section VII-D: BabelFish resource analysis.

- Hardware: extra area of the CCID + O-PC TLB fields as a fraction of
  core area (0.4% with the PC bitmask, 0.07% without), from the CACTI
  model.
- Memory space: one MaskPage per 512 pages of pte_ts (0.19%) plus one
  16-bit sharer counter per 512 pte_ts (0.048%) — computed analytically
  from the design and verified against the live kernel state of a
  BabelFish run.
"""

from repro.hw.cacti import core_area_overhead_pct
from repro.hw.types import ENTRIES_PER_TABLE, PAGE_SIZE
from repro.kernel.frames import FrameKind
from repro.experiments.common import config_by_name


def analytic_space_overhead():
    """The design's space overheads, as the paper computes them."""
    maskpage = 1.0 / ENTRIES_PER_TABLE            # 1 page per 512 pte pages
    counter = 2.0 / PAGE_SIZE                     # 16 bits per pte page
    return {
        "maskpage_space_overhead_pct": round(100 * maskpage, 3),
        "counter_space_overhead_pct": round(100 * counter, 3),
        "total_space_overhead_pct": round(100 * (maskpage + counter), 3),
    }


def measured_space_overhead(cores=2, scale=0.4):
    """Live measurement from a BabelFish run: MaskPages and counters
    actually allocated vs page-table pages in use. Uses the FaaS run,
    whose bring-up CoW writes exercise the MaskPage machinery.

    Reads only the kernel accounting preserved by the run cache's
    summaries (frame counts, policy registry size), so a disk-cached run
    answers it without re-simulating."""
    from repro.experiments.common import run_functions
    run = run_functions(config_by_name("BabelFish"), dense=True,
                        cores=cores, scale=scale)
    kernel = run.env.kernel
    policy = kernel.policy
    pt_pages = kernel.allocator.count(FrameKind.PAGE_TABLE)
    mask_pages = kernel.allocator.count(FrameKind.MASK_PAGE)
    # One 16-bit counter per shared table (Section IV-B).
    counter_bytes = 2 * len(policy.registry)
    return {
        "page_table_pages": pt_pages,
        "mask_pages": mask_pages,
        "maskpage_space_overhead_pct": round(
            100.0 * mask_pages / max(1, pt_pages), 3),
        "counter_space_overhead_pct": round(
            100.0 * counter_bytes / (max(1, pt_pages) * PAGE_SIZE), 3),
    }


def run_resources(include_measured=True, cores=2, scale=0.4):
    out = {
        "core_area_overhead_pct": round(core_area_overhead_pct(True), 3),
        "core_area_overhead_no_pc_pct": round(core_area_overhead_pct(False), 3),
    }
    out.update(analytic_space_overhead())
    if include_measured:
        out["measured"] = measured_space_overhead(cores=cores, scale=scale)
    return out
