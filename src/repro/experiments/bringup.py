"""Section VII-C: serverless function bring-up time (docker start).

Bring-up is measured as the time to start a function container from a
pre-created image: Docker engine overhead + fork (page-table replication
under Baseline; sharing under BabelFish) + the runtime's bring-up page
touches (redundant minor faults under Baseline; mostly resolved
translations under BabelFish). The paper reports an 8% reduction.
"""

from repro.experiments.common import config_by_name, pct_reduction, run_functions
from repro.experiments.runner import bringup_matrix, execute


def run_bringup(cores=8, scale=1.0, jobs=1):
    if jobs > 1:
        execute(bringup_matrix(cores=cores, scale=scale), jobs=jobs)
    base = run_functions(config_by_name("Baseline"), dense=True,
                         cores=cores, scale=scale)
    bf = run_functions(config_by_name("BabelFish"), dense=True,
                       cores=cores, scale=scale)
    return {
        "baseline_cycles": base.bringup_cycles,
        "babelfish_cycles": bf.bringup_cycles,
        "reduction_pct": round(pct_reduction(base.bringup_cycles,
                                             bf.bringup_cycles), 1),
        # Where the paging work went: faults taken during bring-up.
        "baseline_minor_faults": base.result.stats.minor_faults,
        "babelfish_minor_faults": bf.result.stats.minor_faults,
    }
