"""Extension experiment: mixed-application co-location.

The paper's evaluation co-locates containers of the *same* application on
each core, which is BabelFish's best case (everything in one CCID group).
Deployments also mix applications per core; the paper notes containers
"share middleware both within and across applications", but its
conservative security domain (Section V) confines translation sharing to
one application. This experiment quantifies what that policy costs: the
same total container count, either paired same-app per core or mixed
(one MongoDB + one HTTPd per core).
"""

from repro.experiments.common import (
    WARM_SLICE,
    _make_trace,
    _os_warmup,
    Deployment,
    build_environment,
    config_by_name,
    pct_reduction,
)
from repro.experiments.runner import parallel_map
from repro.containers.image import align_pages
from repro.kernel.vma import SegmentKind, VMAKind
from repro.workloads.profiles import APP_PROFILES


def _deploy_one(env, profile, core):
    """Deploy a single container of ``profile`` pinned to ``core``."""
    kernel = env.kernel
    engine = env.engine
    state = engine.zygote_for(profile.image)
    dataset_name = "%s/dataset" % profile.name
    dataset = getattr(state, "dataset_file", None)
    if dataset is None:
        dataset = kernel.create_file(dataset_name, profile.dataset_pages)
        kernel.page_cache.populate(dataset)
        kernel.mmap(state.proc, SegmentKind.MMAP, 0, profile.dataset_pages,
                    VMAKind.FILE_SHARED, file=dataset,
                    writable=profile.dataset_writes, name="dataset")
        state.dataset_file = dataset
    container, _cycles = engine.launch(profile.image)
    container.core = core
    if profile.thp_blocks:
        thp_off = align_pages(profile.image.heap_pages)
        kernel.mmap(container.proc, SegmentKind.HEAP, thp_off,
                    profile.thp_blocks * 512, VMAKind.ANON, huge_ok=True,
                    name="thp-buffer")
        container.thp_offset = thp_off
    return container


def _run_mix(config, pairs, cores, scale):
    """``pairs`` maps core -> (profile_a, profile_b)."""
    env = build_environment(config, cores=cores)
    deployments = {}
    containers = []
    for core in range(cores):
        for profile in pairs[core]:
            container = _deploy_one(env, profile, core)
            containers.append((container, profile))
            deployments.setdefault(profile.name, []).append(container)
    for name, group in deployments.items():
        _os_warmup(env, Deployment(APP_PROFILES[name],
                                   group[0].group, group, None))
    sim = env.sim
    for phase, tag in ((WARM_SLICE, False), (1.0, True)):
        for container, profile in containers:
            requests = max(2, int(profile.requests * scale * phase))
            sim.attach(container.proc,
                       _make_trace(profile, container.index, requests,
                                   tag=tag,
                                   request_base=container.index * 1_000_000),
                       container.core)
        result = sim.run()
        if not tag:
            sim.reset_measurement()
            env.kernel.reset_fault_counters()
    return result, env


def _scenario_pairs(label, cores, app_a, app_b):
    profile_a = APP_PROFILES[app_a]
    profile_b = APP_PROFILES[app_b]
    if label == "same-app":
        return {core: ((profile_a, profile_a) if core % 2 == 0
                       else (profile_b, profile_b))
                for core in range(cores)}
    return {core: (profile_a, profile_b) for core in range(cores)}


def _scenario_row(task):
    """One scenario's Baseline/BabelFish pair; module-level and built
    from plain values so scenarios can fan out across pool workers."""
    label, cores, scale, app_a, app_b = task
    pairs = _scenario_pairs(label, cores, app_a, app_b)
    base, _env = _run_mix(config_by_name("Baseline"), pairs, cores, scale)
    bf, env = _run_mix(config_by_name("BabelFish"), pairs, cores, scale)
    return {
        "scenario": label,
        "mean_reduction_pct": round(pct_reduction(
            base.mean_latency, bf.mean_latency), 2),
        "shared_hits": round(bf.stats.shared_hit_fraction(), 3),
        "ccid_groups": len(env.registry),
    }


def run_mixed_colocation(cores=4, scale=0.5, app_a="mongodb",
                         app_b="httpd", jobs=1):
    """Compare BabelFish's gains under same-app vs mixed-app co-location."""
    tasks = [(label, cores, scale, app_a, app_b)
             for label in ("same-app", "mixed")]
    return parallel_map(_scenario_row, tasks, jobs=jobs)
