"""Design-choice ablations (beyond the paper's explicit studies).

DESIGN.md calls these out: ASLR-SW vs ASLR-HW (Section IV-D discusses
both; the paper conservatively evaluates HW), the ORPC filter
(Figure 5b), PC-bitmask width (Appendix: reverts past 32 writers), and
huge-page PMD-table merging (Section IV-C).
"""

from repro.core.aslr import ASLRMode
from repro.kernel.frames import FrameKind
from repro.experiments.common import (
    config_by_name,
    pct_reduction,
    run_app,
)
from repro.experiments.runner import RunRequest, execute, request_overrides
from repro.sim.config import babelfish_config


def _measure(config, app, cores, scale):
    """One measured run through the (correctly keyed) run cache: ablation
    configs share ``config.name`` with the stock configs but differ in
    field values, which the full-field cache key now distinguishes."""
    run = run_app(app, config, cores=cores, scale=scale)
    return run.result, run.env


def run_aslr_ablation(app="mongodb", cores=4, scale=0.5, jobs=1):
    """ASLR-SW avoids the 2-cycle transform and shares at the L1 TLB too;
    ASLR-HW (paper default) gives per-process layouts."""
    if jobs > 1:
        execute([RunRequest(kind="app", app=app, cores=cores, scale=scale)]
                + [RunRequest(kind="app", app=app, config_name="BabelFish",
                              overrides=request_overrides(aslr_mode=mode),
                              cores=cores, scale=scale)
                   for mode in (ASLRMode.SW, ASLRMode.HW)], jobs=jobs)
    base, _ = _measure(config_by_name("Baseline"), app, cores, scale)
    rows = []
    for mode in (ASLRMode.SW, ASLRMode.HW):
        result, env = _measure(babelfish_config(aslr_mode=mode), app,
                               cores, scale)
        rows.append({
            "mode": mode.value,
            "mean_reduction_pct": round(pct_reduction(
                base.mean_latency, result.mean_latency), 2),
            "aslr_transforms": result.stats.aslr_transforms,
            "l1_shared": mode.shares_l1,
        })
    return rows


def run_orpc_ablation(app="mongodb", cores=4, scale=0.5, jobs=1):
    """Without ORPC, every shared-entry L2 TLB access pays the long
    (PC-bitmask) access time."""
    if jobs > 1:
        execute([RunRequest(kind="app", app=app, cores=cores, scale=scale)]
                + [RunRequest(kind="app", app=app, config_name="BabelFish",
                              overrides=request_overrides(orpc_enabled=orpc),
                              cores=cores, scale=scale)
                   for orpc in (True, False)], jobs=jobs)
    base, _ = _measure(config_by_name("Baseline"), app, cores, scale)
    rows = []
    for orpc in (True, False):
        result, _env = _measure(babelfish_config(orpc_enabled=orpc), app,
                                cores, scale)
        rows.append({
            "orpc_enabled": orpc,
            "mean_reduction_pct": round(pct_reduction(
                base.mean_latency, result.mean_latency), 2),
            "l2_long_accesses": result.stats.l2_long_accesses,
        })
    return rows


def run_bitmask_width_ablation(writers=12, widths=(4, 8, 32), pages=4096,
                               include_indirection=True):
    """A narrower PC bitmask exhausts the MaskPage sooner, forcing the
    whole CCID group to revert to non-shared translations (Appendix).

    Scenario: a CoW storm — ``writers`` containers forked from a zygote
    each write fork-inherited heap pages. With a 32-bit mask every writer
    gets a private pte-page copy and the rest keep sharing; with narrow
    masks the region reverts and every sharer is privatized.
    """
    from repro.core.mask_page import MaskPageDirectory
    from repro.core.shared_pt import SharedPTManager
    from repro.core.ccid import CCIDRegistry
    from repro.core.aslr import ASLRMode, group_layout_for
    from repro.kernel.kernel import Kernel, KernelConfig
    from repro.kernel.vma import SegmentKind, VMAKind

    rows = []
    variants = [(width, False) for width in widths]
    if include_indirection:
        # Appendix extension: per-range pid lists via an extra indirection.
        variants.append((widths[0], True))
    for width, per_range in variants:
        registry = CCIDRegistry()
        group = registry.group_for("tenant", "storm")
        kernel = Kernel(KernelConfig(),
                        policy=SharedPTManager(
                            MaskPageDirectory(max_writers=width,
                                              per_range_lists=per_range)))
        kernel.policy.mask_dir.allocator = kernel.allocator
        layout = group_layout_for(group, ASLRMode.SW)
        zygote = kernel.spawn(group.ccid, layout, name="zygote")
        kernel.mmap(zygote, SegmentKind.HEAP, 0, pages, VMAKind.ANON,
                    name="heap")
        for i in range(writers):
            page = (i * 340) % pages
            kernel.touch(zygote, zygote.vpn_group(SegmentKind.HEAP, page),
                         is_write=True)
        children = []
        for i in range(writers):
            child, _cycles = kernel.fork(zygote, name="w%d" % i)
            group.add(child)
            children.append(child)
        cow_cycles = 0
        for i, child in enumerate(children):
            # Writers spread over several 2MB ranges of one region: with
            # per-range lists each range sees only 1-2 of them, while the
            # single region list sees all 12.
            page = (i * 340) % pages
            outcome = kernel.handle_fault(
                child, child.vpn_group(SegmentKind.HEAP, page),
                is_write=True)
            cow_cycles += outcome.cycles
        rows.append({
            "pc_bits": width,
            "indirection": per_range,
            "reverts": kernel.policy.reverts,
            "pte_pages_copied": kernel.pte_pages_copied,
            "cow_cycles": cow_cycles,
        })
    return rows


def run_share_huge_ablation(blocks=4, sharers=6):
    """PMD-table merging for 2MB pages on/off (Section IV-C).

    Scenario: a zygote touches ``blocks`` 2MB huge pages before forking
    ``sharers`` containers. With merging on, the PMD tables (and their
    huge leaves) are shared; with it off, every fork clones the huge
    leaves CoW-style into private PMD tables.
    """
    from repro.core.mask_page import MaskPageDirectory
    from repro.core.shared_pt import SharedPTManager
    from repro.core.ccid import CCIDRegistry
    from repro.core.aslr import ASLRMode, group_layout_for
    from repro.kernel.kernel import Kernel, KernelConfig
    from repro.kernel.vma import SegmentKind, VMAKind

    rows = []
    for share in (True, False):
        registry = CCIDRegistry()
        group = registry.group_for("tenant", "huge")
        kernel = Kernel(KernelConfig(thp_enabled=True),
                        policy=SharedPTManager(MaskPageDirectory(),
                                               share_huge=share))
        kernel.policy.mask_dir.allocator = kernel.allocator
        layout = group_layout_for(group, ASLRMode.SW)
        zygote = kernel.spawn(group.ccid, layout, name="zygote")
        kernel.mmap(zygote, SegmentKind.HEAP, 0, blocks * 512, VMAKind.ANON,
                    huge_ok=True, name="huge")
        for block in range(blocks):
            kernel.touch(zygote, zygote.vpn_group(SegmentKind.HEAP,
                                                  block * 512),
                         is_write=True)
        fork_cycles = 0
        for i in range(sharers):
            child, cycles = kernel.fork(zygote, name="h%d" % i)
            group.add(child)
            fork_cycles += cycles
        rows.append({
            "share_huge": share,
            "table_pages": kernel.allocator.count(FrameKind.PAGE_TABLE),
            "fork_cycles": fork_cycles,
        })
    return rows


def run_quantum_ablation(app="mongodb", cores=4, scale=0.5,
                         quanta=(5_000, 20_000, 80_000), jobs=1):
    """Scheduler quantum sensitivity: shorter quanta mean more
    cross-container TLB interleaving, which sharing turns from interference
    into prefetching."""
    if jobs > 1:
        execute([RunRequest(kind="app", app=app, config_name=name,
                            overrides=request_overrides(
                                quantum_instructions=quantum),
                            cores=cores, scale=scale)
                 for quantum in quanta
                 for name in ("Baseline", "BabelFish")], jobs=jobs)
    rows = []
    for quantum in quanta:
        base, _ = _measure(config_by_name(
            "Baseline", quantum_instructions=quantum), app, cores, scale)
        bf, _ = _measure(babelfish_config(quantum_instructions=quantum),
                         app, cores, scale)
        rows.append({
            "quantum_instructions": quantum,
            "mean_reduction_pct": round(pct_reduction(
                base.mean_latency, bf.mean_latency), 2),
        })
    return rows
