"""Figure 9: page-table entry sharing characterization (Section VII-A).

For each application: the total pte_ts mapped by the containers, the
active pte_ts (recently referenced), and the active pte_ts once BabelFish
de-duplicates shared translations — each broken into shareable /
unshareable / THP.

The paper measured this natively with Linux Pagemap on 2 containers per
app (3 function containers); we inspect the simulated kernel's page
tables the same way: a pte_t is *shareable* when another container in the
CCID group maps the identical {VPN, PPN} pair with identical permission
bits; THP entries count as the 4KB pte_ts they replace.
"""

import collections
import dataclasses

from repro.hw.types import PageSize
from repro.experiments.common import (
    _make_trace,
    build_environment,
    config_by_name,
    deploy_app,
    disk_cache,
    run_functions,
)
from repro.experiments.runner import parallel_map
from repro.workloads.profiles import APP_PROFILES, SERVING_APPS, COMPUTE_APPS


@dataclasses.dataclass
class Fig9Row:
    app: str
    total: int
    total_shareable: int
    total_unshareable: int
    total_thp: int
    active: int
    active_shareable: int
    active_unshareable: int
    active_thp: int
    active_babelfish: int

    @property
    def shareable_fraction(self):
        return self.total_shareable / self.total if self.total else 0.0

    @property
    def active_reduction(self):
        """Reduction in active pte_ts when BabelFish de-duplicates."""
        if not self.active:
            return 0.0
        return 1.0 - self.active_babelfish / self.active

    def as_dict(self):
        d = dataclasses.asdict(self)
        d["shareable_frac"] = round(self.shareable_fraction, 3)
        d["active_reduction"] = round(self.active_reduction, 3)
        return d


def classify_processes(procs, lru):
    """Shareability analysis over a set of container processes.

    ``lru`` is the kernel's active/inactive list: a pte_t is *active* when
    its physical page is on the active list (promoted by a second touch),
    which is how Linux's LRU — and the paper's Figure 9 — defines it.
    Init-only pages (e.g. THP buffers touched once) stay inactive.
    Returns a :class:`Fig9Row`-shaped dict of counts (without the app
    name); counts are in 4KB pte_t equivalents.
    """
    # First pass: how many containers map each identical translation.
    population = collections.Counter()
    for proc in procs:
        for vpn, _level, _table, _index, pte in proc.tables.iter_leaves():
            if not pte.present:
                continue
            population[(vpn, pte.ppn, pte.perm_key(), pte.page_size)] += 1

    counts = dict(total=0, total_shareable=0, total_unshareable=0,
                  total_thp=0, active=0, active_shareable=0,
                  active_unshareable=0, active_thp=0, active_babelfish=0)
    seen_active_shared = set()
    for proc in procs:
        for vpn, _level, _table, _index, pte in proc.tables.iter_leaves():
            if not pte.present:
                continue
            key = (vpn, pte.ppn, pte.perm_key(), pte.page_size)
            pages = pte.page_size.base_pages
            is_thp = pte.page_size is not PageSize.SIZE_4K
            shareable = population[key] >= 2 and not is_thp
            counts["total"] += pages
            if is_thp:
                counts["total_thp"] += pages
            elif shareable:
                counts["total_shareable"] += pages
            else:
                counts["total_unshareable"] += pages
            if not lru.is_active(pte.ppn):
                continue
            counts["active"] += pages
            if is_thp:
                counts["active_thp"] += pages
                counts["active_babelfish"] += pages
            elif shareable:
                counts["active_shareable"] += pages
                if key not in seen_active_shared:
                    seen_active_shared.add(key)
                    counts["active_babelfish"] += pages
            else:
                counts["active_unshareable"] += pages
                counts["active_babelfish"] += pages
    return counts


def _cached_row(key_data, compute):
    """Figure 9 rows are pure (app, scale) functions of plain counts, so
    they persist in the disk run cache like measured runs do."""
    cache = disk_cache()
    if cache is not None:
        payload = cache.load(key_data)
        if payload is not None:
            return Fig9Row(**payload)
    row = compute()
    if cache is not None:
        cache.store(key_data, dataclasses.asdict(row))
    return row


def run_fig9_app(app_name, scale=1.0):
    """Figure 9 for one serving/compute app: 2 containers on one core.

    Unlike the timing experiments, nothing is reset between warm-up and
    measurement: the paper's native 5-minute Pagemap measurement sees the
    whole run, so the LRU state accumulates across both phases.
    """
    def compute():
        profile = APP_PROFILES[app_name]
        env = build_environment(config_by_name("Baseline"), cores=1)
        deployment = deploy_app(env, profile)
        requests = max(2, int(profile.requests * scale))
        for container in deployment.containers:
            env.sim.attach(container.proc,
                           _make_trace(profile, container.index, requests,
                                       tag=False),
                           container.core)
        env.sim.run()
        procs = [c.proc for c in deployment.containers]
        return Fig9Row(app=app_name,
                       **classify_processes(procs, env.kernel.lru))

    return _cached_row({"kind": "fig9-app", "app": app_name, "scale": scale},
                       compute)


def run_fig9_functions(scale=1.0):
    """Figure 9 for the three function containers (one core)."""
    def compute():
        run = run_functions(config_by_name("Baseline"), dense=True, cores=1,
                            scale=scale, use_cache=False)
        procs = [containers[0].proc
                 for containers in run.containers.values()]
        return Fig9Row(app="functions",
                       **classify_processes(procs, run.env.kernel.lru))

    return _cached_row({"kind": "fig9-functions", "scale": scale}, compute)


def _fig9_task(task):
    app, scale = task
    if app == "functions":
        return run_fig9_functions(scale=scale)
    return run_fig9_app(app, scale=scale)


def run_fig9(scale=1.0, apps=None, jobs=1):
    apps = apps or (SERVING_APPS + COMPUTE_APPS)
    tasks = [(app, scale) for app in apps] + [("functions", scale)]
    return parallel_map(_fig9_task, tasks, jobs=jobs)


def summarize(rows):
    """Aggregate numbers matching the paper's text claims."""
    sc = [r for r in rows if r.app != "functions"]
    fn = [r for r in rows if r.app == "functions"]
    out = {}
    if sc:
        out["avg_shareable_fraction"] = (
            sum(r.shareable_fraction for r in sc) / len(sc))
        out["active_reduction_serving_compute"] = (
            sum(r.active_reduction for r in sc) / len(sc))
        out["thp_fraction_of_total"] = (
            sum(r.total_thp for r in sc) / max(1, sum(r.total for r in sc)))
    if fn:
        out["functions_shareable_fraction"] = fn[0].shareable_fraction
        out["active_reduction_functions"] = fn[0].active_reduction
        out["functions_unshareable_fraction"] = (
            fn[0].total_unshareable / max(1, fn[0].total))
    return out
