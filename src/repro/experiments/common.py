"""Shared experiment machinery.

Builds the Table I machine, a kernel with the policy matching the
configuration, the container engine, and the simulator; deploys an
application per the paper's co-location rules (2 containers per core for
serving/compute, 3 function containers per core); and runs the two-phase
"warm up, then measure" methodology of Section VI.

Runs are memoized on (app, full config field tuple, cores, scale)
because several figures/tables are computed from the same runs
(Figures 9-11 and Table II all share the serving/compute runs).  The key
canonicalizes *every* ``SimConfig`` field — not ``config.name`` — so
configs built via ``config_by_name(name, **overrides)`` (the ablation
and larger-TLB sweeps) never collide with the stock config of the same
name.  An optional persistent layer (:mod:`repro.experiments.runcache`,
installed with :func:`set_disk_cache`) memoizes run *summaries* across
processes and invocations, keyed additionally by a fingerprint of the
simulator sources.
"""

import dataclasses

from repro.containers.engine import ContainerEngine
from repro.containers.faas import FaaSPlatform
from repro.core.ccid import CCIDRegistry
from repro.core.mask_page import MaskPageDirectory
from repro.core.shared_pt import SharedPTManager
from repro.hw.params import baseline_machine
from repro.kernel.frames import FrameAllocator
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.vma import SegmentKind, VMAKind
from repro.containers.image import align_pages
from repro.workloads.compute import compute_trace
from repro.workloads.dataserving import serving_trace
from repro.workloads.functions import function_input_pages, function_trace
from repro.workloads.profiles import (
    APP_PROFILES,
    FAAS_BASE_IMAGE,
    FUNCTION_NAMES,
    FUNCTION_PROFILES,
)
from repro.sim.config import (
    babelfish_config,
    babelfish_pt_only_config,
    babelfish_tlb_only_config,
    baseline_config,
    bigtlb_config,
    coalesced_config,
    victima_config,
)
from repro.sim.simulator import Simulator
from repro.experiments import runcache

#: Fraction of the measured request count used for architectural warm-up
#: (the paper warms 500M instructions before measuring 4B).
WARM_SLICE = 0.25


@dataclasses.dataclass
class Environment:
    config: object
    machine: object
    kernel: object
    registry: object
    engine: object
    sim: object


@dataclasses.dataclass
class Deployment:
    profile: object
    group: object
    containers: list
    dataset_file: object


@dataclasses.dataclass
class AppRun:
    app: str
    config: object
    env: Environment
    deployment: Deployment
    result: object  # RunResult of the measured phase


def experiment_machine(cores=8):
    """The machine every experiment runs on: exactly Table I."""
    return baseline_machine(cores=cores)


def build_environment(config, cores=8):
    machine = experiment_machine(cores=cores)
    allocator = FrameAllocator()
    policy = None
    if config.shares_page_tables:
        policy = SharedPTManager(
            mask_dir=MaskPageDirectory(
                allocator, max_writers=config.pc_bitmask_bits,
                per_range_lists=config.pc_overflow_indirection),
            share_huge=config.share_huge)
    kernel = Kernel(KernelConfig(thp_enabled=config.thp_enabled,
                                 costs=config.costs), policy=policy,
                    allocator=allocator)
    registry = CCIDRegistry()
    engine = ContainerEngine(kernel, registry, config.aslr_mode)
    sim = Simulator(machine, config, kernel)
    return Environment(config, machine, kernel, registry, engine, sim)


# -- serving / compute deployments ---------------------------------------------

def deploy_app(env, profile, containers_per_core=None):
    """Deploy an application per the paper's co-location: N containers per
    core, all in one CCID group, forked from the image zygote."""
    kernel = env.kernel
    engine = env.engine
    per_core = containers_per_core or profile.containers_per_core

    state = engine.zygote_for(profile.image)
    dataset = kernel.create_file("%s/dataset" % profile.name,
                                 profile.dataset_pages)
    kernel.page_cache.populate(dataset)
    kernel.mmap(state.proc, SegmentKind.MMAP, 0, profile.dataset_pages,
                VMAKind.FILE_SHARED, file=dataset,
                writable=profile.dataset_writes, name="dataset")

    containers = []
    for core in range(env.machine.cores):
        for _slot in range(per_core):
            container, _cycles = engine.launch(profile.image)
            container.core = core
            self_thp_off = align_pages(profile.image.heap_pages)
            if profile.thp_blocks:
                kernel.mmap(container.proc, SegmentKind.HEAP, self_thp_off,
                            profile.thp_blocks * 512, VMAKind.ANON,
                            huge_ok=True, name="thp-buffer")
                container.thp_offset = self_thp_off
            containers.append(container)
    deployment = Deployment(profile, state.group, containers, dataset)
    _os_warmup(env, deployment)
    return deployment


def _os_warmup(env, deployment):
    """Phase 1 (Section VI): bring the OS state to steady state.

    The paper runs each application for minutes before measuring; in
    steady state essentially the whole working set is resident and its
    pte_ts populated (Figure 9's Active bars are large fractions of the
    Total bars). We therefore touch each container's full private working
    set and its share of the data set, plus the code path, without
    architectural timing. ``warm_fraction`` limits how much of the data
    set each container actually visits (GraphChi containers, e.g., only
    traverse part of the graph).
    """
    kernel = env.kernel
    profile = deployment.profile
    for container in deployment.containers:
        proc = container.proc
        for page in range(profile.private_pages):
            kernel.touch(proc, proc.vpn_group(SegmentKind.HEAP, page),
                         is_write=True)
        if profile.thp_blocks:
            for block in range(profile.thp_blocks):
                kernel.touch(proc, proc.vpn_group(
                    SegmentKind.HEAP, container.thp_offset + block * 512),
                    is_write=True)
        # Steady-state data set coverage: every container has visited the
        # hot head plus its own slice of the tail.
        warm_pages = int(profile.dataset_pages * profile.warm_coverage)
        for page in range(warm_pages):
            kernel.touch(proc, proc.vpn_group(SegmentKind.MMAP, page))
        # Custom images may have no binary or library pages at all (e.g.
        # a pure-heap microbenchmark image); there is then no code/lib
        # working set to warm, so skip rather than divide by zero.
        if profile.image.binary_pages:
            for page in range(profile.code_hot):
                kernel.touch(proc, proc.vpn_group(
                    SegmentKind.CODE, page % profile.image.binary_pages))
        if profile.image.lib_pages:
            for page in range(profile.lib_hot):
                kernel.touch(proc, proc.vpn_group(
                    SegmentKind.LIBS, page % profile.image.lib_pages))
        warm_trace = _make_trace(profile, container.index,
                                 requests=max(
                                     1, int(profile.requests * profile.warm_fraction)),
                                 tag=False, seed_offset=900_000)
        for kind, segment, page, _line, _gap, _rid in warm_trace:
            kernel.touch(proc, proc.vpn_group(segment, page),
                         is_write=kind == 2)


def _make_trace(profile, container_index, requests, tag, seed_offset=0,
                request_base=0):
    if profile.kind == "serving":
        return serving_trace(profile, container_index, requests=requests,
                             request_base=request_base, tag_requests=tag,
                             seed_offset=seed_offset)
    return compute_trace(profile, container_index, iterations=requests,
                         seed_offset=seed_offset)


def measure_app(env, deployment, scale=1.0):
    """Phase 2: architectural warm-up slice, reset, measured slice."""
    sim = env.sim
    profile = deployment.profile
    requests = max(2, int(profile.requests * scale))
    warm = max(1, int(requests * WARM_SLICE))

    for container in deployment.containers:
        sim.attach(container.proc,
                   _make_trace(profile, container.index, warm, tag=False,
                               seed_offset=500_000),
                   container.core)
    sim.run()
    sim.reset_measurement()
    env.kernel.reset_fault_counters()
    env.kernel.clear_accessed_bits()

    for container in deployment.containers:
        sim.attach(container.proc,
                   _make_trace(profile, container.index, requests, tag=True,
                               request_base=container.index * 1_000_000),
                   container.core)
    return sim.run()


_RUN_CACHE = {}

#: Optional persistent layer (a :class:`repro.experiments.runcache
#: .DiskRunCache`); None keeps memoization process-local.
_DISK_CACHE = None

#: Count of actual simulations executed in this process (cache hits do
#: not increment it) — lets tests assert that a cache hit skipped the
#: simulator entirely.
_SIMULATION_RUNS = 0


def simulation_run_count():
    return _SIMULATION_RUNS


def _count_simulation():
    global _SIMULATION_RUNS
    _SIMULATION_RUNS += 1


def clear_run_cache():
    """Clear the in-memory memo (the disk layer, if any, is untouched)."""
    _RUN_CACHE.clear()


def set_disk_cache(cache):
    """Install (or with None, remove) the persistent run cache; returns
    the previously installed one."""
    global _DISK_CACHE
    previous = _DISK_CACHE
    _DISK_CACHE = cache
    return previous


def disk_cache():
    return _DISK_CACHE


def config_cache_key(config):
    """The full field tuple of a config — the memoization key component.

    ``dataclasses.astuple`` recurses into ``costs``, so *any* field
    difference (an ablation override, a costs tweak) yields a distinct
    key even when ``config.name`` matches the stock config's.
    """
    return dataclasses.astuple(config)


def config_by_name(name, **overrides):
    builders = {
        "Baseline": baseline_config,
        "BabelFish": babelfish_config,
        "BabelFish-PT": babelfish_pt_only_config,
        "BabelFish-TLB": babelfish_tlb_only_config,
        "BigTLB": bigtlb_config,
        "Victima": victima_config,
        "Coalesced": coalesced_config,
    }
    return builders[name](**overrides)


def summarize_app_run(run, cores, scale, containers_per_core):
    """The JSON-ready summary artifacts of an :class:`AppRun` (what the
    disk cache stores and pool workers ship back to the parent)."""
    return {
        "kind": "app",
        "app": run.app,
        "config": runcache.config_field_dict(run.config),
        "cores": cores,
        "scale": scale,
        "containers_per_core": containers_per_core,
        "result": runcache.result_to_dict(run.result),
        "kernel": runcache.kernel_snapshot(run.env.kernel),
    }


def rehydrate_app_run(summary):
    """An :class:`AppRun` carrying the summarized result and a
    :class:`~repro.experiments.runcache.CachedKernel` snapshot (no live
    deployment; use ``use_cache=False`` for page-table introspection)."""
    config = runcache.config_from_fields(summary["config"])
    env = Environment(config, None, runcache.CachedKernel(summary["kernel"]),
                      None, None, None)
    return AppRun(summary["app"], config, env, None,
                  runcache.result_from_dict(summary["result"]))


def remember_app_run(run, cores, scale, containers_per_core=None):
    """Seed the in-memory memo with an externally produced run (e.g. one
    rehydrated from a pool worker's summary)."""
    key = ("app", run.app, config_cache_key(run.config), cores, scale,
           containers_per_core)
    _RUN_CACHE[key] = run
    return run


def run_app(app_name, config, cores=8, scale=1.0, containers_per_core=None,
            use_cache=True, monitor=None):
    """Deploy + warm + measure one application under one configuration.

    ``monitor`` (a :class:`repro.obs.live.ProgressMonitor`) is attached
    to the simulator's per-quantum progress hook for the duration of the
    run; cache hits never advance it (nothing simulates).
    """
    key = ("app", app_name, config_cache_key(config), cores, scale,
           containers_per_core)
    if use_cache and key in _RUN_CACHE:
        return _RUN_CACHE[key]
    key_data = None
    if use_cache and _DISK_CACHE is not None:
        key_data = runcache.app_key_data(app_name, config, cores, scale,
                                         containers_per_core)
        payload = _DISK_CACHE.load(key_data)
        if payload is not None:
            run = rehydrate_app_run(payload)
            _RUN_CACHE[key] = run
            return run
    _count_simulation()
    profile = APP_PROFILES[app_name]
    env = build_environment(config, cores=cores)
    if monitor is not None:
        env.sim.progress = monitor
    deployment = deploy_app(env, profile, containers_per_core)
    result = measure_app(env, deployment, scale=scale)
    run = AppRun(app_name, config, env, deployment, result)
    if use_cache:
        _RUN_CACHE[key] = run
        if _DISK_CACHE is not None and not result.coherence_violations:
            _DISK_CACHE.store(key_data, summarize_app_run(
                run, cores, scale, containers_per_core))
    return run


# -- functions (FaaS) -------------------------------------------------------------


@dataclasses.dataclass
class FunctionsRun:
    config: object
    dense: bool
    env: Environment
    #: wave-2 (measured) containers per function name
    containers: dict
    #: mean bring-up cycles of the measured wave
    bringup_cycles: float
    #: mean execution cycles per function name
    exec_cycles: dict
    result: object


def summarize_functions_run(run, cores, scale):
    """JSON-ready summary artifacts of a :class:`FunctionsRun`."""
    return {
        "kind": "functions",
        "config": runcache.config_field_dict(run.config),
        "dense": run.dense,
        "cores": cores,
        "scale": scale,
        "bringup_cycles": run.bringup_cycles,
        "exec_cycles": dict(run.exec_cycles),
        "result": runcache.result_to_dict(run.result),
        "kernel": runcache.kernel_snapshot(run.env.kernel),
    }


def rehydrate_functions_run(summary):
    config = runcache.config_from_fields(summary["config"])
    env = Environment(config, None, runcache.CachedKernel(summary["kernel"]),
                      None, None, None)
    return FunctionsRun(config, summary["dense"], env, None,
                        summary["bringup_cycles"],
                        dict(summary["exec_cycles"]),
                        runcache.result_from_dict(summary["result"]))


def remember_functions_run(run, cores, scale):
    key = ("functions", config_cache_key(run.config), run.dense, cores,
           scale)
    _RUN_CACHE[key] = run
    return run


def run_functions(config, dense=True, cores=8, scale=1.0, use_cache=True,
                  monitor=None):
    """The FaaS experiment: 3 function containers per core (Section VI).

    Two waves per core: the leading wave takes the cold-start costs the
    paper excludes; the second wave is measured (bring-up and execution).
    ``monitor`` rides the simulator's per-quantum hook as in
    :func:`run_app`.
    """
    key = ("functions", config_cache_key(config), dense, cores, scale)
    if use_cache and key in _RUN_CACHE:
        return _RUN_CACHE[key]
    key_data = None
    if use_cache and _DISK_CACHE is not None:
        key_data = runcache.functions_key_data(config, dense, cores, scale)
        payload = _DISK_CACHE.load(key_data)
        if payload is not None:
            run = rehydrate_functions_run(payload)
            _RUN_CACHE[key] = run
            return run
    _count_simulation()
    env = build_environment(config, cores=cores)
    if monitor is not None:
        env.sim.progress = monitor
    platform = FaaSPlatform(env.engine, FAAS_BASE_IMAGE)
    sim = env.sim
    passes = max(1, int(FUNCTION_PROFILES["parse"].passes * scale))

    def start(name, core):
        profile = FUNCTION_PROFILES[name]
        pages = function_input_pages(profile, dense)
        fn = platform.start_function(
            name, sim, core_id=core, input_pages=pages,
            scratch_pages=profile.scratch_pages,
            input_name="payload-%s" % ("dense" if dense else "sparse"),
            code_pages=profile.code_pages)
        return fn

    def exec_trace(fn, seed_offset):
        profile = dataclasses.replace(FUNCTION_PROFILES[fn.function],
                                      passes=passes)
        return function_trace(profile, dense, fn.container.index,
                              fn.container.code_offset,
                              fn.container.scratch_offset,
                              seed_offset=seed_offset)

    # Wave 1: leading functions (cold start; excluded from measurement).
    leaders = []
    for core in range(env.machine.cores):
        for name in FUNCTION_NAMES:
            leaders.append((start(name, core), core))
    for fn, core in leaders:
        sim.attach(fn.container.proc, exec_trace(fn, seed_offset=1), core)
    sim.run()

    sim.reset_measurement()
    env.kernel.reset_fault_counters()
    env.kernel.clear_accessed_bits()

    # Wave 2: measured bring-up + execution.
    measured = []
    for core in range(env.machine.cores):
        for name in FUNCTION_NAMES:
            measured.append((start(name, core), core))
    for fn, core in measured:
        sim.attach(fn.container.proc, exec_trace(fn, seed_offset=2), core)
    result = sim.run()

    containers = {}
    exec_cycles = {}
    bringups = []
    for fn, _core in measured:
        containers.setdefault(fn.function, []).append(fn.container)
        pid = fn.container.pid
        own = result.process_cycles.get(pid, 0)
        own -= getattr(fn.container, "bringup_trace_cycles", 0)
        exec_cycles.setdefault(fn.function, []).append(own)
        bringups.append(fn.bringup_cycles)
    exec_mean = {name: sum(vals) / len(vals)
                 for name, vals in exec_cycles.items()}
    run = FunctionsRun(config, dense, env, containers,
                       sum(bringups) / len(bringups), exec_mean, result)
    if use_cache:
        _RUN_CACHE[key] = run
        if _DISK_CACHE is not None and not result.coherence_violations:
            _DISK_CACHE.store(key_data, summarize_functions_run(
                run, cores, scale))
    return run


# -- formatting helpers -----------------------------------------------------------


def pct_reduction(base, other):
    """Percent reduction of ``other`` relative to ``base``."""
    return 100.0 * (base - other) / base if base else 0.0


def format_table(rows, columns, title=""):
    """Render a list of dict rows as a fixed-width text table."""
    widths = {col: max(len(col), *(len(_fmt(r.get(col))) for r in rows))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(
            _fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)
