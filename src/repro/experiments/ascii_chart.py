"""ASCII bar charts for the regenerated figures.

The paper's figures are bar charts; the benchmark harness renders their
text-mode equivalents into ``benchmarks/out/`` so a reproduction run can
be eyeballed against the paper without a plotting stack.
"""


def hbar_chart(rows, value_key, label_key="app", title="", width=46,
               value_format="%.1f", max_value=None):
    """Horizontal bar chart from dict rows.

    ``rows`` is a list of dicts; one bar per row.
    """
    if not rows:
        return title
    values = [float(r[value_key]) for r in rows]
    top = max_value if max_value is not None else max(max(values), 1e-9)
    label_width = max(len(str(r[label_key])) for r in rows)
    lines = []
    if title:
        lines.append(title)
    for row, value in zip(rows, values):
        filled = int(round(width * max(0.0, value) / top)) if top else 0
        bar = "#" * min(filled, width)
        lines.append("%s | %-*s %s" % (
            str(row[label_key]).ljust(label_width), width, bar,
            value_format % value))
    return "\n".join(lines)


def grouped_hbar_chart(rows, value_keys, label_key="app", title="",
                       width=40, legend=None, value_format="%.1f"):
    """Grouped bars: one group per row, one bar per value key."""
    if not rows:
        return title
    top = max(max(float(r[key]) for key in value_keys) for r in rows)
    top = max(top, 1e-9)
    label_width = max(len(str(r[label_key])) for r in rows)
    marks = "#=+*"
    lines = []
    if title:
        lines.append(title)
    if legend is None:
        legend = value_keys
    lines.append(" " * label_width + "   " + "   ".join(
        "%s=%s" % (marks[i % len(marks)], name)
        for i, name in enumerate(legend)))
    for row in rows:
        for i, key in enumerate(value_keys):
            value = float(row[key])
            filled = int(round(width * max(0.0, value) / top))
            label = str(row[label_key]) if i == 0 else ""
            lines.append("%s | %-*s %s" % (
                label.ljust(label_width), width,
                marks[i % len(marks)] * min(filled, width),
                value_format % value))
    return "\n".join(lines)


def stacked_fraction_chart(rows, part_keys, total_key, label_key="app",
                           title="", width=50, legend=None):
    """Stacked 100%-style bars (Figure 9's shareable/unshareable/THP)."""
    if not rows:
        return title
    marks = "#-~"
    label_width = max(len(str(r[label_key])) for r in rows)
    lines = []
    if title:
        lines.append(title)
    if legend is None:
        legend = part_keys
    lines.append(" " * label_width + "   " + "   ".join(
        "%s=%s" % (marks[i % len(marks)], name)
        for i, name in enumerate(legend)))
    for row in rows:
        total = float(row[total_key]) or 1.0
        bar = ""
        for i, key in enumerate(part_keys):
            share = float(row[key]) / total
            bar += marks[i % len(marks)] * int(round(width * share))
        lines.append("%s | %s" % (str(row[label_key]).ljust(label_width),
                                  bar[:width + 3]))
    return "\n".join(lines)
