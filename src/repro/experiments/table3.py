"""Table III: L2 TLB area / access time / energy / leakage at 22nm.

Produced by the CACTI-style analytical model of :mod:`repro.hw.cacti`
(calibrated against the paper's own Table III — see that module's
docstring for why this is the faithful reproduction).
"""

from repro.hw.cacti import SRAMModel, babelfish_l2_geometry, baseline_l2_geometry
from repro.experiments.paper_values import TABLE3


def run_table3(pc_bitmask_bits=32):
    model = SRAMModel()
    rows = []
    for name, geometry in (("Baseline", baseline_l2_geometry()),
                           ("BabelFish", babelfish_l2_geometry(pc_bitmask_bits))):
        measured = model.report(geometry).as_row()
        paper = TABLE3[name]
        row = {"config": name, "bits_per_entry": geometry.bits_per_entry}
        for key, value in measured.items():
            row["%s" % key] = value
            row["paper_%s" % key] = paper[key]
        rows.append(row)
    return rows


def bitmask_width_sweep(widths=(0, 8, 16, 32, 64)):
    """Extension: how Table III scales with the PC bitmask width."""
    model = SRAMModel()
    rows = []
    for width in widths:
        report = model.report(babelfish_l2_geometry(pc_bitmask_bits=width))
        row = report.as_row()
        row["pc_bits"] = width
        rows.append(row)
    return rows
