"""Extension experiment: container density (oversubscription) sweep.

The paper's introduction motivates BabelFish with providers that "run
hundreds of containers on a few cores", yet its evaluation conservatively
co-locates only 2-3 per core and notes the speedups come "even in our
conservative environment". This sweep raises the per-core container count
and measures how BabelFish's advantage scales: every added same-app
container multiplies the baseline's replicated TLB entries and page
tables, while BabelFish keeps a single copy.
"""

from repro.experiments.common import config_by_name, pct_reduction, run_app
from repro.experiments.runner import density_matrix, execute
from repro.kernel.frames import FrameKind


def run_density_sweep(app="mongodb", cores=2, scale=0.35,
                      densities=(2, 4, 6), jobs=1):
    if jobs > 1:
        execute(density_matrix(app=app, cores=cores, scale=scale,
                               densities=densities), jobs=jobs)
    rows = []
    for per_core in densities:
        base = run_app(app, config_by_name("Baseline"), cores=cores,
                       scale=scale, containers_per_core=per_core)
        bf = run_app(app, config_by_name("BabelFish"), cores=cores,
                     scale=scale, containers_per_core=per_core)
        rb, rf = base.result, bf.result
        rows.append({
            "containers_per_core": per_core,
            "mean_reduction_pct": round(pct_reduction(
                rb.mean_latency, rf.mean_latency), 2),
            "mpki_d_reduction_pct": round(pct_reduction(
                rb.stats.mpki("d"), rf.stats.mpki("d")), 1),
            "shared_hits": round(rf.stats.shared_hit_fraction(), 3),
            "baseline_table_pages": base.env.kernel.allocator.count(
                FrameKind.PAGE_TABLE),
            "babelfish_table_pages": bf.env.kernel.allocator.count(
                FrameKind.PAGE_TABLE),
        })
    return rows
