"""Persistent, content-addressed run cache for experiment results.

Every measured run is a pure function of (application, full ``SimConfig``
field values, cores, scale, containers-per-core, simulator code): the
workloads draw from per-container seeded RNGs, so re-running the same
request always reproduces the same numbers.  This module turns that
purity into a disk cache: a run's *summary artifacts* — the
:class:`~repro.sim.stats.RunResult` counters, per-request latencies, and
kernel-side accounting — are serialized as JSON under
``benchmarks/out/runcache/`` keyed by a SHA-256 over the canonicalized
request plus a fingerprint of the ``repro`` package sources.  Editing any
simulator source changes the fingerprint and invalidates every entry.

Live ``Environment`` objects (kernel, page tables, TLBs) are deliberately
*not* stored: experiments that introspect live kernel state (Figure 9's
page-table walk) bypass the cache with ``use_cache=False``.  Experiments
that only need coarse kernel accounting (page-table page counts, fault
totals) read it from a :class:`CachedKernel` snapshot instead.

Cache layout: one ``<sha256>.json`` file per run, containing the key
data (for debuggability) alongside the payload.  Writes go through a
``.tmp`` + ``os.replace`` so concurrent writers (``--jobs N``) never
expose a torn entry.  Clear it with ``python -m repro.experiments cache
--clear`` or by deleting the directory.
"""

import dataclasses
import hashlib
import itertools
import json
import os
import pathlib

from repro.core.aslr import ASLRMode
from repro.kernel.costs import KernelCosts
from repro.kernel.frames import FrameKind
from repro.obs.tracer import TraceOptions
from repro.sim.config import SimConfig
from repro.sim.stats import RunResult

#: Environment override for the cache directory (used by benchmarks/CI).
CACHE_DIR_ENV = "REPRO_RUN_CACHE_DIR"

_FINGERPRINT = None


def default_cache_dir():
    """``benchmarks/out/runcache`` next to the source tree (or
    ``$REPRO_RUN_CACHE_DIR``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    package = pathlib.Path(__file__).resolve().parent.parent
    repo = package.parent.parent
    return repo / "benchmarks" / "out" / "runcache"


def code_fingerprint():
    """SHA-256 over every ``.py`` source of the ``repro`` package.

    Computed once per process; any source edit yields a new fingerprint,
    so stale cache entries can never masquerade as current results.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package.rglob("*.py")):
            digest.update(str(path.relative_to(package)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


# -- canonicalization --------------------------------------------------------------


def config_field_dict(config):
    """A ``SimConfig`` as a flat, JSON-serializable field dict.

    This — not ``config.name`` — is what cache keys hash: two configs
    built from the same builder with different overrides canonicalize to
    different dicts and therefore different keys.
    """
    fields = dataclasses.asdict(config)
    fields["aslr_mode"] = config.aslr_mode.value
    return fields


def config_from_fields(fields):
    """Rebuild the exact ``SimConfig`` a cache entry was produced under."""
    fields = dict(fields)
    fields["aslr_mode"] = ASLRMode(fields["aslr_mode"])
    fields["costs"] = KernelCosts(**fields["costs"])
    # ``dataclasses.asdict`` flattened any TraceOptions into a plain dict;
    # rebuild the dataclass so rehydrated configs stay hashable (the
    # in-memory run-cache key is ``dataclasses.astuple(config)``).
    if isinstance(fields.get("trace"), dict):
        fields["trace"] = TraceOptions(**fields["trace"])
    return SimConfig(**fields)


def canonical_json(data):
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def app_key_data(app_name, config, cores, scale, containers_per_core):
    return {
        "kind": "app",
        "app": app_name,
        "config": config_field_dict(config),
        "cores": cores,
        "scale": scale,
        "containers_per_core": containers_per_core,
    }


def functions_key_data(config, dense, cores, scale):
    return {
        "kind": "functions",
        "config": config_field_dict(config),
        "dense": dense,
        "cores": cores,
        "scale": scale,
    }


# -- summary (de)serialization ------------------------------------------------------


def result_to_dict(result):
    """``RunResult`` -> JSON-ready summary (the Figure 10/11 artifacts).

    Delegates to :meth:`~repro.sim.stats.RunResult.as_dict`, the one
    canonical summary shape (dense-pid normalization, latency
    percentiles, obs snapshot) shared by the disk cache, pool workers,
    and the trace-capture CLI.
    """
    return result.as_dict()


def result_from_dict(data):
    result = RunResult(data["config_name"])
    for name, value in data["stats"].items():
        setattr(result.stats, name, value)
    result.core_cycles = {k: v for k, v in data["core_cycles"]}
    result.request_latency = {k: v for k, v in data["request_latency"]}
    result.completion_cycles = {k: v for k, v in data["completion_cycles"]}
    result.process_cycles = {k: v for k, v in data["process_cycles"]}
    result.context_switches = data["context_switches"]
    result.obs = data.get("obs")
    result.batch = data.get("batch")
    # ``latency``, ``total_cycles`` are derived on the fly; a cached
    # ``coherence_violations`` count has no record list to restore.
    return result


def kernel_snapshot(kernel):
    """The kernel-side accounting experiments read off finished runs
    (density's page-table page counts, resources' MaskPage counts)."""
    registry = getattr(kernel.policy, "registry", None)
    return {
        "frame_counts": {kind.name: kernel.allocator.count(kind)
                         for kind in FrameKind},
        "policy_registry_len": (len(registry)
                                if registry is not None else None),
        "minor_faults": kernel.total_minor_faults,
        "major_faults": kernel.total_major_faults,
        "cow_faults": kernel.total_cow_faults,
    }


class CachedAllocator:
    """Frame-count view of a cached run's allocator."""

    def __init__(self, counts):
        self._counts = counts

    def count(self, kind):
        return self._counts.get(kind.name, 0)


class _CachedRegistry:
    def __init__(self, length):
        self._length = length

    def __len__(self):
        return self._length


class CachedPolicy:
    def __init__(self, registry_len):
        self.registry = _CachedRegistry(registry_len)


class CachedKernel:
    """Summary stand-in for a live :class:`~repro.kernel.kernel.Kernel`.

    Exposes exactly the accounting recorded by :func:`kernel_snapshot`;
    anything deeper (page tables, LRU) requires a live run
    (``use_cache=False``).
    """

    def __init__(self, snapshot):
        self.allocator = CachedAllocator(snapshot["frame_counts"])
        registry_len = snapshot["policy_registry_len"]
        self.policy = (CachedPolicy(registry_len)
                       if registry_len is not None else None)
        self.total_minor_faults = snapshot["minor_faults"]
        self.total_major_faults = snapshot["major_faults"]
        self.total_cow_faults = snapshot["cow_faults"]


# -- the disk store -----------------------------------------------------------------


#: Per-process staging-file counter: combined with the pid it makes
#: every in-flight ``.tmp`` name unique, so concurrent same-key writers
#: (pool workers, daemon threads) never truncate each other's staging
#: file mid-write. ``count().__next__`` is atomic under the GIL.
_TMP_IDS = itertools.count()


class DiskRunCache:
    """Content-addressed JSON store for run summaries.

    ``fingerprint`` defaults to :func:`code_fingerprint`; tests inject a
    fixed value to exercise invalidation without editing sources.

    **Concurrency contract (the tmp-rename invariant).** Writers stage
    the full entry in a private ``<hash>.tmp.<pid>.<n>`` file and
    publish it with one atomic ``os.replace``; readers only ever open
    the final ``<hash>.json`` path, so a reader racing any number of
    same-key writers sees either no entry or one complete entry — never
    a partial one. Concurrent writers of the same key are last-writer-
    wins (both wrote byte-identical payloads for a pure run anyway). A
    final-path entry that *does* fail to parse (torn by a crash mid-
    ``os.replace`` on a non-atomic filesystem, or external corruption)
    is treated as a miss, never an error.
    """

    def __init__(self, root=None, fingerprint=None):
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key_hash(self, key_data):
        blob = canonical_json({"key": key_data, "code": self.fingerprint})
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path(self, key_data):
        return self.root / ("%s.json" % self.key_hash(key_data))

    def load(self, key_data):
        """The stored payload for ``key_data``, or None on a miss (also on
        a torn/corrupt entry, which is then treated as absent).

        Reads only the final path — in-flight ``.tmp.*`` staging files
        from concurrent writers are invisible by construction.
        """
        try:
            text = self._path(key_data).read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
        except ValueError:
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def store(self, key_data, payload):
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key_data)
        entry = {"key": key_data, "code": self.fingerprint,
                 "payload": payload}
        tmp = path.with_name("%s.tmp.%d.%d"
                             % (path.stem, os.getpid(), next(_TMP_IDS)))
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)
        return path

    def entries(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def clear(self):
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
