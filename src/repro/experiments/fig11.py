"""Figure 11: latency / execution time reduction (Section VII-C).

- Data serving: reduction in mean and 95th-percentile request latency.
- Compute: reduction in execution time.
- Functions: reduction in execution time of the non-leading functions,
  dense and sparse inputs.
"""

from repro.experiments.common import (
    config_by_name,
    pct_reduction,
    run_app,
    run_functions,
)
from repro.experiments.runner import execute, fig11_matrix
from repro.workloads.profiles import COMPUTE_APPS, FUNCTION_NAMES, SERVING_APPS


def serving_rows(cores=8, scale=1.0, config_name="BabelFish"):
    rows = []
    for app in SERVING_APPS:
        base = run_app(app, config_by_name("Baseline"), cores=cores,
                       scale=scale).result
        other = run_app(app, config_by_name(config_name), cores=cores,
                        scale=scale).result
        rows.append({
            "app": app,
            "mean_reduction_pct": round(pct_reduction(
                base.mean_latency, other.mean_latency), 1),
            "tail_reduction_pct": round(pct_reduction(
                base.tail_latency(), other.tail_latency()), 1),
        })
    return rows


def compute_rows(cores=8, scale=1.0, config_name="BabelFish"):
    rows = []
    for app in COMPUTE_APPS:
        base = run_app(app, config_by_name("Baseline"), cores=cores,
                       scale=scale).result
        other = run_app(app, config_by_name(config_name), cores=cores,
                        scale=scale).result
        rows.append({
            "app": app,
            "exec_reduction_pct": round(pct_reduction(
                sum(base.process_cycles.values()),
                sum(other.process_cycles.values())), 1),
        })
    return rows


def function_rows(cores=8, scale=1.0, config_name="BabelFish"):
    rows = []
    for dense in (True, False):
        base = run_functions(config_by_name("Baseline"), dense=dense,
                             cores=cores, scale=scale)
        other = run_functions(config_by_name(config_name), dense=dense,
                              cores=cores, scale=scale)
        for name in FUNCTION_NAMES:
            rows.append({
                "app": "%s-%s" % (name, "dense" if dense else "sparse"),
                "exec_reduction_pct": round(pct_reduction(
                    base.exec_cycles[name], other.exec_cycles[name]), 1),
            })
    return rows


def run_fig11(cores=8, scale=1.0, config_name="BabelFish", jobs=1):
    if jobs > 1:
        execute(fig11_matrix(cores=cores, scale=scale,
                             config_name=config_name), jobs=jobs)
    return {
        "serving": serving_rows(cores, scale, config_name),
        "compute": compute_rows(cores, scale, config_name),
        "functions": function_rows(cores, scale, config_name),
    }


def summarize(results):
    serving = results["serving"]
    compute = results["compute"]
    functions = results["functions"]
    dense = [r for r in functions if r["app"].endswith("dense")]
    sparse = [r for r in functions if r["app"].endswith("sparse")]

    def avg(rows, key):
        return sum(r[key] for r in rows) / len(rows) if rows else 0.0

    return {
        "serving_mean_pct": avg(serving, "mean_reduction_pct"),
        "serving_tail_pct": avg(serving, "tail_reduction_pct"),
        "compute_exec_pct": avg(compute, "exec_reduction_pct"),
        "functions_dense_pct": avg(dense, "exec_reduction_pct"),
        "functions_sparse_pct": avg(sparse, "exec_reduction_pct"),
    }
