"""Figure 10: L2 TLB entry sharing characterization (Section VII-B).

(a) L2 TLB MPKI reduction of BabelFish over Baseline, instruction and
data entries separately; (b) Shared Hits — hits on L2 TLB entries brought
in by a different process — as a fraction of all L2 TLB hits.
"""

from repro.experiments.common import config_by_name, run_app, run_functions
from repro.experiments.runner import execute, fig11_matrix
from repro.workloads.profiles import COMPUTE_APPS, SERVING_APPS


def _mpki_row(app, base_stats, bf_stats):
    def red(kind):
        base = base_stats.mpki(kind)
        return 100.0 * (base - bf_stats.mpki(kind)) / base if base else 0.0

    return {
        "app": app,
        "mpki_d_base": round(base_stats.mpki("d"), 3),
        "mpki_d_babelfish": round(bf_stats.mpki("d"), 3),
        "mpki_d_reduction_pct": round(red("d"), 1),
        "mpki_i_base": round(base_stats.mpki("i"), 3),
        "mpki_i_babelfish": round(bf_stats.mpki("i"), 3),
        "mpki_i_reduction_pct": round(red("i"), 1),
        "shared_hits_d": round(bf_stats.shared_hit_fraction("d"), 3),
        "shared_hits_i": round(bf_stats.shared_hit_fraction("i"), 3),
    }


def run_fig10(cores=8, scale=1.0, apps=None, jobs=1):
    """Rows for Figures 10a and 10b (one row per workload)."""
    apps = apps or (SERVING_APPS + COMPUTE_APPS)
    if jobs > 1:
        # Figure 10 reads the same Baseline/BabelFish runs as Figure 11;
        # prefetch them in parallel, then assemble rows from the cache.
        execute(fig11_matrix(cores=cores, scale=scale), jobs=jobs)
    rows = []
    for app in apps:
        base = run_app(app, config_by_name("Baseline"), cores=cores,
                       scale=scale)
        bf = run_app(app, config_by_name("BabelFish"), cores=cores,
                     scale=scale)
        rows.append(_mpki_row(app, base.result.stats, bf.result.stats))
    for dense in (True, False):
        base = run_functions(config_by_name("Baseline"), dense=dense,
                             cores=cores, scale=scale)
        bf = run_functions(config_by_name("BabelFish"), dense=dense,
                           cores=cores, scale=scale)
        label = "functions-%s" % ("dense" if dense else "sparse")
        rows.append(_mpki_row(label, base.result.stats, bf.result.stats))
    return rows


def summarize(rows):
    serving = [r for r in rows if r["app"] in SERVING_APPS]
    out = {}
    if serving:
        out["serving_data_mpki_reduction_pct"] = sum(
            r["mpki_d_reduction_pct"] for r in serving) / len(serving)
        out["serving_instr_mpki_reduction_pct"] = sum(
            r["mpki_i_reduction_pct"] for r in serving) / len(serving)
    graphchi = [r for r in rows if r["app"] == "graphchi"]
    if graphchi:
        out["graphchi_instr_shared_hits"] = graphchi[0]["shared_hits_i"]
        out["graphchi_data_shared_hits"] = graphchi[0]["shared_hits_d"]
    return out
