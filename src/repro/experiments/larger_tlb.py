"""Section VII-C, "BabelFish vs Larger TLB".

The area BabelFish spends on CCID + O-PC bits could instead buy a larger
conventional L2 TLB (~2x entries per Table III's area ratio). The paper
finds this recovers only a small fraction of BabelFish's gains because
it neither shares page-table state nor lets one process prefetch
translations for another.
"""

from repro.experiments.fig11 import (
    compute_rows,
    function_rows,
    serving_rows,
    summarize,
)
from repro.experiments.runner import execute, fig11_matrix


def run_larger_tlb(cores=8, scale=1.0, jobs=1):
    """Figure-11-style reductions for the BigTLB configuration."""
    if jobs > 1:
        execute(fig11_matrix(cores=cores, scale=scale,
                             config_name="BigTLB"), jobs=jobs)
    return {
        "serving": serving_rows(cores, scale, config_name="BigTLB"),
        "compute": compute_rows(cores, scale, config_name="BigTLB"),
        "functions": function_rows(cores, scale, config_name="BigTLB"),
    }


def run_comparison(cores=8, scale=1.0, jobs=1):
    """Side-by-side: BigTLB vs full BabelFish (both vs Baseline)."""
    from repro.experiments.fig11 import run_fig11
    if jobs > 1:
        execute(fig11_matrix(cores=cores, scale=scale, config_name="BigTLB")
                + fig11_matrix(cores=cores, scale=scale), jobs=jobs)
    bigtlb = summarize(run_larger_tlb(cores, scale))
    babelfish = summarize(run_fig11(cores, scale))
    rows = []
    for key in ("serving_mean_pct", "compute_exec_pct",
                "functions_dense_pct", "functions_sparse_pct"):
        rows.append({"metric": key,
                     "bigtlb_reduction_pct": round(bigtlb[key], 1),
                     "babelfish_reduction_pct": round(babelfish[key], 1)})
    return rows
