"""Policy-zoo ablation grid: every registered TLB policy, side by side.

The registry (:mod:`repro.core.policy`) turns the repo from "one paper
reproduced" into a translation-architecture lab; this experiment is the
lab bench. For every stock workload x zoo config it runs the simulation
three times — reference, scalar fast path, and batch engine — asserts
the three tiers bit-identical (the same triangulation contract
tests/test_fastpath.py pins per config), and tabulates L2 TLB MPKI and
translation latency (cycles per access) for each policy against the
Baseline and BabelFish arms.

Runs are sharded through :func:`repro.experiments.runner.execute`
(``--jobs N``), so the grid rides the same memo/disk caches as every
other experiment. ``run_zoo`` merges its tier into ``BENCH_zoo.json``
at the repo root; CI gates the file with ``python -m repro.obs
perfwatch`` on the policy-gain ratios below, which are deterministic
(pure simulation — no wall clock), so any drift is a real behavior
change, not noise.
"""

import json
import math
import os
import pathlib

from repro.experiments.perf import arch_dict
from repro.experiments.runner import RunRequest, execute, request_overrides
from repro.workloads.profiles import COMPUTE_APPS, SERVING_APPS

#: Every config the grid compares: the paper's arms plus the two
#: related-work policies the registry added.
ZOO_CONFIGS = ("Baseline", "BigTLB", "BabelFish", "BabelFish-TLB",
               "BabelFish-PT", "Victima", "Coalesced")

#: The policies new in the zoo (what the acceptance gate counts).
NEW_POLICIES = ("Victima", "Coalesced")

#: Execution tiers triangulated per cell, as config overrides.
TIER_OVERRIDES = (
    ("reference", {"fastpath": False}),
    ("fastpath", {}),
    ("batch", {"batch": True}),
)

#: Grid scales: smoke is the CI tier (one serving app, small slice);
#: full covers every stock workload.
SCALES = {
    "smoke": {"apps": ("mongodb",), "cores": 2, "scale": 0.05},
    "full": {"apps": SERVING_APPS + COMPUTE_APPS, "cores": 4, "scale": 0.3},
}

#: Ratios perfwatch gates on BENCH_zoo.json (higher is better; all are
#: geometric means over the tier's apps of Baseline/<policy> metrics).
WATCHED_RATIOS = ("babelfish_mpki_gain", "victima_walk_gain",
                  "coalesced_mpki_gain")


def zoo_matrix(apps, cores, scale):
    """The grid's run requests: apps x configs x triangulation tiers."""
    requests = []
    for app in apps:
        for name in ZOO_CONFIGS:
            for _tier, overrides in TIER_OVERRIDES:
                requests.append(RunRequest(
                    kind="app", app=app, config_name=name,
                    overrides=request_overrides(**overrides),
                    cores=cores, scale=scale))
    return requests


def _cell_metrics(result_dict):
    stats = result_dict["stats"]
    accesses = stats["accesses_i"] + stats["accesses_d"]
    instructions = stats["instructions"]
    l2_misses = stats["l2_misses_i"] + stats["l2_misses_d"]
    return {
        "mpki": round(1000.0 * l2_misses / instructions, 4)
        if instructions else 0.0,
        "translation_latency": round(
            stats["translation_cycles"] / accesses, 4) if accesses else 0.0,
        "l2_misses": l2_misses,
        "l3_hits": stats.get("l3_hits_i", 0) + stats.get("l3_hits_d", 0),
        "walks": stats["walks"],
    }


def _geomean(ratios):
    return round(math.exp(sum(math.log(r) for r in ratios) / len(ratios)), 4)


def _gain(grid, apps, config, metric):
    """Geomean over apps of Baseline's ``metric`` / ``config``'s (>1
    means the policy beats Baseline on it)."""
    eps = 1e-9
    return _geomean([
        max(grid[app]["Baseline"][metric], eps)
        / max(grid[app][config][metric], eps)
        for app in apps])


def measure_tier(apps, cores, scale, jobs=1, progress=None, monitor=None):
    """Run the grid at one scale; returns the BENCH tier entry."""
    requests = zoo_matrix(apps, cores, scale)
    runs = execute(requests, jobs=jobs, progress=progress, monitor=monitor)
    by_request = dict(zip(requests, runs))

    grid = {}
    divergent = []
    for app in apps:
        grid[app] = {}
        for name in ZOO_CONFIGS:
            dicts = {}
            for tier, overrides in TIER_OVERRIDES:
                request = RunRequest(
                    kind="app", app=app, config_name=name,
                    overrides=request_overrides(**overrides),
                    cores=cores, scale=scale)
                dicts[tier] = arch_dict(by_request[request].result.as_dict())
            identical = (dicts["reference"] == dicts["fastpath"]
                         == dicts["batch"])
            if not identical:
                divergent.append("%s/%s" % (app, name))
            cell = _cell_metrics(dicts["fastpath"])
            cell["identical"] = identical
            grid[app][name] = cell

    entry = {
        "identical": not divergent,
        "divergent": divergent,
        "apps": list(apps),
        "configs": list(ZOO_CONFIGS),
        "cores": cores,
        "scale": scale,
        "grid": grid,
        "babelfish_mpki_gain": _gain(grid, apps, "BabelFish", "mpki"),
        "victima_walk_gain": _gain(grid, apps, "Victima", "walks"),
        "coalesced_mpki_gain": _gain(grid, apps, "Coalesced", "mpki"),
    }
    return entry


def format_grid(entry):
    """Human-readable MPKI / latency table for one tier entry."""
    lines = []
    lines.append("%-10s %-14s %10s %10s %8s %8s %s"
                 % ("app", "config", "mpki", "latency", "walks",
                    "l3_hits", "identical"))
    for app in entry["apps"]:
        for name in entry["configs"]:
            cell = entry["grid"][app][name]
            lines.append("%-10s %-14s %10.4f %10.4f %8d %8d %s"
                         % (app, name, cell["mpki"],
                            cell["translation_latency"], cell["walks"],
                            cell["l3_hits"], cell["identical"]))
    lines.append("gains vs Baseline (geomean): "
                 + "  ".join("%s=%.3f" % (k, entry[k])
                             for k in WATCHED_RATIOS))
    return "\n".join(lines)


def default_output_path():
    """``BENCH_zoo.json`` at the repository root."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_zoo.json"


def run_zoo(smoke=False, jobs=1, out=None, progress=print, monitor=None):
    """Run the ablation grid and merge its tier into the trajectory.

    Smoke runs only the ``smoke`` tier; full runs both. As with the
    hot-path harness, the write is read-modify-write (tiers not run this
    invocation are preserved) via a same-directory temp file and
    ``os.replace``.
    """
    tiers = ("smoke",) if smoke else ("smoke", "full")
    path = pathlib.Path(out) if out else default_output_path()
    payload = {"bench": "zoo", "tiers": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = None
        if (isinstance(existing, dict)
                and isinstance(existing.get("tiers"), dict)):
            payload["tiers"].update(existing["tiers"])
    for tier in tiers:
        params = SCALES[tier]
        if progress:
            progress("zoo %s: %d apps x %d configs x %d tiers "
                     "(cores=%d scale=%g jobs=%d)"
                     % (tier, len(params["apps"]), len(ZOO_CONFIGS),
                        len(TIER_OVERRIDES), params["cores"],
                        params["scale"], jobs))
        entry = measure_tier(params["apps"], params["cores"],
                             params["scale"], jobs=jobs,
                             progress=progress, monitor=monitor)
        payload["tiers"][tier] = entry
        if progress:
            progress(format_grid(entry))
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    if progress:
        progress("wrote %s" % path)
    return payload
