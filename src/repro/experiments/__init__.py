"""Experiment harnesses: one module per table/figure of Section VII.

Every module exposes a ``run_*`` function returning plain dict rows and a
``format_*`` helper that renders the paper-vs-measured comparison. The
benchmarks under ``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.common import (
    AppRun,
    build_environment,
    deploy_app,
    run_app,
    run_functions,
    clear_run_cache,
    disk_cache,
    set_disk_cache,
    simulation_run_count,
)
from repro.experiments.runcache import DiskRunCache
from repro.experiments.runner import (
    RunRequest,
    execute,
    parallel_map,
    report_matrix,
)

__all__ = [
    "AppRun",
    "DiskRunCache",
    "RunRequest",
    "build_environment",
    "deploy_app",
    "run_app",
    "run_functions",
    "clear_run_cache",
    "disk_cache",
    "execute",
    "parallel_map",
    "report_matrix",
    "set_disk_cache",
    "simulation_run_count",
]
