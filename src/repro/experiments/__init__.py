"""Experiment harnesses: one module per table/figure of Section VII.

Every module exposes a ``run_*`` function returning plain dict rows and a
``format_*`` helper that renders the paper-vs-measured comparison. The
benchmarks under ``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.common import (
    AppRun,
    build_environment,
    deploy_app,
    run_app,
    run_functions,
    clear_run_cache,
)

__all__ = [
    "AppRun",
    "build_environment",
    "deploy_app",
    "run_app",
    "run_functions",
    "clear_run_cache",
]
