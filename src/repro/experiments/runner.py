"""Parallel experiment runner: fan independent runs out across workers.

The reproduction's figures and tables are computed from ~a dozen
independent ``run_app``/``run_functions`` invocations.  Each run builds
its own kernel/simulator and draws all randomness from seeds derived
from the request itself (container index, profile, seed offsets), so
runs are pure functions of their :class:`RunRequest` — executing them in
a ``ProcessPoolExecutor`` is bit-identical to executing them
sequentially, in any order.

``execute(requests, jobs=N)`` resolves each request against the
in-memory memo and the persistent disk cache first, ships only the
misses to workers, and seeds both caches with the returned summaries so
the experiment harnesses (which call ``run_app`` afterwards) hit warm
caches.  ``parallel_map`` is the same machinery for experiment helpers
that are not ``run_app``-shaped but still pure and picklable (Figure 9
rows, mixed-colocation scenarios).

Worker processes install the parent's disk cache (same directory, same
code fingerprint) before running, so a parallel sweep persists its
results exactly like a sequential one.
"""

import concurrent.futures
import dataclasses
import multiprocessing

from repro.experiments import common, runcache
from repro.experiments.runcache import DiskRunCache
from repro.obs import live
from repro.obs.profile import PhaseProfiler
from repro.workloads.profiles import COMPUTE_APPS, SERVING_APPS


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """One cacheable unit of simulation work.

    ``kind`` is ``"app"`` (serving/compute, needs ``app``) or
    ``"functions"`` (the FaaS experiment, uses ``dense``).  ``overrides``
    are ``SimConfig`` field overrides applied on top of the named config
    builder, as a sorted tuple of pairs so requests stay hashable.
    """

    kind: str
    app: str = None
    config_name: str = "Baseline"
    overrides: tuple = ()
    cores: int = 8
    scale: float = 1.0
    containers_per_core: int = None
    dense: bool = True

    def config(self):
        return common.config_by_name(self.config_name,
                                     **dict(self.overrides))

    def label(self):
        parts = ["functions" if self.kind == "functions" else self.app,
                 self.config_name]
        if self.overrides:
            parts.append(",".join("%s=%s" % (k, v)
                                  for k, v in self.overrides))
        if self.kind == "functions":
            parts.append("dense" if self.dense else "sparse")
        parts.append("cores=%d" % self.cores)
        parts.append("scale=%g" % self.scale)
        if self.containers_per_core is not None:
            parts.append("cpc=%d" % self.containers_per_core)
        return " ".join(parts)


def request_overrides(**overrides):
    """Overrides dict -> canonical tuple for :class:`RunRequest`."""
    return tuple(sorted(overrides.items()))


# -- run matrices -------------------------------------------------------------------


def fig11_matrix(cores=8, scale=1.0, config_name="BabelFish"):
    """Baseline + ``config_name`` for every workload — the run set behind
    Figures 10/11, Table II's two-config slice, and bring-up."""
    requests = []
    for app in SERVING_APPS + COMPUTE_APPS:
        for name in ("Baseline", config_name):
            requests.append(RunRequest(kind="app", app=app, config_name=name,
                                       cores=cores, scale=scale))
    for dense in (True, False):
        for name in ("Baseline", config_name):
            requests.append(RunRequest(kind="functions", config_name=name,
                                       dense=dense, cores=cores, scale=scale))
    return requests


def table2_matrix(cores=8, scale=1.0):
    requests = []
    for app in SERVING_APPS + COMPUTE_APPS:
        for name in ("Baseline", "BabelFish-PT", "BabelFish"):
            requests.append(RunRequest(kind="app", app=app, config_name=name,
                                       cores=cores, scale=scale))
    for dense in (True, False):
        for name in ("Baseline", "BabelFish-PT", "BabelFish"):
            requests.append(RunRequest(kind="functions", config_name=name,
                                       dense=dense, cores=cores, scale=scale))
    return requests


def bringup_matrix(cores=8, scale=1.0):
    return [RunRequest(kind="functions", config_name=name, dense=True,
                       cores=cores, scale=scale)
            for name in ("Baseline", "BabelFish")]


def density_matrix(app="mongodb", cores=2, scale=0.35, densities=(2, 4, 6)):
    return [RunRequest(kind="app", app=app, config_name=name, cores=cores,
                       scale=scale, containers_per_core=per_core)
            for per_core in densities
            for name in ("Baseline", "BabelFish")]


def report_matrix(cores=8, scale=1.0):
    """Every cacheable run ``python -m repro.report`` needs."""
    return fig11_matrix(cores=cores, scale=scale)


# -- execution ----------------------------------------------------------------------


def request_key_data(request, config=None):
    """The disk-cache key data for ``request`` (what
    :class:`~repro.experiments.runcache.DiskRunCache` hashes).

    The serving daemon builds this to answer repeat requests straight
    from the store without touching the worker pool.
    """
    config = request.config() if config is None else config
    if request.kind == "functions":
        return runcache.functions_key_data(config, request.dense,
                                           request.cores, request.scale)
    return runcache.app_key_data(request.app, config, request.cores,
                                 request.scale, request.containers_per_core)


def _cached_run(request):
    """Memory- or disk-cached run for ``request``, or None."""
    config = request.config()
    if request.kind == "functions":
        key = ("functions", common.config_cache_key(config), request.dense,
               request.cores, request.scale)
    else:
        key = ("app", request.app, common.config_cache_key(config),
               request.cores, request.scale, request.containers_per_core)
    run = common._RUN_CACHE.get(key)
    if run is not None:
        return run
    cache = common.disk_cache()
    if cache is None:
        return None
    payload = cache.load(request_key_data(request, config))
    if payload is None:
        return None
    if request.kind == "functions":
        return common.remember_functions_run(
            common.rehydrate_functions_run(payload), request.cores,
            request.scale)
    return common.remember_app_run(
        common.rehydrate_app_run(payload), request.cores, request.scale,
        request.containers_per_core)


def run_request(request, monitor=None, use_cache=True):
    """Execute one request in this process (through both cache layers).

    ``monitor`` (a :class:`repro.obs.live.ProgressMonitor`) rides the
    simulator's per-quantum hook for the measured phases — the serving
    daemon's pool workers stream its snapshots back to clients mid-run.
    ``use_cache=False`` forces a fresh simulation (the loadgen's warm-
    class requests, which must exercise the simulator, not the caches).
    """
    if request.kind == "functions":
        return common.run_functions(request.config(), dense=request.dense,
                                    cores=request.cores, scale=request.scale,
                                    monitor=monitor, use_cache=use_cache)
    return common.run_app(request.app, request.config(), cores=request.cores,
                          scale=request.scale,
                          containers_per_core=request.containers_per_core,
                          monitor=monitor, use_cache=use_cache)


def request_summary(request, run):
    """The picklable summary artifacts of a finished request (the shape
    pool workers ship to the parent and the daemon serves to clients)."""
    if request.kind == "functions":
        return common.summarize_functions_run(run, request.cores,
                                              request.scale)
    return common.summarize_app_run(run, request.cores, request.scale,
                                    request.containers_per_core)


def _init_worker(cache_root, fingerprint, progress_queue=None):
    """Pool initializer: give the worker the parent's disk cache (workers
    must not inherit in-memory state assumptions; with the ``spawn``
    start method they inherit nothing at all) and, when the parent wants
    live progress, the shard-progress queue."""
    if cache_root is not None:
        common.set_disk_cache(DiskRunCache(cache_root,
                                           fingerprint=fingerprint))
    if progress_queue is not None:
        live.bind_worker_queue(progress_queue)


def _worker_execute(request):
    """Run a request in a worker and return its picklable summary."""
    run = run_request(request)
    live.post_shard(request.label(), done=1)
    return request_summary(request, run)


def _install_summary(request, summary):
    if request.kind == "functions":
        return common.remember_functions_run(
            common.rehydrate_functions_run(summary), request.cores,
            request.scale)
    return common.remember_app_run(
        common.rehydrate_app_run(summary), request.cores, request.scale,
        request.containers_per_core)


def _pool(jobs, progress_queue=None):
    cache = common.disk_cache()
    root = str(cache.root) if cache is not None else None
    fingerprint = cache.fingerprint if cache is not None else None
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker,
        initargs=(root, fingerprint, progress_queue))


def _progress_channel(monitor, jobs, total):
    """``(manager, queue, aggregator)`` for a parallel leg, or Nones.

    Worker shards post per-item payloads onto a managed queue; the
    parent drains it as futures complete and feeds the deterministic
    merge (:meth:`~repro.obs.live.ProgressAggregator.merged` sums over
    sorted shard labels, so the monitor's totals never depend on
    completion order) into ``monitor``.  The caller must keep the
    returned manager alive for as long as the queue is in use.
    """
    if monitor is None or jobs <= 1:
        return None, None, None
    if monitor.total is None:
        monitor.total = total
    manager = multiprocessing.Manager()
    return manager, manager.Queue(), live.ProgressAggregator()


def execute(requests, jobs=1, progress=None, profiler=None, monitor=None):
    """Resolve ``requests`` through the caches, simulating each distinct
    miss once with ``jobs`` workers.

    Returns the list of runs aligned with ``requests`` (duplicates get
    the same run object), and leaves every run seeded in the in-memory
    memo (and, when a disk cache is installed, persisted) so subsequent
    ``run_app`` / ``run_functions`` calls are hits.

    All wall-clock accounting goes through ``profiler`` (a
    :class:`repro.obs.PhaseProfiler`, one is created when omitted):
    per-request simulate spans drive the progress lines, and the
    ``cache_hit``/``cache_miss`` counters give ``--jobs N`` runs the
    same summary shape as sequential ones.

    ``monitor`` (a :class:`repro.obs.live.ProgressMonitor`) tracks
    simulated requests: sequential legs advance it directly; parallel
    legs aggregate per-shard payloads posted by the workers over a
    managed queue and feed the deterministic merge after every
    completed future.
    """
    profiler = PhaseProfiler() if profiler is None else profiler
    unique = list(dict.fromkeys(requests))
    runs = {}
    pending = []
    with profiler.span("resolve"):
        for request in unique:
            run = _cached_run(request)
            if run is not None:
                runs[request] = run
                profiler.count("cache_hit")
                if monitor is not None:
                    monitor.count("cached")
                if progress:
                    progress("[cached] %s" % request.label())
            else:
                pending.append(request)
    profiler.count("cache_miss", len(pending))

    total = len(pending)
    if total and (jobs <= 1 or total == 1):
        if monitor is not None and monitor.total is None:
            monitor.total = total
        for index, request in enumerate(pending):
            with profiler.span("simulate") as span:
                runs[request] = run_request(request)
            if monitor is not None:
                monitor.advance(1)
            if progress:
                progress("[%d/%d] %s  %.1fs"
                         % (index + 1, total, request.label(), span.seconds))
    elif total:
        manager, queue, aggregator = _progress_channel(monitor, jobs, total)
        with profiler.span("simulate:parallel"), _pool(jobs, queue) as pool:
            submitted = profiler.clock()
            futures = {pool.submit(_worker_execute, request): request
                       for request in pending}
            done = 0
            for future in concurrent.futures.as_completed(futures):
                request = futures[future]
                with profiler.span("install"):
                    runs[request] = _install_summary(request, future.result())
                done += 1
                if aggregator is not None:
                    aggregator.drain(queue)
                    aggregator.feed(monitor)
                # Submit-to-completion wall time for this request (the
                # pool submits everything up front, so this is how long
                # the request took to come back, queueing included).
                waited = profiler.clock() - submitted
                profiler.add("request_wall", waited)
                if progress:
                    progress("[%d/%d] %s  %.1fs"
                             % (done, total, request.label(), waited))
        if manager is not None:
            manager.shutdown()
    if monitor is not None:
        monitor.finish()
    if progress:
        progress(profiler.summary_line())
    return [runs[request] for request in requests]


def _map_worker(fn, index, item):
    """Worker-side wrapper for :func:`parallel_map` items: runs the
    mapped function and posts one shard-progress payload (shard label =
    item index, so the parent's merge is deterministic)."""
    result = fn(item)
    live.post_shard("map:%06d" % index, done=1)
    return result


def parallel_map(fn, items, jobs=1, progress=None, profiler=None,
                 monitor=None):
    """Order-preserving map over pure, picklable work items.

    ``fn`` must be a module-level function.  With ``jobs <= 1`` this is a
    plain loop; otherwise items run across a process pool whose workers
    share the parent's disk cache.  ``monitor`` (a
    :class:`repro.obs.live.ProgressMonitor`) is advanced per completed
    item; parallel legs route per-shard payloads through the managed
    queue exactly like :func:`execute`.
    """
    profiler = PhaseProfiler() if profiler is None else profiler
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        if monitor is not None and monitor.total is None:
            monitor.total = len(items)
        results = []
        for index, item in enumerate(items):
            with profiler.span("map") as span:
                results.append(fn(item))
            if monitor is not None:
                monitor.advance(1)
            if progress:
                progress("[%d/%d] done  %.1fs"
                         % (index + 1, len(items), span.seconds))
        if monitor is not None:
            monitor.finish()
        return results
    results = [None] * len(items)
    manager, queue, aggregator = _progress_channel(monitor, jobs, len(items))
    with profiler.span("map:parallel"), _pool(jobs, queue) as pool:
        submitted = profiler.clock()
        futures = {pool.submit(_map_worker, fn, index, item): index
                   for index, item in enumerate(items)}
        done = 0
        for future in concurrent.futures.as_completed(futures):
            results[futures[future]] = future.result()
            done += 1
            if aggregator is not None:
                aggregator.drain(queue)
                aggregator.feed(monitor)
            if progress:
                progress("[%d/%d] done  %.1fs"
                         % (done, len(items),
                            profiler.clock() - submitted))
    if manager is not None:
        manager.shutdown()
    if monitor is not None:
        monitor.finish()
    return results
