"""``python -m repro.experiments``: run the report's experiment matrix.

``run`` executes every cacheable run behind ``python -m repro.report``
in parallel with progress lines, persisting summaries to the disk run
cache so subsequent report/benchmark invocations are warm.  ``cache``
inspects or clears that store.  ``trace`` captures one fully traced run
(:mod:`repro.obs`) into a directory of artifacts — ``trace.jsonl``,
``trace.chrome.json`` (load in Perfetto / ``chrome://tracing``), and
``summary.json`` — that ``python -m repro.obs`` summarizes and diffs.

``perf`` runs the hot-path harness (:mod:`repro.experiments.perf`): the
same steady-state workload under ``fastpath=True`` and ``fastpath=False``,
asserting bit-identical results and writing the accesses/sec ratio
trajectory to ``BENCH_hotpath.json`` at the repo root.

``churn`` runs the container lifecycle storm
(:mod:`repro.experiments.churn`): hundreds of start/stop/restart cycles
with mid-bring-up kills, the translation sanitizer on, and exact
resource-leak accounting; exits nonzero on any violation or leak.

``zoo`` runs the policy ablation grid (:mod:`repro.experiments.zoo`):
every registered translation policy x the stock workloads, all three
execution tiers triangulated bit-identical per cell, MPKI/latency
grid and policy-gain ratios written to ``BENCH_zoo.json``; exits
nonzero if any cell's tiers diverge.

    python -m repro.experiments run --quick --jobs 4
    python -m repro.experiments trace --quick --out /tmp/obs-bf
    python -m repro.experiments cache --clear
    python -m repro.experiments perf --smoke
    python -m repro.experiments churn --smoke
    python -m repro.experiments zoo --smoke --jobs 4
"""

import argparse
import json
import pathlib
import sys

from repro.experiments.common import (config_by_name, run_app,
                                      set_disk_cache, simulation_run_count)
from repro.experiments.runcache import DiskRunCache, default_cache_dir
from repro.experiments.runner import execute, report_matrix
from repro.obs import (PhaseProfiler, format_summary, summarize,
                       write_chrome_trace, write_jsonl)


def _add_scale_args(parser):
    parser.add_argument("--quick", action="store_true",
                        help="small cores/scale (~1 minute)")
    parser.add_argument("--cores", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)


def resolve_scale_args(parser, args):
    """Validated (cores, scale) with --quick defaults.

    Explicit zero/negative values are errors, not silent fallbacks to
    the defaults (``--cores 0`` must not mean ``--cores 8``).
    """
    if args.cores is not None and args.cores < 1:
        parser.error("--cores must be a positive integer (got %d)"
                     % args.cores)
    if args.scale is not None and args.scale <= 0:
        parser.error("--scale must be a positive number (got %g)"
                     % args.scale)
    cores = args.cores if args.cores is not None else (2 if args.quick else 8)
    scale = args.scale if args.scale is not None else (
        0.25 if args.quick else 1.0)
    return cores, scale


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="execute the report's run matrix (parallel, cached)")
    _add_scale_args(run_parser)
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (default 1)")
    run_parser.add_argument("--cache-dir", default=None,
                            help="disk cache directory (default "
                                 "benchmarks/out/runcache)")
    run_parser.add_argument("--no-disk-cache", action="store_true",
                            help="keep results in memory only")
    run_parser.add_argument("--live", action="store_true",
                            help="live progress lines (throughput/ETA), "
                                 "aggregated across workers under --jobs")

    trace_parser = sub.add_parser(
        "trace", help="capture one traced run (JSONL + Chrome trace)")
    _add_scale_args(trace_parser)
    trace_parser.add_argument("--app", default="mongodb",
                              help="application to trace (default mongodb)")
    trace_parser.add_argument("--config", default="BabelFish",
                              help="config name (default BabelFish)")
    trace_parser.add_argument("--out", default=None,
                              help="capture directory (default "
                                   "benchmarks/out/trace/<app>-<config>)")
    trace_parser.add_argument("--top", type=int, default=10,
                              help="hottest VPNs in the summary (default 10)")
    trace_parser.add_argument("--sink", default=None, metavar="NAME",
                              help="stream events to NAME in the capture "
                                   "directory instead of keeping the ring "
                                   "(.jsonl/.jsonl.gz/.jsonl.zst; the "
                                   "stream replaces trace.jsonl and is "
                                   "replay-verified against the live run)")

    cache_parser = sub.add_parser("cache", help="inspect/clear the run cache")
    cache_parser.add_argument("--dir", default=None,
                              help="cache directory (default "
                                   "benchmarks/out/runcache)")
    cache_parser.add_argument("--clear", action="store_true")

    perf_parser = sub.add_parser(
        "perf", help="hot-path perf harness: fast vs reference, "
                     "writes BENCH_hotpath.json")
    perf_parser.add_argument("--smoke", action="store_true",
                             help="smoke tier only (tiny config; CI)")
    perf_parser.add_argument("--out", default=None,
                             help="output JSON path (default "
                                  "BENCH_hotpath.json at the repo root)")
    perf_parser.add_argument("--repeats", type=int, default=None,
                             help="timing repeats per tier (default: "
                                  "the tier's own setting)")
    perf_parser.add_argument("--live", action="store_true",
                             help="per-tier live progress lines "
                                  "(instructions/sec, punt rate)")

    churn_parser = sub.add_parser(
        "churn", help="container lifecycle storm: start/stop/restart "
                      "with leak + coherence checks")
    churn_parser.add_argument("--cycles", type=int, default=500,
                              help="launch/stop cycles (default 500)")
    churn_parser.add_argument("--smoke", action="store_true",
                              help="small CI tier (40 cycles)")
    churn_parser.add_argument("--config", default="BabelFish",
                              help="config name (default BabelFish)")
    churn_parser.add_argument("--no-sanitize", action="store_true",
                              help="skip the translation sanitizer "
                                   "(leak checks still run)")
    churn_parser.add_argument("--seed", type=int, default=1234)
    churn_parser.add_argument("--live", action="store_true",
                              help="live progress lines (cycles/sec, "
                                   "launch/stop/kill counters)")

    zoo_parser = sub.add_parser(
        "zoo", help="policy ablation grid: every registered policy x "
                    "stock workloads, tiers triangulated, writes "
                    "BENCH_zoo.json")
    zoo_parser.add_argument("--smoke", action="store_true",
                            help="smoke tier only (one app, tiny slice; CI)")
    zoo_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (default 1)")
    zoo_parser.add_argument("--out", default=None,
                            help="output JSON path (default BENCH_zoo.json "
                                 "at the repo root)")
    zoo_parser.add_argument("--cache-dir", default=None,
                            help="disk cache directory (default "
                                 "benchmarks/out/runcache)")
    zoo_parser.add_argument("--no-disk-cache", action="store_true",
                            help="keep results in memory only")
    zoo_parser.add_argument("--live", action="store_true",
                            help="live progress lines, aggregated across "
                                 "workers under --jobs")

    args = parser.parse_args(argv)
    if args.command == "cache":
        return _cache_command(args)
    if args.command == "trace":
        return _trace_command(trace_parser, args)
    if args.command == "perf":
        return _perf_command(perf_parser, args)
    if args.command == "churn":
        return _churn_command(churn_parser, args)
    if args.command == "zoo":
        return _zoo_command(zoo_parser, args)
    return _run_command(run_parser, args)


def _run_command(parser, args):
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer (got %d)" % args.jobs)
    cores, scale = resolve_scale_args(parser, args)
    cache = None
    if not args.no_disk_cache:
        cache = DiskRunCache(args.cache_dir)
        set_disk_cache(cache)
        print("run cache: %s" % cache.root)
    matrix = report_matrix(cores=cores, scale=scale)
    print("executing %d runs (cores=%d scale=%.2f jobs=%d)"
          % (len(matrix), cores, scale, args.jobs))
    monitor = None
    if args.live:
        from repro.obs.live import ProgressMonitor
        monitor = ProgressMonitor(unit="runs", label="matrix", interval=1.0)
    profiler = PhaseProfiler()
    with profiler.span("execute") as span:
        runs = execute(matrix, jobs=args.jobs, progress=print,
                       profiler=profiler, monitor=monitor)
    simulated = (simulation_run_count() if args.jobs <= 1
                 else len(matrix) - (cache.hits if cache else 0))
    print("done: %d runs (%d simulated, %d cached) in %.1fs"
          % (len(runs), max(0, simulated), len(runs) - max(0, simulated),
             span.seconds))
    return 0


def _trace_command(parser, args):
    cores, scale = resolve_scale_args(parser, args)
    out = pathlib.Path(args.out) if args.out else (
        default_cache_dir().parent / "trace"
        / ("%s-%s" % (args.app, args.config)))
    profiler = PhaseProfiler()
    sink_path = None
    if args.sink:
        sink_path = out / args.sink
        config = config_by_name(args.config,
                                trace={"sink": str(sink_path)})
    else:
        config = config_by_name(args.config, trace=True)
    print("tracing %s under %s (cores=%d scale=%.2f) -> %s"
          % (args.app, args.config, cores, scale, out))
    with profiler.span("simulate"):
        # The cache stores only aggregate snapshots; the event ring lives
        # on the live simulator, so a capture always runs fresh.
        run = run_app(args.app, config, cores=cores, scale=scale,
                      use_cache=False)
    snapshot = run.result.obs
    tracer = run.env.sim.tracer
    if sink_path is not None:
        with profiler.span("finalize"):
            tracer.finalize()
            # Self-verify the stream: replaying the published file
            # through fresh emitters must rebuild the live run's
            # metrics exactly (the ring-equivalence property, checked
            # on every capture because it is cheap relative to the run).
            from repro.obs import replay_events
            from repro.obs.export import read_jsonl
            event_dicts = list(read_jsonl(sink_path))
            replayed = replay_events(event_dicts)
            if replayed.registry.snapshot() != tracer.registry.snapshot():
                print("stream replay DIVERGED from the live run: %s"
                      % sink_path, file=sys.stderr)
                return 1
        from repro.obs import event_from_dict
        events = [event_from_dict(d) for d in event_dicts]
    else:
        events = list(tracer.events)
    with profiler.span("export"):
        out.mkdir(parents=True, exist_ok=True)
        if sink_path is None:
            kept = write_jsonl(events, out / "trace.jsonl")
        else:
            kept = len(events)
        write_chrome_trace(events, out / "trace.chrome.json",
                           metadata={"app": args.app, "config": args.config,
                                     "cores": cores, "scale": scale})
        # The summary carries the *dense-pid* snapshot (as_dict remaps
        # raw pids to creation-order indices) so ``python -m repro.obs
        # diff`` between two captures compares like with like; the raw
        # pids survive in trace.jsonl, next to the events that carry them.
        result_dict = run.result.as_dict()
        capture = {
            "app": args.app,
            "config": args.config,
            "cores": cores,
            "scale": scale,
            "obs": result_dict.pop("obs"),
            "result": result_dict,
        }
        (out / "summary.json").write_text(
            json.dumps(capture, indent=2, sort_keys=True) + "\n")
    print(format_summary(summarize(snapshot, top=args.top)))
    print("captured %d events (%d emitted, %d dropped) -> %s"
          % (kept, snapshot["events_emitted"], snapshot["events_dropped"],
             out))
    if sink_path is not None:
        print("streamed %d events -> %s (replay verified)"
              % (kept, sink_path))
    print(profiler.summary_line())
    return 0


def _perf_command(parser, args):
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be a positive integer (got %d)"
                     % args.repeats)
    from repro.experiments.perf import run_harness
    run_harness(smoke=args.smoke, out=args.out, repeats=args.repeats,
                live=args.live)
    return 0


def _churn_command(parser, args):
    if args.cycles < 1:
        parser.error("--cycles must be a positive integer (got %d)"
                     % args.cycles)
    from repro.experiments.churn import format_churn, run_churn
    cycles = 40 if args.smoke else args.cycles
    monitor = None
    if args.live:
        from repro.obs.live import ProgressMonitor
        monitor = ProgressMonitor(total=cycles, unit="cycles",
                                  label="churn", interval=1.0)
    result = run_churn(cycles=cycles, config_name=args.config,
                       sanitize=not args.no_sanitize, seed=args.seed,
                       progress=monitor)
    print(format_churn(result))
    return 0 if result.clean else 1


def _zoo_command(parser, args):
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer (got %d)" % args.jobs)
    from repro.experiments.zoo import run_zoo
    if not args.no_disk_cache:
        cache = DiskRunCache(args.cache_dir)
        set_disk_cache(cache)
        print("run cache: %s" % cache.root)
    monitor = None
    if args.live:
        from repro.obs.live import ProgressMonitor
        monitor = ProgressMonitor(unit="runs", label="zoo", interval=1.0)
    payload = run_zoo(smoke=args.smoke, jobs=args.jobs, out=args.out,
                      progress=print, monitor=monitor)
    ran = ("smoke",) if args.smoke else ("smoke", "full")
    divergent = [cell for name in ran
                 for cell in payload["tiers"][name].get("divergent", ())]
    if divergent:
        print("tier divergence in: %s" % ", ".join(sorted(set(divergent))),
              file=sys.stderr)
        return 1
    return 0


def _cache_command(args):
    cache = DiskRunCache(args.dir)
    entries = cache.entries()
    total = sum(path.stat().st_size for path in entries)
    print("cache dir:  %s" % cache.root)
    print("entries:    %d (%.1f KiB)" % (len(entries), total / 1024.0))
    print("code hash:  %s" % cache.fingerprint[:16])
    if args.clear:
        removed = cache.clear()
        print("cleared:    %d entries" % removed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
