"""``python -m repro.experiments``: run the report's experiment matrix.

``run`` executes every cacheable run behind ``python -m repro.report``
in parallel with progress lines, persisting summaries to the disk run
cache so subsequent report/benchmark invocations are warm.  ``cache``
inspects or clears that store.

    python -m repro.experiments run --quick --jobs 4
    python -m repro.experiments cache
    python -m repro.experiments cache --clear
"""

import argparse
import sys
import time

from repro.experiments.common import set_disk_cache, simulation_run_count
from repro.experiments.runcache import DiskRunCache, default_cache_dir
from repro.experiments.runner import execute, report_matrix


def _add_scale_args(parser):
    parser.add_argument("--quick", action="store_true",
                        help="small cores/scale (~1 minute)")
    parser.add_argument("--cores", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)


def resolve_scale_args(parser, args):
    """Validated (cores, scale) with --quick defaults.

    Explicit zero/negative values are errors, not silent fallbacks to
    the defaults (``--cores 0`` must not mean ``--cores 8``).
    """
    if args.cores is not None and args.cores < 1:
        parser.error("--cores must be a positive integer (got %d)"
                     % args.cores)
    if args.scale is not None and args.scale <= 0:
        parser.error("--scale must be a positive number (got %g)"
                     % args.scale)
    cores = args.cores if args.cores is not None else (2 if args.quick else 8)
    scale = args.scale if args.scale is not None else (
        0.25 if args.quick else 1.0)
    return cores, scale


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.experiments",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="execute the report's run matrix (parallel, cached)")
    _add_scale_args(run_parser)
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (default 1)")
    run_parser.add_argument("--cache-dir", default=None,
                            help="disk cache directory (default "
                                 "benchmarks/out/runcache)")
    run_parser.add_argument("--no-disk-cache", action="store_true",
                            help="keep results in memory only")

    cache_parser = sub.add_parser("cache", help="inspect/clear the run cache")
    cache_parser.add_argument("--dir", default=None,
                              help="cache directory (default "
                                   "benchmarks/out/runcache)")
    cache_parser.add_argument("--clear", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "cache":
        return _cache_command(args)
    return _run_command(run_parser, args)


def _run_command(parser, args):
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer (got %d)" % args.jobs)
    cores, scale = resolve_scale_args(parser, args)
    cache = None
    if not args.no_disk_cache:
        cache = DiskRunCache(args.cache_dir)
        set_disk_cache(cache)
        print("run cache: %s" % cache.root)
    matrix = report_matrix(cores=cores, scale=scale)
    print("executing %d runs (cores=%d scale=%.2f jobs=%d)"
          % (len(matrix), cores, scale, args.jobs))
    started = time.time()
    runs = execute(matrix, jobs=args.jobs, progress=print)
    elapsed = time.time() - started
    simulated = (simulation_run_count() if args.jobs <= 1
                 else len(matrix) - (cache.hits if cache else 0))
    print("done: %d runs (%d simulated, %d cached) in %.1fs"
          % (len(runs), max(0, simulated), len(runs) - max(0, simulated),
             elapsed))
    return 0


def _cache_command(args):
    cache = DiskRunCache(args.dir)
    entries = cache.entries()
    total = sum(path.stat().st_size for path in entries)
    print("cache dir:  %s" % cache.root)
    print("entries:    %d (%.1f KiB)" % (len(entries), total / 1024.0))
    print("code hash:  %s" % cache.fingerprint[:16])
    if args.clear:
        removed = cache.clear()
        print("cleared:    %d entries" % removed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
