"""Table II: fraction of each improvement due to L2 TLB effects.

Measured by ablation: ``BabelFish-PT`` enables page-table sharing only,
so the extra improvement the full configuration adds on top of it is the
L2 TLB entry-sharing contribution::

    fraction_tlb = (metric_pt_only - metric_full) / (metric_base - metric_full)

Note (EXPERIMENTS.md discusses this): in our scaled-down system the
pte_t cache-line reuse that page-table sharing gives is relatively
stronger than in the paper's full-size testbed, so the absolute fractions
come out lower; the *ordering* across applications (HTTPd/MongoDB highest,
ArangoDB/FIO lower, GraphChi and sparse functions near zero) is the
reproduced shape.
"""

from repro.experiments.common import config_by_name, run_app, run_functions
from repro.experiments.runner import execute, table2_matrix
from repro.workloads.profiles import COMPUTE_APPS, FUNCTION_NAMES, SERVING_APPS


def _fraction(base, pt_only, full):
    total = base - full
    if not total:
        return 0.0
    return max(-1.0, min(1.0, (pt_only - full) / total))


def run_table2(cores=8, scale=1.0, jobs=1):
    if jobs > 1:
        execute(table2_matrix(cores=cores, scale=scale), jobs=jobs)
    rows = []
    for app in SERVING_APPS + COMPUTE_APPS:
        runs = {name: run_app(app, config_by_name(name), cores=cores,
                              scale=scale).result
                for name in ("Baseline", "BabelFish-PT", "BabelFish")}
        if app in SERVING_APPS:
            metric = {k: r.mean_latency for k, r in runs.items()}
        else:
            metric = {k: sum(r.process_cycles.values())
                      for k, r in runs.items()}
        rows.append({
            "app": app,
            "tlb_fraction": round(_fraction(metric["Baseline"],
                                            metric["BabelFish-PT"],
                                            metric["BabelFish"]), 3),
        })
    for dense in (True, False):
        runs = {name: run_functions(config_by_name(name), dense=dense,
                                    cores=cores, scale=scale)
                for name in ("Baseline", "BabelFish-PT", "BabelFish")}
        for fn in FUNCTION_NAMES:
            rows.append({
                "app": "%s-%s" % (fn, "dense" if dense else "sparse"),
                "tlb_fraction": round(_fraction(
                    runs["Baseline"].exec_cycles[fn],
                    runs["BabelFish-PT"].exec_cycles[fn],
                    runs["BabelFish"].exec_cycles[fn]), 3),
            })
    return rows


def summarize(rows):
    by_app = {r["app"]: r["tlb_fraction"] for r in rows}

    def avg(names):
        vals = [by_app[n] for n in names if n in by_app]
        return sum(vals) / len(vals) if vals else 0.0

    return {
        "mongodb": by_app.get("mongodb"),
        "arangodb": by_app.get("arangodb"),
        "httpd": by_app.get("httpd"),
        "serving_average": avg(SERVING_APPS),
        "graphchi": by_app.get("graphchi"),
        "fio": by_app.get("fio"),
        "compute_average": avg(COMPUTE_APPS),
        "dense_average": avg(["%s-dense" % f for f in FUNCTION_NAMES]),
        "sparse_average": avg(["%s-sparse" % f for f in FUNCTION_NAMES]),
    }
