"""Hot-path perf harness: fast path vs reference, on a steady-state trace.

The fast path (:mod:`repro.sim.fastpath`) accelerates the *repeat* case —
the L1-TLB-hit, L1-cache-hit stream that dominates once an application
reaches steady state. The stock synthetic workloads deliberately sweep
large working sets (their point is to miss), so at benchmark scale they
spend most records on compulsory misses and understate what the fast
path buys real experiment runs. This harness therefore measures a
*steady-state hot-locality* trace over a deployed mongodb environment: a
small code/heap/dataset working set that is TLB-resident after warm-up
(the same page-level locality BabelFish itself exploits), plus a cold
tail so the slow path stays exercised.

Each tier runs the identical workload twice — ``fastpath=True`` and
``fastpath=False`` — asserts the two ``RunResult.as_dict()`` are
bit-identical, and reports the accesses/sec ratio. The trajectory file
``BENCH_hotpath.json`` (repo root) is machine-normalized: the tracked
metric is the fast/reference *ratio*; the raw accesses/sec figures ride
along for local context only and are expected to differ across machines.

Entry points: ``python -m repro.experiments perf [--smoke]`` and
``benchmarks/bench_hotpath.py`` both call :func:`run_harness`.
"""

import json
import os
import pathlib
import random
import time

from repro.experiments.common import (build_environment, config_by_name,
                                      deploy_app)
from repro.kernel.vma import SegmentKind
from repro.workloads.profiles import APP_PROFILES

#: Application deployed under the hot trace (working set comfortably
#: larger than the hot sets below: 64 binary pages, 1536 private pages,
#: 6144 dataset pages).
HOT_APP = "mongodb"

#: Hot working-set sizes (pages), all warmed by ``deploy_app`` and small
#: enough that the per-container data set (heap + hot dataset slice)
#: stays resident in the 64-entry L1 DTLB even with two containers
#: co-located per core.
HOT_CODE_PAGES = 12
HOT_HEAP_PAGES = 20
HOT_MMAP_PAGES = 10
#: Cold dataset tail: 3% of records roam this, keeping walks/misses in
#: the measured stream so the comparison is not a pure-memo microbench.
COLD_MMAP_PAGES = 2000

#: Tier definitions: (cores, trace records per container, timing repeats,
#: optional config overrides). The ``batch`` tier runs the medium
#: workload through the batch engine (``SimConfig.batch``) and also
#: times the plain fast path on the same workload, so its entry carries
#: both ratios (``speedup`` = batch/reference, ``fastpath_speedup`` =
#: fast/reference) and the batch engine's win over the scalar fast path
#: is visible within a single tier.
TIERS = {
    "smoke": {"cores": 1, "records": 4_000, "repeats": 1},
    "medium": {"cores": 2, "records": 60_000, "repeats": 2},
    "batch": {"cores": 2, "records": 60_000, "repeats": 2,
              "overrides": {"batch": True}},
}


def hot_trace(container_index, records, seed_offset=0):
    """Steady-state trace: 45% ifetch over a hot code set, 35% heap
    (30% writes), 17% hot dataset reads, 3% cold dataset tail."""
    rng = random.Random(1000 + container_index + seed_offset)
    rand = rng.random
    randrange = rng.randrange
    out = []
    append = out.append
    for _ in range(records):
        r = rand()
        gap = randrange(2, 5)
        if r < 0.45:
            append((0, SegmentKind.CODE, randrange(HOT_CODE_PAGES),
                    randrange(64), gap, None))
        elif r < 0.80:
            kind = 2 if rand() < 0.30 else 1
            append((kind, SegmentKind.HEAP, randrange(HOT_HEAP_PAGES),
                    randrange(64), gap, None))
        elif r < 0.97:
            append((1, SegmentKind.MMAP, randrange(HOT_MMAP_PAGES),
                    randrange(64), gap, None))
        else:
            append((1, SegmentKind.MMAP, randrange(COLD_MMAP_PAGES),
                    randrange(64), gap, None))
    return out


def run_hot(config, cores, records, monitor=None):
    """Deploy, warm (quarter-length trace + reset), then time the
    measured trace. Returns ``(as_dict, total_accesses, seconds)``.

    ``monitor`` (a :class:`repro.obs.live.ProgressMonitor`) is attached
    to the simulator for the measured run only — the run loop advances
    it once per quantum with instructions consumed and the batch
    engine's punt total.
    """
    env = build_environment(config, cores=cores)
    deployment = deploy_app(env, APP_PROFILES[HOT_APP])
    sim = env.sim
    warm = max(1, records // 4)
    for container in deployment.containers:
        sim.attach(container.proc,
                   hot_trace(container.index, warm, seed_offset=500_000),
                   container.core)
    sim.run()
    sim.reset_measurement()
    env.kernel.reset_fault_counters()
    env.kernel.clear_accessed_bits()
    sim.progress = monitor

    # Traces are materialized before the clock starts so record
    # generation is not part of the measurement, and the clock starts
    # only after attachment: attach() is setup, not stream execution —
    # under batch mode it compiles the trace to flat arrays (a one-time
    # cost amortized across a run), and timing it inside the measured
    # region charged the batch tier for work the scalar tiers never do.
    traces = [(c, hot_trace(c.index, records)) for c in deployment.containers]
    for container, trace in traces:
        sim.attach(container.proc, trace, container.core)
    started = time.perf_counter()
    result = sim.run()
    seconds = time.perf_counter() - started
    return result.as_dict(), records * len(deployment.containers), seconds


def arch_dict(run_dict):
    """The architectural view of a ``RunResult.as_dict()``: the batch
    engine's ``"batch"`` diagnostics section (punt attribution,
    claim-length histograms — properties of the *engine*, not of the
    simulated machine) is stripped, because bit-identity claims are
    about the architecture only."""
    if "batch" in run_dict:
        run_dict = dict(run_dict)
        del run_dict["batch"]
    return run_dict


def measure_tier(tier, config_name="BabelFish", repeats=None, monitor=None):
    """One tier, both ways; raises if the results are not bit-identical.

    Tiers with config ``overrides`` (the batch tier) time three ways —
    accelerated (overrides applied), plain fast path, and reference —
    and assert all three results identical, so the entry reports the
    accelerated ratio *and* the fast-path ratio on the same workload.
    Batch-tier entries also carry the engine's punt attribution, making
    the residual punt count (and its cause split) part of the tracked
    trajectory.
    """
    spec = TIERS[tier]
    repeats = repeats or spec["repeats"]
    cores, records = spec["cores"], spec["records"]
    overrides = spec.get("overrides") or {}
    fast_config = config_by_name(config_name, **overrides)
    plain_config = config_by_name(config_name) if overrides else None
    reference_config = config_by_name(config_name, fastpath=False)

    fast_seconds = []
    plain_seconds = []
    reference_seconds = []
    fast_dict = reference_dict = accesses = None
    for _ in range(repeats):
        fast_dict, accesses, seconds = run_hot(fast_config, cores, records,
                                               monitor=monitor)
        fast_seconds.append(seconds)
        reference_dict, _, seconds = run_hot(reference_config, cores,
                                             records, monitor=monitor)
        reference_seconds.append(seconds)
        if arch_dict(fast_dict) != reference_dict:
            raise AssertionError(
                "fast path diverged from reference on tier %r (%s)"
                % (tier, config_name))
        if plain_config is not None:
            plain_dict, _, seconds = run_hot(plain_config, cores, records,
                                             monitor=monitor)
            plain_seconds.append(seconds)
            if plain_dict != reference_dict:
                raise AssertionError(
                    "plain fast path diverged from reference on tier %r (%s)"
                    % (tier, config_name))
    fast_best = min(fast_seconds)
    reference_best = min(reference_seconds)
    entry = {
        "config": config_name,
        "cores": cores,
        "records_per_container": records,
        "accesses": accesses,
        "identical": True,
        "speedup": round(reference_best / fast_best, 3),
        "fast_accesses_per_sec": round(accesses / fast_best),
        "reference_accesses_per_sec": round(accesses / reference_best),
    }
    if overrides:
        entry["overrides"] = dict(overrides)
    if plain_seconds:
        entry["fastpath_speedup"] = round(reference_best / min(plain_seconds), 3)
    diagnostics = fast_dict.get("batch")
    if diagnostics is not None:
        entry["punts"] = {"total": diagnostics["punts"],
                          "causes": dict(diagnostics["punt_causes"]),
                          "claims": diagnostics["claims"],
                          "claimed_records": diagnostics["claimed_records"]}
    return entry


def default_output_path():
    """``BENCH_hotpath.json`` at the repository root."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_hotpath.json"


def run_harness(smoke=False, out=None, repeats=None, progress=print,
                live=False):
    """Run the tier set (smoke: smoke + batch; full: all tiers), merge
    the new entries into the trajectory JSON, and return the payload.

    ``live=True`` attaches a per-tier
    :class:`~repro.obs.live.ProgressMonitor` to every timed run, so
    long tiers show throughput/punt lines on stderr while they measure
    (the monitor rides the simulator's per-quantum hook; it is part of
    the timed region, which is exactly the overhead the obs benchmark
    bounds).

    The write is read-modify-write: tiers already present in the file
    but not run this invocation (e.g. ``medium`` during a ``--smoke``
    CI run) are preserved, so quick runs extend the trajectory instead
    of erasing it. The file lands via a same-directory temp file and
    ``os.replace`` so a crash mid-write never truncates the history.
    """
    tiers = ["smoke", "batch"] if smoke else ["smoke", "medium", "batch"]
    path = pathlib.Path(out) if out else default_output_path()
    payload = {"bench": "hotpath", "app": HOT_APP, "tiers": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = None
        if (isinstance(existing, dict)
                and isinstance(existing.get("tiers"), dict)):
            payload["tiers"].update(existing["tiers"])
    for tier in tiers:
        progress("hotpath %s: cores=%d records=%d ..."
                 % (tier, TIERS[tier]["cores"], TIERS[tier]["records"]))
        monitor = None
        if live:
            from repro.obs.live import ProgressMonitor
            monitor = ProgressMonitor(unit="instructions",
                                      label="perf:%s" % tier, interval=2.0)
        entry = measure_tier(tier, repeats=repeats, monitor=monitor)
        payload["tiers"][tier] = entry
        progress("hotpath %s: %.2fx (%d vs %d accesses/sec, identical=%s)"
                 % (tier, entry["speedup"], entry["fast_accesses_per_sec"],
                    entry["reference_accesses_per_sec"], entry["identical"]))
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    progress("wrote %s" % path)
    return payload
