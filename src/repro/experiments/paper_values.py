"""Reference numbers reported in the paper (for paper-vs-measured rows).

Values marked approximate (~) are read off figures; exact ones come from
the text or tables. All reductions are "percent lower than Baseline".
"""

#: Section VII / abstract headline numbers.
HEADLINE = {
    "serving_mean_latency_reduction_pct": 11.0,
    "serving_tail_latency_reduction_pct": 18.0,
    "compute_exec_reduction_pct": 11.0,
    "function_bringup_reduction_pct": 8.0,
    "function_exec_reduction_dense_pct": 10.0,
    "function_exec_reduction_sparse_pct": 55.0,
    "shared_translations_containerized_pct": 53.0,
    "shared_translations_serverless_pct": 93.0,
}

#: Figure 9 (Section VII-A): pte_t shareability. Shareable fraction of
#: total pte_ts (approximate, read off the figure), plus text numbers.
FIG9 = {
    "avg_shareable_fraction": 0.53,          # "53% of the total baseline pte_ts"
    "functions_shareable_fraction": 0.93,
    "active_reduction_serving_compute": 0.30,  # "average reduction in total active pte_ts ... 30%"
    "active_reduction_functions": 0.57,        # "reduces the total active pte_ts by 57%"
    "thp_fraction_of_total": 0.08,             # "THP pte_ts are on average 8% of total"
    "functions_unshareable_fraction": 0.06,    # "account for only ~6% of pte_ts"
}

#: Figure 10a (Section VII-B): L2 TLB MPKI reduction (text gives serving).
FIG10A = {
    "serving_data_mpki_reduction_pct": 66.0,
    "serving_instr_mpki_reduction_pct": 96.0,
}

#: Figure 10b: shared hits as a fraction of all L2 TLB hits (text).
FIG10B = {
    "graphchi_instr_shared_hits": 0.48,
    "graphchi_data_shared_hits": 0.12,
}

#: Figure 11 (Section VII-C): latency / execution-time reductions.
FIG11 = {
    "serving_mean_pct": 11.0,
    "serving_tail_pct": 18.0,
    "compute_exec_pct": 11.0,
    "functions_dense_pct": 10.0,
    "functions_sparse_pct": 55.0,
}

#: Table II: fraction of each gain that comes from L2 TLB effects.
TABLE2 = {
    "mongodb": 0.77,
    "arangodb": 0.25,
    "httpd": 0.81,
    "serving_average": 0.61,
    "graphchi": 0.11,
    "fio": 0.29,
    "compute_average": 0.20,
    "dense_average": 0.20,
    "sparse_average": 0.01,
}

#: Table III: L2 TLB CACTI parameters at 22nm.
TABLE3 = {
    "Baseline": {"area_mm2": 0.030, "access_time_ps": 327.0,
                 "dyn_energy_pj": 10.22, "leakage_mw": 4.16},
    "BabelFish": {"area_mm2": 0.062, "access_time_ps": 456.0,
                  "dyn_energy_pj": 21.97, "leakage_mw": 6.22},
}

#: Section VII-C: larger conventional L2 TLB instead of BabelFish.
LARGER_TLB = {
    "serving_mean_pct": 2.1,
    "compute_exec_pct": 0.6,
    "functions_dense_pct": 1.1,
    "functions_sparse_pct": 0.3,
}

#: Section VII-D: resource analysis.
RESOURCES = {
    "core_area_overhead_pct": 0.4,
    "core_area_overhead_no_pc_pct": 0.07,
    "maskpage_space_overhead_pct": 0.19,
    "counter_space_overhead_pct": 0.048,
    "total_space_overhead_pct": 0.238,
    "kernel_loc": {"mmu": 300, "fault_handler": 200, "pt_management": 800},
}
