"""Container churn: correctness under FaaS-style start/stop/restart storms.

Unlike the figure experiments, which measure steady-state translation
performance, this one stresses the *lifecycle* path: a rolling pool of
containers is launched and torn down hundreds of times, some of them
killed mid-bring-up, and at the end every kernel resource is checked
against a pre-churn baseline. It exists to pin down three failure modes
the teardown subsystem (``repro.kernel.lifecycle``) closes:

1. **Stale translations on exit** — exits issue PCID/CCID-scoped TLB
   shootdowns *before* frames are decref'd, and the sanitizer
   quarantines freed frames so any surviving entry that resolves to one
   is a recorded violation, not a silent wrong translation.
2. **PCID aliasing** — the allocator recycles released PCIDs (with a
   scoped flush on reuse) instead of deriving them from the pid, which
   aliases two live processes once pids wrap the PCID space. The run
   defaults to a shrunken PCID namespace so recycling actually happens
   within 500 cycles.
3. **O-PC writer-slot leaks** — MaskPage slots freed on exit are
   refilled by later writers, so a long churn never exhausts the 32-slot
   bitmask or accumulates MaskPage frames.

The leak check is exact equality of resource snapshots (frames by kind,
MaskPage count and writer slots, live PCIDs, live processes) taken after
an identical warm launch+stop round and after the churn storm.

``summary()`` is deterministic and pid-free, so a fastpath run and a
reference run of the same seed must produce bit-identical summaries
(tests/test_fastpath.py relies on this).
"""

import dataclasses
import random

from repro.experiments.common import build_environment, config_by_name
from repro.kernel.audit import audit_kernel
from repro.kernel.frames import FrameKind
from repro.kernel.lifecycle import PCIDAllocator
from repro.sim.stats import MMUStats
from repro.workloads.profiles import FAAS_BASE_IMAGE

#: Default PCID namespace width for churn runs: capacity 2^8 - 1 = 255
#: live PCIDs, so a 500-cycle storm recycles a few hundred of them.
CHURN_PCID_BITS = 8

#: How many containers stay live at any moment (FaaS keep-warm pool).
LIVE_POOL = 3


def resource_snapshot(env):
    """Every kernel-owned resource a clean teardown must return.

    Keys are stable and values are plain ints so two snapshots can be
    compared with ``==`` and diffed key-by-key.
    """
    kernel = env.kernel
    allocator = kernel.allocator
    snap = {
        "frames_total": allocator.allocated,
        "frames_data": allocator.count(FrameKind.DATA),
        "frames_file": allocator.count(FrameKind.FILE),
        "frames_page_table": allocator.count(FrameKind.PAGE_TABLE),
        "frames_mask_page": allocator.count(FrameKind.MASK_PAGE),
        "pcids_live": kernel.pcids.live,
        "processes": len(kernel.processes),
    }
    mask_dir = getattr(kernel.policy, "mask_dir", None)
    if mask_dir is not None:
        snap["mask_pages"] = mask_dir.total_pages
        snap["mask_writer_slots"] = sum(page.writers for page in mask_dir)
    return snap


def snapshot_diff(baseline, final):
    """Leaked (or vanished) resources: key -> (baseline, final)."""
    return {key: (baseline[key], final.get(key))
            for key in baseline if final.get(key) != baseline[key]}


@dataclasses.dataclass
class ChurnResult:
    config_name: str
    cycles: int
    launches: int
    stops: int
    kills: int
    pcid_recycles: int
    baseline: dict
    final: dict
    leaks: dict
    violations: list
    audit_findings: list
    stats: object  # merged MMUStats of the whole storm
    kernel_counters: dict
    core_cycles: int

    @property
    def clean(self):
        return not self.leaks and not self.violations \
            and not self.audit_findings

    def summary(self):
        """Deterministic, pid-free digest: bit-identical across the
        fastpath and reference simulator paths for the same seed."""
        return {
            "config": self.config_name,
            "cycles": self.cycles,
            "launches": self.launches,
            "stops": self.stops,
            "kills": self.kills,
            "pcid_recycles": self.pcid_recycles,
            "baseline": dict(self.baseline),
            "final": dict(self.final),
            "leaks": {k: list(v) for k, v in self.leaks.items()},
            "kernel": dict(self.kernel_counters),
            "stats": self.stats.as_dict(),
            "core_cycles": self.core_cycles,
        }


def _kill_launch(env, rng, core):
    """Fault injection: a container killed mid-bring-up.

    The truncated trace leaves whatever TLB/cache state the partial
    bring-up built for the exit path to clean up; ``detach`` models the
    scheduler yanking the task before ``docker rm``.
    """
    engine, sim = env.engine, env.sim
    container, _fork_cycles = engine.launch(FAAS_BASE_IMAGE)
    records = engine.bringup_records(container)
    cut = rng.randrange(4, max(5, len(records) // 2))
    sim.attach(container.proc, records[:cut], core)
    sim.run()
    sim.detach(container.proc)
    return container


def run_churn(cycles=500, config_name="BabelFish", sanitize=True,
              fastpath=True, batch=False, cores=2, live_pool=LIVE_POOL,
              kill_rate=0.1, pcid_bits=CHURN_PCID_BITS, seed=1234,
              progress=None):
    """Run the start/stop/restart storm and check it leaked nothing.

    Each cycle launches one container (with probability ``kill_rate`` it
    is killed mid-bring-up instead of completing) and, once the
    keep-warm pool is full, stops a random live one. The baseline
    snapshot is taken after one warm launch+stop round so image files,
    the zygote, and allocator warm state are excluded from the leak
    accounting.

    ``progress`` (a :class:`repro.obs.live.ProgressMonitor`) is advanced
    once per storm cycle with launch/kill/stop counters, so long storms
    show live cycles/sec lines without touching the simulated state.
    """
    config = config_by_name(config_name, sanitize=sanitize,
                            fastpath=fastpath, batch=batch)
    env = build_environment(config, cores=cores)
    if pcid_bits is not None:
        # Shrink the namespace before any process exists so the whole
        # run — zygote included — lives under it and recycling happens
        # within a few hundred cycles.
        if env.kernel.processes:
            raise RuntimeError("PCID namespace must be reseated before "
                               "any process is spawned")
        env.kernel.pcids = PCIDAllocator(pcid_bits)
    engine, sim, kernel = env.engine, env.sim, env.kernel
    rng = random.Random(seed)

    # Warm round: create the zygote and one pool's worth of containers,
    # tear them down, and snapshot. Everything the round leaves behind
    # (image page-cache frames, the zygote's tables, one MaskPage round)
    # is steady state, not a leak.
    warm = [engine.launch_timed(FAAS_BASE_IMAGE, sim,
                                core_id=i % cores)[0]
            for i in range(live_pool)]
    for container in warm:
        engine.stop(container)
    baseline = resource_snapshot(env)

    if progress is not None and progress.total is None:
        progress.total = cycles
    launches = stops = kills = 0
    pool = []
    for cycle in range(cycles):
        core = cycle % cores
        if rng.random() < kill_rate:
            pool.append(_kill_launch(env, rng, core))
            kills += 1
            if progress is not None:
                progress.count("kills")
        else:
            container, _cycles = engine.launch_timed(
                FAAS_BASE_IMAGE, sim, core_id=core)
            pool.append(container)
        launches += 1
        if len(pool) > live_pool:
            victim = pool.pop(rng.randrange(len(pool)))
            engine.stop(victim)
            stops += 1
            if progress is not None:
                progress.count("stops")
        if progress is not None:
            progress.count("launches")
            progress.advance(1)

    # Drain the pool: the storm must end exactly where it began.
    while pool:
        engine.stop(pool.pop())
        stops += 1
        if progress is not None:
            progress.count("stops")
    if progress is not None:
        progress.finish()

    final = resource_snapshot(env)
    leaks = snapshot_diff(baseline, final)
    violations = (list(sim.sanitizer.violations)
                  if sim.sanitizer is not None else [])
    findings = audit_kernel(kernel, raise_on_failure=False)
    return ChurnResult(
        config_name=config_name,
        cycles=cycles,
        launches=launches,
        stops=stops,
        kills=kills,
        pcid_recycles=kernel.pcids.recycles,
        baseline=baseline,
        final=final,
        leaks=leaks,
        violations=violations,
        audit_findings=[str(f) for f in findings],
        stats=MMUStats.merged([m.stats for m in sim.mmus]),
        kernel_counters={
            "forks": kernel.forks,
            "pte_pages_copied": kernel.pte_pages_copied,
            "shootdowns": kernel.shootdowns,
        },
        core_cycles=sum(sim.core_cycles),
    )


def format_churn(result):
    lines = [
        "churn: %s, %d cycles (%d launches, %d stops, %d mid-bringup kills)"
        % (result.config_name, result.cycles, result.launches,
           result.stops, result.kills),
        "  pcid recycles: %d   kernel shootdowns: %d   forks: %d"
        % (result.pcid_recycles, result.kernel_counters["shootdowns"],
           result.kernel_counters["forks"]),
        "  sanitizer violations: %d   audit findings: %d"
        % (len(result.violations), len(result.audit_findings)),
    ]
    if result.leaks:
        lines.append("  LEAKS (baseline -> final):")
        for key, (before, after) in sorted(result.leaks.items()):
            lines.append("    %-18s %6s -> %s" % (key, before, after))
    else:
        lines.append("  resources returned to baseline: %s"
                     % ", ".join("%s=%d" % (k, v)
                                 for k, v in sorted(result.baseline.items())))
    for violation in result.violations[:5]:
        lines.append("  violation: %r" % (violation,))
    for finding in result.audit_findings[:5]:
        lines.append("  audit: %s" % finding)
    lines.append("  verdict: %s" % ("CLEAN" if result.clean else "DIRTY"))
    return "\n".join(lines)
