"""The warm worker pool: spawn, recycle, retire, refill.

Workers are spawned with the ``spawn`` start method — each is a fresh
interpreter that pays full bring-up (imports + prewarm) exactly once,
which is precisely the cost the pool exists to amortize; ``fork`` would
make the measurement a lie by inheriting the daemon's warm state. The
pool front half is asyncio-native: blocking pipe operations run on the
event loop's default thread-pool executor, so one slow worker never
stalls the daemon's accept loop or the other workers' replies.

Crash handling: any pipe failure while talking to a worker raises
:class:`WorkerCrash`; the daemon retires the handle (the pool spawns a
replacement in the background) and retries the request once on a fresh
worker. A request whose *own* execution raised inside a healthy worker
is a :class:`WorkerError` instead — those are never retried, the error
travels back to the client.
"""

import asyncio
import multiprocessing

from repro.serve import worker as worker_mod


class WorkerCrash(Exception):
    """The worker process died (pipe broke) while we were using it."""


class WorkerError(Exception):
    """The request failed inside a healthy worker; carries the typed
    error body the worker shipped back."""

    def __init__(self, body):
        super().__init__(body.get("message", "request failed in worker"))
        self.body = body


class WorkerHandle:
    """One live worker process and its parent-side pipe end."""

    def __init__(self, process, conn, ready_info):
        self.process = process
        self.conn = conn
        self.ready_info = ready_info
        self.pid = process.pid
        self.busy = False
        self.served = 0
        self.retired = False

    def alive(self):
        return not self.retired and self.process.is_alive()


class WarmPool:
    """A fixed-size pool of pre-warmed simulator workers.

    ``await start()`` spawns every worker concurrently and returns when
    all have prewarmed and reported ready. ``acquire``/``release`` hand
    out idle workers FIFO; ``retire`` removes a crashed worker and
    kicks off a background refill so the pool heals back to ``size``
    without blocking the retiring request's retry.
    """

    def __init__(self, size, cache_root=None, fingerprint=None, warm=True,
                 start_method="spawn"):
        if size < 1:
            raise ValueError("pool size must be >= 1, got %d" % size)
        self.size = size
        self.cache_root = str(cache_root) if cache_root is not None else None
        self.fingerprint = fingerprint
        self.warm = warm
        self._ctx = multiprocessing.get_context(start_method)
        self._idle = None  # asyncio.Queue, created on start()
        self._workers = []
        self._refills = set()
        self.crashes = 0
        self.spawned = 0

    # -- lifecycle ---------------------------------------------------------

    def _spawn_blocking(self):
        """Spawn one worker and block until its ``ready`` message (runs
        on an executor thread, never on the event loop)."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_mod.worker_main,
            args=(child_conn, self.cache_root, self.fingerprint, self.warm),
            daemon=True)
        process.start()
        child_conn.close()
        kind, info = parent_conn.recv()
        if kind != "ready":
            raise RuntimeError("worker %s sent %r before ready"
                               % (process.pid, kind))
        return WorkerHandle(process, parent_conn, info)

    async def start(self):
        """Spawn the full pool concurrently; returns the ready infos."""
        loop = asyncio.get_running_loop()
        self._idle = asyncio.Queue()
        handles = await asyncio.gather(
            *[loop.run_in_executor(None, self._spawn_blocking)
              for _ in range(self.size)])
        for handle in handles:
            self._workers.append(handle)
            self._idle.put_nowait(handle)
        self.spawned += len(handles)
        return [handle.ready_info for handle in handles]

    async def acquire(self):
        """The next idle worker (FIFO). Skips handles that died while
        idle — they are retired and refilled like any other crash."""
        while True:
            handle = await self._idle.get()
            if handle.alive():
                handle.busy = True
                return handle
            await self.retire(handle)

    def release(self, handle):
        handle.busy = False
        if handle.alive():
            self._idle.put_nowait(handle)

    async def retire(self, handle):
        """Remove a crashed/dead worker and refill in the background."""
        if handle.retired:
            return
        handle.retired = True
        self.crashes += 1
        if handle in self._workers:
            self._workers.remove(handle)
        loop = asyncio.get_running_loop()
        try:
            handle.conn.close()
        except OSError:
            pass
        await loop.run_in_executor(None, _reap, handle.process)
        task = asyncio.ensure_future(self._refill())
        self._refills.add(task)
        task.add_done_callback(self._refills.discard)

    async def _refill(self):
        loop = asyncio.get_running_loop()
        handle = await loop.run_in_executor(None, self._spawn_blocking)
        self._workers.append(handle)
        self._idle.put_nowait(handle)
        self.spawned += 1

    async def drain(self):
        """Wait for pending background refills (so shutdown reaps every
        process the pool ever spawned)."""
        if self._refills:
            await asyncio.gather(*list(self._refills),
                                 return_exceptions=True)

    async def shutdown(self):
        """Politely stop every worker, then reap the processes."""
        await self.drain()
        loop = asyncio.get_running_loop()
        workers = list(self._workers)
        self._workers = []
        for handle in workers:
            handle.retired = True
            await loop.run_in_executor(None, _stop_worker, handle)

    # -- request execution -------------------------------------------------

    async def run(self, handle, payload, on_event=None):
        """Run one request payload on ``handle``.

        Streams any ``progress`` messages through ``on_event`` (called
        on the event loop) and returns the ``result`` body. Raises
        :class:`WorkerCrash` if the pipe breaks, :class:`WorkerError`
        if the worker replied with a typed error.
        """
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, handle.conn.send,
                                       ("run", payload))
            while True:
                try:
                    kind, body = await loop.run_in_executor(
                        None, handle.conn.recv)
                except (EOFError, OSError):
                    raise WorkerCrash(
                        "worker %s died mid-request (exitcode %s)"
                        % (handle.pid, handle.process.exitcode))
                if kind == "progress":
                    if on_event is not None:
                        on_event(body)
                    continue
                if kind == "result":
                    handle.served += 1
                    return body
                if kind == "error":
                    raise WorkerError(body)
                raise WorkerCrash("worker %s sent unexpected message %r"
                                  % (handle.pid, kind))
        except (BrokenPipeError, OSError) as exc:
            if isinstance(exc, (WorkerCrash, WorkerError)):
                raise
            raise WorkerCrash("worker %s pipe failed: %s"
                              % (handle.pid, exc))

    async def ping(self, handle, timeout=5.0):
        """Health probe; False (and the caller should retire) on any
        failure or timeout."""
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, handle.conn.send, ("ping",))
            kind, _body = await asyncio.wait_for(
                loop.run_in_executor(None, handle.conn.recv), timeout)
            return kind == "pong"
        except (EOFError, OSError, asyncio.TimeoutError):
            return False

    def snapshot(self):
        """JSON-ready pool accounting for the daemon's ``stats`` op."""
        workers = [{"pid": handle.pid, "busy": handle.busy,
                    "served": handle.served,
                    "prewarm_seconds": handle.ready_info.get(
                        "prewarm_seconds")}
                   for handle in self._workers]
        return {"size": self.size, "alive": len(self._workers),
                "spawned": self.spawned, "crashes": self.crashes,
                "workers": sorted(workers, key=lambda w: w["pid"])}


def _reap(process, timeout=5.0):
    process.join(timeout)
    if process.is_alive():
        process.terminate()
        process.join(timeout)


def _stop_worker(handle):
    try:
        handle.conn.send(("exit",))
        # Wait for the polite goodbye so the pipe drains before close.
        while True:
            kind, _ = handle.conn.recv()
            if kind == "bye":
                break
    except (EOFError, OSError):
        pass
    try:
        handle.conn.close()
    except OSError:
        pass
    _reap(handle.process)
