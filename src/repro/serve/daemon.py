"""The serving daemon: asyncio front door over the warm pool.

One process, one event loop, three layers:

- **Connections.** :func:`handle_connection` (the asyncio server
  callback) reads length-prefixed JSON frames off each client and spawns
  one task per request, so a single connection can pipeline many
  requests and slow simulations never block pings. Replies carry the
  request's ``id`` back so clients can match them up; a per-connection
  write lock keeps interleaved replies frame-atomic.
- **Scheduling.** Run requests become :class:`Job`\\ s on a
  :class:`TwoClassScheduler` — two FIFO queues, ``interactive`` always
  drained ahead of ``batch``. One dispatcher task per pool worker pulls
  jobs, so at most ``pool_size`` simulations are in flight and the
  priority order is enforced at the single dequeue point.
- **Execution.** The cache-hit fast path answers repeat requests
  straight from the disk run cache (same key, same code fingerprint as
  direct runs) without ever touching the pool. Everything else runs on
  a pre-warmed worker; if the worker dies mid-request the job is
  retried exactly once on a fresh worker (with any injected ``chaos``
  stripped, so the retry is the request the client actually asked for)
  while the pool refills in the background.

Served results are bit-identical to direct runs by construction: the
cache fast path returns the very summary a direct run stored, and pool
workers execute ``runner.run_request`` — the same pure function of the
:class:`~repro.experiments.runner.RunRequest` the experiment harnesses
call — then summarize through the same ``RunResult.as_dict`` shape.

Graceful drain (SIGTERM/SIGINT or a ``shutdown`` frame): stop accepting
connections, let every in-flight and queued request finish, stop the
dispatchers, then stop the workers. Nothing accepted is ever dropped.
"""

import asyncio
import collections
import functools
import os
import signal
import time

from repro.experiments import runner
from repro.experiments.runcache import DiskRunCache
from repro.serve import pool as pool_mod
from repro.serve import protocol

#: Scheduling classes, highest priority first. FIFO within a class.
PRIORITY_CLASSES = ("interactive", "batch")

#: Entry points dispatched from outside this module: ``daemon_main`` is
#: handed to ``asyncio.run`` by the CLI, ``handle_connection`` is the
#: asyncio server's per-connection callback. Named here so the
#: BF601/BF602 parallel-safety scan seeds its reachability from them.
DISPATCH_ROOTS = ("daemon_main", "handle_connection")


class Job:
    """One queued run request and the future its reply rides on."""

    __slots__ = ("payload", "priority", "on_event", "future",
                 "enqueued", "dequeued", "retried")

    def __init__(self, payload, priority, on_event=None):
        self.payload = payload
        self.priority = priority
        self.on_event = on_event
        self.future = asyncio.get_running_loop().create_future()
        self.enqueued = time.monotonic()
        self.dequeued = None
        self.retried = False


class TwoClassScheduler:
    """Two-class strict-priority FIFO scheduler.

    ``interactive`` jobs always dequeue ahead of ``batch`` jobs; within
    a class, arrival order is preserved. Starvation of ``batch`` is the
    documented policy, not a bug: the batch class exists for sweeps that
    explicitly opt into yielding to interactive work.
    """

    def __init__(self):
        self._queues = collections.OrderedDict(
            (name, collections.deque()) for name in PRIORITY_CLASSES)
        self._wakeup = None
        self.pushed = {name: 0 for name in PRIORITY_CLASSES}

    def _event(self):
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        return self._wakeup

    def push(self, job):
        self._queues[job.priority].append(job)
        self.pushed[job.priority] += 1
        self._event().set()

    def _pop(self):
        for name in PRIORITY_CLASSES:
            queue = self._queues[name]
            if queue:
                return queue.popleft()
        return None

    async def get(self):
        """The next job by (class, arrival) order; waits when idle."""
        while True:
            job = self._pop()
            if job is not None:
                return job
            self._event().clear()
            await self._event().wait()

    def depth(self):
        return {name: len(queue) for name, queue in self._queues.items()}


class ServeDaemon:
    """The daemon's state: pool, scheduler, cache, counters."""

    def __init__(self, pool_size=2, cache_root=None, fingerprint=None,
                 warm=True, use_disk_cache=True,
                 max_frame=protocol.MAX_FRAME):
        self.cache = None
        if use_disk_cache:
            self.cache = DiskRunCache(cache_root, fingerprint=fingerprint)
            cache_root = str(self.cache.root)
            fingerprint = self.cache.fingerprint
        self.pool = pool_mod.WarmPool(pool_size, cache_root=cache_root,
                                      fingerprint=fingerprint, warm=warm)
        self.scheduler = TwoClassScheduler()
        self.max_frame = max_frame
        self.server = None
        self.address = None
        self.draining = False
        self.stopping = None
        self.started = None
        self._dispatchers = []
        self._active = 0
        self._idle = None
        self.stats = {"requests": 0, "cache": 0, "warm": 0,
                      "cache-worker": 0, "warm-retry": 0, "errors": 0,
                      "rejected": 0, "worker_crashes": 0}
        self.stats.update({name: 0 for name in PRIORITY_CLASSES})

    # -- lifecycle ---------------------------------------------------------

    async def start(self, socket_path=None, host="127.0.0.1", port=0):
        """Warm the pool, start dispatchers, bind the endpoint."""
        self.stopping = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self.started = time.monotonic()
        await self.pool.start()
        self._dispatchers = [asyncio.ensure_future(self._dispatch_forever())
                             for _ in range(self.pool.size)]
        handler = functools.partial(handle_connection, self)
        if socket_path is not None:
            self.server = await asyncio.start_unix_server(
                handler, path=str(socket_path))
            self.address = str(socket_path)
        else:
            self.server = await asyncio.start_server(handler, host=host,
                                                     port=port)
            bound = self.server.sockets[0].getsockname()
            self.address = "%s:%d" % (bound[0], bound[1])
        return self.address

    def request_stop(self):
        """Signal/shutdown-frame entry: flip the stop event (idempotent,
        safe to call from a signal handler on the loop thread)."""
        if self.stopping is not None:
            self.stopping.set()

    async def drain(self):
        """Graceful shutdown: close the door, finish everything, stop.

        Ordering matters: the server closes first (no new connections),
        then every accepted request — queued or in flight — runs to
        completion, and only then do the dispatchers and workers stop.
        A drain drops nothing it accepted.
        """
        self.draining = True
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if self._active:
            await self._idle.wait()
        for task in self._dispatchers:
            task.cancel()
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        await self.pool.shutdown()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_forever(self):
        """One per pool worker: pull jobs in priority order, run them."""
        while True:
            job = await self.scheduler.get()
            try:
                body = await self._run_job(job)
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.set_exception(pool_mod.WorkerCrash(
                        "daemon stopped while the job was running"))
                raise
            except Exception as exc:
                if not job.future.done():
                    job.future.set_exception(exc)
            else:
                if not job.future.done():
                    job.future.set_result(body)

    async def _run_job(self, job):
        """Run one job on a pool worker, retrying once across a crash.

        The retry strips any injected ``chaos`` marker: the fault hook
        fires on the first attempt only, so the retried request is the
        simulation the client actually asked for and its result is
        bit-identical to an undisturbed run.
        """
        handle = await self.pool.acquire()
        if job.dequeued is None:
            job.dequeued = time.monotonic()
        try:
            body = await self.pool.run(handle, job.payload,
                                       on_event=job.on_event)
        except pool_mod.WorkerCrash:
            self.stats["worker_crashes"] += 1
            await self.pool.retire(handle)
            if job.retried:
                raise
            job.retried = True
            payload = dict(job.payload)
            payload.pop("chaos", None)
            job.payload = payload
            return await self._run_job(job)
        except pool_mod.WorkerError:
            self.pool.release(handle)
            raise
        self.pool.release(handle)
        return body

    # -- per-frame handling ------------------------------------------------

    async def handle_frame(self, frame, writer, lock):
        op = frame.get("op")
        if op == "run":
            await self._handle_run(frame, writer, lock)
        elif op == "ping":
            await self._send(writer, lock,
                             {"op": "ping", "id": frame.get("id"),
                              "ok": True, "draining": self.draining})
        elif op == "stats":
            await self._send(writer, lock,
                             {"op": "stats", "id": frame.get("id"),
                              "stats": self.stats_snapshot()})
        elif op == "shutdown":
            await self._send(writer, lock,
                             {"op": "shutdown", "id": frame.get("id"),
                              "ok": True})
            self.request_stop()
        else:
            await self._send(writer, lock, {
                "op": op, "id": frame.get("id"), "kind": "error",
                "error": {"code": "bad_op", "type": "ValueError",
                          "message": "unknown op %r" % (op,)}})

    async def _handle_run(self, frame, writer, lock):
        req_id = frame.get("id")
        started = time.monotonic()
        if self.draining:
            self.stats["rejected"] += 1
            await self._send(writer, lock, {
                "op": "run", "id": req_id, "kind": "error",
                "error": {"code": "draining", "type": "RuntimeError",
                          "message": "daemon is draining; no new runs"}})
            return
        priority = frame.get("priority", "interactive")
        if priority not in PRIORITY_CLASSES:
            await self._reply_error(writer, lock, req_id, protocol.BadRequest(
                "unknown priority %r (expected one of %s)"
                % (priority, ", ".join(PRIORITY_CLASSES))))
            return
        try:
            request = protocol.wire_to_request(frame.get("request") or {})
        except protocol.ProtocolError as exc:
            await self._reply_error(writer, lock, req_id, exc)
            return
        self.stats["requests"] += 1
        self.stats[priority] += 1
        self._active += 1
        self._idle.clear()
        try:
            await self._serve_run(frame, writer, lock, req_id, request,
                                  priority, started)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()

    async def _serve_run(self, frame, writer, lock, req_id, request,
                         priority, started):
        use_cache = bool(frame.get("use_cache", True))
        if use_cache and self.cache is not None:
            loop = asyncio.get_running_loop()
            key_data = runner.request_key_data(request)
            payload = await loop.run_in_executor(None, self.cache.load,
                                                 key_data)
            if payload is not None:
                self.stats["cache"] += 1
                total = time.monotonic() - started
                await self._send(writer, lock, {
                    "op": "run", "id": req_id, "kind": "result",
                    "served": "cache", "summary": payload,
                    "timings": {"queue_s": 0.0, "service_s": total,
                                "total_s": total},
                    "worker_pid": None, "retried": False})
                return
        progress_queue = None
        forwarder = None
        on_event = None
        if frame.get("stream"):
            progress_queue = asyncio.Queue()
            on_event = progress_queue.put_nowait
            forwarder = asyncio.ensure_future(self._forward_progress(
                progress_queue, writer, lock, req_id))
        payload = {"request": frame.get("request") or {},
                   "use_cache": use_cache}
        if frame.get("stream"):
            payload["stream"] = True
            if "progress_interval" in frame:
                payload["progress_interval"] = frame["progress_interval"]
        if "chaos" in frame:
            payload["chaos"] = frame["chaos"]
        job = Job(payload, priority, on_event)
        self.scheduler.push(job)
        try:
            body = await job.future
        except pool_mod.WorkerError as exc:
            self.stats["errors"] += 1
            await self._send(writer, lock, {"op": "run", "id": req_id,
                                            "kind": "error",
                                            "error": exc.body})
        except pool_mod.WorkerCrash as exc:
            self.stats["errors"] += 1
            await self._send(writer, lock, {
                "op": "run", "id": req_id, "kind": "error",
                "error": {"code": "worker_crash", "type": "WorkerCrash",
                          "message": str(exc)}})
        else:
            finished = time.monotonic()
            dequeued = job.dequeued if job.dequeued is not None else finished
            served = ("warm-retry" if job.retried
                      else "warm" if body.get("simulated")
                      else "cache-worker")
            self.stats[served] += 1
            await self._send(writer, lock, {
                "op": "run", "id": req_id, "kind": "result",
                "served": served, "summary": body["summary"],
                "timings": {"queue_s": dequeued - job.enqueued,
                            "service_s": finished - dequeued,
                            "total_s": finished - started},
                "worker_pid": body.get("pid"),
                "sim_seconds": body.get("sim_seconds"),
                "retried": job.retried})
        finally:
            if forwarder is not None:
                progress_queue.put_nowait(None)
                await forwarder

    async def _forward_progress(self, queue, writer, lock, req_id):
        """Drain worker progress snapshots to the client as they land."""
        while True:
            body = await queue.get()
            if body is None:
                return
            await self._send(writer, lock, {"op": "run", "id": req_id,
                                            "kind": "progress",
                                            "progress": body})

    async def _reply_error(self, writer, lock, req_id, exc):
        self.stats["errors"] += 1
        await self._send(writer, lock, {"op": "run", "id": req_id,
                                        "kind": "error",
                                        "error": protocol.error_body(exc)})

    async def _send(self, writer, lock, body):
        """Frame-atomic reply; a vanished client just drops the frame."""
        async with lock:
            try:
                await protocol.write_frame(writer, body,
                                           max_frame=self.max_frame)
            except (ConnectionError, OSError):
                pass

    # -- introspection -----------------------------------------------------

    def stats_snapshot(self):
        snapshot = dict(self.stats)
        snapshot["queue_depth"] = self.scheduler.depth()
        snapshot["scheduled"] = dict(self.scheduler.pushed)
        snapshot["pool"] = self.pool.snapshot()
        snapshot["draining"] = self.draining
        snapshot["uptime_s"] = (time.monotonic() - self.started
                                if self.started is not None else 0.0)
        return snapshot


async def handle_connection(daemon, reader, writer):
    """Per-connection frame loop (the asyncio server callback).

    Each frame becomes its own task, so one connection can pipeline
    requests; a framing error (oversized, truncated, garbage) gets one
    typed error frame back and then the connection closes — framing is
    lost, the stream cannot be resynchronized.
    """
    lock = asyncio.Lock()
    tasks = set()
    try:
        while True:
            try:
                frame = await protocol.read_frame(
                    reader, max_frame=daemon.max_frame)
            except protocol.ProtocolError as exc:
                await daemon._send(writer, lock,
                                   {"kind": "error",
                                    "error": protocol.error_body(exc)})
                break
            if frame is None:
                break
            task = asyncio.ensure_future(
                daemon.handle_frame(frame, writer, lock))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*list(tasks), return_exceptions=True)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _announce(message):
    print(message, flush=True)


async def daemon_main(socket_path=None, host="127.0.0.1", port=0,
                      pool_size=2, cache_root=None, warm=True,
                      use_disk_cache=True, out=None):
    """Run the daemon until SIGTERM/SIGINT or a ``shutdown`` frame.

    Emits a ``ready on <endpoint>`` banner once the pool is warm and the
    socket is bound (the CI smoke and the tests wait for it), then a
    drain banner on the way out. Returns the daemon for inspection.
    """
    emit = _announce if out is None else out
    daemon = ServeDaemon(pool_size=pool_size, cache_root=cache_root,
                         warm=warm, use_disk_cache=use_disk_cache)
    loop = asyncio.get_running_loop()
    address = await daemon.start(socket_path=socket_path, host=host,
                                 port=port)
    handled = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, daemon.request_stop)
            handled.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    emit("repro-serve: ready on %s (pool=%d, cache=%s)"
         % (address, daemon.pool.size,
            daemon.cache.root if daemon.cache is not None else "off"))
    try:
        await daemon.stopping.wait()
        emit("repro-serve: draining (%d in flight, queue %s)"
             % (daemon._active, daemon.scheduler.depth()))
        await daemon.drain()
        emit("repro-serve: drained after %d request(s) "
             "(%d cache, %d warm, %d crashes recovered)"
             % (daemon.stats["requests"], daemon.stats["cache"],
                daemon.stats["warm"] + daemon.stats["warm-retry"],
                daemon.stats["worker_crashes"]))
    finally:
        for signum in handled:
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, RuntimeError):
                pass
        if socket_path is not None and os.path.exists(str(socket_path)):
            try:
                os.unlink(str(socket_path))
            except OSError:
                pass
    return daemon
