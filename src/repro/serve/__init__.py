"""Simulation-as-a-service: a warm-pool async daemon over the runner.

The reproduction's serving front door (``python -m repro.serve``): a
long-lived asyncio daemon that accepts JSON simulation requests over a
unix socket or TCP port, answers repeat requests straight from the
persistent run cache, multiplexes everything else onto a pool of
pre-warmed worker processes (workers pre-import ``repro``, pre-compile
the stock workload traces, and recycle between requests), and streams
live progress snapshots back to clients mid-run.

Modules:

- :mod:`repro.serve.protocol` — length-prefixed JSON framing and the
  wire <-> :class:`~repro.experiments.runner.RunRequest` mapping.
- :mod:`repro.serve.worker` — the pool worker process: prewarm, then a
  recv/run/reply loop over a pipe.
- :mod:`repro.serve.pool` — the warm pool: spawn, health, crash
  retirement, background refill, drain.
- :mod:`repro.serve.daemon` — the asyncio server: two-class priority
  scheduling, the cache-hit fast path, crash retry, SIGTERM drain.
- :mod:`repro.serve.loadgen` — open-loop Poisson load generator and the
  ``BENCH_serve.json`` SLO trajectory.
"""
