"""The pool worker process: prewarm once, then serve requests forever.

A worker is spawned by :class:`repro.serve.pool.WarmPool` with one end
of a pipe. On start it pays the whole bring-up bill exactly once —
interpreter start, ``repro`` imports, stock workload trace generation,
and one micro end-to-end simulation that touches kernel bring-up, the
fast-path structures, and the cache hierarchy — then reports ``ready``
and enters a recv/run/reply loop. Requests recycle the process instead
of killing it, so the steady-state cost of a served simulation is the
simulation alone; that amortization is the daemon's whole reason to
exist (BabelFish's keep-warm discipline, applied to our own harness).

Workers also keep the runner's two cache layers warm *in-process*: the
in-memory memo (:mod:`repro.experiments.common`) survives between
requests, and the parent's disk cache is installed at start with the
parent's code fingerprint, so anything a worker simulates is persisted
exactly like a direct ``--jobs N`` run would persist it.

Messages (pickled tuples over the pipe):

- parent -> worker: ``("run", payload)``, ``("ping",)``, ``("exit",)``
- worker -> parent: ``("ready", info)`` once, then per run any number
  of ``("progress", snapshot)`` followed by exactly one of
  ``("result", body)`` / ``("error", body)``; ``("pong", info)`` for
  pings and ``("bye", {})`` before a clean exit.

A ``payload["chaos"] == "exit"`` request makes the worker die with
``os._exit`` before touching the simulator — the fault-injection hook
the crash-recovery tests and the loadgen smoke use to prove a dead
worker's request is retried on a fresh one.
"""

import os
import time
import traceback

from repro.experiments import common, runner
from repro.experiments.runcache import DiskRunCache
from repro.obs.live import ProgressMonitor
from repro.serve import protocol

#: Exit status of a chaos-killed worker (distinguishable from crashes
#: the tests did not ask for).
CHAOS_EXIT_STATUS = 17

#: These entry points are dispatched from outside this module (the pool
#: spawns ``worker_main`` as a child-process target), so the BF601/602
#: parallel-safety reachability scan must seed from them explicitly.
DISPATCH_ROOTS = ("worker_main",)


def prewarm():
    """Pay the bring-up bill: compile stock traces, run a micro sim.

    Generating (and materializing) one small trace per stock profile
    warms every workload generator; the micro ``run_app`` drives kernel
    bring-up, page-table construction, the TLB/cache twins, and the
    fast-path memo end to end, so the first real request meets fully
    warmed code paths. Returns accounting for the ``ready`` message.
    """
    from repro.workloads.compute import compute_trace
    from repro.workloads.dataserving import serving_trace
    from repro.workloads.profiles import APP_PROFILES as profiles
    started = time.perf_counter()
    records = 0
    for name in sorted(profiles):
        profile = profiles[name]
        if profile.kind == "serving":
            trace = serving_trace(profile, 0, requests=2,
                                  tag_requests=False, seed_offset=1)
        else:
            trace = compute_trace(profile, 0, iterations=1, seed_offset=1)
        records += sum(1 for _ in trace)
    config = common.config_by_name("BabelFish")
    common.run_app("mongodb", config, cores=1, scale=0.02, use_cache=False)
    return {"prewarm_seconds": time.perf_counter() - started,
            "prewarm_trace_records": records}


def worker_main(conn, cache_root=None, fingerprint=None, warm=True):
    """Child-process entry point: prewarm, announce ready, serve."""
    info = {"pid": os.getpid(), "prewarm_seconds": 0.0,
            "prewarm_trace_records": 0}
    if warm:
        info.update(prewarm())
    if cache_root is not None:
        common.set_disk_cache(DiskRunCache(cache_root,
                                           fingerprint=fingerprint))
    conn.send(("ready", info))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "exit":
            _send(conn, ("bye", {}))
            break
        if op == "ping":
            _send(conn, ("pong", {"pid": os.getpid(),
                                  "served": info.get("served", 0)}))
            continue
        if op == "run":
            _serve_one(conn, message[1])
            info["served"] = info.get("served", 0) + 1
        else:
            _send(conn, ("error", {"code": "bad_op",
                                   "type": "ValueError",
                                   "message": "unknown op %r" % (op,)}))
    conn.close()


def _send(conn, message):
    """Best-effort send: a parent that died mid-run must not wedge the
    worker in a broken-pipe traceback loop."""
    try:
        conn.send(message)
        return True
    except (OSError, ValueError):
        return False


def _serve_one(conn, payload):
    """Run one request payload and reply with its summary (or error)."""
    if payload.get("chaos") == "exit":
        # Fault injection: die hard, mid-request, without replying.
        os._exit(CHAOS_EXIT_STATUS)
    try:
        request = protocol.wire_to_request(payload.get("request") or {})
    except protocol.ProtocolError as exc:
        _send(conn, ("error", protocol.error_body(exc)))
        return
    monitor = None
    if payload.get("stream"):
        monitor = _streaming_monitor(conn, payload)
    started = time.perf_counter()
    simulated_before = common.simulation_run_count()
    try:
        run = runner.run_request(request, monitor=monitor,
                                 use_cache=payload.get("use_cache", True))
        summary = runner.request_summary(request, run)
    except Exception as exc:  # every failure becomes a typed reply
        _send(conn, ("error", {"code": "run_failed",
                               "type": type(exc).__name__,
                               "message": str(exc),
                               "traceback": traceback.format_exc()}))
        return
    _send(conn, ("result", {
        "summary": summary,
        "sim_seconds": time.perf_counter() - started,
        "simulated": common.simulation_run_count() > simulated_before,
        "pid": os.getpid(),
    }))


def _streaming_monitor(conn, payload):
    """A ProgressMonitor whose snapshot lines ship over the pipe.

    The monitor advances on the simulator's per-quantum hook; every
    emitted line becomes a ``("progress", snapshot)`` message carrying
    the structured :meth:`~repro.obs.live.ProgressMonitor.as_dict` form
    next to the human-readable line.
    """
    holder = {}

    def _emit(line):
        monitor = holder["monitor"]
        _send(conn, ("progress", dict(monitor.as_dict(), line=line)))

    monitor = ProgressMonitor(
        unit="instructions", label="sim",
        interval=payload.get("progress_interval", 0.5), emit=_emit)
    holder["monitor"] = monitor
    return monitor
