"""Wire protocol of the serving daemon: framing and request mapping.

Frames are length-prefixed JSON objects: a 4-byte big-endian unsigned
payload length followed by that many bytes of UTF-8 JSON encoding a
single object. Length-prefixing (rather than newline-delimiting) keeps
the stream binary-safe and lets a reader reject an oversized or
malformed frame *before* buffering it — a garbage prefix surfaces as a
typed :class:`ProtocolError` subclass, never a hung client waiting for
a newline that will not come.

Error taxonomy (every subclass carries a stable ``code`` string that
travels inside error frames):

- :class:`FrameTooLarge` — declared length exceeds the negotiated cap.
- :class:`FrameTruncated` — the stream ended mid-frame.
- :class:`FrameGarbage` — the payload is not valid UTF-8 JSON, or not a
  JSON object.
- :class:`BadRequest` — the frame parsed but does not describe a
  runnable simulation request.

:func:`wire_to_request` maps the JSON ``request`` body onto the
runner's :class:`~repro.experiments.runner.RunRequest` — the *same*
cacheable unit the experiment harnesses use, which is what makes served
results bit-identical to direct runs and repeat requests servable from
the disk run cache.
"""

import asyncio
import json
import struct

from repro.experiments import common, runner
from repro.sim.config import KNOWN_POLICIES
from repro.workloads.profiles import APP_PROFILES

#: Default cap on one frame's JSON payload (32 MiB — a full app-run
#: summary is ~100 KiB, so this is generous without letting a garbage
#: length prefix allocate unbounded memory).
MAX_FRAME = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Override values must stay hashable scalars: ``RunRequest.overrides``
#: is a sorted tuple of pairs that doubles as a memo key.
_SCALAR_TYPES = (bool, int, float, str, type(None))


class ProtocolError(Exception):
    """Base of every typed wire-protocol failure."""

    code = "protocol_error"


class FrameTooLarge(ProtocolError):
    code = "frame_too_large"


class FrameTruncated(ProtocolError):
    code = "frame_truncated"


class FrameGarbage(ProtocolError):
    code = "frame_garbage"


class BadRequest(ProtocolError):
    code = "bad_request"


def error_body(exc):
    """The JSON body of an error frame for ``exc``."""
    code = exc.code if isinstance(exc, ProtocolError) else "internal"
    return {"code": code, "type": type(exc).__name__, "message": str(exc)}


# -- framing -------------------------------------------------------------------


def encode_frame(obj, max_frame=MAX_FRAME):
    """``obj`` (a JSON-serializable object) -> one wire frame."""
    payload = json.dumps(obj, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge("frame payload is %d bytes (cap %d)"
                            % (len(payload), max_frame))
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload):
    """Frame payload bytes -> the decoded object (must be a JSON dict)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameGarbage("frame payload is not valid JSON: %s" % exc)
    if not isinstance(obj, dict):
        raise FrameGarbage("frame payload is %s, expected a JSON object"
                           % type(obj).__name__)
    return obj


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed chunks with :meth:`feed`; completed frames come back from
    :meth:`frames`. Oversized and garbage frames raise immediately — the
    connection is then unrecoverable (framing is lost) and should be
    closed. :meth:`at_boundary` distinguishes a clean EOF (buffer empty)
    from a truncated one (bytes of an unfinished frame still pending).
    """

    def __init__(self, max_frame=MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data):
        self._buffer.extend(data)

    def at_boundary(self):
        return not self._buffer

    def pending_bytes(self):
        return len(self._buffer)

    def frames(self):
        """Yield every frame completed so far (consumes the buffer)."""
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack(bytes(self._buffer[:_HEADER.size]))
            if length > self.max_frame:
                raise FrameTooLarge("declared frame length %d exceeds cap %d"
                                    % (length, self.max_frame))
            if len(self._buffer) < _HEADER.size + length:
                return
            payload = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            yield decode_payload(payload)


async def read_frame(reader, max_frame=MAX_FRAME):
    """Read one frame from an asyncio stream reader.

    Returns the decoded dict, or None on a clean EOF at a frame
    boundary. EOF mid-frame raises :class:`FrameTruncated`; a declared
    length beyond ``max_frame`` raises :class:`FrameTooLarge` without
    reading the payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameTruncated("stream ended inside a frame header "
                             "(%d of %d bytes)"
                             % (len(exc.partial), _HEADER.size))
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge("declared frame length %d exceeds cap %d"
                            % (length, max_frame))
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncated("stream ended inside a frame payload "
                             "(%d of %d bytes)" % (len(exc.partial), length))
    return decode_payload(payload)


async def write_frame(writer, obj, max_frame=MAX_FRAME):
    writer.write(encode_frame(obj, max_frame=max_frame))
    await writer.drain()


# -- request mapping -----------------------------------------------------------


def request_to_wire(request):
    """:class:`~repro.experiments.runner.RunRequest` -> JSON body."""
    return {
        "kind": request.kind,
        "app": request.app,
        "config_name": request.config_name,
        "overrides": dict(request.overrides),
        "cores": request.cores,
        "scale": request.scale,
        "containers_per_core": request.containers_per_core,
        "dense": request.dense,
    }


def wire_to_request(data):
    """JSON ``request`` body -> a validated ``RunRequest``.

    Raises :class:`BadRequest` with a message naming the offending field
    for anything that cannot become a runnable, cacheable request.
    """
    if not isinstance(data, dict):
        raise BadRequest("request body must be a JSON object, got %s"
                         % type(data).__name__)
    kind = data.get("kind", "app")
    if kind not in ("app", "functions"):
        raise BadRequest("unknown request kind %r (expected 'app' or "
                         "'functions')" % (kind,))
    app = data.get("app")
    if kind == "app":
        if not isinstance(app, str) or app not in APP_PROFILES:
            raise BadRequest("unknown app %r (known: %s)"
                             % (app, ", ".join(sorted(APP_PROFILES))))
    else:
        app = None
    overrides = data.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise BadRequest("overrides must be a JSON object")
    for field, value in overrides.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise BadRequest("override %r must be a scalar, got %s"
                             % (field, type(value).__name__))
    policy = overrides.get("policy")
    if policy is not None and policy not in KNOWN_POLICIES:
        # Reject by name rather than letting anything downstream guess:
        # an unknown policy must never default to the conventional path.
        raise BadRequest("unknown policy %r for field 'policy' (known: %s)"
                         % (policy, ", ".join(KNOWN_POLICIES)))
    config_name = data.get("config_name", "Baseline")
    try:
        common.config_by_name(config_name, **overrides)
    except KeyError:
        raise BadRequest("unknown config %r" % (config_name,))
    except TypeError as exc:
        raise BadRequest("bad overrides for config %r: %s"
                         % (config_name, exc))
    except ValueError as exc:
        # SimConfig validation errors name the offending field
        # (e.g. an unknown or flag-inconsistent 'policy').
        raise BadRequest("bad overrides for config %r: %s"
                         % (config_name, exc))
    cores = data.get("cores", 8)
    if not isinstance(cores, int) or isinstance(cores, bool) or cores < 1:
        raise BadRequest("cores must be a positive integer, got %r"
                         % (cores,))
    scale = data.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
            or scale <= 0:
        raise BadRequest("scale must be a positive number, got %r"
                         % (scale,))
    per_core = data.get("containers_per_core")
    if per_core is not None and (not isinstance(per_core, int)
                                 or isinstance(per_core, bool)
                                 or per_core < 1):
        raise BadRequest("containers_per_core must be a positive integer "
                         "or null, got %r" % (per_core,))
    dense = data.get("dense", True)
    if not isinstance(dense, bool):
        raise BadRequest("dense must be a boolean, got %r" % (dense,))
    return runner.RunRequest(
        kind=kind, app=app, config_name=config_name,
        overrides=runner.request_overrides(**overrides),
        cores=cores, scale=float(scale), containers_per_core=per_core,
        dense=dense)
