"""CLI for the serving daemon.

::

    python -m repro.serve daemon --socket /tmp/repro.sock --pool 2
    python -m repro.serve daemon --port 7421
    python -m repro.serve loadgen --socket /tmp/repro.sock \\
        --out BENCH_serve.json
    python -m repro.serve loadgen --socket /tmp/repro.sock --smoke
    python -m repro.serve coldrun --app mongodb --scale 0.05

``daemon`` runs until SIGTERM/SIGINT or a client ``shutdown`` frame,
then drains gracefully (in-flight and queued requests all finish).
``loadgen`` drives a running daemon through the SLO phases and writes
the ``BENCH_serve.json`` trajectory; it exits nonzero if any request
dropped, crash recovery failed, served bytes diverged, or the warm pool
showed no amortization. ``coldrun`` is the loadgen's cold-baseline
probe: one uncached simulation in this (fresh) interpreter.
"""

import argparse
import asyncio
import json
import sys
import time


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="warm-pool simulation-serving daemon")
    sub = parser.add_subparsers(dest="command", required=True)

    daemon_parser = sub.add_parser(
        "daemon", help="run the serving daemon until SIGTERM/shutdown")
    _endpoint_arguments(daemon_parser)
    daemon_parser.add_argument("--pool", type=int, default=2,
                               help="warm worker count (default 2)")
    daemon_parser.add_argument("--cache-dir", default=None,
                               help="run-cache directory (default: the "
                               "repo's benchmarks/out/runcache)")
    daemon_parser.add_argument("--no-warm", action="store_true",
                               help="skip worker prewarm (tests only; "
                               "defeats the amortization)")
    daemon_parser.add_argument("--no-cache", action="store_true",
                               help="disable the daemon's cache-hit "
                               "fast path and worker disk cache")

    load_parser = sub.add_parser(
        "loadgen", help="drive a running daemon and write the SLO report")
    _endpoint_arguments(load_parser)
    load_parser.add_argument("--rate", type=float, default=4.0,
                             help="open-loop Poisson arrival rate per "
                             "second (default 4)")
    load_parser.add_argument("--duration", type=float, default=4.0,
                             help="open-loop phase length in seconds "
                             "(default 4)")
    load_parser.add_argument("--clients", type=int, default=8,
                             help="concurrent connections in the burst "
                             "phase (default 8)")
    load_parser.add_argument("--seed", type=int, default=1234)
    load_parser.add_argument("--cold-runs", type=int, default=3,
                             help="cold single-shot baseline runs "
                             "(default 3)")
    load_parser.add_argument("--scale", type=float, default=0.05,
                             help="workload scale of the fixed request")
    load_parser.add_argument("--app", default="mongodb")
    load_parser.add_argument("--config", default="BabelFish",
                             dest="config_name")
    load_parser.add_argument("--smoke", action="store_true",
                             help="short CI preset: fewer arrivals, "
                             "2 cold runs, direct-run verification on")
    load_parser.add_argument("--verify-direct", action="store_true",
                             help="re-simulate the fixed request "
                             "in-process and require byte identity")
    load_parser.add_argument("--shutdown", action="store_true",
                             help="send a shutdown frame when done")
    load_parser.add_argument("--out", default="BENCH_serve.json",
                             help="SLO report path "
                             "(default BENCH_serve.json)")

    cold_parser = sub.add_parser(
        "coldrun", help="one uncached run in this interpreter (the "
        "loadgen's cold-baseline probe)")
    cold_parser.add_argument("--app", default="mongodb")
    cold_parser.add_argument("--config", default="BabelFish",
                             dest="config_name")
    cold_parser.add_argument("--cores", type=int, default=1)
    cold_parser.add_argument("--scale", type=float, default=0.05)

    args = parser.parse_args(argv)
    if args.command == "daemon":
        return _cmd_daemon(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    return _cmd_coldrun(args)


def _endpoint_arguments(parser):
    parser.add_argument("--socket", default=None,
                        help="unix socket path (preferred)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one; the ready "
                        "banner names it)")


def _cmd_daemon(args):
    from repro.serve.daemon import daemon_main
    try:
        asyncio.run(daemon_main(
            socket_path=args.socket, host=args.host, port=args.port,
            pool_size=args.pool, cache_root=args.cache_dir,
            warm=not args.no_warm, use_disk_cache=not args.no_cache))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadgen(args):
    from repro.serve.loadgen import run_loadgen, write_report
    rate, duration, cold_runs = args.rate, args.duration, args.cold_runs
    verify_direct = args.verify_direct
    if args.smoke:
        rate, duration, cold_runs = 3.0, 2.0, 2
        verify_direct = True
    workload = {"app": args.app, "config_name": args.config_name,
                "cores": 1, "scale": args.scale}
    report, failures = asyncio.run(run_loadgen(
        socket_path=args.socket, host=args.host, port=args.port,
        rate=rate, duration=duration, clients=args.clients,
        seed=args.seed, workload=workload, cold_runs=cold_runs,
        verify_direct=verify_direct, do_shutdown=args.shutdown))
    write_report(report, args.out)
    tiers = report["tiers"]["serve"]
    print("loadgen: wrote %s" % args.out, flush=True)
    print("loadgen: cold p50 %s  warm service p95 %s (e2e %s)  "
          "cache p95 %s"
          % (_fmt(tiers["cold_p50_s"]), _fmt(tiers["warm_service_p95_s"]),
             _fmt(tiers["warm_e2e_p95_s"]), _fmt(tiers["cache_p95_s"])),
          flush=True)
    print("loadgen: warm_speedup %s  cache_speedup %s  identical %s"
          % (_fmt(tiers["warm_speedup"]), _fmt(tiers["cache_speedup"]),
             tiers["identical"]), flush=True)
    if failures:
        for failure in failures:
            print("loadgen: FAIL: %s" % failure, file=sys.stderr,
                  flush=True)
        return 1
    print("loadgen: all SLO checks passed (%d requests, 0 dropped)"
          % report["requests"]["total"], flush=True)
    return 0


def _fmt(value):
    return "-" if value is None else "%.2f" % value


def _cmd_coldrun(args):
    from repro.experiments import runner
    request = runner.RunRequest(kind="app", app=args.app,
                                config_name=args.config_name,
                                cores=args.cores, scale=args.scale)
    started = time.perf_counter()
    run = runner.run_request(request, use_cache=False)
    summary = runner.request_summary(request, run)
    print(json.dumps({"ok": True,
                      "sim_seconds": time.perf_counter() - started,
                      "config_name": summary["result"]["config_name"]}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
