"""Open-loop load generator and SLO reporter for the serving daemon.

Drives a running daemon through the whole serving story and writes the
``BENCH_serve.json`` trajectory the perf watchdog gates on:

1. **Cold baseline** — N single-shot runs, each a fresh subprocess
   (``python -m repro.serve coldrun``) paying interpreter start, the
   ``repro`` imports, and the simulation. This is the cost the warm
   pool exists to amortize, measured honestly (wall clock around the
   whole process, not just the sim).
2. **Prime + burst** — one request primes the run cache, then ≥8
   concurrent connections all ask for it again; every one must come
   back ``served: cache`` with a bit-identical summary.
3. **Open loop** — Poisson arrivals for ``duration`` seconds at
   ``rate``/s, each on its own connection (open-loop: arrivals never
   wait for completions, so queueing shows up in the latency numbers
   instead of being hidden by back-pressure). The mix is warm-class
   requests (``use_cache: false`` with a per-arrival scale jitter, so
   each one really simulates) and cache-class repeats, across both
   priority classes.
4. **Chaos** — one request carries ``chaos: "exit"``; the worker dies
   mid-request and the reply must come back ``served: warm-retry`` with
   the same bytes an undisturbed run produces.

The report splits latency percentiles cold / cache / warm (nearest-rank
:func:`repro.sim.stats.percentile` — the same helper behind
``RunResult.as_dict``) and distills the two watched ratios:
``warm_speedup`` (cold single-shot p50 wall over warm-pool *service*
p95) and ``cache_speedup`` (cold p50 over cache-hit p95). The warm
ratio uses the daemon's per-request service time, not the end-to-end
client latency: queueing under an open-loop burst is a property of the
offered load, not of bring-up amortization, and the cold baseline it is
compared against never queues. End-to-end warm percentiles are still
reported (``latency.warm``) so queueing stays visible.
"""

import asyncio
import json
import os
import random
import subprocess
import sys
import time

from repro.serve import protocol
from repro.sim.stats import percentile

#: Keys of the default loadgen workload (a micro mongodb run: large
#: enough to exercise the full sim stack, small enough that a smoke
#: sweep finishes in seconds).
DEFAULT_WORKLOAD = {"app": "mongodb", "config_name": "BabelFish",
                    "cores": 1, "scale": 0.05}


class ServeClient:
    """Minimal asyncio client for the serve wire protocol."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, socket_path=None, host="127.0.0.1", port=0):
        if socket_path is not None:
            reader, writer = await asyncio.open_unix_connection(
                str(socket_path))
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self):
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def call(self, body):
        """One request frame -> its first reply frame (simple ops)."""
        await protocol.write_frame(self._writer, body)
        reply = await protocol.read_frame(self._reader)
        if reply is None:
            raise ConnectionError("server closed the connection")
        return reply

    async def run(self, request, priority="interactive", use_cache=True,
                  stream=False, chaos=None, progress_interval=None,
                  on_progress=None):
        """Submit one run and collect its terminal reply.

        Progress frames (when ``stream``) are counted and optionally
        forwarded to ``on_progress``; the terminal ``result``/``error``
        frame comes back annotated with ``progress_frames``.
        """
        self._next_id += 1
        frame = {"op": "run", "id": self._next_id, "request": request,
                 "priority": priority, "use_cache": use_cache}
        if stream:
            frame["stream"] = True
            if progress_interval is not None:
                frame["progress_interval"] = progress_interval
        if chaos is not None:
            frame["chaos"] = chaos
        await protocol.write_frame(self._writer, frame)
        seen = 0
        while True:
            reply = await protocol.read_frame(self._reader)
            if reply is None:
                raise ConnectionError("server closed mid-request")
            if reply.get("kind") == "progress":
                seen += 1
                if on_progress is not None:
                    on_progress(reply.get("progress"))
                continue
            reply["progress_frames"] = seen
            return reply

    async def ping(self):
        return await self.call({"op": "ping"})

    async def stats(self):
        return (await self.call({"op": "stats"})).get("stats", {})

    async def shutdown(self):
        return await self.call({"op": "shutdown"})


def canonical(summary):
    """Canonical JSON of a summary — the bit-identity comparator (a
    summary that crossed the wire compares equal to the in-process one
    iff they serialize to the same bytes)."""
    return json.dumps(summary, sort_keys=True, separators=(",", ":"))


def _coldrun_once(workload):
    """One cold single-shot: a fresh interpreter runs the workload
    uncached; returns the end-to-end wall seconds."""
    command = [sys.executable, "-m", "repro.serve", "coldrun",
               "--app", workload["app"],
               "--config", workload["config_name"],
               "--cores", str(workload["cores"]),
               "--scale", "%g" % workload["scale"]]
    started = time.perf_counter()
    proc = subprocess.run(command, capture_output=True, text=True,
                          env=dict(os.environ))
    wall = time.perf_counter() - started
    if proc.returncode != 0:
        raise RuntimeError("coldrun failed (rc=%d): %s"
                           % (proc.returncode, proc.stderr.strip()[-500:]))
    return wall


def _latency_block(values):
    if not values:
        return {"count": 0}
    values = sorted(values)
    return {"count": len(values),
            "mean_s": sum(values) / len(values),
            "p50_s": percentile(values, 50),
            "p95_s": percentile(values, 95),
            "p99_s": percentile(values, 99),
            "max_s": values[-1]}


def poisson_arrivals(rng, rate, duration):
    """Open-loop arrival offsets (seconds) for a Poisson process."""
    arrivals = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            return arrivals
        arrivals.append(t)


async def run_loadgen(socket_path=None, host="127.0.0.1", port=0,
                      rate=4.0, duration=4.0, clients=8, seed=1234,
                      workload=None, cold_runs=3, verify_direct=False,
                      do_shutdown=False, emit=None):
    """Drive the daemon through every serving phase; returns
    ``(report, failures)`` where a non-empty ``failures`` list means the
    SLO/identity contract was violated."""
    say = _announce if emit is None else emit
    workload = dict(DEFAULT_WORKLOAD, **(workload or {}))
    endpoint = {"socket_path": socket_path, "host": host, "port": port}
    rng = random.Random(seed)
    failures = []
    loop = asyncio.get_running_loop()

    # Phase 0: cold single-shot baseline (fresh process per run). One
    # discarded warmup run first: the very first subprocess pays
    # one-time OS costs (page cache, pyc stat storms) that belong to
    # neither side of the cold/warm comparison.
    say("loadgen: cold baseline — %d single-shot subprocess run(s)"
        % cold_runs)
    cold_warmup = await loop.run_in_executor(None, _coldrun_once, workload)
    say("loadgen: cold warmup (discarded): %.2fs" % cold_warmup)
    cold_walls = []
    for index in range(cold_runs):
        wall = await loop.run_in_executor(None, _coldrun_once, workload)
        cold_walls.append(wall)
        say("loadgen: cold %d/%d: %.2fs" % (index + 1, cold_runs, wall))

    fixed = {"kind": "app", "app": workload["app"],
             "config_name": workload["config_name"],
             "cores": workload["cores"], "scale": workload["scale"]}

    # Phase 1: prime the run cache with the fixed request.
    client = await ServeClient.connect(**endpoint)
    started = time.monotonic()
    reply = await client.run(fixed, priority="interactive")
    prime_latency = time.monotonic() - started
    await client.close()
    if reply.get("kind") != "result":
        raise RuntimeError("prime request failed: %r" % (reply,))
    prime_summary = canonical(reply["summary"])
    say("loadgen: primed (%s, %.2fs)" % (reply["served"], prime_latency))

    # Phase 2: burst — all connections open before any request is sent,
    # so the daemon provably multiplexes >= `clients` concurrent peers.
    say("loadgen: burst — %d concurrent clients on the cached request"
        % clients)
    conns = [await ServeClient.connect(**endpoint) for _ in range(clients)]
    burst = await asyncio.gather(
        *[_timed_run(conn, fixed, "interactive") for conn in conns])
    for conn in conns:
        await conn.close()
    cache_latencies = []
    for latency, result in burst:
        if result.get("kind") != "result":
            failures.append("burst request failed: %r" % (result,))
            continue
        if result.get("served") != "cache":
            failures.append("burst request served %r, expected 'cache'"
                            % result.get("served"))
        if canonical(result["summary"]) != prime_summary:
            failures.append("burst summary diverged from the primed one")
        cache_latencies.append(latency)

    # Phase 3: open-loop Poisson arrivals, mixed class and priority.
    # Arrival *times* are Poisson; the class/priority mix is a fixed
    # round-robin so every run exercises both classes and both
    # priorities — warm_speedup must never come back null because the
    # dice rolled all-cache.
    arrivals = poisson_arrivals(rng, rate, duration)
    while len(arrivals) < 5:
        arrivals.append(rng.uniform(0.0, duration))
    arrivals.sort()
    plan = []
    for index, offset in enumerate(arrivals):
        cls = "warm" if index % 5 < 3 else "cache"
        priority = "batch" if index % 3 == 2 else "interactive"
        plan.append((index, offset, cls, priority))
    say("loadgen: open loop — %d arrival(s) over %.1fs at %g/s"
        % (len(plan), duration, rate))
    outcomes = await asyncio.gather(
        *[_one_arrival(endpoint, fixed, workload, spec) for spec in plan],
        return_exceptions=True)
    warm_latencies, warm_service, dropped, streamed_frames = [], [], 0, 0
    by_served = {}
    by_priority = {"interactive": 0, "batch": 0}
    for spec, outcome in zip(plan, outcomes):
        if isinstance(outcome, BaseException):
            dropped += 1
            failures.append("arrival %d dropped: %s" % (spec[0], outcome))
            continue
        latency, result = outcome
        if result.get("kind") != "result":
            dropped += 1
            failures.append("arrival %d errored: %r"
                            % (spec[0], result.get("error")))
            continue
        served = result.get("served")
        by_served[served] = by_served.get(served, 0) + 1
        by_priority[spec[3]] += 1
        streamed_frames += result.get("progress_frames", 0)
        if spec[2] == "warm":
            warm_latencies.append(latency)
            warm_service.append(result["timings"]["service_s"])
            if served == "cache":
                failures.append("warm-class arrival %d was cache-served"
                                % spec[0])
        else:
            cache_latencies.append(latency)
            if canonical(result["summary"]) != prime_summary:
                failures.append("cache-class arrival %d summary diverged"
                                % spec[0])

    # Phase 4: chaos — kill a worker mid-request, require the retried
    # result to be byte-identical to the undisturbed one.
    say("loadgen: chaos — killing one worker mid-request")
    conn = await ServeClient.connect(**endpoint)
    started = time.monotonic()
    chaos_reply = await conn.run(fixed, priority="interactive",
                                 use_cache=False, chaos="exit")
    chaos_latency = time.monotonic() - started
    await conn.close()
    chaos_recovered = (chaos_reply.get("kind") == "result"
                       and chaos_reply.get("retried") is True
                       and chaos_reply.get("served") == "warm-retry")
    chaos_identical = (chaos_reply.get("kind") == "result"
                       and canonical(chaos_reply["summary"])
                       == prime_summary)
    if not chaos_recovered:
        failures.append("chaos request did not recover via retry: %r"
                        % {k: chaos_reply.get(k)
                           for k in ("kind", "served", "retried", "error")})
    if not chaos_identical:
        failures.append("chaos retry summary diverged from the "
                        "undisturbed result")

    # Phase 5 (optional): re-simulate in-process and compare bytes.
    direct_identical = None
    if verify_direct:
        say("loadgen: verifying served bytes against a direct run")
        direct_identical = await loop.run_in_executor(
            None, _direct_matches, fixed, prime_summary)
        if not direct_identical:
            failures.append("served summary diverged from a direct "
                            "runner.run_request execution")

    client = await ServeClient.connect(**endpoint)
    daemon_stats = await client.stats()
    if do_shutdown:
        await client.shutdown()
    await client.close()

    report = _build_report(workload, rate, duration, clients, seed,
                           cold_walls, cache_latencies, warm_latencies,
                           warm_service, prime_latency, chaos_latency,
                           chaos_recovered, chaos_identical,
                           direct_identical, by_served, by_priority,
                           dropped, streamed_frames, daemon_stats,
                           failures)
    report["latency"]["cold_warmup_s"] = cold_warmup
    ratios = report["tiers"]["serve"]
    if ratios["warm_speedup"] is None:
        failures.append("no warm-class samples; warm_speedup unmeasured")
    elif ratios["warm_speedup"] <= 1.0:
        failures.append("no amortization: warm service p95 %.2fs did not "
                        "beat cold p50 %.2fs"
                        % (report["latency"]["warm_service"]
                           .get("p95_s", -1.0),
                           report["latency"]["cold"].get("p50_s", -1.0)))
    report["ok"] = not failures
    report["failures"] = list(failures)
    return report, failures


def _announce(message):
    print(message, flush=True)


async def _timed_run(conn, request, priority):
    started = time.monotonic()
    reply = await conn.run(request, priority=priority)
    return time.monotonic() - started, reply


async def _one_arrival(endpoint, fixed, workload, spec):
    """One open-loop arrival: sleep to its offset, connect, run, close."""
    index, offset, cls, priority = spec
    await asyncio.sleep(offset)
    conn = await ServeClient.connect(**endpoint)
    try:
        started = time.monotonic()
        if cls == "warm":
            # Jitter makes every warm request a distinct cache key, so
            # it must really simulate (that is the class's whole point).
            request = dict(fixed,
                           scale=workload["scale"] + (index + 1) * 1e-4)
            reply = await conn.run(request, priority=priority,
                                   use_cache=False,
                                   stream=(index % 4 == 0),
                                   progress_interval=0.05)
        else:
            reply = await conn.run(fixed, priority=priority)
        return time.monotonic() - started, reply
    finally:
        await conn.close()


def _direct_matches(fixed, prime_summary):
    """Fresh in-process simulation of ``fixed`` == the served bytes?"""
    from repro.experiments import runner
    request = protocol.wire_to_request(fixed)
    run = runner.run_request(request, use_cache=False)
    summary = runner.request_summary(request, run)
    # The served summary crossed a JSON boundary; push the direct one
    # through the same encoding so tuples/lists compare canonically.
    return canonical(json.loads(canonical(summary))) == prime_summary


def _build_report(workload, rate, duration, clients, seed, cold_walls,
                  cache_latencies, warm_latencies, warm_service,
                  prime_latency, chaos_latency, chaos_recovered,
                  chaos_identical, direct_identical, by_served,
                  by_priority, dropped, streamed_frames, daemon_stats,
                  failures):
    cold = _latency_block(cold_walls)
    cache = _latency_block(cache_latencies)
    warm = _latency_block(warm_latencies)
    service = _latency_block(warm_service)

    def _ratio(numerator, denominator):
        if numerator is None or denominator is None or denominator <= 0:
            return None
        return numerator / denominator

    warm_speedup = _ratio(cold.get("p50_s"), service.get("p95_s"))
    cache_speedup = _ratio(cold.get("p50_s"), cache.get("p95_s"))
    identical = (chaos_identical
                 and (direct_identical is not False)
                 and not any("diverged" in f for f in failures))
    total = (cache["count"] + warm["count"] + 1  # + the prime request
             + (1 if chaos_recovered or chaos_latency else 0))
    return {
        "schema": "repro-serve-slo/1",
        "workload": dict(workload, rate=rate, duration=duration,
                         clients=clients, seed=seed),
        "requests": {"total": total, "dropped": dropped,
                     "by_served": dict(sorted(by_served.items())),
                     "by_priority": by_priority,
                     "progress_frames": streamed_frames},
        "latency": {"cold": cold, "cache": cache, "warm": warm,
                    "warm_service": service,
                    "prime_s": prime_latency, "chaos_s": chaos_latency},
        "chaos": {"exercised": True, "recovered": chaos_recovered,
                  "identical": chaos_identical},
        "verify_direct": direct_identical,
        "daemon_stats": daemon_stats,
        "tiers": {"serve": {"warm_speedup": warm_speedup,
                            "cache_speedup": cache_speedup,
                            "identical": identical,
                            "cold_p50_s": cold.get("p50_s"),
                            "warm_service_p95_s": service.get("p95_s"),
                            "warm_e2e_p95_s": warm.get("p95_s"),
                            "cache_p95_s": cache.get("p95_s")}},
    }


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
