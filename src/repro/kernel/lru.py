"""Active/inactive page LRU lists (Section VII-A's "Active pte_ts" proxy).

Linux keeps referenced pages on an active list and ages them to an
inactive list; Figure 9's central bar counts pte_ts whose page is on the
active list. We reproduce the two-list design with second-chance
promotion: a first touch lands a page on the inactive list, a second touch
promotes it to active.
"""

import collections


class ActiveInactiveLRU:
    def __init__(self, active_capacity=None):
        #: Optional cap on the active list; None = unbounded (our simulated
        #: workloads fit in the 32GB of Table I, so no reclaim pressure).
        self.active_capacity = active_capacity
        self._active = collections.OrderedDict()
        self._inactive = collections.OrderedDict()
        self.promotions = 0
        self.demotions = 0

    def touch(self, ppn):
        """Record a reference to a physical page."""
        if ppn in self._active:
            self._active.move_to_end(ppn)
            return
        if ppn in self._inactive:
            del self._inactive[ppn]
            self._active[ppn] = True
            self.promotions += 1
            self._maybe_demote()
            return
        self._inactive[ppn] = True

    def _maybe_demote(self):
        if self.active_capacity is None:
            return
        while len(self._active) > self.active_capacity:
            ppn, _ = self._active.popitem(last=False)
            self._inactive[ppn] = True
            self.demotions += 1

    def drop(self, ppn):
        self._active.pop(ppn, None)
        self._inactive.pop(ppn, None)

    def is_active(self, ppn):
        return ppn in self._active

    def is_tracked(self, ppn):
        return ppn in self._active or ppn in self._inactive

    def reset(self):
        self._active.clear()
        self._inactive.clear()

    @property
    def active_count(self):
        return len(self._active)

    @property
    def inactive_count(self):
        return len(self._inactive)
