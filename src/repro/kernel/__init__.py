"""OS kernel substrate: frames, page tables, page cache, VMAs, processes,
page-fault handling, THP, and scheduling.

This package models the slice of Linux that the paper modifies: lazy page
table management, fork-based CoW, file-backed sharing through the page
cache, and transparent huge pages. It is policy-agnostic about BabelFish —
the page-table sharing policy is injected (see
:class:`repro.kernel.kernel.Kernel`), with the conventional private-table
policy as the default and :class:`repro.core.shared_pt.SharedPTManager`
as the BabelFish one.
"""

from repro.kernel.errors import (
    OutOfMemoryError,
    ProtectionFault,
    SegmentationFault,
    SimulationError,
)
from repro.kernel.costs import KernelCosts
from repro.kernel.frames import FrameAllocator, FrameKind
from repro.kernel.page_table import (
    AddressSpaceTables,
    PageTable,
    PTE,
    TableRef,
    table_index,
)
from repro.kernel.page_cache import FileObject, PageCache
from repro.kernel.vma import MM, SegmentKind, VMA, VMAKind
from repro.kernel.aslr_layout import Layout, canonical_layout, randomized_layout
from repro.kernel.lru import ActiveInactiveLRU
from repro.kernel.process import Process
from repro.kernel.fault import FaultOutcome, FaultType
from repro.kernel.scheduler import Scheduler
from repro.kernel.kernel import Kernel, KernelConfig, PrivatePTPolicy

__all__ = [
    "SimulationError",
    "SegmentationFault",
    "ProtectionFault",
    "OutOfMemoryError",
    "KernelCosts",
    "FrameAllocator",
    "FrameKind",
    "AddressSpaceTables",
    "PageTable",
    "PTE",
    "TableRef",
    "table_index",
    "FileObject",
    "PageCache",
    "MM",
    "VMA",
    "VMAKind",
    "SegmentKind",
    "Layout",
    "canonical_layout",
    "randomized_layout",
    "ActiveInactiveLRU",
    "Process",
    "FaultOutcome",
    "FaultType",
    "Scheduler",
    "Kernel",
    "KernelConfig",
    "PrivatePTPolicy",
]
