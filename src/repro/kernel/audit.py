"""Kernel-state auditor: whole-system invariant checks.

Shared page tables are exactly the kind of mechanism where a subtle
bookkeeping bug (a sharer count off by one, a stale registry entry, a
frame freed twice) silently corrupts results long before anything
crashes. The auditor walks the *entire* kernel state and cross-checks it;
integration tests and long property runs call it after every scenario.

Checked invariants:

1. **Sharer counts**: every table's ``sharers`` equals the number of
   TableRef entries (plus PGD roots) that actually point at it.
2. **Frame refcounts**: every allocated frame's refcount equals the
   number of references the kernel actually holds (page-cache slots +
   distinct-table PTE entries + table/mask-page frames themselves).
3. **Registry consistency**: every registry entry's table carries the
   same key and is reachable; owned tables never appear in the registry.
4. **CCID confinement**: a table reachable from two processes implies
   they are in the same CCID group.
5. **Ownership**: a table with ``owned_by`` set is reachable only from
   that process.
"""

import collections

from repro.kernel.frames import FrameKind
from repro.kernel.page_table import PTE, TableRef


class AuditError(AssertionError):
    """An invariant violation, with the full list of findings."""

    def __init__(self, findings):
        super().__init__("kernel audit failed:\n  " + "\n  ".join(findings))
        self.findings = findings


def _reachable_tables(kernel):
    """Map id(table) -> (table, set of pids reaching it, ref count)."""
    info = {}
    refs = collections.Counter()
    for proc in kernel.processes.values():
        stack = [proc.tables.pgd]
        refs[id(proc.tables.pgd)] += 1
        seen_here = set()
        while stack:
            table = stack.pop()
            entry = info.setdefault(id(table), (table, set()))
            entry[1].add(proc.pid)
            if id(table) in seen_here:
                continue
            seen_here.add(id(table))
            for item in table.entries.values():
                if isinstance(item, TableRef):
                    refs[id(item.table)] += 1
                    stack.append(item.table)
    return info, refs


def audit_kernel(kernel, raise_on_failure=True):
    """Run all checks; returns the list of findings (empty = clean)."""
    findings = []
    info, refs = _reachable_tables(kernel)

    # 1. Sharer counts.
    for table_id, (table, _pids) in info.items():
        expected = refs[table_id]
        if table.sharers != expected:
            findings.append(
                "sharers mismatch on %r: counter=%d actual refs=%d"
                % (table, table.sharers, expected))

    # 2. Frame refcounts.
    expected_refs = collections.Counter()
    for fid, index in getattr(kernel.page_cache, "_pages", {}):
        expected_refs[kernel.page_cache._pages[(fid, index)]] += 1
    for table_id, (table, _pids) in info.items():
        expected_refs[table.frame] += 1
        for item in table.entries.values():
            if isinstance(item, PTE) and item.present:
                expected_refs[item.ppn] += 1
    mask_dir = getattr(kernel.policy, "mask_dir", None)
    if mask_dir is not None:
        for page in mask_dir:
            if page.frame is not None:
                expected_refs[page.frame] += 1
    for ppn, expected in expected_refs.items():
        actual = kernel.allocator.refcount(ppn)
        if actual != expected:
            findings.append(
                "frame %#x refcount=%d but %d references exist (kind=%s)"
                % (ppn, actual, expected, kernel.allocator.kind(ppn)))
    # No allocated data/page-table frame should be reference-less.
    for ppn, count in list(kernel.allocator._refcount.items()):
        kind = kernel.allocator.kind(ppn)
        if kind in (FrameKind.DATA, FrameKind.PAGE_TABLE) \
                and ppn not in expected_refs:
            findings.append("leaked %s frame %#x (refcount=%d)"
                            % (kind.value, ppn, count))

    # 3. Registry consistency.
    registry = getattr(kernel.policy, "registry", None)
    if registry is not None:
        for key, value in registry.items():
            table = value[0] if isinstance(value, tuple) else value
            if table.shared_key != key:
                findings.append("registry key %r points at table keyed %r"
                                % (key, table.shared_key))
            if table.owned_by is not None:
                findings.append("owned table %r present in registry" % table)
            if id(table) not in info and table.sharers > 0:
                findings.append(
                    "registry table %r unreachable but sharers=%d"
                    % (table, table.sharers))

    # 4 & 5. CCID confinement and ownership.
    pid_to_ccid = {p.pid: p.ccid for p in kernel.processes.values()}
    for table_id, (table, pids) in info.items():
        ccids = {pid_to_ccid[pid] for pid in pids if pid in pid_to_ccid}
        if len(ccids) > 1:
            findings.append("table %r crosses CCIDs %s" % (table, ccids))
        if table.owned_by is not None and pids - {table.owned_by}:
            findings.append(
                "owned table %r (pid %d) reachable from %s"
                % (table, table.owned_by, pids - {table.owned_by}))

    if findings and raise_on_failure:
        raise AuditError(findings)
    return findings
