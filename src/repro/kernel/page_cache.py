"""Files and the page cache.

The Linux page cache is why containers share physical pages: a library or
data file mapped by many processes is backed by a single page-cache frame
per file page. BabelFish then additionally shares the *translations* to
those frames.
"""

import itertools

from repro.kernel.frames import FrameKind


class FileObject:
    """A file that can be mmap'ed: container image layer, library, dataset."""

    _ids = itertools.count(1)

    def __init__(self, name, npages):
        self.fid = next(FileObject._ids)
        self.name = name
        self.npages = npages

    def __repr__(self):
        return "<File %d %r %d pages>" % (self.fid, self.name, self.npages)


class PageCache:
    def __init__(self, allocator):
        self.allocator = allocator
        self._pages = {}
        self.lookups = 0
        self.hit_count = 0
        self.fills = 0

    def lookup(self, file, index):
        """PPN of a cached file page, or None (caller takes a major fault)."""
        self.lookups += 1
        ppn = self._pages.get((file.fid, index))
        if ppn is not None:
            self.hit_count += 1
        return ppn

    def fill(self, file, index):
        """Bring a file page into the cache (disk read); returns its PPN."""
        key = (file.fid, index)
        if key in self._pages:
            return self._pages[key]
        if index >= file.npages:
            raise ValueError("page %d beyond EOF of %r" % (index, file))
        ppn = self.allocator.alloc(FrameKind.FILE)
        self._pages[key] = ppn
        self.fills += 1
        return ppn

    def populate(self, file, start=0, npages=None):
        """Warm the cache with a file range (the paper's OS warm-up phase)."""
        npages = file.npages - start if npages is None else npages
        for index in range(start, start + npages):
            self.fill(file, index)

    def cached_pages(self, file):
        return sum(1 for fid, _ in self._pages if fid == file.fid)

    @property
    def total_pages(self):
        return len(self._pages)
