"""x86-64 four-level page tables (Section II-B, Figure 2).

Levels are numbered 4 (PGD), 3 (PUD), 2 (PMD), 1 (PTE). Each
:class:`PageTable` occupies one real simulated frame, so every table entry
has a physical address the hardware page walker can send to the cache
hierarchy — that is how BabelFish's shared tables produce L3 hits for the
second container (Figure 7).

Leaf entries are :class:`PTE`; intermediate entries are :class:`TableRef`,
which also carries the pmd_t O and ORPC bits that BabelFish stores in the
currently-unused bits 10 and 9 (Figure 5a). A PMD-level :class:`PTE` is a
2MB huge-page mapping; a PUD-level one is a 1GB mapping.
"""

from repro.hw.types import ENTRIES_PER_TABLE, PAGE_SIZE, PTE_BYTES, PageSize
from repro.kernel.frames import FrameKind

#: Level numbering, top down.
PGD, PUD, PMD, PTE_LEVEL = 4, 3, 2, 1

#: Bits of VPN index consumed by each level below it.
_LEVEL_SHIFT = {PGD: 27, PUD: 18, PMD: 9, PTE_LEVEL: 0}

#: Page size of a leaf installed at a given level.
LEAF_SIZE = {PTE_LEVEL: PageSize.SIZE_4K, PMD: PageSize.SIZE_2M, PUD: PageSize.SIZE_1G}


def table_index(vpn, level):
    """Index into a ``level`` table for a 4K VPN (Figure 2's bit slices)."""
    return (vpn >> _LEVEL_SHIFT[level]) & (ENTRIES_PER_TABLE - 1)


def region_id(vpn):
    """1GB region id: identifies the PMD table (and MaskPage) covering vpn."""
    return vpn >> _LEVEL_SHIFT[PUD]


def pte_table_id(vpn):
    """2MB-aligned id: identifies the PTE table covering vpn."""
    return vpn >> _LEVEL_SHIFT[PMD]


class PTE:
    """A leaf translation (pte_t, or a huge pmd_t/pud_t leaf)."""

    __slots__ = ("ppn", "present", "writable", "user", "executable", "cow",
                 "dirty", "accessed", "page_size", "file", "file_index")

    def __init__(self, ppn, present=True, writable=True, user=True,
                 executable=False, cow=False, page_size=PageSize.SIZE_4K,
                 file=None, file_index=None):
        self.ppn = ppn
        self.present = present
        self.writable = writable
        self.user = user
        self.executable = executable
        self.cow = cow
        self.dirty = False
        self.accessed = False
        self.page_size = page_size
        self.file = file
        self.file_index = file_index

    def perm_key(self):
        """Permission bits relevant to Figure 9's shareability test."""
        return (self.writable, self.user, self.executable, self.cow)

    def clone(self):
        pte = PTE(self.ppn, self.present, self.writable, self.user,
                  self.executable, self.cow, self.page_size,
                  self.file, self.file_index)
        pte.dirty = self.dirty
        pte.accessed = self.accessed
        return pte

    def __repr__(self):
        return "<PTE ppn=%#x %s%s%s%s>" % (
            self.ppn,
            "P" if self.present else "-",
            "W" if self.writable else "-",
            "C" if self.cow else "-",
            " huge" if self.page_size is not PageSize.SIZE_4K else "")


class TableRef:
    """An intermediate entry pointing at a lower-level table.

    ``o_bit`` / ``orpc`` reproduce BabelFish's pmd_t bits 10 and 9: O set
    means the pointed-to PTE table is a private (owned) copy; ORPC set
    means some process in the CCID group holds a private copy of a page in
    this 2MB range, so the PC bitmask must be consulted (Figure 5b).
    """

    __slots__ = ("table", "o_bit", "orpc")

    def __init__(self, table, o_bit=False, orpc=False):
        self.table = table
        self.o_bit = o_bit
        self.orpc = orpc


class PageTable:
    """One 4KB page-table page at a given level.

    ``sharers`` is BabelFish's per-table counter (Section IV-B): the number
    of processes whose upper-level entry points here. Private tables keep
    it at 1. ``owned_by`` is set on the private pte-page copies a CoW break
    creates (their translations carry the Ownership bit).
    """

    __slots__ = ("level", "frame", "entries", "sharers", "owned_by",
                 "shared_key", "orpc")

    def __init__(self, level, frame):
        self.level = level
        self.frame = frame
        self.entries = {}
        self.sharers = 1
        self.owned_by = None
        self.shared_key = None
        #: Mirror of the sharers' pmd_t ORPC bits for this table's 2MB
        #: range: set when any process in the CCID group holds a private
        #: copy of a page mapped here (the paper stores this per pmd_t;
        #: keeping it on the shared table is equivalent for simulation
        #: because all sharers' pmd_t bits are updated together).
        self.orpc = False

    def entry_paddr(self, index):
        """Physical address of entry ``index`` (what the walker fetches)."""
        return self.frame * PAGE_SIZE + index * PTE_BYTES

    @property
    def is_shared(self):
        return self.sharers > 1

    def live_entries(self):
        return len(self.entries)

    def __repr__(self):
        return "<PageTable L%d frame=%#x entries=%d sharers=%d%s>" % (
            self.level, self.frame, len(self.entries), self.sharers,
            " owned" if self.owned_by is not None else "")


class AddressSpaceTables:
    """A process's page-table tree rooted at its private PGD (its CR3)."""

    def __init__(self, allocator):
        self.allocator = allocator
        self.pgd = self._new_table(PGD)
        #: Table pages allocated on behalf of this address space (for cost
        #: accounting; shared attachments do not count).
        self.tables_allocated = 1

    def _new_table(self, level):
        frame = self.allocator.alloc(FrameKind.PAGE_TABLE)
        return PageTable(level, frame)

    @property
    def cr3(self):
        return self.pgd.frame * PAGE_SIZE

    # -- traversal ---------------------------------------------------------

    def walk(self, vpn):
        """Software walk: yields ``(level, table, index, entry)`` top-down.

        Stops at the first missing entry or at a leaf. The caller decides
        what a missing/non-present entry means (fault level).
        """
        table = self.pgd
        path = []
        for level in (PGD, PUD, PMD, PTE_LEVEL):
            index = table_index(vpn, level)
            entry = table.entries.get(index)
            path.append((level, table, index, entry))
            if not isinstance(entry, TableRef):
                break
            table = entry.table
        return path

    def lookup_pte(self, vpn):
        """The leaf PTE mapping ``vpn`` (4K or huge), or None."""
        path = self.walk(vpn)
        entry = path[-1][3]
        return entry if isinstance(entry, PTE) else None

    def ensure_path(self, vpn, leaf_level=PTE_LEVEL, table_provider=None):
        """Create intermediate tables down to ``leaf_level``'s table.

        ``table_provider(level, vpn)`` may supply a (shared) table for a
        level instead of allocating a private one; the provider is fully
        responsible for sharer-count accounting. It returns a
        :class:`PageTable` or ``None`` to allocate privately. Returns
        ``(table, index, allocated_pages)`` where ``table`` is the table
        holding the leaf entry.
        """
        table = self.pgd
        allocated = 0
        for level in (PGD, PUD, PMD):
            if level == leaf_level:
                break
            index = table_index(vpn, level)
            entry = table.entries.get(index)
            if entry is None:
                child_level = level - 1
                child = table_provider(child_level, vpn) if table_provider else None
                if child is None:
                    child = self._new_table(child_level)
                    self.tables_allocated += 1
                    allocated += 1
                entry = TableRef(child)
                table.entries[index] = entry
            elif not isinstance(entry, TableRef):
                raise ValueError(
                    "vpn %#x: level %d already holds a huge leaf" % (vpn, level))
            table = entry.table
        return table, table_index(vpn, leaf_level), allocated

    def set_leaf(self, vpn, pte, leaf_level=PTE_LEVEL, table_provider=None):
        """Install a leaf mapping, creating the path as needed."""
        table, index, allocated = self.ensure_path(vpn, leaf_level, table_provider)
        table.entries[index] = pte
        return table, index, allocated

    # -- iteration / accounting --------------------------------------------

    def iter_tables(self, include_shared=True):
        """All reachable tables, each yielded once."""
        seen = set()
        stack = [self.pgd]
        while stack:
            table = stack.pop()
            if id(table) in seen:
                continue
            seen.add(id(table))
            if not include_shared and table.is_shared and table is not self.pgd:
                continue
            yield table
            for entry in table.entries.values():
                if isinstance(entry, TableRef):
                    stack.append(entry.table)

    def iter_leaves(self):
        """All leaf PTEs: yields ``(vpn, level, table, index, pte)``."""
        stack = [(self.pgd, 0)]
        while stack:
            table, base_vpn = stack.pop()
            shift = _LEVEL_SHIFT[table.level]
            for index, entry in table.entries.items():
                vpn = base_vpn | (index << shift)
                if isinstance(entry, TableRef):
                    stack.append((entry.table, vpn))
                elif isinstance(entry, PTE):
                    yield vpn, table.level, table, index, entry

    def count_table_pages(self):
        return sum(1 for _ in self.iter_tables())
