"""Virtual memory areas and the per-process memory descriptor (mm).

A container process's address space is a handful of VMAs: binary code and
data, heap, stack, shared libraries (the middleware the paper notes is
shared across containers), and file mappings of mounted data sets.
"""

import bisect
import enum


class SegmentKind(enum.Enum):
    """The 7 ASLR-randomized segments of a Linux process (Section IV-D)."""

    CODE = "code"
    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    LIBS = "libs"
    MMAP = "mmap"
    VDSO = "vdso"


class VMAKind(enum.Enum):
    #: MAP_SHARED file mapping: all mappers see one physical page, writes
    #: go to the shared page (data sets mounted into containers).
    FILE_SHARED = "file_shared"
    #: MAP_PRIVATE file mapping: read-shared through the page cache, CoW on
    #: write (binaries, libraries, image layers).
    FILE_PRIVATE = "file_private"
    #: Anonymous memory: private zero-fill, CoW across fork (heap, stack,
    #: internal buffers).
    ANON = "anon"

    @property
    def file_backed(self):
        return self is not VMAKind.ANON


class VMA:
    __slots__ = ("start_vpn", "npages", "segment", "kind", "file",
                 "file_offset", "writable", "executable", "huge_ok", "name")

    def __init__(self, start_vpn, npages, segment, kind, file=None,
                 file_offset=0, writable=True, executable=False,
                 huge_ok=False, name=""):
        if kind.file_backed and file is None:
            raise ValueError("file-backed VMA requires a file")
        self.start_vpn = start_vpn
        self.npages = npages
        self.segment = segment
        self.kind = kind
        self.file = file
        self.file_offset = file_offset
        self.writable = writable
        self.executable = executable
        self.huge_ok = huge_ok
        self.name = name

    @property
    def end_vpn(self):
        return self.start_vpn + self.npages

    def contains(self, vpn):
        return self.start_vpn <= vpn < self.end_vpn

    def file_index(self, vpn):
        """File page index backing ``vpn``."""
        return self.file_offset + (vpn - self.start_vpn)

    @property
    def shareable(self):
        """Could translations in this VMA be identical across the group?

        File-backed mappings (shared data sets, binaries, libraries) are;
        private anonymous memory is shareable only through fork-CoW, which
        is handled by table inheritance, not by fault-time attachment.
        """
        return self.kind.file_backed

    def __repr__(self):
        return "<VMA %s %s [%#x..%#x) %s%s>" % (
            self.name or self.segment.value, self.kind.value,
            self.start_vpn, self.end_vpn,
            "W" if self.writable else "R",
            "X" if self.executable else "")


class MM:
    """Per-process memory descriptor: a sorted, non-overlapping VMA list."""

    def __init__(self):
        self._vmas = []
        self._starts = []

    def add(self, vma):
        index = bisect.bisect_left(self._starts, vma.start_vpn)
        prev_vma = self._vmas[index - 1] if index > 0 else None
        next_vma = self._vmas[index] if index < len(self._vmas) else None
        if prev_vma is not None and prev_vma.end_vpn > vma.start_vpn:
            raise ValueError("VMA overlap: %r / %r" % (prev_vma, vma))
        if next_vma is not None and vma.end_vpn > next_vma.start_vpn:
            raise ValueError("VMA overlap: %r / %r" % (vma, next_vma))
        self._vmas.insert(index, vma)
        self._starts.insert(index, vma.start_vpn)
        return vma

    def remove(self, vma):
        index = self._vmas.index(vma)
        del self._vmas[index]
        del self._starts[index]

    def find(self, vpn):
        """The VMA containing ``vpn``, or None."""
        index = bisect.bisect_right(self._starts, vpn) - 1
        if index < 0:
            return None
        vma = self._vmas[index]
        return vma if vma.contains(vpn) else None

    def clone_into(self, other):
        """fork(): child gets copies of all VMAs (same files/offsets)."""
        for vma in self._vmas:
            other.add(VMA(vma.start_vpn, vma.npages, vma.segment, vma.kind,
                          vma.file, vma.file_offset, vma.writable,
                          vma.executable, vma.huge_ok, vma.name))

    def __iter__(self):
        return iter(self._vmas)

    def __len__(self):
        return len(self._vmas)

    @property
    def total_pages(self):
        return sum(vma.npages for vma in self._vmas)
