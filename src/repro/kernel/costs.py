"""Kernel operation costs, in core cycles.

These feed the timing model: the paper's gains come partly from
*eliminated kernel work* (redundant minor faults, page-table copies at
fork) and partly from TLB/cache effects. The constants below are typical
magnitudes for a 2GHz server (a Linux minor fault is ~1-2us of kernel
time; a TLB shootdown IPI round is ~1-4us) and are configurable so
experiments can do sensitivity sweeps.
"""

import dataclasses


@dataclasses.dataclass(frozen=True)
class KernelCosts:
    #: Minor fault: trap, VMA lookup, pte update, return.
    minor_fault: int = 2400
    #: Major fault: page not in page cache; models an NVMe-class read.
    major_fault: int = 160_000
    #: Extra cost of a CoW break on top of a minor fault (copy 4KB + rmap).
    cow_extra: int = 2000
    #: BabelFish: copying a page of 512 pte_t translations on a CoW break
    #: in a shared PTE table (Section III-A) plus MaskPage bookkeeping.
    pte_page_copy: int = 1100
    #: One TLB shootdown round (IPI + remote invalidation + ack).
    tlb_shootdown: int = 3000
    #: Allocating and zeroing one page-table page.
    table_alloc: int = 300
    #: Fixed fork cost (task_struct, descriptors, ...).
    fork_base: int = 12_000
    #: Per page-table page copied at fork (baseline replicates tables;
    #: BabelFish only copies the upper levels).
    fork_per_table_page: int = 450
    #: Context switch: state save/restore + CR3 write (no TLB flush, PCID).
    context_switch: int = 1400
    #: exec(): binary load bookkeeping before first fault.
    exec_base: int = 20_000
