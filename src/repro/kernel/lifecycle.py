"""Process lifecycle support: PCID allocation with recycling.

Hardware PCIDs are a small namespace (12 bits on x86) while pids are
unbounded, so a long-lived machine *must* recycle them. The seed code
derived ``pcid = pid & ((1 << PCID_BITS) - 1)``, which silently aliases
two **live** processes once pids wrap the PCID space — at that point a
conventional TLB lookup (or a BabelFish Ownership-bit match, which also
keys on the PCID) can serve one process's private translation to
another. The allocator here gives every live process a unique PCID and
only hands a value out again after its previous holder released it; like
Linux's ASID allocator, reusing a PCID is paired with a full flush of
that PCID's TLB footprint (the kernel issues the shootdown, see
``Kernel.spawn``/``Kernel.fork``), so a recycled context starts from an
empty TLB even if the exit-time flush was somehow lost.
"""

import collections

#: Hardware PCID width (x86: 12 bits).
PCID_BITS = 12


class OutOfPCIDs(Exception):
    """More live processes than the PCID namespace can tag."""


class PCIDAllocator:
    """Unique PCIDs for live processes; FIFO recycling of released ones.

    PCID 0 is reserved (the no-PCID value on x86), leaving
    ``2**bits - 1`` usable tags. Fresh values are preferred over
    recycled ones so a recycled PCID re-enters circulation as late as
    possible — by then its old TLB entries have almost certainly been
    evicted, and the paired shootdown handles the rest.
    """

    def __init__(self, bits=PCID_BITS):
        self.bits = bits
        self.capacity = (1 << bits) - 1
        self._next = 1
        self._recycled = collections.deque()
        self._live = set()
        #: Times a previously-used PCID was handed out again.
        self.recycles = 0

    def allocate(self):
        """Return ``(pcid, recycled)`` for a new process.

        ``recycled`` tells the caller a scoped shootdown is required
        before the new process runs (stale entries of the previous
        holder may still be resident).
        """
        if self._next <= self.capacity:
            pcid = self._next
            self._next += 1
            self._live.add(pcid)
            return pcid, False
        if not self._recycled:
            raise OutOfPCIDs(
                "all %d PCIDs are held by live processes" % self.capacity)
        pcid = self._recycled.popleft()
        self._live.add(pcid)
        self.recycles += 1
        return pcid, True

    def release(self, pcid):
        """Return a PCID to the pool (process exit)."""
        if pcid in self._live:
            self._live.discard(pcid)
            self._recycled.append(pcid)

    def is_live(self, pcid):
        return pcid in self._live

    @property
    def live(self):
        """Number of PCIDs currently held by live processes."""
        return len(self._live)
