"""Address-space layouts and ASLR seeds (Section IV-D).

A :class:`Layout` assigns each of the 7 segments a base VPN. Workload
traces address memory as ``(segment, page offset)``; the layout turns that
into a concrete VPN. Randomization is in 2MB (512-page) units so that
shareable mappings stay PTE-table-aligned across layouts, which both Linux
(mmap granularity for large mappings) and BabelFish's table sharing want.

Three regimes, matching the paper:

- *fork-inherited* (the conventional baseline): containers of one
  application are forked from a common parent, so they all inherit the
  parent's randomized layout.
- *ASLR-SW*: one random layout per CCID group (identical effect, but the
  seed is per-group by policy).
- *ASLR-HW*: every process gets its own layout; hardware applies the
  per-segment ``diff_offset[] = group_offset[] - proc_offset[]`` between
  the L1 and L2 TLBs so group members still share L2/page-table state.
"""

import random

from repro.hw.types import ENTRIES_PER_TABLE
from repro.kernel.vma import SegmentKind

#: Canonical (pre-randomization) segment bases, in 4K VPNs. Windows are
#: 512GB apart so segments can never collide regardless of offsets.
CANONICAL_BASES = {
    SegmentKind.CODE: 0x0000_4000_0 >> 0,      # ~0x400000 / 4K
    SegmentKind.DATA: 0x0000_0001_0000_0,
    SegmentKind.HEAP: 0x0000_0002_0000_0,
    SegmentKind.MMAP: 0x0000_0100_0000_0,
    SegmentKind.LIBS: 0x0000_0200_0000_0,
    SegmentKind.STACK: 0x0000_0300_0000_0,
    SegmentKind.VDSO: 0x0000_0400_0000_0,
}

#: Randomization entropy: offsets are multiples of 512 pages (2MB), up to
#: 256 slots, i.e. 8 bits of entropy per segment.
ASLR_SLOTS = 256


class Layout:
    """Segment base VPNs for one address space."""

    __slots__ = ("bases",)

    def __init__(self, bases):
        self.bases = dict(bases)

    def base(self, segment):
        return self.bases[segment]

    def vpn(self, segment, page_offset):
        """Concrete VPN for a segment-relative page offset."""
        return self.bases[segment] + page_offset

    def segment_of(self, vpn):
        """Which segment a VPN falls in (the ASLR-HW logic module's
        comparators); None if outside all windows."""
        best = None
        for segment, base in self.bases.items():
            if vpn >= base and (best is None or base > self.bases[best]):
                best = segment
        return best

    def diff(self, other):
        """Per-segment ``other - self`` offsets (the diff_i_offset[] array)."""
        return {seg: other.bases[seg] - base for seg, base in self.bases.items()}

    def __eq__(self, other):
        return isinstance(other, Layout) and self.bases == other.bases

    def __repr__(self):
        return "<Layout %s>" % {s.value: hex(b) for s, b in self.bases.items()}


def canonical_layout():
    """The unrandomized layout (ASLR off)."""
    return Layout(CANONICAL_BASES)


def randomized_layout(seed):
    """A fresh random layout: each segment shifted by 0..255 slots of 2MB."""
    rng = random.Random(seed)
    bases = {
        segment: base + rng.randrange(ASLR_SLOTS) * ENTRIES_PER_TABLE
        for segment, base in CANONICAL_BASES.items()
    }
    return Layout(bases)
