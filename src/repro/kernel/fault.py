"""Page-fault classification and outcomes (Section II-B)."""

import dataclasses
import enum


class FaultType(enum.Enum):
    #: Page had to come from "disk" (not in the page cache).
    MAJOR = "major"
    #: Page was in memory; only the table entry needed updating.
    MINOR = "minor"
    #: Write to a Copy-on-Write page: private frame allocated.
    COW = "cow"
    #: The translation was already present and usable when the handler
    #: looked (another CCID-group member resolved it first, or a racing
    #: TLB state); nothing to do.
    SPURIOUS = "spurious"


class InvalidationScope(enum.Enum):
    #: Invalidate the single shared (O-bit clear) entry for a VPN in every
    #: TLB — BabelFish's CoW rule (Section III-A: "only this single entry
    #: needs to be invalidated").
    SHARED_ENTRY = "shared"
    #: Invalidate a process's own entries for a VPN (conventional CoW
    #: shootdown semantics).
    PROCESS = "process"
    #: Invalidate every shared entry of a CCID group in the VPN's 1GB
    #: region — used when a MaskPage overflows and the group reverts to
    #: non-shared translations (Appendix), and when a process exit
    #: reclaims its PC-bitmask bit (stale bitmask snapshots must go).
    REGION_SHARED = "region_shared"
    #: Flush every entry tagged with a PCID, regardless of VPN — process
    #: exit (the full address space dies) and PCID recycling (the tag
    #: changes hands; Linux pairs ASID reuse with the same flush). The
    #: carried ``vpn`` is 0 and ignored.
    PCID_FLUSH = "pcid_flush"
    #: Flush every *shared* (O=0) entry of a CCID group, regardless of
    #: VPN — issued when teardown frees shared page tables (last sharer
    #: exited), whose group-visible translations no PCID flush covers.
    #: The carried ``vpn`` is 0 and ignored.
    CCID_SHARED = "ccid_shared"


@dataclasses.dataclass(frozen=True)
class TLBInvalidation:
    vpn: int
    scope: InvalidationScope
    pcid: int = None
    ccid: int = None


@dataclasses.dataclass
class FaultOutcome:
    fault_type: FaultType
    cycles: int
    #: TLB invalidations the "OS" requests; the simulator applies them to
    #: every core's MMU and charges shootdown cost.
    invalidations: list = dataclasses.field(default_factory=list)
    ppn: int = None
    #: True when a BabelFish private pte-page copy was created.
    pte_page_copied: bool = False


def trace_outcome(tracer, core, pid, vpn, outcome):
    """Emit the FAULT trace event for one serviced fault.

    The single choke point keeping the trace taxonomy next to
    :class:`FaultType`: the event carries the fault kind, its cycle
    cost, whether a BabelFish pte-page copy happened (a CoW ownership
    transition), and how many TLB invalidations the handler requested.
    """
    tracer.fault(core, pid, vpn, outcome.fault_type.value, outcome.cycles,
                 outcome.pte_page_copied, len(outcome.invalidations))
