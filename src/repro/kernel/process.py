"""The process abstraction.

Containers use the process abstraction for isolation (Section II-A); each
container in our experiments holds one process. Page tables are always
built in the *group* (CCID) address-space layout: under the conventional
baseline and ASLR-SW the process layout is identical to the group layout
(fork inheritance / per-group seed), while under ASLR-HW the process has
its own randomized layout and the MMU's transformation bridges the two.
"""

import itertools

from repro.kernel.lifecycle import PCID_BITS
from repro.kernel.page_table import AddressSpaceTables
from repro.kernel.vma import MM


class Process:
    _pids = itertools.count(100)

    def __init__(self, allocator, ccid, layout_group, layout_proc=None,
                 parent=None, name="", pcid=None):
        self.pid = next(Process._pids)
        #: The kernel injects an allocator-managed PCID (unique among
        #: live processes, recycled with a shootdown). The pid-derived
        #: fallback exists only for directly-constructed processes in
        #: unit tests — it ALIASES once pids wrap the PCID space.
        self.pcid = (pcid if pcid is not None
                     else self.pid & ((1 << PCID_BITS) - 1))
        self.ccid = ccid
        self.layout_group = layout_group
        self.layout_proc = layout_proc or layout_group
        self.parent = parent
        self.name = name or "proc-%d" % self.pid
        self.mm = MM()
        self.tables = AddressSpaceTables(allocator)
        self.alive = True
        #: PC-bitmask bit index assigned to this process, per 1GB region
        #: (MaskPage) it has CoW'ed in; filled by the BabelFish policy.
        self.pc_bits = {}
        # Fault counters.
        self.minor_faults = 0
        self.major_faults = 0
        self.cow_faults = 0
        self.spurious_faults = 0

    @property
    def cr3(self):
        return self.tables.cr3

    def vpn_group(self, segment, page_offset):
        """Group-space VPN of a segment-relative page (what tables use)."""
        return self.layout_group.vpn(segment, page_offset)

    def vpn_proc(self, segment, page_offset):
        """Process-space VPN (what the core issues; differs under ASLR-HW)."""
        return self.layout_proc.vpn(segment, page_offset)

    def pc_bit(self, region):
        """This process's PC-bitmask bit for a 1GB region, or None."""
        return self.pc_bits.get(region)

    @property
    def total_faults(self):
        return self.minor_faults + self.major_faults + self.cow_faults

    def __repr__(self):
        return "<Process %s pid=%d pcid=%d ccid=%d>" % (
            self.name, self.pid, self.pcid, self.ccid)
