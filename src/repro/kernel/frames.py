"""Physical frame allocator with per-kind accounting and refcounts.

Every 4KB of simulated physical memory — data pages, page-cache pages,
page-table pages, MaskPages — comes from here, so the physical addresses
the page walker sends to the cache hierarchy are globally consistent and
sharing (same PPN in two processes) is real sharing.
"""

import collections
import enum

from repro.kernel.errors import OutOfMemoryError


class FrameKind(enum.Enum):
    DATA = "data"               # anonymous pages
    FILE = "file"               # page-cache pages
    PAGE_TABLE = "page_table"   # PGD/PUD/PMD/PTE table pages
    MASK_PAGE = "mask_page"     # BabelFish MaskPages (Appendix)
    KERNEL = "kernel"           # misc kernel metadata


class FrameAllocator:
    def __init__(self, total_frames=8 * 1024 * 1024):
        self.total_frames = total_frames
        self._next = 1  # frame 0 reserved (null)
        self._free = collections.deque()
        self._kind = {}
        self._refcount = {}
        #: Contiguous huge-page blocks: base PPN -> page count. Refcounted
        #: through the base PPN; freed as a unit.
        self._block_pages = {}
        self.allocated_by_kind = collections.Counter()
        self.peak_allocated = 0

    def alloc(self, kind=FrameKind.DATA, pages=1):
        """Allocate ``pages`` contiguous frames; returns the first PPN.

        Multi-page allocations (huge pages) are tracked as a block: the
        base PPN carries the refcount and ``decref(base)`` releases the
        whole block.
        """
        if pages > 1:
            # Huge pages need contiguity; carve from the bump pointer.
            if self._next + pages > self.total_frames:
                raise OutOfMemoryError("no contiguous range of %d frames" % pages)
            base = self._next
            self._next += pages
            self._kind[base] = kind
            self._refcount[base] = 1
            self._block_pages[base] = pages
            self.allocated_by_kind[kind] += pages
            self.peak_allocated = max(self.peak_allocated, self.allocated)
            return base
        if self._free:
            ppn = self._free.popleft()
        else:
            if self._next >= self.total_frames:
                raise OutOfMemoryError("out of physical frames")
            ppn = self._next
            self._next += 1
        self._register(ppn, kind)
        return ppn

    def _register(self, ppn, kind):
        self._kind[ppn] = kind
        self._refcount[ppn] = 1
        self.allocated_by_kind[kind] += 1
        self.peak_allocated = max(self.peak_allocated, self.allocated)

    def incref(self, ppn):
        if ppn not in self._refcount:
            raise ValueError("incref on unallocated frame %#x" % ppn)
        self._refcount[ppn] += 1
        return self._refcount[ppn]

    def decref(self, ppn):
        """Drop a reference; frees the frame when the count reaches zero."""
        count = self._refcount.get(ppn)
        if count is None:
            raise ValueError("decref on unallocated frame %#x" % ppn)
        if count == 1:
            kind = self._kind.pop(ppn)
            del self._refcount[ppn]
            pages = self._block_pages.pop(ppn, 1)
            self.allocated_by_kind[kind] -= pages
            if pages == 1:
                self._free.append(ppn)
            return 0
        self._refcount[ppn] = count - 1
        return count - 1

    def refcount(self, ppn):
        return self._refcount.get(ppn, 0)

    def kind(self, ppn):
        return self._kind.get(ppn)

    @property
    def allocated(self):
        return sum(self.allocated_by_kind.values())

    def count(self, kind):
        return self.allocated_by_kind[kind]
