"""Per-core round-robin scheduler.

The paper's environment multiplexes 2-3 containers per core with a 10ms
quantum (Table I). CR3 writes on a switch do not flush the TLB (PCIDs),
which is what lets container C in Figure 7 reuse the TLB entries container
A loaded on the same core.
"""

import collections


class Scheduler:
    def __init__(self, num_cores, quantum_instructions=20_000):
        self.num_cores = num_cores
        #: The quantum, expressed in instructions. Table I's 10ms at 2GHz
        #: and ~1 IPC is 20M instructions; simulations scale the measured
        #: slice down and scale the quantum with it (see SimConfig).
        self.quantum_instructions = quantum_instructions
        self._queues = [collections.deque() for _ in range(num_cores)]
        self.context_switches = 0
        #: Optional event tracer (:mod:`repro.obs`); set by the simulator
        #: when tracing is enabled. Emits one SCHED_SWITCH per rotation.
        self.tracer = None

    def assign(self, process, core_id):
        self._queues[core_id].append(process)

    def queue(self, core_id):
        return self._queues[core_id]

    def current(self, core_id):
        queue = self._queues[core_id]
        return queue[0] if queue else None

    def rotate(self, core_id):
        """End of quantum: move the running process to the queue tail.

        Returns the next process (may be the same one if it is alone).
        """
        queue = self._queues[core_id]
        if len(queue) > 1:
            prev = queue[0]
            queue.rotate(-1)
            self.context_switches += 1
            if self.tracer is not None:
                self.tracer.sched_switch(core_id, prev.pid, queue[0].pid)
        return queue[0] if queue else None

    def remove(self, process):
        for queue in self._queues:
            try:
                queue.remove(process)
                return True
            except ValueError:
                continue
        return False

    def core_of(self, process):
        for core_id, queue in enumerate(self._queues):
            if process in queue:
                return core_id
        return None

    @property
    def runnable(self):
        return sum(len(q) for q in self._queues)
