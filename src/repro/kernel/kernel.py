"""The kernel facade: processes, mmap, fork, and the page-fault handler.

The page-table *sharing policy* is injected: :class:`PrivatePTPolicy`
reproduces conventional Linux (separate per-process page tables, fork
deep-copies the tree), while :class:`repro.core.shared_pt.SharedPTManager`
implements BabelFish's shared tables. The fault handler itself is common —
it asks the policy for shared tables (``table_provider``), notifies it of
installs, and lets it intercept CoW breaks in shared tables.
"""

import dataclasses

from repro.hw.types import ENTRIES_PER_TABLE, PageSize
from repro.kernel.costs import KernelCosts
from repro.kernel.errors import ProtectionFault, SegmentationFault
from repro.kernel.fault import (
    FaultOutcome,
    FaultType,
    InvalidationScope,
    TLBInvalidation,
)
from repro.kernel.frames import FrameAllocator, FrameKind
from repro.kernel.lifecycle import PCID_BITS, PCIDAllocator
from repro.kernel.lru import ActiveInactiveLRU
from repro.kernel.page_cache import FileObject, PageCache
from repro.kernel.page_table import PMD, PTE, PTE_LEVEL, TableRef, table_index
from repro.kernel.process import Process
from repro.kernel.vma import VMA, VMAKind

HUGE_PAGES = ENTRIES_PER_TABLE  # 512 x 4KB = 2MB


@dataclasses.dataclass
class KernelConfig:
    thp_enabled: bool = True
    costs: KernelCosts = dataclasses.field(default_factory=KernelCosts)
    #: PCID namespace width; tests shrink it to exercise recycling
    #: without spawning 2**12 processes.
    pcid_bits: int = PCID_BITS


class PrivatePTPolicy:
    """Conventional Linux: private page tables, fork replicates the tree."""

    name = "private"
    is_babelfish = False

    def fork_tables(self, kernel, parent, child):
        """Deep-copy the parent's tables into the child, marking CoW.

        Returns the number of table pages the copy allocated (kernel work
        the paper's Section I calls "redundant").
        """
        before = child.tables.tables_allocated
        for vpn, level, _table, _index, pte in list(parent.tables.iter_leaves()):
            if not pte.present:
                continue
            vma = child.mm.find(vpn)
            clone = pte.clone()
            if vma is not None and vma.kind is not VMAKind.FILE_SHARED and pte.writable:
                # Write-protect both sides for CoW (lazy copy).
                pte.writable = False
                pte.cow = True
                clone.writable = False
                clone.cow = True
            child.tables.set_leaf(vpn, clone, leaf_level=level)
            kernel.allocator.incref(pte.ppn)
        return child.tables.tables_allocated - before

    def table_provider(self, kernel, proc, vma):
        """No shared tables in the conventional design."""
        return None

    def on_pte_install(self, kernel, proc, vma, vpn, table, index, pte):
        pass

    def cow_break(self, kernel, proc, vma, vpn, table, index, pte):
        """Return None: use the kernel's default (private) CoW break."""
        return None

    def install_target(self, kernel, proc, vma, vpn, table, index,
                       private_content):
        """Where to install a new translation. Conventional tables are
        always private. Returns (table, index, extra_cycles)."""
        return table, index, 0

    def fill_info(self, proc, table, vpn):
        """(o_bit, orpc, pc_mask) for a TLB fill under the BabelFish-TLB
        ablation (TLB entry sharing over conventional private tables).

        Only translations that are guaranteed group-stable may be tagged
        shared (O=0): file-backed, non-CoW pages, whose frames the page
        cache dedups across the group. Anonymous pages and CoW-armed
        translations map per-process frames (or will, after the break) —
        tagging them shared would serve one container's private frame to
        another, so they carry Ownership.
        """
        index = table_index(vpn, table.level)
        entry = table.entries.get(index)
        if isinstance(entry, PTE) and entry.present \
                and entry.file is not None and not entry.cow:
            return False, False, 0
        return True, False, 0

    def on_tables_freed(self, kernel, tables):
        pass

    def on_process_exit(self, kernel, proc):
        """Reclaim policy-held per-process state (O-PC writer slots under
        BabelFish). Returns the TLB invalidations the reclamation needs;
        conventional tables hold no such state."""
        return []


class Kernel:
    def __init__(self, config=None, policy=None, allocator=None):
        self.config = config or KernelConfig()
        self.costs = self.config.costs
        self.policy = policy or PrivatePTPolicy()
        self.allocator = allocator or FrameAllocator()
        self.page_cache = PageCache(self.allocator)
        self.lru = ActiveInactiveLRU()
        self.processes = {}
        self.files = {}
        self.pcids = PCIDAllocator(self.config.pcid_bits)
        #: Callback applying kernel-initiated TLB invalidations (exit
        #: flushes, PCID-recycle shootdowns) to every core; wired by the
        #: simulator. None (no hardware attached) drops them — there are
        #: no TLBs to go stale.
        self.invalidation_sink = None
        #: Callback receiving the PPNs a teardown actually freed
        #: (refcount hit zero); the sanitizer quarantines them.
        self.on_frames_freed = None
        #: Optional :class:`repro.obs.tracer.Tracer` for lifecycle events.
        self.tracer = None
        # Aggregate counters.
        self.forks = 0
        self.fork_table_pages_copied = 0
        self.pte_pages_copied = 0  # BabelFish CoW pte-page copies
        self.shootdowns = 0

    # -- files ---------------------------------------------------------------

    def create_file(self, name, npages):
        file = FileObject(name, npages)
        self.files[file.fid] = file
        return file

    # -- process lifecycle ----------------------------------------------------

    def spawn(self, ccid, layout_group, layout_proc=None, name=""):
        pcid, recycled = self.pcids.allocate()
        proc = Process(self.allocator, ccid, layout_group, layout_proc,
                       name=name, pcid=pcid)
        self._admit(proc, recycled)
        return proc

    def fork(self, parent, layout_proc=None, name=""):
        """fork(): clone VMAs and page tables per the active policy.

        Returns ``(child, cycles)`` — the cycle cost covers the table
        replication work that BabelFish's sharing avoids.
        """
        pcid, recycled = self.pcids.allocate()
        child = Process(self.allocator, parent.ccid, parent.layout_group,
                        layout_proc or parent.layout_proc, parent=parent,
                        name=name, pcid=pcid)
        self._admit(child, recycled)
        parent.mm.clone_into(child.mm)
        copied = self.policy.fork_tables(self, parent, child)
        self.forks += 1
        self.fork_table_pages_copied += copied
        cycles = self.costs.fork_base + copied * self.costs.fork_per_table_page
        return child, cycles

    def _admit(self, proc, pcid_recycled):
        self.processes[proc.pid] = proc
        if pcid_recycled:
            # The PCID changed hands: flush any straggler entries of its
            # previous holder before the new process can match them
            # (Linux pairs ASID reuse with the same scoped flush).
            self._issue_invalidations(proc, [TLBInvalidation(
                0, InvalidationScope.PCID_FLUSH, pcid=proc.pcid,
                ccid=proc.ccid)])
        if self.tracer is not None:
            self.tracer.process_spawn(0, proc.pid, proc.pcid, proc.ccid,
                                      pcid_recycled)

    def exit_process(self, proc):
        """Tear down a process: shoot its translations out of every TLB,
        then release its frames and PCID.

        The ordering is the point: the PCID flush (the process's own
        entries), the policy's reclamation invalidations (stale PC-bitmask
        snapshots), and a group-wide shared flush for any shared tables
        this exit is about to free all go out *before* a single frame is
        decref'd — so there is no window in which a TLB can still
        translate through a freed (and possibly recycled) frame. Returns
        the freed table pages.
        """
        if proc.pid not in self.processes:
            return []  # already torn down
        proc.alive = False
        invalidations = [TLBInvalidation(
            0, InvalidationScope.PCID_FLUSH, pcid=proc.pcid,
            ccid=proc.ccid)]
        invalidations.extend(self.policy.on_process_exit(self, proc))
        if self._dooms_shared_tables(proc):
            invalidations.append(TLBInvalidation(
                0, InvalidationScope.CCID_SHARED, ccid=proc.ccid))
        self._issue_invalidations(proc, invalidations)
        freed_frames = []
        freed = self._teardown(proc.tables.pgd, freed_frames=freed_frames)
        self.policy.on_tables_freed(self, freed)
        self.processes.pop(proc.pid, None)
        self.pcids.release(proc.pcid)
        if self.on_frames_freed is not None and freed_frames:
            self.on_frames_freed(freed_frames)
        if self.tracer is not None:
            self.tracer.process_exit(0, proc.pid, proc.pcid, proc.ccid,
                                     len(invalidations))
        return freed

    def _dooms_shared_tables(self, proc):
        """Will tearing down ``proc`` free tables whose shared (O=0) TLB
        entries other group members could still translate through?"""
        return any(
            table.shared_key is not None and table.owned_by is None
            and table.sharers == 1
            for table in proc.tables.iter_tables())

    def _issue_invalidations(self, proc, invalidations):
        if not invalidations:
            return
        self.shootdowns += len(invalidations)
        if self.invalidation_sink is not None:
            self.invalidation_sink(proc, invalidations)

    def _teardown(self, table, freed=None, freed_frames=None):
        """Release a table page and, recursively, exclusively-owned
        children. ``freed_frames``, when given, collects the PPNs whose
        refcount actually reached zero (for the sanitizer's freed-frame
        quarantine)."""
        freed = freed if freed is not None else []
        for entry in table.entries.values():
            if isinstance(entry, TableRef):
                child = entry.table
                child.sharers -= 1
                if child.sharers == 0:
                    self._teardown(child, freed, freed_frames)
            elif isinstance(entry, PTE) and entry.present:
                if self.allocator.decref(entry.ppn) == 0 \
                        and freed_frames is not None:
                    freed_frames.append(entry.ppn)
        table.entries.clear()
        if self.allocator.decref(table.frame) == 0 \
                and freed_frames is not None:
            freed_frames.append(table.frame)
        freed.append(table)
        return freed

    # -- memory mapping ---------------------------------------------------------

    def mmap(self, proc, segment, page_offset, npages, kind, file=None,
             file_offset=0, writable=True, executable=False, huge_ok=False,
             name=""):
        """Map ``npages`` at ``segment + page_offset`` (group-space placement).

        Shareable (file-backed) mappings should be 512-page aligned in both
        offset and length so PTE-table sharing lines up; the workload
        builders take care of that.
        """
        start_vpn = proc.vpn_group(segment, page_offset)
        vma = VMA(start_vpn, npages, segment, kind, file, file_offset,
                  writable, executable, huge_ok, name)
        return proc.mm.add(vma)

    def munmap(self, proc, vma):
        """Unmap a VMA.

        Leaves in private tables are zapped and their frames released.
        When a whole shared table falls inside the range, the process
        *detaches*: its upper-level entry stops pointing at the table and
        the sharer counter drops (Section IV-B) — the translations live on
        for the remaining sharers. A partially-covered shared table is
        first privatized (the paper: processes cannot share a table while
        keeping only some of its pages). Returns the TLB invalidations the
        caller must apply.
        """
        proc.mm.remove(vma)
        invalidations = []
        freed_frames = []
        vpn = vma.start_vpn
        end = vma.end_vpn
        while vpn < end:
            path = proc.tables.walk(vpn)
            level, table, index, entry = path[-1]
            if not isinstance(entry, PTE):
                # Nothing mapped at this level: skip its coverage.
                shift = {4: 27, 3: 18, 2: 9, 1: 0}[level]
                vpn = ((vpn >> shift) + 1) << shift
                continue
            shared = table.shared_key is not None and table.owned_by is None
            if shared:
                table_shift = 9 if level == PTE_LEVEL else 18
                table_base = (vpn >> table_shift) << table_shift
                table_end = table_base + (1 << table_shift)
                if vma.start_vpn <= table_base and table_end <= end:
                    # Detach the whole shared table.
                    _plevel, parent, pindex, _ref = path[-2]
                    parent.entries.pop(pindex, None)
                    table.sharers -= 1
                    if table.sharers == 0:
                        # Last sharer: the table's translations die with
                        # it, and so must every shared (O=0) TLB entry
                        # the group still holds for its range.
                        invalidations.append(TLBInvalidation(
                            vpn, InvalidationScope.REGION_SHARED,
                            ccid=proc.ccid))
                        freed = self._teardown(table,
                                               freed_frames=freed_frames)
                        self.policy.on_tables_freed(self, freed)
                    invalidations.append(TLBInvalidation(
                        vpn, InvalidationScope.PROCESS,
                        pcid=proc.pcid, ccid=proc.ccid))
                    vpn = table_end
                    continue
                # Partial coverage: take a private copy, then zap from it.
                table, index, _extra = self.policy.install_target(
                    self, proc, vma, vpn, table, index,
                    private_content=True)
                entry = table.entries.get(index)
                if not isinstance(entry, PTE):
                    # The privatized (or reverted) table has no entry at
                    # this index — there is nothing to zap. Advance past
                    # the page explicitly: the seed code re-walked the
                    # same vpn here, reaching this spot again after one
                    # wasted walk per hole.
                    vpn += 1
                    continue
            # Record the shootdown before the frame can be released: if
            # the walk ever stops early, the batch must already name every
            # page whose frame a recycler could hand out.
            invalidations.append(TLBInvalidation(
                vpn, InvalidationScope.PROCESS,
                pcid=proc.pcid, ccid=proc.ccid))
            if entry.present:
                if self.allocator.decref(entry.ppn) == 0:
                    freed_frames.append(entry.ppn)
            table.entries.pop(index, None)
            vpn += entry.page_size.base_pages
        if self.on_frames_freed is not None and freed_frames:
            self.on_frames_freed(freed_frames)
        return invalidations

    # -- page faults ------------------------------------------------------------

    def handle_fault(self, proc, vpn, is_write=False):
        """Resolve a translation fault at ``vpn`` (group space).

        Mirrors the Linux flow: VMA lookup, path allocation (possibly
        attaching a shared table via the policy), then population or CoW.
        """
        vma = proc.mm.find(vpn)
        if vma is None:
            raise SegmentationFault(proc.pid, vpn)

        use_huge = self._use_huge(vma, vpn)
        lookup_vpn = vpn & ~(HUGE_PAGES - 1) if use_huge else vpn

        # A present, usable leaf may already exist (CoW break needed, or a
        # group member populated the shared table first).
        path = proc.tables.walk(lookup_vpn)
        _level, table, index, entry = path[-1]
        if isinstance(entry, PTE) and entry.present:
            return self._fault_on_present(proc, vma, lookup_vpn, table, index,
                                          entry, is_write)

        provider = self.policy.table_provider(self, proc, vma)
        leaf_level = PMD if use_huge else PTE_LEVEL
        table, index, allocated = proc.tables.ensure_path(
            lookup_vpn, leaf_level, provider)
        cycles = allocated * self.costs.table_alloc
        entry = table.entries.get(index)
        if isinstance(entry, PTE) and entry.present:
            # Attaching the shared table resolved the fault: the page was
            # populated by another container in the CCID group.
            outcome = self._fault_on_present(proc, vma, lookup_vpn, table,
                                             index, entry, is_write)
            outcome.cycles += cycles
            return outcome

        outcome = self._populate(proc, vma, lookup_vpn, table, index,
                                 is_write, use_huge)
        outcome.cycles += cycles
        return outcome

    def _fault_on_present(self, proc, vma, vpn, table, index, pte, is_write):
        if is_write and pte.cow:
            return self._cow_break(proc, vma, vpn, table, index, pte)
        if is_write and not pte.writable:
            raise ProtectionFault(proc.pid, vpn)
        proc.spurious_faults += 1
        pte.accessed = True
        if is_write:
            pte.dirty = True
        return FaultOutcome(FaultType.SPURIOUS, self.costs.minor_fault // 4,
                            ppn=pte.ppn)

    def _use_huge(self, vma, vpn):
        if not (self.config.thp_enabled and vma.huge_ok):
            return False
        if vma.kind.file_backed:
            return False  # THP supports only anonymous mappings (Sec VII-A)
        block = vpn & ~(HUGE_PAGES - 1)
        return block >= vma.start_vpn and block + HUGE_PAGES <= vma.end_vpn

    def _populate(self, proc, vma, vpn, table, index, is_write, use_huge):
        costs = self.costs
        invalidations = []
        if vma.kind is VMAKind.ANON:
            pages = HUGE_PAGES if use_huge else 1
            ppn = self.allocator.alloc(FrameKind.DATA, pages=pages)
            ftype = FaultType.MINOR
            cycles = costs.minor_fault
            writable, cow = vma.writable, False
            file, file_index = None, None
        else:
            file = vma.file
            file_index = vma.file_index(vpn)
            ppn = self.page_cache.lookup(file, file_index)
            if ppn is None:
                ppn = self.page_cache.fill(file, file_index)
                ftype = FaultType.MAJOR
                cycles = costs.major_fault
            else:
                ftype = FaultType.MINOR
                cycles = costs.minor_fault
            if vma.kind is VMAKind.FILE_SHARED:
                self.allocator.incref(ppn)
                writable, cow = vma.writable, False
            else:  # FILE_PRIVATE
                if is_write:
                    # Write fault on a private mapping: allocate the
                    # private copy immediately.
                    ppn = self.allocator.alloc(FrameKind.DATA)
                    cycles += costs.cow_extra
                    ftype = FaultType.COW
                    writable, cow = True, False
                    file, file_index = None, None
                else:
                    self.allocator.incref(ppn)
                    writable = False
                    cow = vma.writable
        size = PageSize.SIZE_2M if use_huge else PageSize.SIZE_4K
        pte = PTE(ppn, present=True, writable=writable, user=True,
                  executable=vma.executable, cow=cow, page_size=size,
                  file=file, file_index=file_index)
        pte.accessed = True
        pte.dirty = is_write
        # Private content (anonymous pages; private copies of file pages)
        # must never be installed in a table shared with other group
        # members — they would see this process's private frame. Shareable
        # content must additionally match the shared table's registered
        # backing; the policy checks both.
        private_content = (vma.kind is VMAKind.ANON
                           or (vma.kind is VMAKind.FILE_PRIVATE and is_write))
        table, index, extra = self.policy.install_target(
            self, proc, vma, vpn, table, index, private_content)
        cycles += extra
        table.entries[index] = pte
        self.policy.on_pte_install(self, proc, vma, vpn, table, index, pte)
        self._count_fault(proc, ftype)
        return FaultOutcome(ftype, cycles, invalidations, ppn=ppn)

    def _cow_break(self, proc, vma, vpn, table, index, pte):
        """Write to a CoW page: delegate to the policy (shared tables),
        falling back to the conventional private break."""
        outcome = self.policy.cow_break(self, proc, vma, vpn, table, index, pte)
        if outcome is not None:
            self._count_fault(proc, FaultType.COW)
            self.shootdowns += len(outcome.invalidations)
            return outcome
        outcome = self.default_cow_break(proc, vpn, table, index, pte)
        self._count_fault(proc, FaultType.COW)
        return outcome

    def default_cow_break(self, proc, vpn, table, index, pte):
        """Conventional CoW: new private frame, write-protect lifted, own
        TLB entry shot down."""
        costs = self.costs
        pages = pte.page_size.base_pages
        new_ppn = self.allocator.alloc(FrameKind.DATA, pages=pages)
        self.allocator.decref(pte.ppn)
        pte.ppn = new_ppn
        pte.cow = False
        pte.writable = True
        pte.dirty = True
        pte.accessed = True
        pte.file = None
        pte.file_index = None
        copy_cost = costs.cow_extra * (8 if pages > 1 else 1)
        invalidation = TLBInvalidation(vpn, InvalidationScope.PROCESS,
                                       pcid=proc.pcid, ccid=proc.ccid)
        self.shootdowns += 1
        return FaultOutcome(
            FaultType.COW,
            costs.minor_fault + copy_cost + costs.tlb_shootdown,
            [invalidation], ppn=new_ppn)

    def _count_fault(self, proc, ftype):
        if ftype is FaultType.MINOR:
            proc.minor_faults += 1
        elif ftype is FaultType.MAJOR:
            proc.major_faults += 1
        elif ftype is FaultType.COW:
            proc.cow_faults += 1

    # -- software touch (warm-up / tests) ----------------------------------------

    def touch(self, proc, vpn, is_write=False):
        """Resolve ``vpn`` as if the process accessed it, without hardware
        timing: fault as many times as the hardware would retry. Returns
        the final usable PTE. Used by the warm-up phases and tests."""
        for _ in range(4):
            pte = proc.tables.lookup_pte(vpn)
            if pte is not None and pte.present:
                if not is_write or (pte.writable and not pte.cow):
                    pte.accessed = True
                    if is_write:
                        pte.dirty = True
                    self.lru.touch(pte.ppn)
                    return pte
            self.handle_fault(proc, vpn, is_write)
        raise RuntimeError("touch did not converge at vpn %#x" % vpn)

    # -- statistics ----------------------------------------------------------------

    @property
    def total_minor_faults(self):
        return sum(p.minor_faults for p in self.processes.values())

    @property
    def total_major_faults(self):
        return sum(p.major_faults for p in self.processes.values())

    @property
    def total_cow_faults(self):
        return sum(p.cow_faults for p in self.processes.values())

    def reset_fault_counters(self):
        for proc in self.processes.values():
            proc.minor_faults = 0
            proc.major_faults = 0
            proc.cow_faults = 0
            proc.spurious_faults = 0

    def clear_accessed_bits(self):
        """Age all pages (kswapd-style); Figure 9's 'active' measurement
        counts pte_ts re-referenced after this."""
        for proc in self.processes.values():
            for _vpn, _lvl, _table, _idx, pte in proc.tables.iter_leaves():
                pte.accessed = False
        self.lru.reset()
