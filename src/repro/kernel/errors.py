"""Exceptions raised by the simulated kernel."""


class SimulationError(Exception):
    """Base class for all simulated-system failures."""


class SegmentationFault(SimulationError):
    """Access to a virtual page with no backing VMA."""

    def __init__(self, pid, vpn):
        super().__init__("segfault: pid=%d vpn=%#x" % (pid, vpn))
        self.pid = pid
        self.vpn = vpn


class ProtectionFault(SimulationError):
    """Write to a read-only (non-CoW) mapping, or user access to kernel page."""

    def __init__(self, pid, vpn, reason="write to read-only page"):
        super().__init__("protection fault: pid=%d vpn=%#x (%s)" % (pid, vpn, reason))
        self.pid = pid
        self.vpn = vpn


class OutOfMemoryError(SimulationError):
    """The frame allocator ran out of physical frames."""
