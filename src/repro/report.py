"""One-shot reproduction report: ``python -m repro.report [--quick]``.

Runs a compact version of every experiment and prints a single-page
paper-vs-measured summary. ``--quick`` shrinks cores and scale for a
~1-minute pass; the default takes a few minutes (the full benchmark
harness under ``benchmarks/`` remains the canonical reproduction).

``--jobs N`` fans the independent runs out across N worker processes
(results are bit-identical to ``--jobs 1``); runs are memoized on disk
under ``benchmarks/out/runcache/`` so a repeated invocation at the same
cores/scale reuses every measurement (``--no-disk-cache`` opts out).
"""

import argparse
import sys
import time

from repro.experiments import clear_run_cache
from repro.experiments.__main__ import resolve_scale_args
from repro.experiments.bringup import run_bringup
from repro.experiments.common import set_disk_cache
from repro.experiments.fig9 import run_fig9, summarize as fig9_summary
from repro.experiments.fig11 import run_fig11, summarize as fig11_summary
from repro.experiments.paper_values import FIG9, FIG11, HEADLINE, RESOURCES
from repro.experiments.resources import run_resources
from repro.experiments.runcache import DiskRunCache
from repro.experiments.runner import execute, report_matrix
from repro.experiments.table3 import run_table3


def _row(label, paper, measured, unit="%"):
    return "  %-44s paper %8s   measured %8s" % (
        label,
        "-" if paper is None else ("%.1f%s" % (paper, unit)),
        "-" if measured is None else ("%.1f%s" % (measured, unit)))


def build_parser():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small cores/scale (~1 minute)")
    parser.add_argument("--cores", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(default 1; results are identical)")
    parser.add_argument("--cache-dir", default=None,
                        help="disk run-cache directory (default "
                             "benchmarks/out/runcache)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="do not persist/reuse run summaries on disk")
    return parser


def parse_args(argv=None):
    """Parsed + validated args; explicit ``--cores 0``/``--scale 0`` are
    argparse errors rather than silent fallbacks to the defaults."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer (got %d)" % args.jobs)
    args.cores, args.scale = resolve_scale_args(parser, args)
    return args


def main(argv=None):
    args = parse_args(argv)
    cores, scale = args.cores, args.scale

    started = time.time()
    clear_run_cache()
    previous_cache = None
    if not args.no_disk_cache:
        previous_cache = set_disk_cache(DiskRunCache(args.cache_dir))
    try:
        return _report(args, cores, scale, started)
    finally:
        # Restore for in-process callers (tests); a no-op for the CLI.
        if not args.no_disk_cache:
            set_disk_cache(previous_cache)


def _report(args, cores, scale, started):
    if args.jobs > 1:
        # Prefetch the full run matrix in parallel; the sections below
        # then read everything out of the warm cache.
        execute(report_matrix(cores=cores, scale=scale), jobs=args.jobs)
    print("BabelFish reproduction report (cores=%d, scale=%.2f)"
          % (cores, scale))
    if scale < 1.0:
        print("note: sub-unit scale shortens the measured window, which "
              "inflates\nfault-dominated reductions (especially the "
              "functions); use scale=1\nfor the calibrated numbers.")
    print()

    print("Figure 9 — translation shareability")
    fig9 = fig9_summary(run_fig9(scale=scale, jobs=args.jobs))
    print(_row("shareable fraction, containerized",
               100 * FIG9["avg_shareable_fraction"],
               100 * fig9["avg_shareable_fraction"]))
    print(_row("shareable fraction, serverless",
               100 * FIG9["functions_shareable_fraction"],
               100 * fig9["functions_shareable_fraction"]))

    print("\nFigure 11 — performance")
    fig11 = fig11_summary(run_fig11(cores=cores, scale=scale))
    print(_row("serving mean latency reduction",
               FIG11["serving_mean_pct"], fig11["serving_mean_pct"]))
    print(_row("serving tail latency reduction",
               FIG11["serving_tail_pct"], fig11["serving_tail_pct"]))
    print(_row("compute execution reduction",
               FIG11["compute_exec_pct"], fig11["compute_exec_pct"]))
    print(_row("functions execution reduction (dense)",
               FIG11["functions_dense_pct"], fig11["functions_dense_pct"]))
    print(_row("functions execution reduction (sparse)",
               FIG11["functions_sparse_pct"], fig11["functions_sparse_pct"]))

    print("\nBring-up")
    bringup = run_bringup(cores=cores, scale=scale)
    print(_row("function bring-up reduction",
               HEADLINE["function_bringup_reduction_pct"],
               bringup["reduction_pct"]))

    print("\nTable III — L2 TLB at 22nm (CACTI model)")
    for row in run_table3():
        print("  %-10s area %.3f mm2 (paper %.3f)   access %3.0f ps "
              "(paper %3.0f)" % (row["config"], row["area_mm2"],
                                 row["paper_area_mm2"],
                                 row["access_time_ps"],
                                 row["paper_access_time_ps"]))

    print("\nSection VII-D — resources")
    resources = run_resources(include_measured=False)
    print(_row("core area overhead",
               RESOURCES["core_area_overhead_pct"],
               resources["core_area_overhead_pct"]))
    print(_row("memory space overhead",
               RESOURCES["total_space_overhead_pct"],
               resources["total_space_overhead_pct"]))

    print("\ndone in %.0fs" % (time.time() - started))
    return 0


if __name__ == "__main__":
    sys.exit(main())
