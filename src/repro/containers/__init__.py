"""Container substrate: images, a Docker-like engine, and a FaaS runtime.

Containers are modelled the way the paper describes them (Section II-A):
one process per container, created by forking a per-image zygote process
that has the image's binary, libraries, and infrastructure files mapped.
All containers of one (user, application) pair belong to one CCID group.
"""

from repro.containers.image import ContainerImage, FileSpec
from repro.containers.engine import Container, ContainerEngine
from repro.containers.faas import FaaSPlatform, FunctionResult

__all__ = [
    "ContainerImage",
    "FileSpec",
    "Container",
    "ContainerEngine",
    "FaaSPlatform",
    "FunctionResult",
]
