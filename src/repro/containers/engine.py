"""A Docker-like container engine.

Launch path (``docker start`` from a pre-created image):

1. The first launch of an image for a user creates the CCID group and a
   *zygote* process that maps the image files (binary, libraries,
   infrastructure) and performs image initialization. This mirrors how
   the paper's containers are "created with forks, which replicate
   translations" (Section I).
2. Every container is a fork of the zygote: under the conventional policy
   the fork deep-copies page tables; under BabelFish it shares them.
3. Bring-up then touches the runtime's working set (infrastructure and
   library pages, a few CoW writes to data pages). Under BabelFish most
   of those touches find translations already installed by earlier
   containers of the group and take no fault.

``launch_timed`` reproduces the paper's bring-up measurement: fixed engine
overhead (the Docker daemon work the paper says dominates what remains)
plus the simulated fork + bring-up trace cycles.
"""

import dataclasses
import itertools
import random

from repro.core.aslr import group_layout_for, process_layout_for
from repro.kernel.vma import SegmentKind, VMAKind
from repro.containers.image import align_pages

#: Trace record kind codes (shared with repro.sim.simulator).
K_IFETCH, K_LOAD, K_STORE = 0, 1, 2

#: Docker daemon / runc overhead outside paging (cycles at 2GHz). The
#: paper notes most remaining bring-up time is engine/kernel interaction.
DEFAULT_ENGINE_OVERHEAD = 9_000_000


@dataclasses.dataclass
class Container:
    proc: object
    image: object
    group: object
    index: int
    name: str

    @property
    def pid(self):
        return self.proc.pid


class _ZygoteState:
    def __init__(self, group, proc, files, layout_group):
        self.group = group
        self.proc = proc
        self.files = files
        self.layout_group = layout_group
        self.launches = 0


class ContainerEngine:
    def __init__(self, kernel, registry, aslr_mode, seed=7,
                 engine_overhead_cycles=DEFAULT_ENGINE_OVERHEAD):
        self.kernel = kernel
        self.registry = registry
        self.aslr_mode = aslr_mode
        self.engine_overhead_cycles = engine_overhead_cycles
        self._zygotes = {}
        #: Image layers are system-wide: two tenants launching the same
        #: image share its files (and page-cache frames), exactly like
        #: Linux dedups file pages — only *translation* sharing is scoped
        #: to the CCID group (Section V).
        self._image_files = {}
        self._rng = random.Random(seed)
        self._ids = itertools.count(1)

    # -- zygote -----------------------------------------------------------------

    def zygote_for(self, image, user="tenant"):
        key = (user, image.name)
        state = self._zygotes.get(key)
        if state is None:
            state = self._create_zygote(image, user)
            self._zygotes[key] = state
        return state

    def _create_zygote(self, image, user):
        kernel = self.kernel
        group = self.registry.group_for(user, image.name)
        layout_group = group_layout_for(group, self.aslr_mode)
        proc = kernel.spawn(group.ccid, layout_group,
                            name="%s-zygote" % image.name)
        files = self._image_files.get(image.name)
        if files is None:
            files = image.materialize(kernel)
            self._image_files[image.name] = files
        kernel.mmap(proc, SegmentKind.CODE, 0, image.binary_pages,
                    VMAKind.FILE_PRIVATE, file=files["binary"],
                    writable=False, executable=True, name="binary")
        kernel.mmap(proc, SegmentKind.DATA, 0,
                    max(1, image.binary_data_pages), VMAKind.FILE_PRIVATE,
                    file=files["binary_data"], writable=True, name="bin-data")
        kernel.mmap(proc, SegmentKind.LIBS, 0, image.lib_pages,
                    VMAKind.FILE_PRIVATE, file=files["libs"],
                    writable=False, executable=True, name="libs")
        lib_data_off = align_pages(image.lib_pages)
        kernel.mmap(proc, SegmentKind.LIBS, lib_data_off,
                    max(1, image.lib_data_pages), VMAKind.FILE_PRIVATE,
                    file=files["lib_data"], writable=True, name="lib-data")
        infra_off = lib_data_off + align_pages(max(1, image.lib_data_pages))
        kernel.mmap(proc, SegmentKind.LIBS, infra_off, image.infra_pages,
                    VMAKind.FILE_PRIVATE, file=files["infra"],
                    writable=False, name="infra")
        kernel.mmap(proc, SegmentKind.HEAP, 0, image.heap_pages,
                    VMAKind.ANON, name="heap")
        kernel.mmap(proc, SegmentKind.STACK, 0, image.stack_pages,
                    VMAKind.ANON, name="stack")
        # Image initialization: the zygote touches the runtime's common
        # working set once, so forked containers inherit warm tables.
        for page in range(min(image.infra_pages, 64)):
            kernel.touch(proc, proc.vpn_group(SegmentKind.LIBS, infra_off + page))
        for page in range(min(image.lib_pages, 96)):
            kernel.touch(proc, proc.vpn_group(SegmentKind.LIBS, page))
        for page in range(min(image.binary_pages, 32)):
            kernel.touch(proc, proc.vpn_group(SegmentKind.CODE, page))
        state = _ZygoteState(group, proc, files, layout_group)
        state.infra_offset = infra_off
        state.lib_data_offset = lib_data_off
        return state

    # -- launch ----------------------------------------------------------------------

    def launch(self, image, user="tenant", name=None):
        """Fork a container off the image zygote. Returns (container,
        fork_cycles)."""
        state = self.zygote_for(image, user)
        index = next(self._ids)
        layout_proc = process_layout_for(state.group, self.aslr_mode,
                                         pid_seed=index * 997)
        child, fork_cycles = self.kernel.fork(
            state.proc, layout_proc=layout_proc,
            name=name or "%s-%d" % (image.name, index))
        state.group.add(child)
        state.launches += 1
        container = Container(child, image, state.group, index,
                              name=child.name)
        return container, fork_cycles

    # -- bring-up -------------------------------------------------------------------

    def bringup_records(self, container):
        """The access trace of container start: runtime init touching
        infrastructure, library, and binary pages, plus a few writes to
        writable data (CoW breaks) and the stack."""
        image = container.image
        state = self.zygote_for(image)
        rng = random.Random(container.index * 31 + 5)
        records = []
        touched = 0
        budget = image.bringup_touch_pages
        infra_off = state.infra_offset
        # Instruction fetches through the runtime code path.
        for page in range(min(image.binary_pages, 32)):
            records.append((K_IFETCH, SegmentKind.CODE, page,
                            rng.randrange(64), 40, None))
        # Infrastructure pages (config, runtime state).
        for page in range(image.infra_pages):
            if touched >= budget:
                break
            records.append((K_LOAD, SegmentKind.LIBS, infra_off + page,
                            rng.randrange(64), 30, None))
            touched += 1
        # Library init: read a window of the middleware.
        for page in range(min(image.lib_pages, budget - touched)):
            records.append((K_IFETCH, SegmentKind.LIBS, page,
                            rng.randrange(64), 25, None))
        # Writable data: GOT/BSS-style CoW writes.
        for page in range(max(1, image.binary_data_pages)):
            records.append((K_STORE, SegmentKind.DATA, page,
                            rng.randrange(64), 20, None))
        for page in range(min(4, max(1, image.lib_data_pages))):
            records.append((K_STORE, SegmentKind.LIBS,
                            state.lib_data_offset + page,
                            rng.randrange(64), 20, None))
        # Stack warm-up.
        for page in range(8):
            records.append((K_STORE, SegmentKind.STACK, page,
                            rng.randrange(64), 15, None))
        return records

    def launch_timed(self, image, sim, core_id=0, user="tenant", name=None):
        """``docker start``: returns (container, bringup_cycles)."""
        container, fork_cycles = self.launch(image, user=user, name=name)
        trace_cycles = sim.run_single(container.proc,
                                      self.bringup_records(container),
                                      core_id=core_id)
        container.bringup_trace_cycles = trace_cycles
        container.fork_cycles = fork_cycles
        total = self.engine_overhead_cycles + fork_cycles + trace_cycles
        return container, total

    def stop(self, container):
        """Stop and remove a container (docker rm)."""
        container.group.remove(container.proc)
        self.kernel.exit_process(container.proc)
