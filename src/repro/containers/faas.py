"""Function-as-a-Service runtime on top of the container engine.

Mirrors the paper's OpenFaaS-based setup (Section VI): functions are
containers built from a common base image (the GCC image), so the
middleware/infrastructure pages — 90% of their shareable pte_ts — are
shared across *all* functions of the user, while each function's own code
is private. ``invoke`` measures bring-up (``docker start``) and
execution-to-completion separately, as the paper reports them.
"""

import dataclasses

from repro.kernel.vma import SegmentKind, VMAKind
from repro.containers.image import align_pages


@dataclasses.dataclass
class FunctionResult:
    function: str
    container: object
    bringup_cycles: int
    exec_cycles: int = 0


class FaaSPlatform:
    def __init__(self, engine, base_image, user="tenant"):
        self.engine = engine
        self.kernel = engine.kernel
        self.base_image = base_image
        self.user = user
        self._function_code = {}
        self._input_files = {}
        self._code_slots = {}

    def register_function(self, name, code_pages=24):
        """Create the function's (private) code object."""
        if name not in self._function_code:
            self._function_code[name] = self.kernel.create_file(
                "fn/%s/code" % name, code_pages)
        return self._function_code[name]

    def input_file(self, name, pages):
        """A (shareable) input data set delivered to function instances."""
        key = (name, pages)
        if key not in self._input_files:
            file = self.kernel.create_file("fn-input/%s" % name, pages)
            self.kernel.page_cache.populate(file)
            self._input_files[key] = file
        return self._input_files[key]

    def start_function(self, name, sim, core_id=0, input_pages=96,
                       scratch_pages=64, input_name="payload",
                       code_pages=24):
        """Bring up a function container: docker start + function-specific
        mappings (its code, the event input, scratch space).

        ``input_name`` keys the payload data set; the user's functions
        typically process the same event payloads, so by default they all
        map one shared input file ("Data pte_ts are few, but also
        shareable across functions" — Section VII-A).
        """
        code = self.register_function(name, code_pages)
        container, bringup_cycles = self.engine.launch_timed(
            self.base_image, sim, core_id=core_id, user=self.user,
            name="fn-%s-%d" % (name, core_id))
        proc = container.proc
        state = self.engine.zygote_for(self.base_image, self.user)
        # Function code: each function gets its own 2MB-aligned slot past
        # the infra window (the dynamic loader picks distinct addresses),
        # so one function's code tables never alias another's.
        slot = self._code_slots.setdefault(name, len(self._code_slots))
        code_off = (state.infra_offset
                    + align_pages(self.base_image.infra_pages)
                    + slot * align_pages(max(code.npages, 1)))
        self.kernel.mmap(proc, SegmentKind.LIBS, code_off, code.npages,
                         VMAKind.FILE_PRIVATE, file=code, writable=False,
                         executable=True, name="fn-code")
        input_file = self.input_file(input_name, input_pages)
        self.kernel.mmap(proc, SegmentKind.MMAP, 0, input_pages,
                         VMAKind.FILE_SHARED, file=input_file,
                         writable=False, name="fn-input")
        scratch_off = align_pages(input_pages)
        self.kernel.mmap(proc, SegmentKind.MMAP, scratch_off,
                         scratch_pages, VMAKind.ANON, name="fn-scratch")
        container.code_offset = code_off
        container.scratch_offset = scratch_off
        return FunctionResult(name, container, bringup_cycles)
