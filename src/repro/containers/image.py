"""Container images: the files a container maps at launch.

An image bundles the application binary (code + writable data), shared
libraries/middleware, and container-infrastructure files (the runtime
pieces the paper's Figure 9 calls "infrastructure pages", which dominate
the shareable pte_ts of serverless functions).
"""

import dataclasses

from repro.hw.types import ENTRIES_PER_TABLE


def align_pages(npages, alignment=ENTRIES_PER_TABLE):
    """Round a page count up to PTE-table (2MB) alignment so successive
    mappings in a segment stay table-aligned for sharing."""
    return (npages + alignment - 1) // alignment * alignment


@dataclasses.dataclass(frozen=True)
class FileSpec:
    name: str
    pages: int


@dataclasses.dataclass(frozen=True)
class ContainerImage:
    name: str
    #: Application text (read-execute, MAP_PRIVATE).
    binary_pages: int = 48
    #: Application writable data/.bss image (MAP_PRIVATE, CoW on write).
    binary_data_pages: int = 8
    #: Shared libraries / middleware text (read-execute, MAP_PRIVATE).
    lib_pages: int = 256
    #: Library writable data (MAP_PRIVATE, CoW on write).
    lib_data_pages: int = 16
    #: Container runtime infrastructure (read-only, MAP_PRIVATE).
    infra_pages: int = 128
    #: Anonymous heap reserved at launch (pages; populated lazily).
    heap_pages: int = 4096
    #: Anonymous stack.
    stack_pages: int = 64
    #: Pages the runtime touches during bring-up (docker start): infra
    #: plus a slice of the libraries and binary.
    bringup_touch_pages: int = 220

    def materialize(self, kernel):
        """Create the image's files in the kernel (the pre-created image
        the paper's bring-up measurement starts from)."""
        files = {
            "binary": kernel.create_file("%s/bin" % self.name, self.binary_pages),
            "binary_data": kernel.create_file("%s/bin.data" % self.name,
                                              max(1, self.binary_data_pages)),
            "libs": kernel.create_file("%s/libs" % self.name, self.lib_pages),
            "lib_data": kernel.create_file("%s/libs.data" % self.name,
                                           max(1, self.lib_data_pages)),
            "infra": kernel.create_file("%s/infra" % self.name, self.infra_pages),
        }
        # A pre-created image has its layers in the page cache already.
        for file in files.values():
            kernel.page_cache.populate(file)
        return files
