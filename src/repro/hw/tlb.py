"""Generic set-associative TLB structures (Figure 1 / Figure 3).

A :class:`SetAssocTLB` stores :class:`TLBEntry` objects and is policy-free:
``candidates(vpn)`` returns every valid way in the set whose VPN matches,
and the caller decides which (if any) is a hit. The conventional
per-process policy (VPN + PCID match) lives here as
:func:`conventional_match`; the BabelFish policy (Figure 8) lives in
:mod:`repro.core.babelfish_tlb`.

Two interchangeable backings exist for each structure:

- :class:`SetAssocTLB` / :class:`MultiSizeTLB` — the reference
  implementations: linear scans over per-set lists, ``id()``-keyed LRU
  stamps. Simple enough to audit against the paper's figures.
- :class:`FastSetAssocTLB` / :class:`FastMultiSizeTLB` — dict-backed
  drop-ins selected by ``SimConfig.fastpath``: per-set ``{vpn:
  [entries]}`` buckets make lookup O(matching ways), and a move-to-end
  recency dict replaces the stamp scan. They produce bit-identical
  hit/miss/eviction/iteration behaviour (tests/test_fastpath.py drives
  both against random operation streams), and additionally maintain the
  per-set epoch counters the L0 translation memo
  (:mod:`repro.sim.fastpath`) validates against.

Every structure carries a monotonic ``epoch`` counter bumped whenever
its contents change (insert / effective invalidate / effective flush);
``MultiSizeTLB`` aggregates its children's bumps. Epochs never reset,
are never exported in results, and exist solely so cached lookups can
prove "nothing changed since I was recorded".
"""

from repro.hw.types import PageSize


class TLBEntry:
    """One TLB entry: Figure 1's fields plus BabelFish's CCID and O-PC.

    ``pc_mask`` is the 32-bit PrivateCopy bitmask; ``orpc`` is the OR of
    its bits as stored in the pmd_t (the TLB keeps it explicitly because,
    when ORPC lets the hardware skip loading the bitmask, the stored mask
    is cleared — Section III-A).
    """

    __slots__ = (
        "vpn", "ppn", "page_size", "pcid", "ccid", "writable", "user",
        "cow", "o_bit", "orpc", "pc_mask", "inserted_by", "valid",
    )

    def __init__(self, vpn, ppn, page_size=PageSize.SIZE_4K, pcid=0, ccid=0,
                 writable=True, user=True, cow=False, o_bit=False,
                 orpc=False, pc_mask=0, inserted_by=None):
        self.vpn = vpn
        self.ppn = ppn
        self.page_size = page_size
        self.pcid = pcid
        self.ccid = ccid
        self.writable = writable
        self.user = user
        self.cow = cow
        self.o_bit = o_bit
        self.orpc = orpc
        self.pc_mask = pc_mask
        self.inserted_by = inserted_by
        self.valid = True

    def __repr__(self):
        return ("<TLBEntry vpn=%#x ppn=%#x pcid=%d ccid=%d o=%d orpc=%d>"
                % (self.vpn, self.ppn, self.pcid, self.ccid,
                   self.o_bit, self.orpc))


def conventional_match(entry, vpn, pcid, ccid=None):
    """Conventional TLB hit rule: VPN and PCID must both match (Figure 1)."""
    return entry.vpn == vpn and entry.pcid == pcid


class SetAssocTLB:
    """A set-associative TLB for one page size, with true-LRU replacement."""

    def __init__(self, params):
        self.params = params
        self.num_sets = params.num_sets
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("TLB sets must be a power of two: %d" % self.num_sets)
        self.set_mask = self.num_sets - 1
        self.ways = params.ways
        self._sets = [[] for _ in range(self.num_sets)]
        self._stamps = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.invalidations = 0
        #: Monotonic change counter: bumped on insert and on any
        #: invalidate/flush that actually removed something. Lookups do
        #: not bump it (recency is not part of the guarded contract).
        self.epoch = 0
        #: Back-reference set by :class:`MultiSizeTLB` so child bumps
        #: propagate to the level's aggregate epoch.
        self.owner = None

    def _bump_epoch(self):
        self.epoch += 1
        owner = self.owner
        if owner is not None:
            owner.epoch += 1

    def _set_for(self, vpn):
        return vpn & self.set_mask

    def candidates(self, vpn):
        """All valid entries in vpn's set whose VPN matches."""
        return [e for e in self._sets[self._set_for(vpn)]
                if e.valid and e.vpn == vpn]

    def lookup(self, vpn, match, record=True):
        """Find a hit using predicate ``match(entry)``; updates LRU and stats."""
        tset = self._sets[self._set_for(vpn)]
        for entry in tset:
            if entry.valid and entry.vpn == vpn and match(entry):
                self._touch(entry)
                if record:
                    self.hits += 1
                return entry
        if record:
            self.misses += 1
        return None

    def _touch(self, entry):
        self._stamp += 1
        self._stamps[self._set_for(entry.vpn)][id(entry)] = self._stamp

    def insert(self, entry, replace=None):
        """Insert ``entry``; evict LRU if the set is full.

        ``replace`` is an optional predicate: an existing entry matching it
        is overwritten in place instead of allocating a new way (used to
        refresh a stale copy of the same translation).
        """
        index = self._set_for(entry.vpn)
        tset = self._sets[index]
        stamps = self._stamps[index]
        if replace is not None:
            for i, old in enumerate(tset):
                if old.valid and old.vpn == entry.vpn and replace(old):
                    stamps.pop(id(old), None)
                    tset[i] = entry
                    self._touch(entry)
                    self.insertions += 1
                    self._bump_epoch()
                    return old
        evicted = None
        # invalidate()/flush() remove entries as they mark them invalid,
        # so every resident entry is live.
        if len(tset) >= self.ways:
            evicted = min(tset, key=lambda e: stamps.get(id(e), 0))
            tset.remove(evicted)
            stamps.pop(id(evicted), None)
        tset.append(entry)
        self._touch(entry)
        self.insertions += 1
        self._bump_epoch()
        return evicted

    def invalidate(self, vpn, pred=None):
        """Invalidate entries for ``vpn`` (optionally filtered by ``pred``)."""
        index = self._set_for(vpn)
        tset = self._sets[index]
        removed = 0
        for entry in list(tset):
            if entry.valid and entry.vpn == vpn and (pred is None or pred(entry)):
                entry.valid = False
                tset.remove(entry)
                self._stamps[index].pop(id(entry), None)
                removed += 1
        self.invalidations += removed
        if removed:
            self._bump_epoch()
        return removed

    def flush(self, pred=None):
        """Flush everything (or everything matching ``pred``)."""
        removed = 0
        for index, tset in enumerate(self._sets):
            keep = []
            dropped = 0
            for entry in tset:
                if pred is None or pred(entry):
                    entry.valid = False
                    self._stamps[index].pop(id(entry), None)
                    dropped += 1
                else:
                    keep.append(entry)
            if dropped:
                self._sets[index] = keep
                removed += dropped
        self.invalidations += removed
        if removed:
            self._bump_epoch()
        return removed

    def entries(self):
        for tset in self._sets:
            for entry in tset:
                if entry.valid:
                    yield entry

    @property
    def occupancy(self):
        return sum(1 for _ in self.entries())

    def __repr__(self):
        return "<%s %d entries %d-way hits=%d misses=%d>" % (
            self.params.name, self.params.entries, self.ways,
            self.hits, self.misses)


class MultiSizeTLB:
    """A TLB level holding several page sizes in parallel structures.

    Table I's L1 has separate 4K/2M/1G arrays; the L2 TLB likewise. A
    lookup probes the structure for each size the level supports, using the
    VPN computed at that size.
    """

    def __init__(self, params_by_size, tlb_cls=None):
        tlb_cls = tlb_cls or SetAssocTLB
        self.tlbs = {p.page_size: tlb_cls(p) for p in params_by_size}
        #: Aggregate change counter: bumped whenever any child bumps.
        self.epoch = 0
        for tlb in self.tlbs.values():
            tlb.owner = self

    def lookup(self, vaddr_vpn4k, match, page_size=None):
        """Probe by a 4K VPN; ``page_size`` restricts to one structure.

        Returns ``(entry, page_size)`` or ``(None, None)``.
        """
        sizes = [page_size] if page_size else list(self.tlbs)
        for size in sizes:
            tlb = self.tlbs.get(size)
            if tlb is None:
                continue
            vpn = vaddr_vpn4k >> (size.shift - PageSize.SIZE_4K.shift)
            entry = tlb.lookup(vpn, match)
            if entry is not None:
                return entry, size
        return None, None

    def insert(self, entry, replace=None):
        return self.tlbs[entry.page_size].insert(entry, replace=replace)

    def invalidate(self, vpn4k, pred=None):
        removed = 0
        for size, tlb in self.tlbs.items():
            vpn = vpn4k >> (size.shift - PageSize.SIZE_4K.shift)
            removed += tlb.invalidate(vpn, pred)
        return removed

    def flush(self, pred=None):
        return sum(tlb.flush(pred) for tlb in self.tlbs.values())

    @property
    def hits(self):
        return sum(t.hits for t in self.tlbs.values())

    @property
    def misses(self):
        return sum(t.misses for t in self.tlbs.values())

    def entries(self):
        for tlb in self.tlbs.values():
            for entry in tlb.entries():
                yield entry


class FastSetAssocTLB(SetAssocTLB):
    """Dict-backed :class:`SetAssocTLB` with identical observable behaviour.

    - ``_buckets[set][vpn]`` lists same-VPN entries in insertion order, so
      a lookup touches only the ways that could match; the reference's
      linear scan visits non-matching VPNs only to reject them, so
      first-match order is preserved exactly.
    - ``_lru[set]`` is a recency dict (oldest key first; hits delete +
      reinsert). Its first key is the entry with the minimum reference
      stamp, so eviction picks the same victim.
    - ``_sets`` is still maintained as the per-set insertion-order list,
      keeping ``entries()`` / ``candidates()`` iteration order — and
      therefore sanitizer scans and flush order — bit-identical.
    - ``_set_epochs[set]`` counts content changes per set; the L0
      translation memo (:mod:`repro.sim.fastpath`) records an entry's
      set epoch and trusts a hit only while it is unchanged.
    - Chunk-boundary epoch hooks for the batch engine
      (:mod:`repro.sim.batch`): when a consumer enables
      ``_log_epochs``, every per-set epoch bump also appends the set
      index to ``_epoch_log``, so a claim can invalidate exactly the
      verified keys whose guard sets changed since its last chunk
      instead of re-verifying everything. The log is a grow-only list
      with a trim watermark: ``_epoch_log_base`` counts entries dropped
      from the front, and a consumer whose cursor falls behind the base
      must conservatively re-verify every key guarded by this
      structure. Logging is off (a single predictable branch per bump)
      until a batch trace registers interest.
    """

    def __init__(self, params):
        super().__init__(params)
        self._buckets = [dict() for _ in range(self.num_sets)]
        self._lru = [dict() for _ in range(self.num_sets)]
        self._set_epochs = [0] * self.num_sets
        self._log_epochs = False
        self._epoch_log = []
        self._epoch_log_base = 0

    def _log_set_change(self, index):
        """Record one per-set epoch bump for batch-chunk consumers (only
        called when ``_log_epochs`` is on). Trims the front once the log
        grows past the watermark; consumers left behind detect the gap
        via ``_epoch_log_base`` and fall back to full re-verification."""
        log = self._epoch_log
        log.append(index)
        if len(log) > 8192:
            del log[:4096]
            self._epoch_log_base += 4096

    def candidates(self, vpn):
        bucket = self._buckets[vpn & self.set_mask].get(vpn)
        return list(bucket) if bucket else []

    def lookup(self, vpn, match, record=True):
        index = vpn & self.set_mask
        bucket = self._buckets[index].get(vpn)
        if bucket:
            for entry in bucket:
                if match(entry):
                    lru = self._lru[index]
                    del lru[entry]
                    lru[entry] = None
                    if record:
                        self.hits += 1
                    return entry
        if record:
            self.misses += 1
        return None

    def _touch(self, entry):
        lru = self._lru[entry.vpn & self.set_mask]
        if entry in lru:
            del lru[entry]
        lru[entry] = None

    def insert(self, entry, replace=None):
        index = entry.vpn & self.set_mask
        buckets = self._buckets[index]
        lru = self._lru[index]
        tset = self._sets[index]
        if replace is not None:
            bucket = buckets.get(entry.vpn)
            if bucket:
                for i, old in enumerate(bucket):
                    if replace(old):
                        bucket[i] = entry
                        tset[tset.index(old)] = entry
                        del lru[old]
                        lru[entry] = None
                        self.insertions += 1
                        self._set_epochs[index] += 1
                        if self._log_epochs:
                            self._log_set_change(index)
                        self._bump_epoch()
                        return old
        evicted = None
        if len(lru) >= self.ways:
            evicted = next(iter(lru))
            del lru[evicted]
            bucket = self._buckets[index][evicted.vpn]
            bucket.remove(evicted)
            if not bucket:
                del self._buckets[index][evicted.vpn]
            tset.remove(evicted)
        bucket = buckets.get(entry.vpn)
        if bucket is None:
            buckets[entry.vpn] = [entry]
        else:
            bucket.append(entry)
        lru[entry] = None
        tset.append(entry)
        self.insertions += 1
        self._set_epochs[index] += 1
        if self._log_epochs:
            self._log_set_change(index)
        self._bump_epoch()
        return evicted

    def invalidate(self, vpn, pred=None):
        index = vpn & self.set_mask
        bucket = self._buckets[index].get(vpn)
        if not bucket:
            return 0
        removed = 0
        lru = self._lru[index]
        tset = self._sets[index]
        for entry in list(bucket):
            if pred is None or pred(entry):
                entry.valid = False
                bucket.remove(entry)
                del lru[entry]
                tset.remove(entry)
                removed += 1
        if not bucket:
            del self._buckets[index][vpn]
        self.invalidations += removed
        if removed:
            self._set_epochs[index] += 1
            if self._log_epochs:
                self._log_set_change(index)
            self._bump_epoch()
        return removed

    def flush(self, pred=None):
        removed = 0
        for index in range(self.num_sets):
            tset = self._sets[index]
            if not tset:
                continue
            if pred is None:
                # Whole-set wipe: tset is non-empty, so the bump is
                # unconditional and sits in the same block as the wipe.
                here = len(tset)
                for entry in tset:
                    entry.valid = False
                tset.clear()
                self._buckets[index].clear()
                self._lru[index].clear()
                self._set_epochs[index] += 1
                if self._log_epochs:
                    self._log_set_change(index)
                removed += here
                continue
            here = 0
            buckets = self._buckets[index]
            lru = self._lru[index]
            for entry in list(tset):
                if pred(entry):
                    entry.valid = False
                    tset.remove(entry)
                    here += 1
                    bucket = buckets[entry.vpn]
                    bucket.remove(entry)
                    if not bucket:
                        del buckets[entry.vpn]
                    del lru[entry]
            if here:
                self._set_epochs[index] += 1
                if self._log_epochs:
                    self._log_set_change(index)
                removed += here
        self.invalidations += removed
        if removed:
            self._bump_epoch()
        return removed


class FastMultiSizeTLB(MultiSizeTLB):
    """:class:`MultiSizeTLB` over :class:`FastSetAssocTLB` children, with
    the per-size probe sequence (size, 4K-shift, structure) precomputed so
    the hot lookup does no dict/list building per call."""

    def __init__(self, params_by_size):
        super().__init__(params_by_size, tlb_cls=FastSetAssocTLB)
        self._probe = tuple(
            (size, size.shift - PageSize.SIZE_4K.shift, tlb)
            for size, tlb in self.tlbs.items())

    def lookup(self, vaddr_vpn4k, match, page_size=None):
        if page_size is not None:
            tlb = self.tlbs.get(page_size)
            if tlb is None:
                return None, None
            shift = page_size.shift - PageSize.SIZE_4K.shift
            entry = tlb.lookup(vaddr_vpn4k >> shift, match)
            if entry is not None:
                return entry, page_size
            return None, None
        for size, shift, tlb in self._probe:
            entry = tlb.lookup(vaddr_vpn4k >> shift, match)
            if entry is not None:
                return entry, size
        return None, None
