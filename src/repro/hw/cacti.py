"""CACTI-style analytical SRAM model for Table III and Section VII-D.

The paper evaluates the L2 TLB with CACTI 7 at 22nm and reports area,
access time, dynamic read energy, and leakage power for the Baseline and
BabelFish variants (Table III). CACTI itself is a large C++ tool; here we
provide a small analytical stand-in with per-metric power laws,

    metric = K * entries * bits^alpha        (area, energy, leakage)
    metric = K * (entries * bits)^alpha      (access time)

whose constants are calibrated against the paper's own Table III rows.
Because Table III is itself a modelling result (not a hardware
measurement), calibrating to it is the faithful reproduction: given the
same entry geometries the model returns the same numbers, and it
extrapolates smoothly for ablations (e.g. a narrower PC bitmask).
"""

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class TLBGeometry:
    """Bit-level geometry of one TLB entry (Figures 1 and 3)."""

    entries: int = 1536
    ways: int = 12
    vpn_bits: int = 36          # 48-bit VA, 4KB pages
    ppn_bits: int = 28          # 40-bit PA
    flag_bits: int = 12         # permission/attribute flags
    pcid_bits: int = 12
    ccid_bits: int = 0          # BabelFish only
    opc_bits: int = 0           # O + ORPC + PC bitmask (BabelFish only)

    @property
    def set_bits(self):
        return int(math.log2(max(1, self.entries // self.ways)))

    @property
    def tag_bits(self):
        return 1 + (self.vpn_bits - self.set_bits) + self.pcid_bits + self.ccid_bits

    @property
    def data_bits(self):
        return self.ppn_bits + self.flag_bits + self.opc_bits

    @property
    def bits_per_entry(self):
        return self.tag_bits + self.data_bits


def baseline_l2_geometry():
    return TLBGeometry()


def babelfish_l2_geometry(pc_bitmask_bits=32, ccid_bits=12):
    """BabelFish adds CCID plus the O-PC field (O + ORPC + PC bitmask)."""
    return TLBGeometry(ccid_bits=ccid_bits, opc_bits=2 + pc_bitmask_bits)


@dataclasses.dataclass(frozen=True)
class SRAMReport:
    area_mm2: float
    access_time_ps: float
    dyn_energy_pj: float
    leakage_mw: float

    def as_row(self):
        return {
            "area_mm2": round(self.area_mm2, 3),
            "access_time_ps": round(self.access_time_ps, 0),
            "dyn_energy_pj": round(self.dyn_energy_pj, 2),
            "leakage_mw": round(self.leakage_mw, 2),
        }


#: Paper Table III rows used for calibration (22nm).
PAPER_TABLE3 = {
    "Baseline": SRAMReport(0.030, 327.0, 10.22, 4.16),
    "BabelFish": SRAMReport(0.062, 456.0, 21.97, 6.22),
}


class SRAMModel:
    """Power-law SRAM model calibrated to two reference geometries.

    ``alpha`` for each metric is derived from the ratio between the
    BabelFish and Baseline rows of Table III given their bit counts; ``K``
    anchors the Baseline row exactly. See module docstring.
    """

    def __init__(self, ref_a=None, ref_b=None, report_a=None, report_b=None):
        self.ref_a = ref_a or baseline_l2_geometry()
        self.ref_b = ref_b or babelfish_l2_geometry()
        self.report_a = report_a or PAPER_TABLE3["Baseline"]
        self.report_b = report_b or PAPER_TABLE3["BabelFish"]
        bits_ratio = self.ref_b.bits_per_entry / self.ref_a.bits_per_entry
        log_ratio = math.log(bits_ratio)

        def fit(value_a, value_b):
            alpha = math.log(value_b / value_a) / log_ratio
            k = value_a / (self.ref_a.entries * self.ref_a.bits_per_entry ** alpha)
            return alpha, k

        self._area = fit(self.report_a.area_mm2, self.report_b.area_mm2)
        self._energy = fit(self.report_a.dyn_energy_pj, self.report_b.dyn_energy_pj)
        self._leak = fit(self.report_a.leakage_mw, self.report_b.leakage_mw)
        # Access time scales with total array size, not per-entry bits.
        size_ratio = (self.ref_b.entries * self.ref_b.bits_per_entry) / (
            self.ref_a.entries * self.ref_a.bits_per_entry)
        t_alpha = math.log(self.report_b.access_time_ps / self.report_a.access_time_ps) / math.log(size_ratio)
        t_k = self.report_a.access_time_ps / (
            (self.ref_a.entries * self.ref_a.bits_per_entry) ** t_alpha)
        self._time = (t_alpha, t_k)

    def _eval(self, pair, entries, bits):
        alpha, k = pair
        return k * entries * bits ** alpha

    def area_mm2(self, geometry):
        return self._eval(self._area, geometry.entries, geometry.bits_per_entry)

    def dyn_energy_pj(self, geometry):
        return self._eval(self._energy, geometry.entries, geometry.bits_per_entry)

    def leakage_mw(self, geometry):
        return self._eval(self._leak, geometry.entries, geometry.bits_per_entry)

    def access_time_ps(self, geometry):
        alpha, k = self._time
        return k * (geometry.entries * geometry.bits_per_entry) ** alpha

    def report(self, geometry):
        return SRAMReport(
            area_mm2=self.area_mm2(geometry),
            access_time_ps=self.access_time_ps(geometry),
            dyn_energy_pj=self.dyn_energy_pj(geometry),
            leakage_mw=self.leakage_mw(geometry),
        )


#: Baseline core area (without the L2 cache) at 22nm used for the
#: Section VII-D overhead figures. Calibrated so the full CCID + O-PC
#: addition lands at the paper's 0.4% of core area.
CORE_AREA_MM2 = 8.0


def l2_tlb_report(pc_bitmask_bits=32, model=None):
    """Table III for an arbitrary PC bitmask width; rows keyed like the paper."""
    model = model or SRAMModel()
    return {
        "Baseline": model.report(baseline_l2_geometry()),
        "BabelFish": model.report(babelfish_l2_geometry(pc_bitmask_bits)),
    }


def victima_l2_geometries():
    """Victima leaves the dedicated TLB arrays untouched: its extra
    reach is repurposed L2-*cache* SRAM, so the policy's TLB-array area
    is exactly the baseline's."""
    return (baseline_l2_geometry(),)


def coalesced_l2_geometries(degree=4):
    """The coalesced policy splits the L2 4K budget in half: a coalesced
    array whose tags are span-granular (``log2(degree)`` fewer VPN bits)
    but which carries ``degree`` extra per-member attribute bits, plus a
    plain 4K array for runs that do not coalesce."""
    base = baseline_l2_geometry()
    half = base.entries // 2
    span_bits = int(math.log2(degree))
    coalesced = dataclasses.replace(
        base, entries=half, vpn_bits=base.vpn_bits - span_bits,
        flag_bits=base.flag_bits + degree)
    single = dataclasses.replace(base, entries=half)
    return (coalesced, single)


def policy_l2_geometries(policy_name, pc_bitmask_bits=32, degree=4):
    """The L2 TLB array geometries a registry policy builds, for area
    accounting (``conventional_2x`` is excluded: it *is* the same-area
    answer, sized by :func:`same_area_conventional_scale`)."""
    if policy_name in ("conventional", "babelfish_pt"):
        return (baseline_l2_geometry(),)
    if policy_name == "victima":
        return victima_l2_geometries()
    if policy_name in ("babelfish", "babelfish_tlb"):
        return (babelfish_l2_geometry(pc_bitmask_bits),)
    if policy_name == "coalesced":
        return coalesced_l2_geometries(degree)
    raise ValueError("no area geometry for policy %r" % (policy_name,))


def same_area_conventional_scale(policy_name, model=None,
                                 pc_bitmask_bits=32, degree=4):
    """Entry-scale factor for an area-honest conventional comparison.

    The factor a conventional L2 TLB's entry count should be multiplied
    by to occupy the same SRAM area as ``policy_name``'s L2 arrays —
    what ``l2_tlb_scale`` (and the Section VII-C "larger conventional
    TLB" arm) should be set to when comparing against that policy.
    ``MachineParams.scale_l2_tlb`` snaps the resulting entry count to a
    buildable power-of-two set count.
    """
    model = model or SRAMModel()
    area = sum(model.area_mm2(g)
               for g in policy_l2_geometries(policy_name, pc_bitmask_bits,
                                             degree))
    return area / model.area_mm2(baseline_l2_geometry())


def core_area_overhead_pct(with_pc_bitmask=True, model=None):
    """Section VII-D: extra TLB bits as a percentage of core area.

    With the PC bitmask the paper reports 0.4%; the variant that drops the
    bitmask (immediately un-sharing a PMD set on the first CoW) reports
    0.07%. We compute both from the same SRAM model: the delta between the
    grown geometry and the baseline geometry, against
    :data:`CORE_AREA_MM2`.
    """
    model = model or SRAMModel()
    base = model.area_mm2(baseline_l2_geometry())
    pc_bits = 32 if with_pc_bitmask else 0
    grown = model.area_mm2(babelfish_l2_geometry(pc_bitmask_bits=pc_bits))
    return 100.0 * (grown - base) / CORE_AREA_MM2
