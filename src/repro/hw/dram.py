"""A compact open-page DRAM timing model (DRAMSim2 stand-in).

Physical addresses are interleaved across channels/ranks/banks at
row-buffer granularity. Each bank remembers its open row; a hit costs
CAS-only latency, a conflict costs precharge + activate + CAS. This is
deliberately simple — the paper's deltas come from *where* page-walk lines
hit in the cache hierarchy; DRAM only needs a sane miss penalty with some
locality sensitivity.
"""

from repro.hw.params import DRAMParams


class DRAMModel:
    def __init__(self, params=None):
        self.params = params or DRAMParams()
        p = self.params
        self.num_banks = p.channels * p.ranks_per_channel * p.banks_per_rank
        self.row_bits = p.row_size_bytes.bit_length() - 1
        self._open_rows = [None] * self.num_banks
        self.row_hits = 0
        self.row_misses = 0

    def _bank_row(self, paddr):
        row_addr = paddr >> self.row_bits
        bank = row_addr % self.num_banks
        row = row_addr // self.num_banks
        return bank, row

    def access(self, paddr):
        """Return the latency, in core cycles, of one DRAM access."""
        bank, row = self._bank_row(paddr)
        if self._open_rows[bank] == row:
            self.row_hits += 1
            return self.params.row_hit_cycles
        self._open_rows[bank] = row
        self.row_misses += 1
        return self.params.row_miss_cycles

    @property
    def accesses(self):
        return self.row_hits + self.row_misses

    def reset_stats(self):
        self.row_hits = 0
        self.row_misses = 0
