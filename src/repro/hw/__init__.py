"""Hardware substrate: caches, DRAM, TLBs, page-walk cache, SRAM modeling.

These are the structures from Table I of the paper. They know nothing about
containers or BabelFish; the BabelFish-specific lookup policy lives in
:mod:`repro.core.babelfish_tlb` and is layered on top of the generic
structures defined here.
"""

from repro.hw.types import AccessKind, MemoryLevel, PageSize
from repro.hw.params import (
    CacheParams,
    CoreParams,
    DRAMParams,
    MachineParams,
    PWCParams,
    TLBParams,
    baseline_machine,
)
from repro.hw.cache import CacheHierarchy, SetAssociativeCache
from repro.hw.dram import DRAMModel
from repro.hw.tlb import MultiSizeTLB, SetAssocTLB, TLBEntry
from repro.hw.pwc import PageWalkCache
from repro.hw.cacti import SRAMModel, l2_tlb_report

__all__ = [
    "AccessKind",
    "MemoryLevel",
    "PageSize",
    "CacheParams",
    "CoreParams",
    "DRAMParams",
    "MachineParams",
    "PWCParams",
    "TLBParams",
    "baseline_machine",
    "CacheHierarchy",
    "SetAssociativeCache",
    "DRAMModel",
    "MultiSizeTLB",
    "SetAssocTLB",
    "TLBEntry",
    "PageWalkCache",
    "SRAMModel",
    "l2_tlb_report",
]
