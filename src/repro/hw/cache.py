"""Set-associative write-back caches and the 3-level hierarchy of Table I.

The timing model is sequential-lookup: an access probes L1, then L2, then
the shared L3, then DRAM, accumulating each level's access time. Fills
propagate to every level on the way back (non-inclusive, fill-on-miss).
This is the level of fidelity the paper's translation study needs: what
matters is *which level* a page-walk request or data access hits in, which
is determined by sharing of physical lines across containers.
"""

from repro.hw.types import AccessKind, MemoryLevel


class SetAssociativeCache:
    """A single set-associative, write-back, LRU cache."""

    def __init__(self, params):
        self.params = params
        self.name = params.name
        self.line_bits = params.line_size.bit_length() - 1
        self.num_sets = params.num_sets
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two: %d" % self.num_sets)
        self.set_mask = self.num_sets - 1
        self.ways = params.ways
        # One dict per set: tag -> last-use stamp. Dicts keep us O(1) on
        # lookup; LRU victim search is O(ways), ways <= 16.
        self._sets = [dict() for _ in range(self.num_sets)]
        self._dirty = set()
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def _index_tag(self, paddr):
        line = paddr >> self.line_bits
        return line & self.set_mask, line >> (self.num_sets.bit_length() - 1)

    def lookup(self, paddr, is_write=False):
        """Probe the cache; returns True on hit and updates LRU/dirty state."""
        index, tag = self._index_tag(paddr)
        cset = self._sets[index]
        if tag in cset:
            self._stamp += 1
            cset[tag] = self._stamp
            if is_write:
                self._dirty.add((index, tag))
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, paddr, is_write=False):
        """Fill a line, evicting the LRU way if the set is full."""
        index, tag = self._index_tag(paddr)
        cset = self._sets[index]
        if tag not in cset and len(cset) >= self.ways:
            victim = min(cset, key=cset.get)
            del cset[victim]
            self.evictions += 1
            if (index, victim) in self._dirty:
                self._dirty.discard((index, victim))
                self.writebacks += 1
        self._stamp += 1
        cset[tag] = self._stamp
        if is_write:
            self._dirty.add((index, tag))

    def invalidate(self, paddr):
        index, tag = self._index_tag(paddr)
        self._sets[index].pop(tag, None)
        self._dirty.discard((index, tag))

    def flush(self):
        for cset in self._sets:
            cset.clear()
        self._dirty.clear()

    @property
    def occupancy(self):
        return sum(len(s) for s in self._sets)

    def __repr__(self):
        return "<%s %dB %d-way hits=%d misses=%d>" % (
            self.name, self.params.size_bytes, self.ways, self.hits, self.misses)


class CacheHierarchy:
    """Per-core L1I/L1D + private L2, shared L3, and DRAM behind it."""

    def __init__(self, machine, dram):
        self.machine = machine
        self.dram = dram
        self.l1i = [SetAssociativeCache(machine.l1i) for _ in range(machine.cores)]
        self.l1d = [SetAssociativeCache(machine.l1d) for _ in range(machine.cores)]
        self.l2 = [SetAssociativeCache(machine.l2) for _ in range(machine.cores)]
        self.l3 = SetAssociativeCache(machine.l3)

    def _l1_for(self, core_id, kind):
        if kind is AccessKind.IFETCH:
            return self.l1i[core_id]
        return self.l1d[core_id]

    def access(self, core_id, paddr, kind=AccessKind.LOAD, skip_l1=False):
        """Run one access through the hierarchy.

        Returns ``(cycles, level)`` where ``level`` is the
        :class:`MemoryLevel` that served the access. ``skip_l1`` models
        page-walker requests, which in x86 go directly to the L2 cache
        (the walker does not consult the L1 data cache in our model,
        matching the paper's Figure 7 where walk requests are shown
        probing L2 then L3 then memory).
        """
        is_write = kind is AccessKind.STORE
        cycles = 0
        if not skip_l1:
            l1 = self._l1_for(core_id, kind)
            cycles += l1.params.access_cycles
            if l1.lookup(paddr, is_write):
                return cycles, MemoryLevel.L1

        l2 = self.l2[core_id]
        cycles += l2.params.access_cycles
        if l2.lookup(paddr, is_write):
            if not skip_l1:
                self._l1_for(core_id, kind).insert(paddr, is_write)
            return cycles, MemoryLevel.L2

        cycles += self.l3.params.access_cycles
        if self.l3.lookup(paddr, is_write):
            level = MemoryLevel.L3
        else:
            cycles += self.dram.access(paddr)
            self.l3.insert(paddr, is_write)
            level = MemoryLevel.DRAM

        l2.insert(paddr, is_write)
        if not skip_l1:
            self._l1_for(core_id, kind).insert(paddr, is_write)
        return cycles, level

    def invalidate_line(self, paddr):
        """Drop a line everywhere (used when the kernel rewrites a pte page)."""
        for core_id in range(self.machine.cores):
            self.l1i[core_id].invalidate(paddr)
            self.l1d[core_id].invalidate(paddr)
            self.l2[core_id].invalidate(paddr)
        self.l3.invalidate(paddr)

    def stats(self):
        return {
            "l1d_hits": sum(c.hits for c in self.l1d),
            "l1d_misses": sum(c.misses for c in self.l1d),
            "l1i_hits": sum(c.hits for c in self.l1i),
            "l1i_misses": sum(c.misses for c in self.l1i),
            "l2_hits": sum(c.hits for c in self.l2),
            "l2_misses": sum(c.misses for c in self.l2),
            "l3_hits": self.l3.hits,
            "l3_misses": self.l3.misses,
        }
