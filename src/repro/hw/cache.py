"""Set-associative write-back caches and the 3-level hierarchy of Table I.

The timing model is sequential-lookup: an access probes L1, then L2, then
the shared L3, then DRAM, accumulating each level's access time. Fills
propagate to every level on the way back (non-inclusive, fill-on-miss).
This is the level of fidelity the paper's translation study needs: what
matters is *which level* a page-walk request or data access hits in, which
is determined by sharing of physical lines across containers.
"""

from repro.hw.types import AccessKind, MemoryLevel


class SetAssociativeCache:
    """A single set-associative, write-back, LRU cache."""

    def __init__(self, params):
        self.params = params
        self.name = params.name
        self.line_bits = params.line_size.bit_length() - 1
        self.num_sets = params.num_sets
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two: %d" % self.num_sets)
        self.set_mask = self.num_sets - 1
        self._tag_shift = self.num_sets.bit_length() - 1
        self.access_cycles = params.access_cycles
        self.ways = params.ways
        # One dict per set: tag -> last-use stamp. Dicts keep us O(1) on
        # lookup; LRU victim search is O(ways), ways <= 16.
        self._sets = [dict() for _ in range(self.num_sets)]
        self._dirty = set()
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        #: Monotonic change counter: bumped on insert and on any
        #: invalidate/flush that removed a line. Hits re-stamp LRU state
        #: but do not change residency, so they leave it alone; the
        #: hierarchy's same-line memo relies on exactly that contract.
        self.epoch = 0

    def _index_tag(self, paddr):
        line = paddr >> self.line_bits
        return line & self.set_mask, line >> self._tag_shift

    def lookup(self, paddr, is_write=False):
        """Probe the cache; returns True on hit and updates LRU/dirty state."""
        index, tag = self._index_tag(paddr)
        cset = self._sets[index]
        if tag in cset:
            self._stamp += 1
            cset[tag] = self._stamp
            if is_write:
                self._dirty.add((index, tag))
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, paddr, is_write=False):
        """Fill a line, evicting the LRU way if the set is full."""
        index, tag = self._index_tag(paddr)
        cset = self._sets[index]
        if tag not in cset and len(cset) >= self.ways:
            victim = min(cset, key=cset.get)
            del cset[victim]
            self.evictions += 1
            if (index, victim) in self._dirty:
                self._dirty.discard((index, victim))
                self.writebacks += 1
        self._stamp += 1
        cset[tag] = self._stamp
        if is_write:
            self._dirty.add((index, tag))
        self.epoch += 1

    def invalidate(self, paddr):
        index, tag = self._index_tag(paddr)
        cset = self._sets[index]
        # Membership, not pop-default: the fast backing stores None as
        # the per-tag value, which a pop-is-None test would misread as
        # "absent" and skip the epoch bump.
        if tag in cset:
            del cset[tag]
            self.epoch += 1
        self._dirty.discard((index, tag))

    def flush(self):
        for cset in self._sets:
            cset.clear()
        self._dirty.clear()
        self.epoch += 1

    @property
    def occupancy(self):
        return sum(len(s) for s in self._sets)

    def __repr__(self):
        return "<%s %dB %d-way hits=%d misses=%d>" % (
            self.name, self.params.size_bytes, self.ways, self.hits, self.misses)


class FastSetAssociativeCache(SetAssociativeCache):
    """Recency-dict :class:`SetAssociativeCache` with identical observable
    behaviour, selected by ``SimConfig.fastpath``.

    The reference keeps ``tag -> stamp`` per set and scans for the
    minimum stamp to evict; stamps are unique and monotonic, so their
    order is exactly recency order. This backing stores the same tags in
    a recency-ordered dict (oldest first; hits delete + reinsert), making
    eviction ``next(iter(set))`` instead of an O(ways) ``min`` — the same
    victim, without the scan. Hit/miss/eviction/writeback counters,
    dirty-line state, ``occupancy``, and the ``epoch`` contract all match
    the reference bit for bit (tests/test_fastpath.py drives both against
    random access streams).
    """

    def lookup(self, paddr, is_write=False):
        line = paddr >> self.line_bits
        index = line & self.set_mask
        tag = line >> self._tag_shift
        cset = self._sets[index]
        if tag in cset:
            del cset[tag]
            cset[tag] = None
            if is_write:
                self._dirty.add((index, tag))
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, paddr, is_write=False):
        line = paddr >> self.line_bits
        index = line & self.set_mask
        tag = line >> self._tag_shift
        cset = self._sets[index]
        if tag in cset:
            del cset[tag]
        elif len(cset) >= self.ways:
            victim = next(iter(cset))
            del cset[victim]
            self.evictions += 1
            if (index, victim) in self._dirty:
                self._dirty.discard((index, victim))
                self.writebacks += 1
        cset[tag] = None
        if is_write:
            self._dirty.add((index, tag))
        self.epoch += 1


class CacheHierarchy:
    """Per-core L1I/L1D + private L2, shared L3, and DRAM behind it."""

    def __init__(self, machine, dram, fastpath=False):
        self.machine = machine
        self.dram = dram
        cache_cls = FastSetAssociativeCache if fastpath else SetAssociativeCache
        self.l1i = [cache_cls(machine.l1i) for _ in range(machine.cores)]
        self.l1d = [cache_cls(machine.l1d) for _ in range(machine.cores)]
        self.l2 = [cache_cls(machine.l2) for _ in range(machine.cores)]
        self.l3 = cache_cls(machine.l3)
        #: Same-line fast path (SimConfig.fastpath): per core, per L1
        #: structure (0=ifetch, 1=data), the last line that hit in L1 as
        #: ``(line, epoch-at-hit)``. A repeat access to the same line
        #: while the L1's epoch is unchanged (line still resident) takes
        #: the short-circuit below, which replays the reference hit path
        #: (stamp, dirty, hit counter) without the lookup call chain.
        self.fastpath = bool(fastpath)
        self._line_memo = [[None, None] for _ in range(machine.cores)]

    def _l1_for(self, core_id, kind):
        if kind is AccessKind.IFETCH:
            return self.l1i[core_id]
        return self.l1d[core_id]

    def access(self, core_id, paddr, kind=AccessKind.LOAD, skip_l1=False):
        """Run one access through the hierarchy.

        Returns ``(cycles, level)`` where ``level`` is the
        :class:`MemoryLevel` that served the access. ``skip_l1`` models
        page-walker requests, which in x86 go directly to the L2 cache
        (the walker does not consult the L1 data cache in our model,
        matching the paper's Figure 7 where walk requests are shown
        probing L2 then L3 then memory).
        """
        is_write = kind is AccessKind.STORE
        cycles = 0
        l1 = None
        if not skip_l1:
            ifetch = kind is AccessKind.IFETCH
            l1 = self.l1i[core_id] if ifetch else self.l1d[core_id]
            if self.fastpath:
                slot = self._line_memo[core_id]
                way = 0 if ifetch else 1
                line = paddr >> l1.line_bits
                cached = slot[way]
                if cached is not None and cached[0] == line \
                        and cached[1] == l1.epoch:
                    # Exact replay of the L1-hit path: the line is still
                    # resident (epoch unmoved), so move it to MRU, mark
                    # dirty on writes, and count the hit.
                    index = line & l1.set_mask
                    tag = line >> l1._tag_shift
                    cset = l1._sets[index]
                    del cset[tag]
                    cset[tag] = None
                    if is_write:
                        l1._dirty.add((index, tag))
                    l1.hits += 1
                    return l1.access_cycles, MemoryLevel.L1
            cycles += l1.access_cycles
            if l1.lookup(paddr, is_write):
                if self.fastpath:
                    slot[way] = (line, l1.epoch)
                return cycles, MemoryLevel.L1

        l2 = self.l2[core_id]
        cycles += l2.access_cycles
        if l2.lookup(paddr, is_write):
            if not skip_l1:
                l1.insert(paddr, is_write)
                if self.fastpath:
                    slot[way] = (line, l1.epoch)
            return cycles, MemoryLevel.L2

        cycles += self.l3.access_cycles
        if self.l3.lookup(paddr, is_write):
            level = MemoryLevel.L3
        else:
            cycles += self.dram.access(paddr)
            self.l3.insert(paddr, is_write)
            level = MemoryLevel.DRAM

        l2.insert(paddr, is_write)
        if not skip_l1:
            l1.insert(paddr, is_write)
            if self.fastpath:
                slot[way] = (line, l1.epoch)
        return cycles, level

    def data_access(self, core_id, paddr, kind_code):
        """:meth:`access` specialized for the fast trace loop: demand
        accesses only (never ``skip_l1``), trace-record kind codes
        (0=ifetch, 1=load, 2=store) instead of :class:`AccessKind`, the
        L1 probe and same-line memo inlined, and a plain cycle count
        returned instead of a ``(cycles, level)`` tuple. State changes
        are identical to :meth:`access`; only dispatched when the
        hierarchy was built with ``fastpath=True``."""
        is_write = kind_code == 2
        ifetch = kind_code == 0
        l1 = self.l1i[core_id] if ifetch else self.l1d[core_id]
        line = paddr >> l1.line_bits
        index = line & l1.set_mask
        tag = line >> l1._tag_shift
        cset = l1._sets[index]
        slot = self._line_memo[core_id]
        way = 0 if ifetch else 1
        cached = slot[way]
        if cached is not None and cached[0] == line \
                and cached[1] == l1.epoch:
            del cset[tag]
            cset[tag] = None
            if is_write:
                l1._dirty.add((index, tag))
            l1.hits += 1
            return l1.access_cycles
        cycles = l1.access_cycles
        if tag in cset:
            # Inline FastSetAssociativeCache.lookup hit.
            del cset[tag]
            cset[tag] = None
            if is_write:
                l1._dirty.add((index, tag))
            l1.hits += 1
            slot[way] = (line, l1.epoch)
            return cycles
        l1.misses += 1

        l2 = self.l2[core_id]
        cycles += l2.access_cycles
        if l2.lookup(paddr, is_write):
            l1.insert(paddr, is_write)
            slot[way] = (line, l1.epoch)
            return cycles

        cycles += self.l3.access_cycles
        if not self.l3.lookup(paddr, is_write):
            cycles += self.dram.access(paddr)
            self.l3.insert(paddr, is_write)

        l2.insert(paddr, is_write)
        l1.insert(paddr, is_write)
        slot[way] = (line, l1.epoch)
        return cycles

    def invalidate_line(self, paddr):
        """Drop a line everywhere (used when the kernel rewrites a pte page)."""
        for core_id in range(self.machine.cores):
            self.l1i[core_id].invalidate(paddr)
            self.l1d[core_id].invalidate(paddr)
            self.l2[core_id].invalidate(paddr)
        self.l3.invalidate(paddr)

    def stats(self):
        return {
            "l1d_hits": sum(c.hits for c in self.l1d),
            "l1d_misses": sum(c.misses for c in self.l1d),
            "l1i_hits": sum(c.hits for c in self.l1i),
            "l1i_misses": sum(c.misses for c in self.l1i),
            "l2_hits": sum(c.hits for c in self.l2),
            "l2_misses": sum(c.misses for c in self.l2),
            "l3_hits": self.l3.hits,
            "l3_misses": self.l3.misses,
        }
