"""Page Walk Cache (Section II-B).

Caches recently used entries of the first three page-table levels (PGD,
PUD, PMD). Tagged by the physical address of the table entry, so two
processes that share a page-table page (BabelFish) naturally share PWC
entries on the same core, while private tables do not — exactly the effect
Figure 7 relies on.
"""

from repro.hw.types import PTE_BYTES

#: Levels cached by the PWC: 4 = PGD, 3 = PUD, 2 = PMD. The leaf PTE level
#: is what the TLB itself caches, so the PWC does not store it.
PWC_LEVELS = (4, 3, 2)


class PageWalkCache:
    def __init__(self, params):
        self.params = params
        self.access_cycles = params.access_cycles
        self._levels = {level: {} for level in PWC_LEVELS}
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _key(self, entry_paddr):
        return entry_paddr // PTE_BYTES

    def lookup(self, level, entry_paddr):
        """Probe the PWC for a table entry at ``level``; True on hit."""
        if level not in self._levels:
            return False
        cache = self._levels[level]
        key = self._key(entry_paddr)
        if key in cache:
            self._stamp += 1
            cache[key] = self._stamp
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, level, entry_paddr):
        if level not in self._levels:
            return
        cache = self._levels[level]
        key = self._key(entry_paddr)
        if key not in cache and len(cache) >= self.params.entries_per_level:
            victim = min(cache, key=cache.get)
            del cache[victim]
        self._stamp += 1
        cache[key] = self._stamp

    def invalidate_entry(self, level, entry_paddr):
        if level in self._levels:
            self._levels[level].pop(self._key(entry_paddr), None)

    def flush(self):
        for cache in self._levels.values():
            cache.clear()

    def occupancy(self, level):
        return len(self._levels.get(level, {}))
