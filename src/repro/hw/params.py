"""Architectural parameters from Table I of the paper.

Every hardware structure is described by a small frozen dataclass so
configurations can be tweaked per experiment (e.g. the "larger conventional
L2 TLB" comparison of Section VII-C) without touching the models.
"""

import dataclasses
import math

from repro.hw.types import PageSize


@dataclasses.dataclass(frozen=True)
class CoreParams:
    """Core parameters (we only need timing-level knobs, not an OoO model)."""

    frequency_ghz: float = 2.0
    issue_width: int = 2
    rob_entries: int = 128
    #: Average cycles per non-memory instruction. A 2-issue OoO core retires
    #: close to 2 instructions/cycle on compute-bound stretches.
    base_cpi: float = 0.5


@dataclasses.dataclass(frozen=True)
class CacheParams:
    name: str
    size_bytes: int
    ways: int
    line_size: int = 64
    access_cycles: int = 2
    shared: bool = False

    @property
    def num_sets(self):
        return self.size_bytes // (self.ways * self.line_size)


@dataclasses.dataclass(frozen=True)
class TLBParams:
    name: str
    entries: int
    ways: int
    page_size: PageSize
    access_cycles: int = 1
    #: Access time when the PC bitmask has to be read (BabelFish L2 TLB
    #: only; Table I lists "10 or 12 cycles").
    long_access_cycles: int = 0

    @property
    def num_sets(self):
        return max(1, self.entries // self.ways)


@dataclasses.dataclass(frozen=True)
class PWCParams:
    entries_per_level: int = 16
    ways: int = 4
    access_cycles: int = 1


@dataclasses.dataclass(frozen=True)
class DRAMParams:
    capacity_gb: int = 32
    channels: int = 2
    ranks_per_channel: int = 8
    banks_per_rank: int = 8
    frequency_ghz: float = 1.0
    #: Core-clock cycles for a row-buffer hit / miss (CAS vs ACT+CAS+PRE),
    #: in 2GHz core cycles.
    row_hit_cycles: int = 36
    row_miss_cycles: int = 90
    row_size_bytes: int = 8192


@dataclasses.dataclass(frozen=True)
class MMUParams:
    """Per-core MMU structures (Table I, middle block)."""

    l1d_4k: TLBParams = TLBParams("L1 DTLB 4K", 64, 4, PageSize.SIZE_4K, 1)
    l1i_4k: TLBParams = TLBParams("L1 ITLB 4K", 64, 4, PageSize.SIZE_4K, 1)
    l1d_2m: TLBParams = TLBParams("L1 DTLB 2M", 32, 4, PageSize.SIZE_2M, 1)
    l1d_1g: TLBParams = TLBParams("L1 DTLB 1G", 4, 4, PageSize.SIZE_1G, 1)
    l2_4k: TLBParams = TLBParams("L2 TLB 4K", 1536, 12, PageSize.SIZE_4K, 10, 12)
    l2_2m: TLBParams = TLBParams("L2 TLB 2M", 1536, 12, PageSize.SIZE_2M, 10, 12)
    l2_1g: TLBParams = TLBParams("L2 TLB 1G", 16, 4, PageSize.SIZE_1G, 10, 12)
    pwc: PWCParams = PWCParams()
    #: Extra latency of the ASLR-HW address transformation, paid on an L1
    #: TLB miss (Section IV-D / Table I).
    aslr_transform_cycles: int = 2


def _snap_entries(entries, ways, factor):
    """Entry count nearest ``entries * factor`` that yields a
    power-of-two number of ``ways``-associative sets (minimum one)."""
    target_sets = max(1.0, entries * factor / ways)
    exponent = round(math.log2(target_sets))
    return (1 << max(0, exponent)) * ways


@dataclasses.dataclass(frozen=True)
class MachineParams:
    """The full 8-core server of Table I."""

    cores: int = 8
    core: CoreParams = CoreParams()
    l1d: CacheParams = CacheParams("L1D", 32 * 1024, 8, 64, 2)
    l1i: CacheParams = CacheParams("L1I", 32 * 1024, 8, 64, 2)
    l2: CacheParams = CacheParams("L2", 256 * 1024, 8, 64, 8)
    l3: CacheParams = CacheParams("L3", 8 * 1024 * 1024, 16, 64, 32, shared=True)
    mmu: MMUParams = MMUParams()
    dram: DRAMParams = DRAMParams()
    #: Host/Docker parameters (Table I, bottom block).
    scheduling_quantum_ms: float = 10.0
    pc_bitmask_bits: int = 32
    pcid_bits: int = 12
    ccid_bits: int = 12

    def scale_l2_tlb(self, factor):
        """Return a copy with the L2 TLB scaled by ``factor`` entries.

        Used for the "larger conventional L2 TLB" comparison of
        Section VII-C: the area that BabelFish spends on CCID + O-PC bits
        is spent on extra conventional entries instead. The scaled entry
        count is snapped to a power-of-two number of sets (keeping the
        associativity), because set-indexed TLBs only exist at those
        points — ``int(entries * factor)`` would hand the structure an
        unbuildable 264-set array for honest area factors like the
        2.07x :func:`repro.hw.cacti.same_area_conventional_scale`
        derives. Exact powers of two (the stock 2.0) are unchanged.
        """
        mmu = self.mmu

        def scaled_params(params):
            return dataclasses.replace(
                params, entries=_snap_entries(params.entries, params.ways,
                                              factor))

        scaled = dataclasses.replace(
            mmu,
            l2_4k=scaled_params(mmu.l2_4k),
            l2_2m=scaled_params(mmu.l2_2m),
            l2_1g=scaled_params(mmu.l2_1g),
        )
        return dataclasses.replace(self, mmu=scaled)


def baseline_machine(cores=8):
    """The Table I machine, optionally with a different core count.

    Tests use small core counts; experiments default to the paper's 8.
    """
    return MachineParams(cores=cores)
