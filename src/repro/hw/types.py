"""Common low-level types shared by the hardware models."""

import enum

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
CACHE_LINE_SIZE = 64
PTE_BYTES = 8
ENTRIES_PER_TABLE = 512


class AccessKind(enum.Enum):
    """What a memory access is, from the core's point of view."""

    IFETCH = "ifetch"
    LOAD = "load"
    STORE = "store"

    @property
    def is_instruction(self):
        return self is AccessKind.IFETCH

    @property
    def is_write(self):
        return self is AccessKind.STORE


class MemoryLevel(enum.Enum):
    """Which level of the memory hierarchy served an access."""

    L1 = 1
    L2 = 2
    L3 = 3
    DRAM = 4


class PageSize(enum.Enum):
    """Page sizes supported by the TLBs (Table I)."""

    SIZE_4K = 12
    SIZE_2M = 21
    SIZE_1G = 30

    @property
    def shift(self):
        return self.value

    @property
    def bytes(self):
        return 1 << self.value

    @property
    def base_pages(self):
        """Number of 4KB pages this page size covers."""
        return 1 << (self.value - PAGE_SHIFT)


# Hot-path constants precomputed as plain member attributes: the
# ``shift``/``base_pages`` properties cost a descriptor dispatch plus an
# enum ``.value`` access per call, which shows up when the simulator's
# fast path does them per translation. ``shift4k`` is the right-shift
# from a 4K VPN to this size's VPN; ``base_mask`` selects the 4K page
# within a larger page (``base_pages - 1``). ``coalesced`` marks
# synthetic multi-frame spans (:class:`repro.core.policy.CoalescedSpan`)
# — always False for real architectural page sizes, so size-generic
# consumers can branch without type checks.
for _size in PageSize:
    _size.shift4k = _size.value - PAGE_SHIFT
    _size.base_mask = (1 << (_size.value - PAGE_SHIFT)) - 1
    _size.coalesced = False
del _size


def vpn_for(vaddr, page_size=PageSize.SIZE_4K):
    """Virtual page number of ``vaddr`` for the given page size."""
    return vaddr >> page_size.shift


def line_addr(paddr):
    """Cache-line-aligned address of ``paddr``."""
    return paddr & ~(CACHE_LINE_SIZE - 1)
