"""A YCSB-style workload driver (Cooper et al., SoCC'10).

Each data-serving container in the paper is driven by a distinct YCSB
client with a 500MB data set; requests pick records with zipfian
popularity and mix reads with updates. The driver produces *requests*, the
unit the paper's mean/95th-percentile latency metrics are computed over.
"""

import dataclasses
import random

from repro.workloads.zipf import ZipfGenerator


@dataclasses.dataclass
class Request:
    request_id: int
    #: Data set pages read by the request.
    reads: list
    #: Data set pages written (updates).
    writes: list


class YCSBDriver:
    """Generates requests over ``records`` data-set pages."""

    def __init__(self, records, theta=0.99, write_frac=0.05,
                 reads_per_request=4, seed=0, request_base=0):
        self.records = records
        self.write_frac = write_frac
        self.reads_per_request = reads_per_request
        self._zipf = ZipfGenerator(records, theta, seed=seed)
        self._rng = random.Random(seed ^ 0x5EED)
        self._next_id = request_base
        #: Record popularity is scattered: page i being popular does not
        #: mean page i+1 is, so scramble key->page with a fixed permutation.
        self._scramble = list(range(records))
        random.Random(1234).shuffle(self._scramble)

    def next_request(self):
        reads = []
        writes = []
        # Request sizes vary (multi-get / range queries): a Pareto-ish
        # size distribution produces the heavy upper-percentile requests
        # that the paper's 95th-percentile latency metric keys on.
        size = min(int(self.reads_per_request * self._rng.paretovariate(2.2)),
                   self.reads_per_request * 4)
        for _ in range(max(1, size)):
            page = self._scramble[self._zipf.next()]
            if self._rng.random() < self.write_frac:
                writes.append(page)
            else:
                reads.append(page)
        request = Request(self._next_id, reads, writes)
        self._next_id += 1
        return request

    def requests(self, count):
        for _ in range(count):
            yield self.next_request()
