"""Workload models for the paper's evaluation (Section VI):

- Data serving: ArangoDB, MongoDB, HTTPd driven by a YCSB-style client.
- Compute: GraphChi (PageRank) and FIO.
- Functions: Parse, Hash, Marshal with dense and sparse inputs.

Each application is a parameterised model calibrated to the paper's
Figure 9 sharing profile (what fraction of its translations are identical
across containers) and its qualitative locality profile; timing behaviour
then *emerges* from the simulator rather than being scripted.
"""

from repro.workloads.zipf import ZipfGenerator
from repro.workloads.profiles import (
    AppProfile,
    FunctionProfile,
    APP_PROFILES,
    FUNCTION_PROFILES,
    SERVING_APPS,
    COMPUTE_APPS,
    FUNCTION_NAMES,
)
from repro.workloads.ycsb import YCSBDriver
from repro.workloads.dataserving import serving_trace
from repro.workloads.compute import compute_trace
from repro.workloads.functions import function_trace
from repro.workloads.tracefile import load_trace, save_trace, trace_stats

__all__ = [
    "ZipfGenerator",
    "AppProfile",
    "FunctionProfile",
    "APP_PROFILES",
    "FUNCTION_PROFILES",
    "SERVING_APPS",
    "COMPUTE_APPS",
    "FUNCTION_NAMES",
    "YCSBDriver",
    "serving_trace",
    "compute_trace",
    "function_trace",
    "save_trace",
    "load_trace",
    "trace_stats",
]
