"""Serverless function traces: Parse, Hash, Marshal (Section VI).

All three are C/C++ functions on the OpenFaaS GCC base image, streaming
over an input payload (shared across the user's functions) with dense or
sparse element spacing. The instruction stream exercises the function's
own code plus the common runtime libraries — which is where ~90% of a
function's shareable translations live (Section VII-A).
"""

import random

from repro.kernel.vma import SegmentKind
from repro.workloads.zipf import ZipfGenerator

K_IFETCH, K_LOAD, K_STORE = 0, 1, 2


def function_input_pages(profile, dense):
    """Pages of input payload a run touches (sparse covers 10x more)."""
    return (profile.input_pages if dense
            else profile.input_pages * profile.sparse_factor)


def function_trace(profile, dense, container_index, code_offset,
                   scratch_offset, seed_offset=0):
    """Trace generator for one function execution to completion.

    ``code_offset`` is the LIBS-segment page offset of the function's own
    code mapping; ``scratch_offset`` the MMAP-segment page offset of its
    scratch space (both assigned by the FaaS platform).
    """
    seed = container_index * 65537 + seed_offset + (0 if dense else 1)
    rng = random.Random(seed)
    pages = function_input_pages(profile, dense)
    per_page = (profile.dense_accesses_per_page if dense
                else profile.sparse_accesses_per_page)
    lib_zipf = ZipfGenerator(profile.lib_hot, 0.6, seed=seed ^ 0x11B)
    gap = profile.gap
    scratch_base = 0
    scratch_cursor = 0
    ifetch_budget = 0.0

    for _pass in range(profile.passes):
        for page in range(pages):
            line = rng.randrange(8)
            for k in range(per_page):
                ifetch_budget += profile.ifetch_ratio
                if ifetch_budget >= 1.0:
                    ifetch_budget -= 1.0
                    if rng.random() < 0.25:
                        yield (K_IFETCH, SegmentKind.LIBS,
                               code_offset + rng.randrange(profile.code_pages),
                               rng.randrange(64), gap, None)
                    else:
                        yield (K_IFETCH, SegmentKind.LIBS, lib_zipf.next(),
                               rng.randrange(64), gap, None)
                # Dense walks successive lines of the page; sparse touches
                # ~10% of the page before moving on.
                line = (line + (5 if dense else 29)) % 64
                yield (K_LOAD, SegmentKind.MMAP, page, line, gap, None)
            if page % 8 == 0:
                scratch_cursor = (scratch_cursor + 1) % profile.scratch_pages
                yield (K_STORE, SegmentKind.MMAP,
                       scratch_offset + scratch_base + scratch_cursor,
                       rng.randrange(64), gap, None)
