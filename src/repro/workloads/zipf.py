"""Zipfian key generator, YCSB-style.

Implements the classic Gray et al. "Quickly generating billion-record
synthetic databases" method used by YCSB's ZipfianGenerator: O(n) setup,
O(1) sampling. ``theta`` near 0 approaches uniform; YCSB's default is
0.99 (highly skewed).
"""

import math
import random


class ZipfGenerator:
    def __init__(self, n, theta=0.99, seed=42):
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(min(n, 2), theta)
        self._alpha = 1.0 / (1.0 - theta) if theta else 1.0
        denom = 1.0 - self._zeta2 / self._zetan
        self._eta = ((1.0 - math.pow(2.0 / n, 1.0 - theta)) / denom
                     if theta and denom else 0.0)

    @staticmethod
    def _zeta(n, theta):
        return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))

    def next(self):
        """Next key in [0, n); key 0 is the most popular."""
        if not self.theta:
            return self._rng.randrange(self.n)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        return int(self.n * math.pow(self._eta * u - self._eta + 1.0,
                                     self._alpha))

    def sample(self, count):
        return [self.next() for _ in range(count)]

    def __iter__(self):
        while True:
            yield self.next()
