"""Data-serving traces: ArangoDB, MongoDB, HTTPd driven by YCSB clients.

Each container serves its own request stream (distinct YCSB client seed)
against the shared data set; requests carry request ids so the simulator
can report mean and 95th-percentile latency (Figure 11's serving metrics).
"""

import random

from repro.kernel.vma import SegmentKind
from repro.workloads.ycsb import YCSBDriver
from repro.workloads.zipf import ZipfGenerator

K_IFETCH, K_LOAD, K_STORE = 0, 1, 2


def serving_trace(profile, container_index, requests=None, request_base=0,
                  tag_requests=True, seed_offset=0):
    """Trace generator for one data-serving container.

    ``tag_requests=False`` produces an untagged warm-up stream.
    """
    requests = profile.requests if requests is None else requests
    seed = container_index * 7919 + seed_offset
    rng = random.Random(seed)
    ifetches, reads, privates = profile.mix
    driver = YCSBDriver(
        profile.dataset_pages, profile.zipf_theta,
        write_frac=profile.dataset_write_frac if profile.dataset_writes else 0.0,
        reads_per_request=reads, seed=seed, request_base=request_base)
    code_pages = profile.code_hot + profile.lib_hot
    code_zipf = ZipfGenerator(code_pages, 0.6, seed=seed ^ 0xC0DE)
    gap = profile.gap
    # The scan cursor is deliberately container-independent in phase: all
    # containers range-scan the same hot band of the shared data set.
    scan_cursor = (request_base // 1_000_000) * 17 % max(1, profile.scan_band)

    for request in driver.requests(requests):
        rid = request.request_id if tag_requests else None
        for _ in range(ifetches):
            page = code_zipf.next()
            # Images with no binary (or library) mapping have no pages to
            # fetch from that segment; skip rather than modulo by zero.
            if page < profile.code_hot:
                if profile.image.binary_pages:
                    yield (K_IFETCH, SegmentKind.CODE,
                           page % profile.image.binary_pages,
                           rng.randrange(64), gap, rid)
            elif profile.image.lib_pages:
                yield (K_IFETCH, SegmentKind.LIBS,
                       (page - profile.code_hot) % profile.image.lib_pages,
                       rng.randrange(64), gap, rid)
        for page in request.reads:
            # Record-oriented access: a page's record starts at a fixed
            # line, giving the data cache the reuse a real KV store sees.
            yield (K_LOAD, SegmentKind.MMAP, page, (page * 13) % 64, gap, rid)
        for _ in range(profile.scan_per_request):
            scan_cursor = (scan_cursor + 7) % profile.scan_band
            yield (K_LOAD, SegmentKind.MMAP, scan_cursor,
                   (scan_cursor * 13) % 64, gap, rid)
        for page in request.writes:
            yield (K_STORE, SegmentKind.MMAP, page, (page * 13) % 64, gap, rid)
        for _ in range(privates):
            # Buffer pools are reused: most accesses hit the hot subset.
            if rng.random() < 0.8:
                page = rng.randrange(min(profile.private_hot,
                                         profile.private_pages))
            else:
                page = rng.randrange(profile.private_pages)
            kind = (K_STORE if rng.random() < profile.private_write_frac
                    else K_LOAD)
            yield (kind, SegmentKind.HEAP, page, rng.randrange(64), gap, rid)
