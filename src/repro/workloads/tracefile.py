"""Trace (de)serialization: record streams as JSONL files.

Workload generators are deterministic, but persisting a trace makes a run
exactly re-playable across machines and versions — and lets external
traces (e.g. converted from real TLB-trace collections) drive the
simulator. One JSON array per line::

    [kind, segment_name, page_offset, line, gap, request_id]
"""

import json

from repro.kernel.vma import SegmentKind

_SEGMENTS = {segment.value: segment for segment in SegmentKind}


def save_trace(records, path):
    """Write an iterable of trace records to ``path``; returns the count."""
    count = 0
    with open(path, "w") as handle:
        for kind, segment, page, line, gap, rid in records:
            handle.write(json.dumps(
                [kind, segment.value, page, line, gap, rid]))
            handle.write("\n")
            count += 1
    return count


def load_trace(path):
    """Yield trace records from a JSONL trace file."""
    with open(path) as handle:
        for line_no, raw in enumerate(handle, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                kind, segment_name, page, line, gap, rid = json.loads(raw)
                segment = _SEGMENTS[segment_name]
            except (ValueError, KeyError) as exc:
                raise ValueError("%s:%d: bad trace record: %s"
                                 % (path, line_no, exc)) from exc
            if kind not in (0, 1, 2):
                raise ValueError("%s:%d: bad access kind %r"
                                 % (path, line_no, kind))
            yield (kind, segment, page, line, gap, rid)


def trace_stats(records):
    """Summarize a record stream: counts per kind/segment, page footprint."""
    stats = {
        "records": 0,
        "instructions": 0,
        "by_kind": {0: 0, 1: 0, 2: 0},
        "pages_by_segment": {},
        "requests": set(),
    }
    for kind, segment, page, _line, gap, rid in records:
        stats["records"] += 1
        stats["instructions"] += gap + 1
        stats["by_kind"][kind] += 1
        stats["pages_by_segment"].setdefault(segment, set()).add(page)
        if rid is not None:
            stats["requests"].add(rid)
    stats["footprint_pages"] = sum(
        len(pages) for pages in stats["pages_by_segment"].values())
    stats["requests"] = len(stats["requests"])
    return stats
