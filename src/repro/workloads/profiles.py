"""Per-application models (Section VI's workloads).

Footprints are scaled from the paper's 500MB datasets to page counts a
pure-Python simulator can drive while preserving the competitive ratios
that matter: dataset pages vs the 1536-entry L2 TLB (pressure), shared vs
private pages per container (Figure 9's shareability mix), and access
locality (zipfian for YCSB-driven serving, random traversal for GraphChi,
streaming for HTTPd/FIO, dense/sparse strides for functions).

THP notes (Section VII-A): MongoDB and ArangoDB recommend disabling
transparent huge pages, so their models carry none; the others map a
modest anonymous huge region touched only at initialization — which is
exactly why the paper finds THP pte_ts "rarely active".
"""

import dataclasses

from repro.containers.image import ContainerImage


@dataclasses.dataclass(frozen=True)
class AppProfile:
    name: str
    kind: str                      # "serving" | "compute"
    image: ContainerImage
    #: Shared data set (MAP_SHARED file), pages.
    dataset_pages: int
    #: Whether the app writes the shared data set in place.
    dataset_writes: bool
    #: Private anonymous working memory per container (internal buffers).
    private_pages: int
    #: 2MB anonymous huge-page blocks per container (THP; init-touched).
    thp_blocks: int
    #: Zipf skew of data set accesses (0 = uniform / random traversal).
    zipf_theta: float
    #: Requests (serving) or iterations (compute) measured per container.
    requests: int
    #: Accesses per request: (ifetches, dataset reads, private accesses).
    mix: tuple
    #: Per-request accesses to a shared sequential scan band (range scans
    #: over the same hot tables/content — the cross-container overlap the
    #: paper highlights: "a large number of the pages accessed is the
    #: same across containers").
    scan_per_request: int
    scan_band: int
    #: Fraction of dataset accesses that are writes.
    dataset_write_frac: float
    #: Fraction of private accesses that are writes.
    private_write_frac: float
    #: Hot subset of the private buffer that most private accesses hit
    #: (buffer pools and working buffers are reused; GraphChi's streaming
    #: edge buffers set this to the full private size).
    private_hot: int
    #: Mean non-memory instruction gap between accesses.
    gap: int
    #: Fraction of the dataset touched during OS warm-up.
    warm_fraction: float
    #: Steady-state resident fraction of the data set per container: the
    #: OS warm-up touches this much, leaving the rest to fault during the
    #: measured window (the paper's tail-latency effects).
    warm_coverage: float
    #: Hot code pages (binary + libs) the instruction stream cycles over.
    code_hot: int
    lib_hot: int
    containers_per_core: int = 2


def _image(name, binary, bdata, libs, ldata, infra, bringup=220, heap=4096):
    return ContainerImage(name=name, binary_pages=binary,
                          binary_data_pages=bdata, lib_pages=libs,
                          lib_data_pages=ldata, infra_pages=infra,
                          bringup_touch_pages=bringup, heap_pages=heap)


#: Data-serving applications (YCSB-driven, 500MB scaled to ~6K pages).
_MONGODB = AppProfile(
    name="mongodb", kind="serving",
    image=_image("mongodb", binary=64, bdata=12, libs=384, ldata=24, infra=128),
    # Memory-mapped storage engine: most active state is the shared data.
    dataset_pages=6144, dataset_writes=True, private_pages=1536,
    thp_blocks=0,  # MongoDB warns against THP
    zipf_theta=0.92, requests=260, mix=(3, 3, 2),
    scan_per_request=4, scan_band=640,
    dataset_write_frac=0.08, private_write_frac=0.7,
    private_hot=96, gap=75,
    warm_fraction=0.35, warm_coverage=0.995, code_hot=48, lib_hot=96,
)

_ARANGODB = AppProfile(
    name="arangodb", kind="serving",
    image=_image("arangodb", binary=72, bdata=16, libs=384, ldata=24, infra=128),
    # RocksDB engine: more internal buffering (memtables, block cache).
    dataset_pages=4096, dataset_writes=True, private_pages=3072,
    thp_blocks=0,  # ArangoDB warns against THP
    zipf_theta=0.80, requests=260, mix=(3, 4, 4),
    scan_per_request=1, scan_band=384,
    dataset_write_frac=0.10, private_write_frac=0.8,
    private_hot=320, gap=85,
    warm_fraction=0.30, warm_coverage=0.975, code_hot=56, lib_hot=96,
)

_HTTPD = AppProfile(
    name="httpd", kind="serving",
    image=_image("httpd", binary=96, bdata=12, libs=448, ldata=24, infra=128),
    # Stream-oriented: modest shared content, code-heavy request path.
    dataset_pages=1536, dataset_writes=False, private_pages=1024,
    thp_blocks=0,
    zipf_theta=0.75, requests=300, mix=(8, 2, 2),
    scan_per_request=3, scan_band=1024,
    dataset_write_frac=0.0, private_write_frac=0.6,
    private_hot=96, gap=70,
    warm_fraction=0.5, warm_coverage=1.0, code_hot=160, lib_hot=256,
)

#: Compute applications.
_GRAPHCHI = AppProfile(
    name="graphchi", kind="compute",
    image=_image("graphchi", binary=48, bdata=8, libs=320, ldata=16, infra=96,
                 heap=8192),
    # PageRank over a shared SNAP graph; per-container edge buffers
    # dominate the active set (low-locality vertex accesses).
    dataset_pages=4096, dataset_writes=False, private_pages=6144,
    thp_blocks=2,
    zipf_theta=0.0, requests=220, mix=(2, 4, 6),
    scan_per_request=0, scan_band=0,
    dataset_write_frac=0.0, private_write_frac=0.55,
    private_hot=6144, gap=95,
    warm_fraction=0.4, warm_coverage=0.99, code_hot=40, lib_hot=64,
)

_FIO = AppProfile(
    name="fio", kind="compute",
    image=_image("fio", binary=32, bdata=8, libs=256, ldata=16, infra=96),
    # In-memory I/O over a shared 500MB file with regular access patterns.
    dataset_pages=6144, dataset_writes=True, private_pages=512,
    thp_blocks=2,
    zipf_theta=0.55, requests=260, mix=(2, 7, 1),
    scan_per_request=0, scan_band=0,
    dataset_write_frac=0.3, private_write_frac=0.7,
    private_hot=96, gap=85,
    warm_fraction=0.45, warm_coverage=0.93, code_hot=24, lib_hot=48,
)

APP_PROFILES = {p.name: p for p in
                (_MONGODB, _ARANGODB, _HTTPD, _GRAPHCHI, _FIO)}
SERVING_APPS = ("mongodb", "arangodb", "httpd")
COMPUTE_APPS = ("graphchi", "fio")


@dataclasses.dataclass(frozen=True)
class FunctionProfile:
    """A serverless function (Section VI's Parse/Hash/Marshal).

    Dense and sparse inputs do the *same work* (same access count); sparse
    spreads it over ``sparse_factor`` times more pages, touching ~10% of
    each page — so page-table work dominates sparse executions (the 55%
    case of Figure 11) while compute dominates dense ones (the 10% case).
    """

    name: str
    code_pages: int
    #: Dense input size, pages; sparse input is input_pages*sparse_factor.
    input_pages: int
    scratch_pages: int
    sparse_factor: int = 16
    dense_accesses_per_page: int = 22
    sparse_accesses_per_page: int = 1
    #: Instruction fetches per data access (function + libc code).
    ifetch_ratio: float = 0.4
    #: Functions do real computation per element (djb2 hashing, token
    #: scanning): a large instruction gap per access.
    gap: int = 260
    lib_hot: int = 220
    passes: int = 10


FUNCTION_PROFILES = {
    "parse": FunctionProfile("parse", code_pages=16, input_pages=64,
                             scratch_pages=32),
    "hash": FunctionProfile("hash", code_pages=16, input_pages=64,
                            scratch_pages=16),
    "marshal": FunctionProfile("marshal", code_pages=16, input_pages=64,
                               scratch_pages=24),
}
FUNCTION_NAMES = ("parse", "hash", "marshal")

#: The common base image for all functions — the paper uses the GCC image
#: from Docker Hub, whose runtime/libraries dominate function footprints
#: (~90% of their shareable pte_ts are infrastructure pages).
FAAS_BASE_IMAGE = ContainerImage(
    name="faas-gcc", binary_pages=32, binary_data_pages=8,
    lib_pages=1536, lib_data_pages=32, infra_pages=512,
    heap_pages=1024, bringup_touch_pages=380)
