"""Compute traces: GraphChi (PageRank) and FIO.

GraphChi performs low-locality traversals of the shared graph (uniform
random vertex pages) while streaming through large private edge buffers —
the paper notes this makes most of its *active* pte_ts unshareable and
limits its gains. FIO performs regular (sequential/strided) operations on
the shared data set with a small private state, which the paper notes
yields high shared-translation reuse.
"""

import random

from repro.kernel.vma import SegmentKind
from repro.workloads.zipf import ZipfGenerator

K_IFETCH, K_LOAD, K_STORE = 0, 1, 2


def compute_trace(profile, container_index, iterations=None, seed_offset=0):
    """Trace generator for one compute container (no request tagging; the
    metric is execution time)."""
    iterations = profile.requests if iterations is None else iterations
    seed = container_index * 104729 + seed_offset
    rng = random.Random(seed)
    ifetches, dataset_accesses, privates = profile.mix
    gap = profile.gap
    code_pages = profile.code_hot + profile.lib_hot
    code_zipf = ZipfGenerator(code_pages, 0.5, seed=seed ^ 0xF10)
    dataset_zipf = (ZipfGenerator(profile.dataset_pages, profile.zipf_theta,
                                  seed=seed ^ 0xDA7A)
                    if profile.zipf_theta else None)
    # Regular apps (FIO) sweep sequential windows; each container starts at
    # a different offset ("different random locations", Section VI) with
    # partial overlap across containers.
    seq_cursor = (container_index * profile.dataset_pages // 3) % profile.dataset_pages
    edge_cursor = rng.randrange(profile.private_pages)

    for _ in range(iterations):
        for _ in range(ifetches):
            page = code_zipf.next()
            # Images with no binary (or library) mapping have no pages to
            # fetch from that segment; skip rather than modulo by zero.
            if page < profile.code_hot:
                if profile.image.binary_pages:
                    yield (K_IFETCH, SegmentKind.CODE,
                           page % profile.image.binary_pages,
                           rng.randrange(64), gap, None)
            elif profile.image.lib_pages:
                yield (K_IFETCH, SegmentKind.LIBS,
                       (page - profile.code_hot) % profile.image.lib_pages,
                       rng.randrange(64), gap, None)
        for k in range(dataset_accesses):
            if dataset_zipf is not None and k % 2 == 0:
                page = dataset_zipf.next()
            elif profile.zipf_theta:
                seq_cursor = (seq_cursor + 1) % profile.dataset_pages
                page = seq_cursor
            else:
                # GraphChi: random vertex page, low locality.
                page = rng.randrange(profile.dataset_pages)
            kind = (K_STORE if profile.dataset_writes
                    and rng.random() < profile.dataset_write_frac else K_LOAD)
            # FIO's regular ops reuse block-aligned lines; GraphChi's
            # vertex reads stay scattered (word-granular, low locality).
            line = ((page * 13) % 64 if profile.zipf_theta
                    else rng.randrange(64))
            yield (kind, SegmentKind.MMAP, page, line, gap, None)
        for k in range(privates):
            # Streaming through the private buffer (edges / io state);
            # the stream wraps over the hot window (the full buffer for
            # GraphChi's edge streams, a small state block for FIO).
            # Every other access revisits data a few hundred pages back
            # (GraphChi re-reads edge windows while updating), giving the
            # private stream L2-TLB-distance reuse.
            window = min(profile.private_hot, profile.private_pages)
            if k % 2 and window > 512:
                page = (edge_cursor - 384) % window
            else:
                edge_cursor = (edge_cursor + 1) % window
                page = edge_cursor
            kind = (K_STORE if rng.random() < profile.private_write_frac
                    else K_LOAD)
            yield (kind, SegmentKind.HEAP, page,
                   rng.randrange(64), gap, None)
