"""Metrics registry: labelled counters, gauges, and log2 histograms.

The registry is the aggregation side of the observability stack: the
:class:`~repro.obs.tracer.Tracer` folds every event into it online, so
summaries survive the bounded event ring. Snapshots are plain JSON-ready
dicts with deterministic ordering, which makes them safe to ship across
the ``ProcessPoolExecutor`` fan-out (workers serialize snapshots, the
parent merges) and to store in the disk run cache alongside the
:class:`~repro.sim.stats.RunResult` summary.

Histograms use fixed log2 buckets — bucket ``b`` counts values in
``[2**(b-1), 2**b)`` (bucket 0 counts zeros) — so cycle-count
distributions (walk latency, request latency) come for free without
configuring bucket boundaries per metric.
"""

import math


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins; merges take the max)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value):
        self.value = value


def bucket_of(value):
    """Log2 bucket index for a non-negative value (0 for value 0)."""
    return int(value).bit_length()


class Histogram:
    """Fixed log2-bucket histogram of non-negative values."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self):
        self.buckets = {}
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def observe(self, value):
        bucket = bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct):
        """Nearest-rank percentile, resolved to its bucket's upper bound
        (exact for the min/max, approximate in between).

        The rank is the true nearest-rank definition — ``ceil(p/100*N)``
        clamped to at least 1 — matching :func:`repro.sim.stats.
        percentile` on the same data, so the histogram summaries and the
        exact-value summaries report the same element for a given
        ``pct`` (the histogram answer is that element's bucket upper
        bound). The old ``int(round(...))`` rank disagreed with the
        exact implementation on half-way counts (banker's rounding
        picked the lower rank), skewing p50/p95 one element low.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                # Uniform upper bound: bucket b holds [2**(b-1), 2**b),
                # so the inclusive upper bound is 2**b - 1 — which is 0
                # for bucket 0 (the zero bucket), no special case.
                return float((1 << bucket) - 1)
        return float(self.max)


_KINDS = {"counters": Counter, "gauges": Gauge, "histograms": Histogram}


class MetricsRegistry:
    """Get-or-create store of labelled metrics.

    Labels are keyword arguments (``registry.counter("faults",
    kind="cow", pid=3)``); each distinct (name, label set) is its own
    time series, as in Prometheus-style registries.
    """

    def __init__(self):
        self._metrics = {}  # (kind, name, ((label, value), ...)) -> metric

    def _get(self, kind, name, labels):
        key = (kind, name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = _KINDS[kind]()
        return metric

    def counter(self, name, **labels):
        return self._get("counters", name, labels)

    def gauge(self, name, **labels):
        return self._get("gauges", name, labels)

    def histogram(self, name, **labels):
        return self._get("histograms", name, labels)

    def snapshot(self):
        """JSON-ready dict of every metric, deterministically ordered."""
        out = {"counters": [], "gauges": [], "histograms": []}
        for (kind, name, labels) in sorted(self._metrics,
                                           key=_key_sort_key):
            metric = self._metrics[(kind, name, labels)]
            entry = {"name": name, "labels": {k: v for k, v in labels}}
            if kind == "histograms":
                entry["buckets"] = {str(b): n
                                    for b, n in sorted(metric.buckets.items())}
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                entry["min"] = metric.min
                entry["max"] = metric.max
            else:
                entry["value"] = metric.value
            out[kind].append(entry)
        return out


def _key_sort_key(key):
    kind, name, labels = key
    return (kind, name, [(k, repr(v)) for k, v in labels])


def _entry_sort_key(entry):
    return (entry["name"],
            [(k, repr(v)) for k, v in sorted(entry["labels"].items())])


def _entry_key(entry):
    return (entry["name"], tuple(sorted(entry["labels"].items())))


def merge_snapshots(snapshots):
    """Merge registry snapshots: counters and histograms add, gauges
    keep the maximum. The result is order-independent, so the parent of
    a worker fan-out can merge in completion order."""
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for entry in snapshot.get("counters", []):
            slot = merged["counters"].setdefault(
                _entry_key(entry), dict(entry, value=0))
            slot["value"] += entry["value"]
        for entry in snapshot.get("gauges", []):
            slot = merged["gauges"].setdefault(
                _entry_key(entry), dict(entry))
            slot["value"] = max(slot["value"], entry["value"])
        for entry in snapshot.get("histograms", []):
            slot = merged["histograms"].get(_entry_key(entry))
            if slot is None:
                merged["histograms"][_entry_key(entry)] = {
                    "name": entry["name"], "labels": dict(entry["labels"]),
                    "buckets": dict(entry["buckets"]), "count": entry["count"],
                    "sum": entry["sum"], "min": entry["min"],
                    "max": entry["max"]}
                continue
            for bucket, n in entry["buckets"].items():
                slot["buckets"][bucket] = slot["buckets"].get(bucket, 0) + n
            slot["count"] += entry["count"]
            slot["sum"] += entry["sum"]
            slot["min"] = _opt(min, slot["min"], entry["min"])
            slot["max"] = _opt(max, slot["max"], entry["max"])
    return {kind: sorted(entries.values(), key=_entry_sort_key)
            for kind, entries in merged.items()}


def _opt(fn, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return fn(a, b)


def map_label(snapshot, label, mapping, default=-1):
    """A copy of a registry snapshot with one label's values remapped.

    Used by :meth:`repro.sim.stats.RunResult.as_dict` to renumber raw
    pids to dense creation-order indices, so the same run summarized in a
    worker process and in the parent is bit-identical (pids come from a
    process-global counter).
    """
    out = {}
    for kind, entries in snapshot.items():
        rewritten = []
        for entry in entries:
            labels = dict(entry["labels"])
            if label in labels:
                labels[label] = mapping.get(labels[label], default)
            rewritten.append(dict(entry, labels=labels))
        out[kind] = sorted(rewritten, key=_entry_sort_key)
    return out
