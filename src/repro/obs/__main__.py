"""``python -m repro.obs``: summarize and diff captured runs.

Works on the artifacts ``python -m repro.experiments trace`` writes (a
capture directory with ``summary.json``, ``trace.jsonl`` and
``trace.chrome.json``) or directly on a summary/snapshot JSON file.

    python -m repro.experiments trace --quick --out /tmp/obs-bf
    python -m repro.obs summarize /tmp/obs-bf
    python -m repro.obs diff /tmp/obs-bf /tmp/obs-base

``summarize`` prints per-container fault breakdowns, the shared/private
TLB hit matrix, walk latency, and the hottest VPNs. ``diff`` prints
per-metric deltas between two runs — regression triage: only metrics a
change actually affected show nonzero deltas.
"""

import argparse
import json
import pathlib
import sys

from repro.obs.summary import diff, format_diff, format_summary, summarize


def load_snapshot(path):
    """An obs snapshot from a capture dir, a capture summary.json, or a
    bare snapshot JSON file."""
    path = pathlib.Path(path)
    if path.is_dir():
        path = path / "summary.json"
    data = json.loads(path.read_text())
    if "metrics" in data:
        return data
    if isinstance(data.get("obs"), dict):
        return data["obs"]
    raise SystemExit("%s holds no obs snapshot (expected a 'metrics' or "
                     "'obs' key)" % path)


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sum_parser = sub.add_parser(
        "summarize", help="triage summary of one captured run")
    sum_parser.add_argument("run", help="capture dir or summary JSON file")
    sum_parser.add_argument("--top", type=int, default=10,
                            help="hottest VPNs to list (default 10)")
    sum_parser.add_argument("--json", action="store_true",
                            help="emit the structured summary as JSON")

    diff_parser = sub.add_parser(
        "diff", help="per-metric deltas between two captured runs")
    diff_parser.add_argument("run_a", help="capture dir or summary JSON")
    diff_parser.add_argument("run_b", help="capture dir or summary JSON")
    diff_parser.add_argument("--all", action="store_true",
                             help="also list unchanged metrics")

    args = parser.parse_args(argv)
    if args.command == "summarize":
        summary = summarize(load_snapshot(args.run), top=args.top)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_summary(summary))
        return 0

    rows = diff(load_snapshot(args.run_a), load_snapshot(args.run_b))
    print(format_diff(rows, only_changed=not args.all))
    return 0


if __name__ == "__main__":
    sys.exit(main())
