"""``python -m repro.obs``: summarize, diff, and watch captured runs.

Works on the artifacts ``python -m repro.experiments trace`` writes (a
capture directory with ``summary.json``, ``trace.jsonl`` and
``trace.chrome.json``), directly on a summary/snapshot JSON file, or on
a raw event stream (``trace.jsonl``, or the ``.gz``/``.zst`` files the
streaming sinks produce) — event streams are replayed through the
tracer's fold, so their summary is exactly the live run's registry.

    python -m repro.experiments trace --quick --out /tmp/obs-bf
    python -m repro.obs summarize /tmp/obs-bf
    python -m repro.obs diff /tmp/obs-bf /tmp/obs-base
    python -m repro.obs summarize /tmp/long-run/trace.jsonl.gz
    python -m repro.obs perfwatch /tmp/BENCH_fresh.json

``summarize`` prints per-container fault breakdowns, the shared/private
TLB hit matrix, walk latency, and the hottest VPNs. ``diff`` prints
per-metric deltas between two runs — regression triage: only metrics a
change actually affected show nonzero deltas. ``perfwatch`` diffs a
fresh BENCH_hotpath.json against the committed trajectory and exits
nonzero on regression (the CI watchdog).
"""

import argparse
import json
import pathlib
import sys

from repro.obs import export, perfwatch
from repro.obs.summary import diff, format_diff, format_summary, summarize
from repro.obs.tracer import replay_events


def _looks_like_event_stream(path):
    """True when the file's first non-blank line is a single event dict
    (JSONL stream) rather than a snapshot/summary JSON document."""
    try:
        with export.open_text(path) as source:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                return isinstance(data, dict) and "event" in data
    except (json.JSONDecodeError, UnicodeDecodeError):
        return False
    return False


def load_snapshot(path):
    """An obs snapshot from a capture dir, a capture summary.json, a
    bare snapshot JSON file, or a (possibly compressed) event stream."""
    path = pathlib.Path(path)
    if path.is_dir():
        path = path / "summary.json"
    if _looks_like_event_stream(path):
        return replay_events(export.read_jsonl(path)).snapshot()
    with export.open_text(path) as source:
        data = json.load(source)
    if "metrics" in data:
        return data
    if isinstance(data.get("obs"), dict):
        return data["obs"]
    raise SystemExit("%s holds no obs snapshot (expected a 'metrics' or "
                     "'obs' key)" % path)


def _parse_tolerance(spec):
    tier, _, value = spec.partition("=")
    if not tier or not value:
        raise argparse.ArgumentTypeError(
            "expected TIER=FRACTION (e.g. smoke=0.35), got %r" % spec)
    try:
        return tier, float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "tolerance for %r is not a number: %r" % (tier, value))


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.obs",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sum_parser = sub.add_parser(
        "summarize", help="triage summary of one captured run")
    sum_parser.add_argument("run", help="capture dir, summary JSON file, "
                            "or event stream (.jsonl/.gz/.zst)")
    sum_parser.add_argument("--top", type=int, default=10,
                            help="hottest VPNs to list (default 10)")
    sum_parser.add_argument("--json", action="store_true",
                            help="emit the structured summary as JSON")

    diff_parser = sub.add_parser(
        "diff", help="per-metric deltas between two captured runs")
    diff_parser.add_argument("run_a", help="capture dir, summary JSON, "
                             "or event stream")
    diff_parser.add_argument("run_b", help="capture dir, summary JSON, "
                             "or event stream")
    diff_parser.add_argument("--all", action="store_true",
                             help="also list unchanged metrics")

    watch_parser = sub.add_parser(
        "perfwatch", help="fail when a fresh perf trajectory regresses "
        "against the committed one")
    watch_parser.add_argument("fresh", nargs="?", default=None,
                              help="freshly measured trajectory file "
                              "(e.g. BENCH_hotpath.json)")
    watch_parser.add_argument("--bench", default=None, metavar="PATH",
                              help="alternative spelling of the fresh "
                              "trajectory file (e.g. BENCH_serve.json)")
    watch_parser.add_argument("--baseline", default=None,
                              help="committed trajectory to compare "
                              "against (default: the repo-root file "
                              "with the same basename as the fresh one)")
    watch_parser.add_argument("--ratio", action="append", default=[],
                              metavar="METRIC",
                              help="watched ratio to gate (repeatable; "
                              "default: speedup fastpath_speedup)")
    watch_parser.add_argument("--tolerance", action="append", default=[],
                              type=_parse_tolerance, metavar="TIER=FRAC",
                              help="per-tier regression band, e.g. "
                              "smoke=0.5 (repeatable)")
    watch_parser.add_argument("--default-tolerance", type=float,
                              default=None, metavar="FRAC",
                              help="band for tiers without an explicit "
                              "--tolerance")

    args = parser.parse_args(argv)
    if args.command == "summarize":
        summary = summarize(load_snapshot(args.run), top=args.top)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_summary(summary))
        return 0

    if args.command == "perfwatch":
        fresh = args.bench or args.fresh
        if fresh is None:
            watch_parser.error("a fresh trajectory is required "
                               "(positional FRESH or --bench PATH)")
        return perfwatch.watch(
            fresh, baseline_path=args.baseline,
            tolerances=dict(args.tolerance),
            default_tolerance=args.default_tolerance,
            watched=args.ratio or None)

    rows = diff(load_snapshot(args.run_a), load_snapshot(args.run_b))
    print(format_diff(rows, only_changed=not args.all))
    return 0


if __name__ == "__main__":
    sys.exit(main())
