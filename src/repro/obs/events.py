"""Typed trace events: compact tuples on the hot path, dicts at the edge.

Events are plain tuples for the same reason trace records are
(:mod:`repro.sim.simulator`): emitting one is an append, not an object
construction. The first four slots are common — ``(etype, core, cycle,
pid, ...)`` with ``cycle`` the emitting core's *local* cycle count — and
the remainder is typed per event (see :data:`FIELDS`).

The taxonomy mirrors the paper's accounting: TLB hits carry the
shared/private provenance Figure 10b is built from, page walks carry the
per-level PWC outcomes of Figure 2, faults carry the kind split of the
kernel counters, and scheduler events reconstruct Figure 7's
container-interleaving timelines.
"""

#: Event type codes (tuple slot 0).
(TLB_HIT, TLB_MISS, PAGE_WALK, FAULT, SCHED_SWITCH, INVALIDATION, QUANTUM,
 PROCESS_SPAWN, PROCESS_EXIT) = range(9)

#: Code -> wire name (JSONL ``event`` field).
NAMES = ("TLB_HIT", "TLB_MISS", "PAGE_WALK", "FAULT", "SCHED_SWITCH",
         "INVALIDATION", "QUANTUM", "PROCESS_SPAWN", "PROCESS_EXIT")

#: Per-type field names for tuple slots 4+.
FIELDS = (
    # TLB_HIT: level is "L1D"/"L1I"/"L2"; provenance "shared" when the
    # entry was inserted by another process (Figure 10b's metric).
    ("level", "vpn", "provenance"),
    # TLB_MISS: instr distinguishes the I- and D-side streams.
    ("level", "vpn", "instr"),
    # PAGE_WALK: levels is one char per level read, root first —
    # "p" = PWC hit, "m" = memory-hierarchy access (the leaf always "m").
    ("vpn", "cycles", "fault", "levels"),
    # FAULT: kind is a FaultType value; pte_page_copied marks BabelFish
    # CoW ownership transitions (a private pte-page copy was created).
    ("vpn", "kind", "cycles", "pte_page_copied", "invalidations"),
    ("prev_pid", "next_pid"),
    ("vpn", "scope"),
    # QUANTUM: one scheduler quantum on a core; ``cycle`` is its start.
    ("end_cycle", "instructions"),
    # PROCESS_SPAWN: lifecycle birth; recycled marks a reused PCID (the
    # kernel paired it with a PCID_FLUSH shootdown).
    ("pcid", "ccid", "recycled"),
    # PROCESS_EXIT: lifecycle death; invalidations counts the exit-time
    # shootdowns (PCID flush + O-PC reclamation + shared-table flush).
    ("pcid", "ccid", "invalidations"),
)

#: Wire name -> code (inverse of :data:`NAMES`).
CODES = {name: code for code, name in enumerate(NAMES)}

PROVENANCE_SHARED = "shared"
PROVENANCE_PRIVATE = "private"


def event_to_dict(event):
    """One event tuple -> a flat, JSON-ready dict."""
    etype = event[0]
    data = {"event": NAMES[etype], "core": event[1], "cycle": event[2],
            "pid": event[3]}
    for name, value in zip(FIELDS[etype], event[4:]):
        data[name] = value
    return data


def event_from_dict(data):
    """The exact inverse of :func:`event_to_dict` — rebuilds the compact
    tuple from a JSONL line, so streamed trace files can be replayed
    through the tracer's fold (:func:`repro.obs.tracer.replay_events`)."""
    etype = CODES[data["event"]]
    return ((etype, data["core"], data["cycle"], data["pid"])
            + tuple(data[name] for name in FIELDS[etype]))
